#pragma once
// Postprocess analytics over BAT data sets. The paper motivates the layout
// with "visualization and analysis tasks involving spatial and attribute
// subset queries" (§V-A); this module provides the common ones —
// histograms, density grids, selection statistics, and time-series curves —
// implemented on top of Dataset queries so they benefit from the layout's
// leaf pruning, bitmap filtering, and progressive quality levels (an
// analysis pass can run on a representative subset first).

#include <cstdint>
#include <optional>
#include <vector>

#include "core/dataset.hpp"
#include "io/series.hpp"

namespace bat {

// ---- histogram --------------------------------------------------------------

struct Histogram {
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::uint64_t> bins;

    std::uint64_t total() const;
    /// Value at the center of bin b.
    double bin_center(std::size_t b) const;
    /// Index of the fullest bin.
    std::size_t mode() const;
};

/// Histogram of attribute `attr` over the query's selection. The value
/// range defaults to the data set's global attribute range.
Histogram attribute_histogram(Dataset& ds, std::size_t attr, std::size_t num_bins,
                              const BatQuery& query = {},
                              std::optional<std::pair<double, double>> range = {});

// ---- density grid ------------------------------------------------------------

/// Particle counts on a regular grid over the data bounds — the standard
/// first look at a nonuniform distribution (and the quantity the adaptive
/// aggregation balances).
struct DensityGrid {
    int nx = 1;
    int ny = 1;
    int nz = 1;
    Box bounds;
    std::vector<std::uint64_t> counts;  // x-fastest

    std::uint64_t& at(int x, int y, int z) {
        return counts[static_cast<std::size_t>((z * ny + y) * nx + x)];
    }
    std::uint64_t at(int x, int y, int z) const {
        return counts[static_cast<std::size_t>((z * ny + y) * nx + x)];
    }
    std::uint64_t max_count() const;
    /// Imbalance: max cell count over mean nonzero cell count.
    double imbalance() const;
};

DensityGrid density_grid(Dataset& ds, int nx, int ny, int nz, const BatQuery& query = {});

// ---- selection statistics ------------------------------------------------------

struct SelectionStats {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

/// Streaming statistics of attribute `attr` over the query's selection.
SelectionStats selection_stats(Dataset& ds, std::size_t attr, const BatQuery& query = {});

// ---- time series curves --------------------------------------------------------

struct SeriesPoint {
    int timestep = 0;
    std::uint64_t count = 0;
    double mean = 0.0;
};

/// Per-timestep count and mean of `attr` over the query's selection, for
/// every timestep in the series (e.g. "mean temperature of the hottest
/// region over time").
std::vector<SeriesPoint> series_curve(const SeriesReader& reader, std::size_t attr,
                                      const BatQuery& query = {});

}  // namespace bat
