#include "analytics/analytics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bat {

std::uint64_t Histogram::total() const {
    std::uint64_t n = 0;
    for (std::uint64_t b : bins) {
        n += b;
    }
    return n;
}

double Histogram::bin_center(std::size_t b) const {
    BAT_CHECK(b < bins.size());
    const double width = (hi - lo) / static_cast<double>(bins.size());
    return lo + (static_cast<double>(b) + 0.5) * width;
}

std::size_t Histogram::mode() const {
    BAT_CHECK(!bins.empty());
    return static_cast<std::size_t>(
        std::max_element(bins.begin(), bins.end()) - bins.begin());
}

Histogram attribute_histogram(Dataset& ds, std::size_t attr, std::size_t num_bins,
                              const BatQuery& query,
                              std::optional<std::pair<double, double>> range) {
    BAT_CHECK(attr < ds.num_attrs());
    BAT_CHECK(num_bins >= 1);
    Histogram hist;
    const auto [lo, hi] = range.value_or(ds.attr_range(attr));
    hist.lo = lo;
    hist.hi = hi;
    hist.bins.assign(num_bins, 0);
    const double width = hi > lo ? (hi - lo) / static_cast<double>(num_bins) : 1.0;
    ds.query(query, [&](Vec3, std::span<const double> attrs) {
        const double v = attrs[attr];
        if (v < lo || v > hi) {
            return;
        }
        const auto bin = std::min(
            static_cast<std::size_t>((v - lo) / width), num_bins - 1);
        ++hist.bins[bin];
    });
    return hist;
}

std::uint64_t DensityGrid::max_count() const {
    std::uint64_t m = 0;
    for (std::uint64_t c : counts) {
        m = std::max(m, c);
    }
    return m;
}

double DensityGrid::imbalance() const {
    std::uint64_t total = 0;
    std::uint64_t nonzero = 0;
    std::uint64_t m = 0;
    for (std::uint64_t c : counts) {
        total += c;
        nonzero += c > 0;
        m = std::max(m, c);
    }
    if (nonzero == 0) {
        return 0.0;
    }
    const double mean = static_cast<double>(total) / static_cast<double>(nonzero);
    return static_cast<double>(m) / mean;
}

DensityGrid density_grid(Dataset& ds, int nx, int ny, int nz, const BatQuery& query) {
    BAT_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
    DensityGrid grid;
    grid.nx = nx;
    grid.ny = ny;
    grid.nz = nz;
    grid.bounds = query.box.value_or(ds.bounds());
    grid.counts.assign(static_cast<std::size_t>(nx) * ny * nz, 0);
    const Vec3 ext = grid.bounds.extent();
    ds.query(query, [&](Vec3 p, std::span<const double>) {
        int idx[3];
        const int dims[3] = {nx, ny, nz};
        for (int a = 0; a < 3; ++a) {
            const float e = ext[a];
            float t = e > 0.f ? (p[a] - grid.bounds.lower[a]) / e : 0.f;
            t = std::clamp(t, 0.f, 1.f);
            idx[a] = std::min(static_cast<int>(t * static_cast<float>(dims[a])),
                              dims[a] - 1);
        }
        ++grid.at(idx[0], idx[1], idx[2]);
    });
    return grid;
}

SelectionStats selection_stats(Dataset& ds, std::size_t attr, const BatQuery& query) {
    BAT_CHECK(attr < ds.num_attrs());
    SelectionStats stats;
    double m2 = 0.0;
    ds.query(query, [&](Vec3, std::span<const double> attrs) {
        const double v = attrs[attr];
        if (stats.count == 0) {
            stats.min = stats.max = v;
        } else {
            stats.min = std::min(stats.min, v);
            stats.max = std::max(stats.max, v);
        }
        ++stats.count;
        const double delta = v - stats.mean;
        stats.mean += delta / static_cast<double>(stats.count);
        m2 += delta * (v - stats.mean);
    });
    if (stats.count >= 2) {
        stats.stddev = std::sqrt(m2 / static_cast<double>(stats.count));
    }
    return stats;
}

std::vector<SeriesPoint> series_curve(const SeriesReader& reader, std::size_t attr,
                                      const BatQuery& query) {
    std::vector<SeriesPoint> curve;
    curve.reserve(reader.num_timesteps());
    for (std::size_t i = 0; i < reader.num_timesteps(); ++i) {
        Dataset ds = reader.open(i);
        const SelectionStats stats = selection_stats(ds, attr, query);
        curve.push_back({reader.timestep_at(i), stats.count, stats.mean});
    }
    return curve;
}

}  // namespace bat
