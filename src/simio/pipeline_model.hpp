#pragma once
// Performance model of the complete I/O pipelines at full machine scale.
//
// This is the substitution for the paper's Stampede2/Summit runs (see
// DESIGN.md §1): the *algorithms* — aggregation-tree or AUG construction,
// aggregator assignment, read-aggregator assignment — run for real over the
// full-scale per-rank metadata (bounds + particle counts, e.g. 43k ranks);
// only hardware interactions are charged through the network and
// filesystem models, with BAT construction charged at a throughput
// calibrated from the real builder (calibrate.hpp). The model therefore
// reproduces the paper's load-balance effects exactly (file counts, sizes,
// per-aggregator bytes) and its hardware effects qualitatively.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/agg_tree.hpp"
#include "io/writer.hpp"
#include "simio/machine.hpp"

namespace bat::simio {

struct SimPhase {
    std::string name;
    double seconds = 0;
};

struct FileStats {
    int num_files = 0;
    double mean_bytes = 0;
    double std_bytes = 0;
    double max_bytes = 0;
};

struct SimResult {
    double seconds = 0;
    std::vector<SimPhase> phases;
    std::uint64_t total_bytes = 0;  // application payload moved
    FileStats files;

    double gb_per_s() const {
        return seconds > 0 ? static_cast<double>(total_bytes) / 1e9 / seconds : 0.0;
    }
    double phase_seconds(const std::string& name) const;
};

struct TwoPhaseParams {
    MachineConfig machine;
    AggStrategy strategy = AggStrategy::adaptive;
    AggTreeConfig tree;  // target size, overfull settings; bytes_per_particle used
    /// Calibrated BAT build throughput in bytes/s (calibrate.hpp).
    double bat_build_bps = 600e6;
    /// Fractional file-size overhead of the BAT layout (paper §VI-B: 0.9%).
    double layout_overhead = 0.009;
    ThreadPool* pool = nullptr;
};

/// Model one two-phase write of the given per-rank workload (this library's
/// pipeline with the chosen aggregation strategy).
SimResult simulate_write(std::span<const RankInfo> ranks, const TwoPhaseParams& params);

/// Model the matching two-phase restart read (same rank count and bounds).
SimResult simulate_read(std::span<const RankInfo> ranks, const TwoPhaseParams& params);

// ---- IOR-style baselines (raw arrays, no spatial layout) -------------------
SimResult simulate_ior_fpp_write(std::span<const RankInfo> ranks, const MachineConfig& m);
SimResult simulate_ior_fpp_read(std::span<const RankInfo> ranks, const MachineConfig& m);
SimResult simulate_ior_shared_write(std::span<const RankInfo> ranks, const MachineConfig& m,
                                    bool hdf5_flavor);
SimResult simulate_ior_shared_read(std::span<const RankInfo> ranks, const MachineConfig& m,
                                   bool hdf5_flavor);

/// Payload bytes of a rank set (sum of counts * bytes_per_particle).
std::uint64_t workload_bytes(std::span<const RankInfo> ranks,
                             std::uint64_t bytes_per_particle);

}  // namespace bat::simio
