#include "simio/network.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bat::simio {

NetworkPhase model_transfers(const MachineConfig& machine, int nranks,
                             std::span<const Transfer> transfers) {
    NetworkPhase phase;
    const int nnodes = machine.nodes_for(nranks);
    std::vector<std::uint64_t> node_in(static_cast<std::size_t>(nnodes), 0);
    std::vector<std::uint64_t> node_out(static_cast<std::size_t>(nnodes), 0);
    std::vector<std::uint64_t> intra(static_cast<std::size_t>(nnodes), 0);
    std::vector<int> msgs_in(static_cast<std::size_t>(nranks), 0);

    for (const Transfer& t : transfers) {
        if (t.src_rank == t.dst_rank || t.bytes == 0) {
            continue;  // self-transfers are memcpys; charged to the build
        }
        const auto src_node = static_cast<std::size_t>(t.src_rank / machine.ranks_per_node);
        const auto dst_node = static_cast<std::size_t>(t.dst_rank / machine.ranks_per_node);
        ++msgs_in[static_cast<std::size_t>(t.dst_rank)];
        if (src_node == dst_node) {
            intra[src_node] += t.bytes;
            phase.intra_node_bytes += t.bytes;
        } else {
            node_out[src_node] += t.bytes;
            node_in[dst_node] += t.bytes;
            phase.cross_node_bytes += t.bytes;
        }
    }

    phase.max_node_in = node_in.empty() ? 0 : *std::max_element(node_in.begin(), node_in.end());
    phase.max_node_out =
        node_out.empty() ? 0 : *std::max_element(node_out.begin(), node_out.end());
    phase.max_messages =
        msgs_in.empty() ? 0 : *std::max_element(msgs_in.begin(), msgs_in.end());
    const std::uint64_t max_intra =
        intra.empty() ? 0 : *std::max_element(intra.begin(), intra.end());

    const double inject = static_cast<double>(phase.max_node_out) / machine.node_bw;
    const double eject = static_cast<double>(phase.max_node_in) / machine.node_bw;
    const double bisect = static_cast<double>(phase.cross_node_bytes) /
                          (machine.bisection_bw_per_node * std::max(1, nnodes));
    const double shm = static_cast<double>(max_intra) / machine.intra_node_bw;
    const double latency = machine.message_latency * phase.max_messages;
    phase.seconds = std::max({inject, eject, bisect, shm}) + latency;
    return phase;
}

double model_rooted_collective(const MachineConfig& machine, int nranks,
                               std::uint64_t bytes_per_rank) {
    BAT_CHECK(nranks >= 1);
    const double depth = std::ceil(std::log2(std::max(2, nranks)));
    // Tree latency plus the root's ejection of the full payload.
    return machine.message_latency * depth +
           static_cast<double>(bytes_per_rank) * nranks / machine.node_bw;
}

}  // namespace bat::simio
