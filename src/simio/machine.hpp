#pragma once
// Machine presets for the discrete performance model. The paper evaluates
// on Stampede2 (Lustre scratch, 330 GB/s peak write, 100 Gb/s fat-tree,
// 48-core SKX nodes) and Summit (IBM Spectrum Scale/GPFS, 2.5 TB/s peak,
// 184 Gb/s fat-tree, 42 usable cores/node). We model each system's
// contention structure — per-node injection bandwidth, parallel-filesystem
// aggregate and per-client limits, metadata (file create/open) throughput
// with directory contention, and shared-file lock contention — with
// constants tuned so the qualitative crossovers land where the paper
// reports them (file-per-process degrading by ~1536 ranks on Stampede2 and
// ~672 on Summit; shared files flat from global synchronization).
// Absolute numbers are NOT calibrated to the real machines.

#include <string>

namespace bat::simio {

enum class FsKind { lustre, gpfs };

struct MachineConfig {
    std::string name;
    int ranks_per_node = 48;

    // ---- network (fat tree) ----
    double node_bw = 12.5e9;       // NIC bandwidth per node, bytes/s
    double message_latency = 2e-6; // per message, s
    double intra_node_bw = 60e9;   // shared-memory transfer bandwidth, bytes/s
    double bisection_bw_per_node = 6e9;  // all-to-all share per node

    // ---- parallel filesystem ----
    FsKind fs = FsKind::lustre;
    double fs_peak_bw = 330e9;   // aggregate, bytes/s
    double fs_read_bw = 330e9;   // aggregate read, bytes/s
    int num_ost = 66;            // lustre only
    int stripe_count = 32;       // lustre only (paper's setting)
    double client_bw = 1.2e9;    // per-process cap, bytes/s
    double create_rate = 3000;   // file creates/s (metadata service)
    double open_rate = 20000;    // file opens (read)/s
    double dir_contention = 8000; // creates in flight where metadata cost doubles
    // Shared-file (MPI-IO style) writes: a phenomenological plateau model.
    // Lock/stripe-token contention keeps a single shared file far below the
    // filesystem's aggregate bandwidth regardless of writer count:
    //   eff_bw = plateau * P/(P + rampup) / (1 + P/p0)
    double shared_plateau_bw = 18e9;   // best sustained shared-file bandwidth
    double shared_rampup_ranks = 96;   // writers needed to approach the plateau
    double shared_file_p0 = 30000;     // writers where contention halves it again

    double ost_bw() const { return fs_peak_bw / num_ost; }
    int nodes_for(int nranks) const {
        return (nranks + ranks_per_node - 1) / ranks_per_node;
    }
};

/// Stampede2-like preset (Lustre, SKX nodes).
MachineConfig stampede2_like();
/// Summit-like preset (GPFS, POWER9 nodes).
MachineConfig summit_like();

}  // namespace bat::simio
