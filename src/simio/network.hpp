#pragma once
// Fat-tree network transfer model. Given a set of point-to-point transfers
// (src rank, dst rank, bytes), the phase duration is the maximum over:
//   - per-node injection:   outgoing bytes of any node / node NIC bandwidth
//   - per-node ejection:    incoming bytes of any node / node NIC bandwidth
//     (this is the aggregator *incast* term that punishes oversubscribed
//      aggregator placement, the effect §III-A's even leaf spreading
//      mitigates)
//   - bisection:            total cross-node bytes / (bisection bw * nodes)
// plus a per-message latency term for the busiest endpoint. Transfers
// within one node are charged at shared-memory bandwidth instead.

#include <cstdint>
#include <span>
#include <vector>

#include "simio/machine.hpp"

namespace bat::simio {

struct Transfer {
    int src_rank = 0;
    int dst_rank = 0;
    std::uint64_t bytes = 0;
};

struct NetworkPhase {
    double seconds = 0;
    std::uint64_t cross_node_bytes = 0;
    std::uint64_t intra_node_bytes = 0;
    std::uint64_t max_node_in = 0;   // heaviest ejection load
    std::uint64_t max_node_out = 0;  // heaviest injection load
    int max_messages = 0;            // most messages into one endpoint
};

NetworkPhase model_transfers(const MachineConfig& machine, int nranks,
                             std::span<const Transfer> transfers);

/// Cost of a small-message collective rooted at rank 0 over `nranks` ranks
/// moving `bytes_per_rank` each (tree-structured gather/scatter).
double model_rooted_collective(const MachineConfig& machine, int nranks,
                               std::uint64_t bytes_per_rank);

}  // namespace bat::simio
