#include "simio/pipeline_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "io/reader.hpp"
#include "obs/trace.hpp"
#include "simio/filesystem.hpp"
#include "simio/network.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace bat::simio {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Accumulates modeled phases into a SimResult and, under BAT_TRACE, lays
/// the modeled timeline out on a dedicated virtual track — the same trace
/// format as the measured pipeline, but on its own tid so modeled spans
/// never interleave with real ones.
class PhaseRecorder {
public:
    PhaseRecorder(SimResult& result, const char* track_name) : result_(result) {
        if (obs::trace_enabled()) {
            traced_ = true;
            track_ = obs::new_virtual_track(track_name);
            cursor_ns_ = obs::trace_now_ns();
        }
    }

    /// `name` must be a string literal (the trace stores the pointer).
    void add(const char* name, double seconds) {
        result_.phases.push_back({name, seconds});
        result_.seconds += seconds;
        if (traced_) {
            const auto dur_ns =
                static_cast<std::uint64_t>(std::max(0.0, seconds) * 1e9);
            obs::emit_span_on_track(track_, name, "simio", cursor_ns_, dur_ns);
            cursor_ns_ += dur_ns;
        }
    }

private:
    SimResult& result_;
    bool traced_ = false;
    std::uint32_t track_ = 0;
    std::uint64_t cursor_ns_ = 0;
};

FileStats file_stats(const Aggregation& agg, std::uint64_t bpp, double overhead) {
    FileStats stats;
    stats.num_files = static_cast<int>(agg.leaves.size());
    RunningStats rs;
    for (const AggLeaf& leaf : agg.leaves) {
        rs.add(static_cast<double>(leaf.num_particles) * static_cast<double>(bpp) *
               (1.0 + overhead));
    }
    stats.mean_bytes = rs.mean();
    stats.std_bytes = rs.stddev();
    stats.max_bytes = rs.max();
    return stats;
}

/// Estimated size of an assignment / report message (see io/writer.cpp).
constexpr std::uint64_t kAssignmentBytes = 64;
constexpr std::uint64_t kReportBytesPerAttr = 20;
constexpr std::uint64_t kMetaBytesPerLeaf = 220;

}  // namespace

double SimResult::phase_seconds(const std::string& name) const {
    for (const SimPhase& p : phases) {
        if (p.name == name) {
            return p.seconds;
        }
    }
    return 0.0;
}

std::uint64_t workload_bytes(std::span<const RankInfo> ranks,
                             std::uint64_t bytes_per_particle) {
    std::uint64_t total = 0;
    for (const RankInfo& r : ranks) {
        total += r.num_particles * bytes_per_particle;
    }
    return total;
}

SimResult simulate_write(std::span<const RankInfo> ranks, const TwoPhaseParams& params) {
    const MachineConfig& m = params.machine;
    const int nranks = static_cast<int>(ranks.size());
    const std::uint64_t bpp = params.tree.bytes_per_particle;
    SimResult result;
    result.total_bytes = workload_bytes(ranks, bpp);
    PhaseRecorder rec(result, "simio.write");

    // (a) gather counts + bounds; the tree build runs FOR REAL and its
    // measured wall time is charged (it runs on rank 0 in the pipeline).
    rec.add("gather", model_rooted_collective(m, nranks, sizeof(RankInfo)));
    const auto t0 = Clock::now();
    Aggregation agg = build_aggregation(ranks, params.strategy, params.tree, params.pool);
    rec.add("tree_build", seconds_since(t0));
    if (params.strategy == AggStrategy::file_per_process) {
        for (AggLeaf& leaf : agg.leaves) {
            leaf.aggregator = leaf.ranks.front();
        }
    } else if (!agg.leaves.empty()) {
        agg.assign_aggregators(nranks);
    }
    result.files = file_stats(agg, bpp, params.layout_overhead);

    // (b) scatter assignments.
    rec.add("scatter", model_rooted_collective(m, nranks, kAssignmentBytes));

    // (b') transfer particles to aggregators.
    std::vector<Transfer> transfers;
    transfers.reserve(ranks.size());
    for (const AggLeaf& leaf : agg.leaves) {
        for (int r : leaf.ranks) {
            const std::uint64_t bytes = ranks[static_cast<std::size_t>(r)].num_particles * bpp;
            if (bytes > 0) {
                transfers.push_back({r, leaf.aggregator, bytes});
            }
        }
    }
    rec.add("transfer", model_transfers(m, nranks, transfers).seconds);

    // (c) BAT build on the busiest aggregator, then the file writes.
    std::vector<std::uint64_t> agg_bytes(static_cast<std::size_t>(nranks), 0);
    std::vector<FileWriteLoad> files;
    files.reserve(agg.leaves.size());
    for (const AggLeaf& leaf : agg.leaves) {
        const auto bytes = static_cast<std::uint64_t>(
            static_cast<double>(leaf.num_particles * bpp) * (1.0 + params.layout_overhead));
        agg_bytes[static_cast<std::size_t>(leaf.aggregator)] += bytes;
        files.push_back({bytes, leaf.aggregator});
    }
    const std::uint64_t max_agg_bytes =
        agg_bytes.empty() ? 0 : *std::max_element(agg_bytes.begin(), agg_bytes.end());
    rec.add("bat_build", static_cast<double>(max_agg_bytes) / params.bat_build_bps);
    rec.add("file_write", model_file_writes(m, files).seconds);

    // (d) metadata gather + metadata file write on rank 0.
    const std::uint64_t nattrs = std::max<std::uint64_t>(1, (bpp - 12) / 8);
    const double report_gather = model_rooted_collective(
        m, nranks, kReportBytesPerAttr * nattrs);
    const FileWriteLoad meta_file{kMetaBytesPerLeaf * agg.leaves.size(), 0};
    const double meta_write = model_file_writes(m, std::span(&meta_file, 1)).seconds;
    rec.add("metadata", report_gather + meta_write);
    return result;
}

SimResult simulate_read(std::span<const RankInfo> ranks, const TwoPhaseParams& params) {
    const MachineConfig& m = params.machine;
    const int nranks = static_cast<int>(ranks.size());
    const std::uint64_t bpp = params.tree.bytes_per_particle;
    SimResult result;
    result.total_bytes = workload_bytes(ranks, bpp);
    PhaseRecorder rec(result, "simio.read");

    // Re-derive the aggregation the write produced (deterministic).
    Aggregation agg = build_aggregation(ranks, params.strategy, params.tree, params.pool);
    result.files = file_stats(agg, bpp, params.layout_overhead);
    const std::vector<int> read_agg =
        assign_read_aggregators(static_cast<int>(agg.leaves.size()), nranks);

    // (a) every rank reads the metadata file. All opens hit the same inode
    // (no directory churn; lookups are cached after the first), so this is
    // a high-rate open storm plus the broadcast-like block reads.
    const std::uint64_t meta_bytes = kMetaBytesPerLeaf * agg.leaves.size();
    const double meta_open = static_cast<double>(nranks) / (8.0 * m.open_rate);
    const double meta_data =
        static_cast<double>(meta_bytes) * nranks / m.fs_read_bw +
        static_cast<double>(meta_bytes) / m.client_bw;
    rec.add("metadata_read", meta_open + meta_data);

    // (b) request messages: one per (reader, overlapped leaf). For the
    // restart pattern each rank needs exactly the leaf holding its data.
    std::vector<Transfer> requests;
    std::vector<Transfer> responses;
    for (int r = 0; r < nranks; ++r) {
        const int leaf = agg.rank_to_leaf[static_cast<std::size_t>(r)];
        if (leaf < 0) {
            continue;
        }
        const int aggregator = read_agg[static_cast<std::size_t>(leaf)];
        const std::uint64_t bytes = ranks[static_cast<std::size_t>(r)].num_particles * bpp;
        requests.push_back({r, aggregator, 32});
        responses.push_back({aggregator, r, bytes});
    }
    rec.add("request", model_transfers(m, nranks, requests).seconds);

    // (c) read aggregators read their leaf files...
    std::vector<FileWriteLoad> files;
    files.reserve(agg.leaves.size());
    for (std::size_t i = 0; i < agg.leaves.size(); ++i) {
        const auto bytes = static_cast<std::uint64_t>(
            static_cast<double>(agg.leaves[i].num_particles * bpp) *
            (1.0 + params.layout_overhead));
        files.push_back({bytes, read_agg[i]});
    }
    rec.add("file_read", model_file_reads(m, files).seconds);

    // ...and ship each rank its particles.
    rec.add("transfer", model_transfers(m, nranks, responses).seconds);
    return result;
}

namespace {

SimResult baseline_result(std::span<const RankInfo> ranks, std::uint64_t bpp) {
    SimResult result;
    result.total_bytes = workload_bytes(ranks, bpp);
    return result;
}

/// IOR-style payload: the paper's per-rank 32k particles * (12 + 14*8)B.
constexpr std::uint64_t kIorBpp = 12 + 14 * 8;

}  // namespace

SimResult simulate_ior_fpp_write(std::span<const RankInfo> ranks, const MachineConfig& m) {
    SimResult result = baseline_result(ranks, kIorBpp);
    std::vector<FileWriteLoad> files;
    files.reserve(ranks.size());
    for (std::size_t r = 0; r < ranks.size(); ++r) {
        if (ranks[r].num_particles > 0) {
            files.push_back({ranks[r].num_particles * kIorBpp, static_cast<int>(r)});
        }
    }
    result.files.num_files = static_cast<int>(files.size());
    PhaseRecorder rec(result, "simio.ior_fpp_write");
    rec.add("file_write", model_file_writes(m, files).seconds);
    return result;
}

SimResult simulate_ior_fpp_read(std::span<const RankInfo> ranks, const MachineConfig& m) {
    SimResult result = baseline_result(ranks, kIorBpp);
    std::vector<FileWriteLoad> files;
    files.reserve(ranks.size());
    for (std::size_t r = 0; r < ranks.size(); ++r) {
        if (ranks[r].num_particles > 0) {
            files.push_back({ranks[r].num_particles * kIorBpp, static_cast<int>(r)});
        }
    }
    result.files.num_files = static_cast<int>(files.size());
    PhaseRecorder rec(result, "simio.ior_fpp_read");
    rec.add("file_read", model_file_reads(m, files).seconds);
    return result;
}

SimResult simulate_ior_shared_write(std::span<const RankInfo> ranks, const MachineConfig& m,
                                    bool hdf5_flavor) {
    SimResult result = baseline_result(ranks, kIorBpp);
    std::uint64_t max_writer = 0;
    for (const RankInfo& r : ranks) {
        max_writer = std::max(max_writer, r.num_particles * kIorBpp);
    }
    result.files.num_files = 1;
    PhaseRecorder rec(result, "simio.ior_shared_write");
    rec.add("shared_write", model_shared_write(m, static_cast<int>(ranks.size()),
                                               result.total_bytes, max_writer, hdf5_flavor)
                                .seconds);
    return result;
}

SimResult simulate_ior_shared_read(std::span<const RankInfo> ranks, const MachineConfig& m,
                                   bool hdf5_flavor) {
    SimResult result = baseline_result(ranks, kIorBpp);
    std::uint64_t max_reader = 0;
    for (const RankInfo& r : ranks) {
        max_reader = std::max(max_reader, r.num_particles * kIorBpp);
    }
    result.files.num_files = 1;
    PhaseRecorder rec(result, "simio.ior_shared_read");
    rec.add("shared_read", model_shared_read(m, static_cast<int>(ranks.size()),
                                             result.total_bytes, max_reader, hdf5_flavor)
                               .seconds);
    return result;
}

}  // namespace bat::simio
