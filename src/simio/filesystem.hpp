#pragma once
// Parallel filesystem models.
//
// Lustre-like: each file is striped over `stripe_count` OSTs (round-robin
// starting OST per file); the data term is the heaviest OST's load. File
// creation serializes through the metadata service, with a contention
// factor that grows with the number of concurrent creates in one directory
// — the effect that makes file-per-process collapse at scale.
//
// GPFS-like: one shared block pool (aggregate bandwidth) with per-client
// caps; creates are cheaper per operation but the shared-directory
// contention knee sits lower (matching the earlier file-per-process
// degradation the paper observed on Summit).
//
// Shared-file writes additionally model block/lock conflicts that grow with
// the writer count (eff_bw = peak / (1 + P / p0)), which is what keeps
// single-shared-file approaches flat in Fig 5/7.

#include <cstdint>
#include <span>
#include <vector>

#include "simio/machine.hpp"

namespace bat::simio {

struct FileWriteLoad {
    std::uint64_t bytes = 0;
    int writer_rank = 0;  // rank performing the write
};

struct FsPhase {
    double seconds = 0;
    double open_seconds = 0;  // metadata portion
    double data_seconds = 0;  // block I/O portion
};

/// N independent files written concurrently (two-phase aggregator files or
/// file-per-process).
FsPhase model_file_writes(const MachineConfig& machine, std::span<const FileWriteLoad> files);

/// N independent files read concurrently.
FsPhase model_file_reads(const MachineConfig& machine, std::span<const FileWriteLoad> files);

/// One shared file written by `nwriters` ranks: `total_bytes` overall, the
/// busiest writer contributing `max_writer_bytes`. `hdf5_flavor` adds
/// collective metadata synchronization and a layout overhead factor (the
/// HDF5 shared-file mode of the IOR comparison).
FsPhase model_shared_write(const MachineConfig& machine, int nwriters,
                           std::uint64_t total_bytes, std::uint64_t max_writer_bytes,
                           bool hdf5_flavor);

FsPhase model_shared_read(const MachineConfig& machine, int nreaders,
                          std::uint64_t total_bytes, std::uint64_t max_reader_bytes,
                          bool hdf5_flavor);

/// Metadata-service time for `n` concurrent creates (or opens when
/// `creating` is false) in one directory, including the contention factor.
double model_metadata_ops(const MachineConfig& machine, int n, bool creating);

}  // namespace bat::simio
