#pragma once
// Calibration of model constants against the real implementation: the
// performance model charges BAT construction at a measured bytes/s
// throughput instead of a guessed constant, so the build/transfer/write
// proportions in the breakdown figures reflect this machine's real builder
// speed (paper Fig 6 observes exactly such a machine dependence between
// SKX and POWER9 nodes).

#include <cstddef>
#include <cstdint>

namespace bat::simio {

struct Calibration {
    /// Sustained BAT build throughput over the raw particle payload, bytes/s.
    double bat_build_bps = 600e6;
    /// Measured BAT file overhead fraction (paper: ~0.9%).
    double layout_overhead = 0.009;
};

/// Build a real BAT over `n` synthetic particles with `nattrs` attributes
/// and measure throughput + layout overhead. Deterministic input, a few
/// hundred ms for the default size.
Calibration calibrate_bat_build(std::size_t n = 400'000, std::size_t nattrs = 14,
                                std::uint64_t seed = 7);

}  // namespace bat::simio
