#include "simio/machine.hpp"

namespace bat::simio {

MachineConfig stampede2_like() {
    MachineConfig m;
    m.name = "stampede2-like";
    m.ranks_per_node = 48;
    m.node_bw = 12.5e9;  // 100 Gb/s Omni-Path
    m.message_latency = 2e-6;
    m.intra_node_bw = 60e9;
    m.bisection_bw_per_node = 6e9;
    m.fs = FsKind::lustre;
    m.fs_peak_bw = 330e9;  // paper: scratch peak write bandwidth
    m.fs_read_bw = 330e9;
    m.num_ost = 66;
    m.stripe_count = 32;  // paper's stripe settings (32 x 8 MB)
    m.client_bw = 1.2e9;
    // Tuned so file-per-process peaks near 1536 ranks (paper Fig 5a).
    m.create_rate = 30000;
    m.open_rate = 60000;
    m.dir_contention = 3000;
    m.shared_plateau_bw = 18e9;
    m.shared_rampup_ranks = 96;
    m.shared_file_p0 = 30000;
    return m;
}

MachineConfig summit_like() {
    MachineConfig m;
    m.name = "summit-like";
    m.ranks_per_node = 42;
    m.node_bw = 23e9;  // 184 Gb/s dual-rail EDR
    m.message_latency = 1.5e-6;
    m.intra_node_bw = 120e9;
    m.bisection_bw_per_node = 11e9;
    m.fs = FsKind::gpfs;
    m.fs_peak_bw = 2500e9;  // paper: 2.5 TB/s peak
    m.fs_read_bw = 2500e9;
    m.num_ost = 154;  // GPFS NSD servers; used only for read parallelism caps
    m.stripe_count = 1;
    m.client_bw = 2.0e9;
    // Alpine's shared-directory file creates were a known bottleneck; tuned
    // so file-per-process peaks near 672 ranks (paper Fig 5b).
    m.create_rate = 20000;
    m.open_rate = 40000;
    m.dir_contention = 1500;
    m.shared_plateau_bw = 45e9;
    m.shared_rampup_ranks = 150;
    m.shared_file_p0 = 20000;
    return m;
}

}  // namespace bat::simio
