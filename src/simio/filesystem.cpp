#include "simio/filesystem.hpp"

#include <algorithm>
#include <cmath>

namespace bat::simio {

double model_metadata_ops(const MachineConfig& machine, int n, bool creating) {
    if (n <= 0) {
        return 0.0;
    }
    const double rate = creating ? machine.create_rate : machine.open_rate;
    // Base service time plus a superlinear directory-contention term: with
    // n concurrent operations in one directory the effective per-op cost
    // grows by (1 + n/knee). Creates take exclusive directory locks; opens
    // only do (cacheable) lookups, so their contention knee sits far higher.
    const double knee = creating ? machine.dir_contention : 4.0 * machine.dir_contention;
    return (static_cast<double>(n) / rate) * (1.0 + static_cast<double>(n) / knee);
}

namespace {

double data_time_lustre(const MachineConfig& machine, std::span<const FileWriteLoad> files,
                        double aggregate_bw) {
    // Distribute each file's stripes round-robin over the OSTs; the phase is
    // bound by the heaviest OST.
    const int nost = std::max(1, machine.num_ost);
    const int stripes = std::max(1, std::min(machine.stripe_count, nost));
    std::vector<double> ost_load(static_cast<std::size_t>(nost), 0.0);
    double max_client = 0.0;
    int file_id = 0;
    for (const FileWriteLoad& f : files) {
        const double per_stripe = static_cast<double>(f.bytes) / stripes;
        const int start = (file_id * stripes) % nost;
        for (int s = 0; s < stripes; ++s) {
            ost_load[static_cast<std::size_t>((start + s) % nost)] += per_stripe;
        }
        max_client = std::max(max_client, static_cast<double>(f.bytes) / machine.client_bw);
        ++file_id;
    }
    const double per_ost_bw = aggregate_bw / nost;
    const double max_ost =
        *std::max_element(ost_load.begin(), ost_load.end()) / per_ost_bw;
    return std::max(max_ost, max_client);
}

double data_time_gpfs(const MachineConfig& machine, std::span<const FileWriteLoad> files,
                      double aggregate_bw) {
    double total = 0.0;
    double max_client = 0.0;
    for (const FileWriteLoad& f : files) {
        total += static_cast<double>(f.bytes);
        max_client = std::max(max_client, static_cast<double>(f.bytes) / machine.client_bw);
    }
    return std::max(total / aggregate_bw, max_client);
}

FsPhase model_files(const MachineConfig& machine, std::span<const FileWriteLoad> files,
                    bool creating, double aggregate_bw) {
    FsPhase phase;
    if (files.empty()) {
        return phase;
    }
    phase.open_seconds = model_metadata_ops(machine, static_cast<int>(files.size()), creating);
    phase.data_seconds = machine.fs == FsKind::lustre
                             ? data_time_lustre(machine, files, aggregate_bw)
                             : data_time_gpfs(machine, files, aggregate_bw);
    phase.seconds = phase.open_seconds + phase.data_seconds;
    return phase;
}

}  // namespace

FsPhase model_file_writes(const MachineConfig& machine,
                          std::span<const FileWriteLoad> files) {
    return model_files(machine, files, /*creating=*/true, machine.fs_peak_bw);
}

FsPhase model_file_reads(const MachineConfig& machine, std::span<const FileWriteLoad> files) {
    return model_files(machine, files, /*creating=*/false, machine.fs_read_bw);
}

FsPhase model_shared_write(const MachineConfig& machine, int nwriters,
                           std::uint64_t total_bytes, std::uint64_t max_writer_bytes,
                           bool hdf5_flavor) {
    FsPhase phase;
    if (nwriters <= 0) {
        return phase;
    }
    const auto total = static_cast<double>(total_bytes);
    // Phenomenological plateau model: lock/stripe-token conflicts keep one
    // shared file far below the filesystem's aggregate bandwidth; it ramps
    // up with writers, plateaus, then slowly degrades from contention.
    const auto p = static_cast<double>(nwriters);
    double eff_bw = machine.shared_plateau_bw * (p / (p + machine.shared_rampup_ranks)) /
                    (1.0 + p / machine.shared_file_p0);
    if (hdf5_flavor) {
        eff_bw *= 0.65;  // chunk/layout bookkeeping overhead
    }
    const double client = static_cast<double>(max_writer_bytes) / machine.client_bw;
    phase.data_seconds = std::max(total / eff_bw, client);
    // Offset negotiation / collective metadata: log-depth sync rounds, more
    // of them for the HDF5 flavor (dataset + attribute metadata).
    const double rounds = hdf5_flavor ? 6.0 : 2.0;
    phase.open_seconds =
        rounds * machine.message_latency * std::ceil(std::log2(std::max(2, nwriters))) +
        model_metadata_ops(machine, 1, /*creating=*/true);
    phase.seconds = phase.open_seconds + phase.data_seconds;
    return phase;
}

FsPhase model_shared_read(const MachineConfig& machine, int nreaders,
                          std::uint64_t total_bytes, std::uint64_t max_reader_bytes,
                          bool hdf5_flavor) {
    FsPhase phase;
    if (nreaders <= 0) {
        return phase;
    }
    const auto total = static_cast<double>(total_bytes);
    // Reads contend less than writes (no lock conversion), but one shared
    // file still plateaus well below the aggregate read bandwidth.
    const auto p = static_cast<double>(nreaders);
    double eff_bw = 2.0 * machine.shared_plateau_bw *
                    (p / (p + machine.shared_rampup_ranks)) /
                    (1.0 + p / (2.0 * machine.shared_file_p0));
    if (hdf5_flavor) {
        eff_bw *= 0.75;
    }
    const double client = static_cast<double>(max_reader_bytes) / machine.client_bw;
    phase.data_seconds = std::max(total / eff_bw, client);
    phase.open_seconds =
        (hdf5_flavor ? 3.0 : 1.0) * machine.message_latency *
            std::ceil(std::log2(std::max(2, nreaders))) +
        model_metadata_ops(machine, 1, /*creating=*/false);
    phase.seconds = phase.open_seconds + phase.data_seconds;
    return phase;
}

}  // namespace bat::simio
