#include "simio/calibrate.hpp"

#include <chrono>

#include "core/bat_builder.hpp"
#include "core/bat_file.hpp"
#include "workloads/uniform.hpp"

namespace bat::simio {

Calibration calibrate_bat_build(std::size_t n, std::size_t nattrs, std::uint64_t seed) {
    const Box box({0, 0, 0}, {1, 1, 1});
    ParticleSet particles = make_uniform_particles(box, n, nattrs, seed);
    const std::uint64_t raw_bytes = particles.payload_bytes();

    const auto t0 = std::chrono::steady_clock::now();
    const BatData bat = build_bat(std::move(particles), BatConfig{});
    const double build_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    Calibration cal;
    if (build_s > 0) {
        cal.bat_build_bps = static_cast<double>(raw_bytes) / build_s;
    }
    const std::vector<std::byte> bytes = serialize_bat(bat);
    const BatSizeStats stats = bat_size_stats(bat, bytes.size());
    cal.layout_overhead = stats.overhead_fraction();
    return cal;
}

}  // namespace bat::simio
