#include "core/bat_builder.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>

#include "core/karras.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/morton.hpp"
#include "util/radix_sort.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace bat {

// The binning kernels in util/simd.hpp are specialized for this bin count.
static_assert(kBitmapBins == simd::kBinCount);

int bitmap_bin(double v, double lo, double hi) {
    if (hi <= lo) {
        return 0;
    }
    const double t = (v - lo) / (hi - lo);
    const int bin = static_cast<int>(t * kBitmapBins);
    return std::clamp(bin, 0, kBitmapBins - 1);
}

std::uint32_t bitmap_for_range(double lo, double hi, double range_lo, double range_hi) {
    if (hi < range_lo || lo > range_hi) {
        return 0;
    }
    if (range_hi <= range_lo) {
        // Degenerate attribute range: everything lives in bin 0.
        return 1u;
    }
    const int b0 = bitmap_bin(std::max(lo, range_lo), range_lo, range_hi);
    const int b1 = bitmap_bin(std::min(hi, range_hi), range_lo, range_hi);
    std::uint32_t bits = 0;
    for (int b = b0; b <= b1; ++b) {
        bits |= 1u << b;
    }
    return bits;
}

BinEdges equal_width_edges(double lo, double hi) {
    BinEdges edges(kBitmapBins + 1);
    const double width = hi > lo ? (hi - lo) / kBitmapBins : 0.0;
    for (int b = 0; b <= kBitmapBins; ++b) {
        edges[static_cast<std::size_t>(b)] = lo + b * width;
    }
    edges.back() = hi;  // avoid rounding the last edge below the max
    return edges;
}

BinEdges equal_depth_edges(std::span<const double> values, std::size_t max_sample) {
    if (values.empty()) {
        return equal_width_edges(0.0, 0.0);
    }
    const std::size_t stride = values.size() > max_sample
                                   ? (values.size() + max_sample - 1) / max_sample
                                   : 1;
    std::vector<double> sample;
    sample.reserve(values.size() / stride + 1);
    for (std::size_t i = 0; i < values.size(); i += stride) {
        sample.push_back(values[i]);
    }
    // Constant input (and the single-sample case): every quantile is the
    // same value, so skip selection entirely. minmax_f64 canonicalizes
    // -0.0 to +0.0 identically in every dispatch tier.
    double lo = 0.0;
    double hi = 0.0;
    simd::minmax_f64(sample.data(), sample.size(), &lo, &hi);
    if (lo == hi) {
        return equal_width_edges(lo, hi);
    }
    // The edges only need the 33 quantile order statistics, not a fully
    // sorted sample: select them in ascending order with nth_element, each
    // selection restricted to the suffix the previous one partitioned.
    std::array<std::size_t, kBitmapBins + 1> wanted;
    for (int b = 0; b <= kBitmapBins; ++b) {
        wanted[static_cast<std::size_t>(b)] = std::min(
            sample.size() - 1, static_cast<std::size_t>(b) * sample.size() / kBitmapBins);
    }
    std::size_t prev = 0;
    bool first = true;
    for (const std::size_t idx : wanted) {
        if (!first && idx <= prev) {
            continue;  // duplicate order statistic, already in place
        }
        const auto begin = first ? std::ptrdiff_t{0} : static_cast<std::ptrdiff_t>(prev) + 1;
        std::nth_element(sample.begin() + begin,
                         sample.begin() + static_cast<std::ptrdiff_t>(idx), sample.end());
        prev = idx;
        first = false;
    }
    BinEdges edges(kBitmapBins + 1);
    for (int b = 0; b <= kBitmapBins; ++b) {
        edges[static_cast<std::size_t>(b)] = sample[wanted[static_cast<std::size_t>(b)]];
    }
    edges.front() = sample.front();
    edges.back() = sample.back();
    // Quantiles of low-cardinality data can repeat; keep edges monotone.
    for (int b = 1; b <= kBitmapBins; ++b) {
        edges[static_cast<std::size_t>(b)] =
            std::max(edges[static_cast<std::size_t>(b)],
                     edges[static_cast<std::size_t>(b - 1)]);
    }
    return edges;
}

int bin_of(double v, const BinEdges& edges) {
    BAT_CHECK(edges.size() == kBitmapBins + 1);
    // First bin whose upper edge exceeds v; degenerate (empty) bins are
    // skipped by upper_bound's semantics.
    const auto it = std::upper_bound(edges.begin() + 1, edges.end() - 1, v);
    return static_cast<int>(it - (edges.begin() + 1));
}

std::uint32_t bitmap_for_range(double lo, double hi, const BinEdges& edges) {
    BAT_CHECK(edges.size() == kBitmapBins + 1);
    if (hi < edges.front() || lo > edges.back()) {
        return 0;
    }
    const int b0 = bin_of(std::max(lo, edges.front()), edges);
    const int b1 = bin_of(std::min(hi, edges.back()), edges);
    std::uint32_t bits = 0;
    for (int b = b0; b <= b1; ++b) {
        bits |= 1u << b;
    }
    return bits;
}

std::uint32_t BatData::root_bitmap(std::size_t a) const {
    BAT_CHECK(a < num_attrs());
    if (shallow_nodes.empty()) {
        return 0;
    }
    return shallow_bitmaps[a];  // node 0 is the shallow root
}

namespace {

/// One particle position plus its Morton rank, the treelet builds' working
/// layout: the k-d recursion permutes these 16-byte records in place, so
/// every median select, bounds scan, and LOD swap touches contiguous
/// cache-resident memory instead of gathering through an index indirection.
/// `rank` starts as the identity; after the build, the record sequence IS
/// the final layout and rank recovers the permutation.
struct PosRecord {
    float p[3];
    std::uint32_t rank;
};
static_assert(sizeof(PosRecord) == 16);

/// Working state shared by the build steps.
struct BuildContext {
    const BatConfig& config;
    std::span<PosRecord> recs;  // Morton-ordered, permuted by treelet builds
    Box bounds;

    Vec3 pos(std::uint32_t ordered_index) const {
        const PosRecord& r = recs[ordered_index];
        return {r.p[0], r.p[1], r.p[2]};
    }
};

/// Tight bounds of the ordered range [lo, hi). The records are contiguous,
/// so this is a strided vector min/max (simd::minmax_pos4 canonicalizes
/// -0.0 identically in every dispatch tier).
Box range_bounds(const BuildContext& ctx, std::uint32_t lo, std::uint32_t hi) {
    BAT_CHECK(hi > lo);
    float mn[3];
    float mx[3];
    simd::minmax_pos4(ctx.recs[lo].p, hi - lo, mn, mx);
    Box b;
    b.lower = {mn[0], mn[1], mn[2]};
    b.upper = {mx[0], mx[1], mx[2]};
    return b;
}

/// Stratified sampling of `k` LOD particles from the ordered (spatially
/// coherent) range [lo, hi): one sample per stratum, swapped to the front
/// of the range (paper §III-C2 — subsets are taken, never duplicated).
void sample_lod(BuildContext& ctx, std::uint32_t lo, std::uint32_t hi, std::uint32_t k,
                Pcg32& rng) {
    const std::uint64_t n = hi - lo;
    for (std::uint32_t j = 0; j < k; ++j) {
        const auto s0 = static_cast<std::uint32_t>(lo + j * n / k);
        const auto s1 = static_cast<std::uint32_t>(lo + (j + 1) * n / k);
        const std::uint32_t begin = std::max(s0, lo + j);
        BAT_CHECK(begin < s1);
        const std::uint32_t pick = begin + rng.next_bounded(s1 - begin);
        std::swap(ctx.recs[lo + j], ctx.recs[pick]);
    }
}

struct TreeletBuilder {
    BuildContext& ctx;
    Treelet& treelet;
    Pcg32 rng;

    /// Build the node over ordered range [lo, hi) at `depth`; returns the
    /// node's index. Preorder: the left child immediately follows.
    std::int32_t build(std::uint32_t lo, std::uint32_t hi, int depth) {
        const auto index = static_cast<std::int32_t>(treelet.nodes.size());
        treelet.nodes.push_back(TreeletNode{});
        treelet.max_depth = std::max(treelet.max_depth, depth);
        const std::uint32_t n = hi - lo;
        TreeletNode node;
        node.start = lo - treelet.first_particle;
        node.count = n;

        // Leaf: small enough, or too small to both sample LOD particles and
        // still feed two children.
        const auto leaf_limit = static_cast<std::uint32_t>(ctx.config.max_leaf_size);
        const auto lod = static_cast<std::uint32_t>(ctx.config.lod_per_inner);
        if (n <= leaf_limit || n < lod + 2) {
            node.own_count = n;
            node.right_child = -1;
            treelet.nodes[static_cast<std::size_t>(index)] = node;
            return index;
        }

        // Inner node: set aside the LOD particles, then median-split the
        // remainder along the longest axis of their bounds.
        const std::uint32_t k = std::min(lod, n - 2);
        sample_lod(ctx, lo, hi, k, rng);
        node.own_count = k;

        const std::uint32_t rest_lo = lo + k;
        const Box rest_bounds = range_bounds(ctx, rest_lo, hi);
        const int axis = rest_bounds.longest_axis();
        const std::uint32_t mid = rest_lo + (hi - rest_lo) / 2;
        std::nth_element(ctx.recs.begin() + rest_lo, ctx.recs.begin() + mid,
                         ctx.recs.begin() + hi,
                         [axis](const PosRecord& a, const PosRecord& b) {
                             return a.p[axis] < b.p[axis];
                         });
        node.axis = static_cast<std::uint8_t>(axis);
        node.split = ctx.recs[mid].p[axis];

        const std::int32_t left = build(rest_lo, mid, depth + 1);
        BAT_CHECK(left == index + 1);
        node.right_child = build(mid, hi, depth + 1);
        treelet.nodes[static_cast<std::size_t>(index)] = node;
        return index;
    }
};

/// Compute per-node bitmaps for one treelet. Nodes are preorder so children
/// always have larger indices: a reverse sweep sees children before parents.
/// Every particle is owned by exactly one node (LOD samples by their inner
/// node, the rest by leaves), so the bins of the treelet's whole contiguous
/// attribute span are computed once with the vectorized edge-compare kernel
/// and the per-node OR just consumes the precomputed u8 bins.
void compute_treelet_bitmaps(const ParticleSet& particles, Treelet& treelet,
                             std::span<const BinEdges> edges) {
    const std::size_t nattrs = edges.size();
    treelet.bitmaps.assign(treelet.nodes.size() * nattrs, 0);
    if (nattrs == 0) {
        return;
    }
    std::vector<std::uint8_t> bins(treelet.num_particles);
    for (std::size_t a = 0; a < nattrs; ++a) {
        const double* values = particles.attr(a).data() + treelet.first_particle;
        simd::bin_values_batch(values, treelet.num_particles, edges[a].data(), bins.data());
        for (std::size_t i = treelet.nodes.size(); i-- > 0;) {
            const TreeletNode& node = treelet.nodes[i];
            // Bits of the node's own points (all points for leaves, the LOD
            // samples for inner nodes), then the children's OR.
            std::uint32_t bm = 0;
            for (std::uint32_t p = node.start; p < node.start + node.own_count; ++p) {
                bm |= 1u << bins[p];
            }
            if (!node.is_leaf()) {
                const std::size_t l = i + 1;
                const auto r = static_cast<std::size_t>(node.right_child);
                bm |= treelet.bitmaps[l * nattrs + a] | treelet.bitmaps[r * nattrs + a];
            }
            treelet.bitmaps[i * nattrs + a] = bm;
        }
    }
}

}  // namespace

BatBuildTimings& BatBuildTimings::operator+=(const BatBuildTimings& o) {
    edges += o.edges;
    encode += o.encode;
    sort += o.sort;
    treelets += o.treelets;
    reorder += o.reorder;
    bitmaps += o.bitmaps;
    return *this;
}

BatBuildTimings BatBuildTimings::max(const BatBuildTimings& a, const BatBuildTimings& b) {
    BatBuildTimings m;
    m.edges = std::max(a.edges, b.edges);
    m.encode = std::max(a.encode, b.encode);
    m.sort = std::max(a.sort, b.sort);
    m.treelets = std::max(a.treelets, b.treelets);
    m.reorder = std::max(a.reorder, b.reorder);
    m.bitmaps = std::max(a.bitmaps, b.bitmaps);
    return m;
}

BatData build_bat(ParticleSet particles, const BatConfig& config, ThreadPool* pool,
                  BatBuildTimings* timings) {
    BAT_CHECK(config.subprefix_bits >= 1 && config.subprefix_bits <= 30);
    BAT_CHECK(config.lod_per_inner >= 1);
    BAT_CHECK(config.max_leaf_size >= 1);

    BatData bat;
    bat.config = config;
    const std::size_t n = particles.count();
    const std::size_t nattrs = particles.num_attrs();
    auto accum = [timings](double BatBuildTimings::*field) -> double* {
        return timings != nullptr ? &(timings->*field) : nullptr;
    };

    // ---- Attribute range/edge scans (independent per attribute) -----------
    {
        obs::PhaseSpan span("bat.edges", accum(&BatBuildTimings::edges));
        bat.attr_ranges.resize(nattrs);
        bat.attr_edges.resize(nattrs);
        auto attr_scan = [&](std::size_t a) {
            bat.attr_ranges[a] = particles.attr_range(a);
            bat.attr_edges[a] =
                config.binning == BinningScheme::equal_depth
                    ? equal_depth_edges(particles.attr(a))
                    : equal_width_edges(bat.attr_ranges[a].first, bat.attr_ranges[a].second);
        };
        if (pool != nullptr && pool->num_threads() > 0) {
            pool->parallel_for(0, nattrs, attr_scan, 1);
        } else {
            for (std::size_t a = 0; a < nattrs; ++a) {
                attr_scan(a);
            }
        }
    }
    if (n == 0) {
        bat.particles = std::move(particles);
        return bat;
    }

    // ---- Morton encode ----------------------------------------------------
    // Deplane the interleaved positions into SoA coordinate planes once,
    // take the bounds with the vectorized min/max scan, and batch-encode
    // whole plane spans (BMI2 pdep spread + AVX2 quantize where available).
    constexpr std::size_t kGrain = std::size_t{1} << 14;
    std::vector<float> xs(n);
    std::vector<float> ys(n);
    std::vector<float> zs(n);
    std::vector<std::uint64_t> codes(n);
    {
        obs::PhaseSpan span("bat.encode", accum(&BatBuildTimings::encode));
        particles.deplane_positions(xs.data(), ys.data(), zs.data(), pool);
        simd::minmax_f32(xs.data(), n, &bat.bounds.lower.x, &bat.bounds.upper.x);
        simd::minmax_f32(ys.data(), n, &bat.bounds.lower.y, &bat.bounds.upper.y);
        simd::minmax_f32(zs.data(), n, &bat.bounds.lower.z, &bat.bounds.upper.z);
        parallel_ranges(pool, n, kGrain, [&](std::size_t lo, std::size_t hi) {
            morton_encode_positions(xs.data() + lo, ys.data() + lo, zs.data() + lo,
                                    hi - lo, bat.bounds, codes.data() + lo);
        });
    }

    // ---- Morton sort ------------------------------------------------------
    // Parallel LSD radix sort (stable, ties broken by original index)
    // replacing the serial comparison sort.
    std::vector<std::uint32_t> order;
    {
        obs::PhaseSpan span("bat.sort", accum(&BatBuildTimings::sort));
        order = radix_sort_order(codes, pool);
    }

    obs::PhaseSpan treelet_span("bat.treelets", accum(&BatBuildTimings::treelets));

    // Gather positions and codes into Morton order, positions as 16-byte
    // {x, y, z, rank} records: every later access (subprefix merge, treelet
    // bounds, k-d medians, LOD swaps) then runs over contiguous memory —
    // this is the only pass that gathers through the sort permutation.
    std::vector<PosRecord> recs(n);
    std::vector<std::uint64_t> sorted_codes(n);
    parallel_ranges(pool, n, kGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const std::uint32_t src = order[i];
            recs[i] = PosRecord{{xs[src], ys[src], zs[src]}, static_cast<std::uint32_t>(i)};
            sorted_codes[i] = codes[src];
        }
    });
    std::vector<float>().swap(xs);
    std::vector<float>().swap(ys);
    std::vector<float>().swap(zs);
    std::vector<std::uint64_t>().swap(codes);

    // ---- Shallow tree over merged subprefixes (§III-C1) -------------------
    int subprefix_bits = config.subprefix_bits;
    if (config.auto_subprefix) {
        const double want_treelets = std::max(
            1.0, static_cast<double>(n) /
                     static_cast<double>(std::max(1, config.target_treelet_particles)));
        const int bits = static_cast<int>(std::ceil(std::log2(want_treelets)));
        subprefix_bits = std::clamp(bits, 1, config.subprefix_bits);
    }
    bat.config.subprefix_bits = subprefix_bits;
    const int shift = kMortonBits - subprefix_bits;
    std::vector<std::uint64_t> unique_prefixes;
    std::vector<std::uint32_t> range_begin;  // per unique prefix
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t prefix = sorted_codes[i] >> shift;
        if (unique_prefixes.empty() || unique_prefixes.back() != prefix) {
            unique_prefixes.push_back(prefix);
            range_begin.push_back(static_cast<std::uint32_t>(i));
        }
    }
    range_begin.push_back(static_cast<std::uint32_t>(n));
    std::vector<std::uint64_t>().swap(sorted_codes);

    const RadixTree radix = build_radix_tree(unique_prefixes, subprefix_bits, pool);

    // ---- Treelet builds (§III-C2) -----------------------------------------
    // The builds permute the Morton-ordered records in place; afterwards the
    // record sequence is the final layout and recs[i].rank composes with the
    // sort to give the original index. The record values are exactly the
    // value sequences the original index-gathering build saw, so the k-d
    // recursion (nth_element, LOD swaps) produces a byte-identical tree.
    const std::size_t num_treelets = unique_prefixes.size();
    bat.treelets.resize(num_treelets);
    BuildContext ctx{config, recs, bat.bounds};
    auto build_treelet = [&](std::size_t t) {
        Treelet& treelet = bat.treelets[t];
        treelet.first_particle = range_begin[t];
        treelet.num_particles = range_begin[t + 1] - range_begin[t];
        treelet.bounds = range_bounds(ctx, range_begin[t], range_begin[t + 1]);
        TreeletBuilder builder{ctx, treelet, Pcg32(mix_seed(config.seed, t))};
        builder.build(range_begin[t], range_begin[t + 1], 0);
    };
    // One task per treelet (grain 1) drowns tiny-treelet workloads in
    // per-task overhead; ~4 chunks per participant amortizes it while still
    // load-balancing the skewed treelet sizes.
    const std::size_t treelet_grain =
        pool != nullptr && pool->num_threads() > 0
            ? std::max<std::size_t>(1, num_treelets / (4 * (pool->num_threads() + 1)))
            : 1;
    if (pool != nullptr && pool->num_threads() > 0) {
        pool->parallel_for(0, num_treelets, build_treelet, treelet_grain);
    } else {
        for (std::size_t t = 0; t < num_treelets; ++t) {
            build_treelet(t);
        }
    }
    treelet_span.close();

    // ---- Final particle order ---------------------------------------------
    {
        obs::PhaseSpan span("bat.reorder", accum(&BatBuildTimings::reorder));
        // Attributes gather through the composed permutation
        // final[i] = original[order[recs[i].rank]]; positions come straight
        // out of the already-permuted records (a sequential copy).
        std::vector<std::uint32_t> final_order(n);
        parallel_ranges(pool, n, kGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                final_order[i] = order[recs[i].rank];
            }
        });
        particles.reorder_attrs(final_order, pool);
        float* pos = particles.positions_mut().data();
        parallel_ranges(pool, n, kGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                pos[3 * i] = recs[i].p[0];
                pos[3 * i + 1] = recs[i].p[1];
                pos[3 * i + 2] = recs[i].p[2];
            }
        });
        bat.particles = std::move(particles);
    }

    // ---- Bitmaps ------------------------------------------------------------
    obs::PhaseSpan bitmap_span("bat.bitmaps", accum(&BatBuildTimings::bitmaps));
    auto bitmap_pass = [&](std::size_t t) {
        compute_treelet_bitmaps(bat.particles, bat.treelets[t], bat.attr_edges);
    };
    if (pool != nullptr && pool->num_threads() > 0) {
        pool->parallel_for(0, num_treelets, bitmap_pass, treelet_grain);
    } else {
        for (std::size_t t = 0; t < num_treelets; ++t) {
            bitmap_pass(t);
        }
    }
    if (config.hash_treelets) {
        // Content hashes for delta detection: cover exactly the per-treelet
        // payload serialize_bat writes (counts, depth, bounds, nodes,
        // bitmaps, positions, attribute values) so hash equality implies
        // byte-identical treelet blocks on disk.
        auto hash_pass = [&](std::size_t t) {
            Treelet& treelet = bat.treelets[t];
            std::uint64_t h = 0xcbf29ce484222325ull;
            // Word-wise multiply-xorshift mix: the hash only ever meets
            // hashes computed by this same code on the previous step (it is
            // never persisted), and byte-at-a-time FNV would make the hash
            // pass cost as much as the delta path saves on file writes.
            auto mix = [&h](const void* data, std::size_t bytes) {
                const auto* p = static_cast<const unsigned char*>(data);
                std::size_t i = 0;
                for (; i + 8 <= bytes; i += 8) {
                    std::uint64_t w;
                    std::memcpy(&w, p + i, 8);
                    h = (h ^ w) * 0x9e3779b97f4a7c15ull;
                    h ^= h >> 29;
                }
                if (i < bytes) {
                    std::uint64_t tail = 0;
                    std::memcpy(&tail, p + i, bytes - i);
                    h = (h ^ (tail + bytes)) * 0x9e3779b97f4a7c15ull;
                    h ^= h >> 29;
                }
            };
            mix(&treelet.num_particles, sizeof(treelet.num_particles));
            mix(&treelet.max_depth, sizeof(treelet.max_depth));
            mix(&treelet.bounds, sizeof(treelet.bounds));
            mix(treelet.nodes.data(), treelet.nodes.size() * sizeof(TreeletNode));
            mix(treelet.bitmaps.data(),
                treelet.bitmaps.size() * sizeof(std::uint32_t));
            const auto pos = bat.particles.positions().subspan(
                3 * treelet.first_particle, 3 * treelet.num_particles);
            mix(pos.data(), pos.size_bytes());
            for (std::size_t a = 0; a < nattrs; ++a) {
                const auto vals = bat.particles.attr(a).subspan(
                    treelet.first_particle, treelet.num_particles);
                mix(vals.data(), vals.size_bytes());
            }
            treelet.hash = h;
        };
        if (pool != nullptr && pool->num_threads() > 0) {
            pool->parallel_for(0, num_treelets, hash_pass, treelet_grain);
        } else {
            for (std::size_t t = 0; t < num_treelets; ++t) {
                hash_pass(t);
            }
        }
    }
    bitmap_span.close();

    // ---- Flatten the shallow tree to preorder -----------------------------
    // The radix tree uses split indices; we convert to a preorder node array
    // with regions decoded from the Morton prefixes.
    bat.shallow_nodes.clear();
    struct Frame {
        std::int32_t radix_index;
        bool is_leaf;
    };
    // Recursive flatten via explicit lambda recursion.
    auto flatten = [&](auto&& self, std::int32_t radix_index, bool is_leaf) -> std::int32_t {
        const auto index = static_cast<std::int32_t>(bat.shallow_nodes.size());
        bat.shallow_nodes.push_back(ShallowNode{});
        ShallowNode node;
        if (is_leaf) {
            node.treelet = radix_index;  // radix leaf i == treelet i
            node.right_child = -1;
            node.bounds = bat.treelets[static_cast<std::size_t>(radix_index)].bounds;
        } else {
            const RadixNode& rn = radix.internal[static_cast<std::size_t>(radix_index)];
            // The split bit position selects the k-d split axis (§III-C1).
            const int full_bit = kMortonBits - 1 - rn.prefix_len;
            node.axis = static_cast<std::uint8_t>(morton_bit_axis(full_bit));
            const std::int32_t left = self(self, rn.left, rn.left_is_leaf);
            BAT_CHECK(left == index + 1);
            node.right_child = self(self, rn.right, rn.right_is_leaf);
            // Node bounds: union of the children's (tight) bounds. The raw
            // Morton prefix region (subprefix_region) would also be valid
            // but looser; tight bounds prune spatial queries better.
            node.bounds = bat.shallow_nodes[static_cast<std::size_t>(left)].bounds;
            node.bounds.extend(
                bat.shallow_nodes[static_cast<std::size_t>(node.right_child)].bounds);
            node.split = node.bounds.center()[node.axis];
        }
        bat.shallow_nodes[static_cast<std::size_t>(index)] = node;
        return index;
    };
    if (num_treelets == 1) {
        flatten(flatten, 0, /*is_leaf=*/true);
    } else {
        flatten(flatten, radix.root, /*is_leaf=*/false);
    }

    // ---- Shallow-node bitmaps (children OR; reverse preorder sweep) -------
    bat.shallow_bitmaps.assign(bat.shallow_nodes.size() * nattrs, 0);
    for (std::size_t i = bat.shallow_nodes.size(); i-- > 0;) {
        const ShallowNode& node = bat.shallow_nodes[i];
        std::uint32_t* bm = bat.shallow_bitmaps.data() + i * nattrs;
        if (node.is_leaf()) {
            const Treelet& t = bat.treelets[static_cast<std::size_t>(node.treelet)];
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] = t.nodes.empty() ? 0 : t.bitmaps[a];  // treelet root
            }
        } else {
            const std::size_t l = i + 1;
            const auto r = static_cast<std::size_t>(node.right_child);
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] = bat.shallow_bitmaps[l * nattrs + a] |
                        bat.shallow_bitmaps[r * nattrs + a];
            }
        }
    }
    return bat;
}

}  // namespace bat
