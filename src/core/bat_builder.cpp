#include "core/bat_builder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/karras.hpp"
#include "util/check.hpp"
#include "util/morton.hpp"
#include "util/radix_sort.hpp"
#include "util/rng.hpp"

namespace bat {

int bitmap_bin(double v, double lo, double hi) {
    if (hi <= lo) {
        return 0;
    }
    const double t = (v - lo) / (hi - lo);
    const int bin = static_cast<int>(t * kBitmapBins);
    return std::clamp(bin, 0, kBitmapBins - 1);
}

std::uint32_t bitmap_for_range(double lo, double hi, double range_lo, double range_hi) {
    if (hi < range_lo || lo > range_hi) {
        return 0;
    }
    if (range_hi <= range_lo) {
        // Degenerate attribute range: everything lives in bin 0.
        return 1u;
    }
    const int b0 = bitmap_bin(std::max(lo, range_lo), range_lo, range_hi);
    const int b1 = bitmap_bin(std::min(hi, range_hi), range_lo, range_hi);
    std::uint32_t bits = 0;
    for (int b = b0; b <= b1; ++b) {
        bits |= 1u << b;
    }
    return bits;
}

BinEdges equal_width_edges(double lo, double hi) {
    BinEdges edges(kBitmapBins + 1);
    const double width = hi > lo ? (hi - lo) / kBitmapBins : 0.0;
    for (int b = 0; b <= kBitmapBins; ++b) {
        edges[static_cast<std::size_t>(b)] = lo + b * width;
    }
    edges.back() = hi;  // avoid rounding the last edge below the max
    return edges;
}

BinEdges equal_depth_edges(std::span<const double> values, std::size_t max_sample) {
    if (values.empty()) {
        return equal_width_edges(0.0, 0.0);
    }
    const std::size_t stride = values.size() > max_sample
                                   ? (values.size() + max_sample - 1) / max_sample
                                   : 1;
    std::vector<double> sample;
    sample.reserve(values.size() / stride + 1);
    for (std::size_t i = 0; i < values.size(); i += stride) {
        sample.push_back(values[i]);
    }
    std::sort(sample.begin(), sample.end());
    BinEdges edges(kBitmapBins + 1);
    for (int b = 0; b <= kBitmapBins; ++b) {
        const std::size_t idx = std::min(
            sample.size() - 1, b * sample.size() / kBitmapBins);
        edges[static_cast<std::size_t>(b)] = sample[idx];
    }
    edges.front() = sample.front();
    edges.back() = sample.back();
    // Quantiles of low-cardinality data can repeat; keep edges monotone.
    for (int b = 1; b <= kBitmapBins; ++b) {
        edges[static_cast<std::size_t>(b)] =
            std::max(edges[static_cast<std::size_t>(b)],
                     edges[static_cast<std::size_t>(b - 1)]);
    }
    return edges;
}

int bin_of(double v, const BinEdges& edges) {
    BAT_CHECK(edges.size() == kBitmapBins + 1);
    // First bin whose upper edge exceeds v; degenerate (empty) bins are
    // skipped by upper_bound's semantics.
    const auto it = std::upper_bound(edges.begin() + 1, edges.end() - 1, v);
    return static_cast<int>(it - (edges.begin() + 1));
}

std::uint32_t bitmap_for_range(double lo, double hi, const BinEdges& edges) {
    BAT_CHECK(edges.size() == kBitmapBins + 1);
    if (hi < edges.front() || lo > edges.back()) {
        return 0;
    }
    const int b0 = bin_of(std::max(lo, edges.front()), edges);
    const int b1 = bin_of(std::min(hi, edges.back()), edges);
    std::uint32_t bits = 0;
    for (int b = b0; b <= b1; ++b) {
        bits |= 1u << b;
    }
    return bits;
}

std::uint32_t BatData::root_bitmap(std::size_t a) const {
    BAT_CHECK(a < num_attrs());
    if (shallow_nodes.empty()) {
        return 0;
    }
    return shallow_bitmaps[a];  // node 0 is the shallow root
}

namespace {

/// Working state shared by the build steps.
struct BuildContext {
    const BatConfig& config;
    const ParticleSet& particles;  // original order
    std::span<std::uint32_t> order;
    Box bounds;

    Vec3 pos(std::uint32_t ordered_index) const {
        return particles.position(order[ordered_index]);
    }
};

/// Tight bounds of the ordered range [lo, hi).
Box range_bounds(const BuildContext& ctx, std::uint32_t lo, std::uint32_t hi) {
    Box b;
    for (std::uint32_t i = lo; i < hi; ++i) {
        b.extend(ctx.pos(i));
    }
    return b;
}

/// Stratified sampling of `k` LOD particles from the ordered (spatially
/// coherent) range [lo, hi): one sample per stratum, swapped to the front
/// of the range (paper §III-C2 — subsets are taken, never duplicated).
void sample_lod(BuildContext& ctx, std::uint32_t lo, std::uint32_t hi, std::uint32_t k,
                Pcg32& rng) {
    const std::uint64_t n = hi - lo;
    for (std::uint32_t j = 0; j < k; ++j) {
        const auto s0 = static_cast<std::uint32_t>(lo + j * n / k);
        const auto s1 = static_cast<std::uint32_t>(lo + (j + 1) * n / k);
        const std::uint32_t begin = std::max(s0, lo + j);
        BAT_CHECK(begin < s1);
        const std::uint32_t pick = begin + rng.next_bounded(s1 - begin);
        std::swap(ctx.order[lo + j], ctx.order[pick]);
    }
}

struct TreeletBuilder {
    BuildContext& ctx;
    Treelet& treelet;
    Pcg32 rng;

    /// Build the node over ordered range [lo, hi) at `depth`; returns the
    /// node's index. Preorder: the left child immediately follows.
    std::int32_t build(std::uint32_t lo, std::uint32_t hi, int depth) {
        const auto index = static_cast<std::int32_t>(treelet.nodes.size());
        treelet.nodes.push_back(TreeletNode{});
        treelet.max_depth = std::max(treelet.max_depth, depth);
        const std::uint32_t n = hi - lo;
        TreeletNode node;
        node.start = lo - treelet.first_particle;
        node.count = n;

        // Leaf: small enough, or too small to both sample LOD particles and
        // still feed two children.
        const auto leaf_limit = static_cast<std::uint32_t>(ctx.config.max_leaf_size);
        const auto lod = static_cast<std::uint32_t>(ctx.config.lod_per_inner);
        if (n <= leaf_limit || n < lod + 2) {
            node.own_count = n;
            node.right_child = -1;
            treelet.nodes[static_cast<std::size_t>(index)] = node;
            return index;
        }

        // Inner node: set aside the LOD particles, then median-split the
        // remainder along the longest axis of their bounds.
        const std::uint32_t k = std::min(lod, n - 2);
        sample_lod(ctx, lo, hi, k, rng);
        node.own_count = k;

        const std::uint32_t rest_lo = lo + k;
        const Box rest_bounds = range_bounds(ctx, rest_lo, hi);
        const int axis = rest_bounds.longest_axis();
        const std::uint32_t mid = rest_lo + (hi - rest_lo) / 2;
        std::nth_element(ctx.order.begin() + rest_lo, ctx.order.begin() + mid,
                         ctx.order.begin() + hi,
                         [this, axis](std::uint32_t a, std::uint32_t b) {
                             return ctx.particles.position(a)[axis] <
                                    ctx.particles.position(b)[axis];
                         });
        node.axis = static_cast<std::uint8_t>(axis);
        node.split = ctx.particles.position(ctx.order[mid])[axis];

        const std::int32_t left = build(rest_lo, mid, depth + 1);
        BAT_CHECK(left == index + 1);
        node.right_child = build(mid, hi, depth + 1);
        treelet.nodes[static_cast<std::size_t>(index)] = node;
        return index;
    }
};

/// Compute per-node bitmaps for one treelet. Nodes are preorder so children
/// always have larger indices: a reverse sweep sees children before parents.
void compute_treelet_bitmaps(const ParticleSet& particles, Treelet& treelet,
                             std::span<const BinEdges> edges) {
    const std::size_t nattrs = edges.size();
    treelet.bitmaps.assign(treelet.nodes.size() * nattrs, 0);
    for (std::size_t i = treelet.nodes.size(); i-- > 0;) {
        const TreeletNode& node = treelet.nodes[i];
        std::uint32_t* bm = treelet.bitmaps.data() + i * nattrs;
        // Bits of the node's own points (all points for leaves, the LOD
        // samples for inner nodes).
        const std::uint32_t begin = treelet.first_particle + node.start;
        for (std::uint32_t p = begin; p < begin + node.own_count; ++p) {
            for (std::size_t a = 0; a < nattrs; ++a) {
                const double v = particles.attr(a)[p];
                bm[a] |= 1u << bin_of(v, edges[a]);
            }
        }
        if (!node.is_leaf()) {
            const std::size_t l = i + 1;
            const auto r = static_cast<std::size_t>(node.right_child);
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] |= treelet.bitmaps[l * nattrs + a] | treelet.bitmaps[r * nattrs + a];
            }
        }
    }
}

}  // namespace

BatData build_bat(ParticleSet particles, const BatConfig& config, ThreadPool* pool) {
    BAT_CHECK(config.subprefix_bits >= 1 && config.subprefix_bits <= 30);
    BAT_CHECK(config.lod_per_inner >= 1);
    BAT_CHECK(config.max_leaf_size >= 1);

    BatData bat;
    bat.config = config;
    const std::size_t n = particles.count();
    const std::size_t nattrs = particles.num_attrs();

    // ---- Attribute range/edge scans (independent per attribute) -----------
    bat.attr_ranges.resize(nattrs);
    bat.attr_edges.resize(nattrs);
    auto attr_scan = [&](std::size_t a) {
        bat.attr_ranges[a] = particles.attr_range(a);
        bat.attr_edges[a] =
            config.binning == BinningScheme::equal_depth
                ? equal_depth_edges(particles.attr(a))
                : equal_width_edges(bat.attr_ranges[a].first, bat.attr_ranges[a].second);
    };
    if (pool != nullptr && pool->num_threads() > 0) {
        pool->parallel_for(0, nattrs, attr_scan, 1);
    } else {
        for (std::size_t a = 0; a < nattrs; ++a) {
            attr_scan(a);
        }
    }
    if (n == 0) {
        bat.particles = std::move(particles);
        return bat;
    }
    bat.bounds = particles.bounds();

    // ---- Morton sort ------------------------------------------------------
    // Parallel encode, then a parallel LSD radix sort (stable, ties broken
    // by original index) replacing the serial comparison sort — the
    // dominant cost of the build at large n.
    std::vector<std::uint64_t> codes(n);
    parallel_ranges(pool, n, std::size_t{1} << 14, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            codes[i] = morton_encode_position(particles.position(i), bat.bounds);
        }
    });
    std::vector<std::uint32_t> order = radix_sort_order(codes, pool);

    // ---- Shallow tree over merged subprefixes (§III-C1) -------------------
    int subprefix_bits = config.subprefix_bits;
    if (config.auto_subprefix) {
        const double want_treelets = std::max(
            1.0, static_cast<double>(n) /
                     static_cast<double>(std::max(1, config.target_treelet_particles)));
        const int bits = static_cast<int>(std::ceil(std::log2(want_treelets)));
        subprefix_bits = std::clamp(bits, 1, config.subprefix_bits);
    }
    bat.config.subprefix_bits = subprefix_bits;
    const int shift = kMortonBits - subprefix_bits;
    std::vector<std::uint64_t> unique_prefixes;
    std::vector<std::uint32_t> range_begin;  // per unique prefix
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t prefix = codes[order[i]] >> shift;
        if (unique_prefixes.empty() || unique_prefixes.back() != prefix) {
            unique_prefixes.push_back(prefix);
            range_begin.push_back(static_cast<std::uint32_t>(i));
        }
    }
    range_begin.push_back(static_cast<std::uint32_t>(n));

    const RadixTree radix = build_radix_tree(unique_prefixes, subprefix_bits, pool);

    // ---- Treelet builds (§III-C2) -----------------------------------------
    const std::size_t num_treelets = unique_prefixes.size();
    bat.treelets.resize(num_treelets);
    BuildContext ctx{config, particles, order, bat.bounds};
    auto build_treelet = [&](std::size_t t) {
        Treelet& treelet = bat.treelets[t];
        treelet.first_particle = range_begin[t];
        treelet.num_particles = range_begin[t + 1] - range_begin[t];
        treelet.bounds = range_bounds(ctx, range_begin[t], range_begin[t + 1]);
        TreeletBuilder builder{ctx, treelet, Pcg32(mix_seed(config.seed, t))};
        builder.build(range_begin[t], range_begin[t + 1], 0);
    };
    // One task per treelet (grain 1) drowns tiny-treelet workloads in
    // per-task overhead; ~4 chunks per participant amortizes it while still
    // load-balancing the skewed treelet sizes.
    const std::size_t treelet_grain =
        pool != nullptr && pool->num_threads() > 0
            ? std::max<std::size_t>(1, num_treelets / (4 * (pool->num_threads() + 1)))
            : 1;
    if (pool != nullptr && pool->num_threads() > 0) {
        pool->parallel_for(0, num_treelets, build_treelet, treelet_grain);
    } else {
        for (std::size_t t = 0; t < num_treelets; ++t) {
            build_treelet(t);
        }
    }

    // ---- Final particle order ---------------------------------------------
    particles.reorder(order, pool);
    bat.particles = std::move(particles);

    // ---- Bitmaps ------------------------------------------------------------
    auto bitmap_pass = [&](std::size_t t) {
        compute_treelet_bitmaps(bat.particles, bat.treelets[t], bat.attr_edges);
    };
    if (pool != nullptr && pool->num_threads() > 0) {
        pool->parallel_for(0, num_treelets, bitmap_pass, treelet_grain);
    } else {
        for (std::size_t t = 0; t < num_treelets; ++t) {
            bitmap_pass(t);
        }
    }

    // ---- Flatten the shallow tree to preorder -----------------------------
    // The radix tree uses split indices; we convert to a preorder node array
    // with regions decoded from the Morton prefixes.
    bat.shallow_nodes.clear();
    struct Frame {
        std::int32_t radix_index;
        bool is_leaf;
    };
    // Recursive flatten via explicit lambda recursion.
    auto flatten = [&](auto&& self, std::int32_t radix_index, bool is_leaf) -> std::int32_t {
        const auto index = static_cast<std::int32_t>(bat.shallow_nodes.size());
        bat.shallow_nodes.push_back(ShallowNode{});
        ShallowNode node;
        if (is_leaf) {
            node.treelet = radix_index;  // radix leaf i == treelet i
            node.right_child = -1;
            node.bounds = bat.treelets[static_cast<std::size_t>(radix_index)].bounds;
        } else {
            const RadixNode& rn = radix.internal[static_cast<std::size_t>(radix_index)];
            // The split bit position selects the k-d split axis (§III-C1).
            const int full_bit = kMortonBits - 1 - rn.prefix_len;
            node.axis = static_cast<std::uint8_t>(morton_bit_axis(full_bit));
            const std::int32_t left = self(self, rn.left, rn.left_is_leaf);
            BAT_CHECK(left == index + 1);
            node.right_child = self(self, rn.right, rn.right_is_leaf);
            // Node bounds: union of the children's (tight) bounds. The raw
            // Morton prefix region (subprefix_region) would also be valid
            // but looser; tight bounds prune spatial queries better.
            node.bounds = bat.shallow_nodes[static_cast<std::size_t>(left)].bounds;
            node.bounds.extend(
                bat.shallow_nodes[static_cast<std::size_t>(node.right_child)].bounds);
            node.split = node.bounds.center()[node.axis];
        }
        bat.shallow_nodes[static_cast<std::size_t>(index)] = node;
        return index;
    };
    if (num_treelets == 1) {
        flatten(flatten, 0, /*is_leaf=*/true);
    } else {
        flatten(flatten, radix.root, /*is_leaf=*/false);
    }

    // ---- Shallow-node bitmaps (children OR; reverse preorder sweep) -------
    bat.shallow_bitmaps.assign(bat.shallow_nodes.size() * nattrs, 0);
    for (std::size_t i = bat.shallow_nodes.size(); i-- > 0;) {
        const ShallowNode& node = bat.shallow_nodes[i];
        std::uint32_t* bm = bat.shallow_bitmaps.data() + i * nattrs;
        if (node.is_leaf()) {
            const Treelet& t = bat.treelets[static_cast<std::size_t>(node.treelet)];
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] = t.nodes.empty() ? 0 : t.bitmaps[a];  // treelet root
            }
        } else {
            const std::size_t l = i + 1;
            const auto r = static_cast<std::size_t>(node.right_child);
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] = bat.shallow_bitmaps[l * nattrs + a] |
                        bat.shallow_bitmaps[r * nattrs + a];
            }
        }
    }
    return bat;
}

}  // namespace bat
