#pragma once
// Top-level metadata file (paper §III-D, Fig 1d).
//
// After the aggregators write their BAT files, rank 0 populates a metadata
// file holding the Aggregation Tree, a reference to each leaf's file, and
// per-attribute information: the global value range, and each leaf's root
// bitmap remapped from the aggregator-local range to the global range.
// Inner-node bitmaps are merged bottom-up from the leaves, so readers can
// treat the whole data set as a single file supporting spatial and
// attribute queries and multiresolution reads.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/agg_tree.hpp"
#include "core/bat_query.hpp"

namespace bat {

/// Per-leaf summary an aggregator reports to rank 0 after writing its file.
struct LeafReport {
    int leaf_id = -1;
    std::uint64_t num_particles = 0;
    std::vector<std::pair<double, double>> ranges;  // aggregator-local, per attr
    std::vector<std::uint32_t> root_bitmaps;        // relative to local bin edges
    /// Per-attr local bin edges the bitmaps were computed with; when empty,
    /// equal-width edges over `ranges` are assumed.
    std::vector<BinEdges> edges;
    /// Incremental writes: when non-empty, this step did not write a new
    /// BAT for the leaf — the metadata should reference this prior step's
    /// file instead of the step's own leaf file name.
    std::string file_override;
    /// Base files the leaf's (possibly delta) BAT references; recorded in
    /// the .batmeta so tools can see a step's full file dependency set.
    std::vector<std::string> delta_bases;

    std::vector<std::byte> to_bytes() const;
    static LeafReport from_bytes(std::span<const std::byte> bytes);
    /// Edges for attribute `a` (synthesizing equal-width ones if absent).
    BinEdges edges_for(std::size_t a) const;
};

struct MetaLeaf {
    Box bounds;
    std::string file;  // path relative to the metadata file's directory
    std::uint64_t num_particles = 0;
    std::vector<std::pair<double, double>> local_ranges;  // per attr
    std::vector<std::uint32_t> bitmaps;                   // per attr, global range
    /// Back-references of an incremental step (v2): the prior-step BAT
    /// files this leaf's file borrows treelets from (empty for full
    /// writes). `file` itself may already be a prior step's file when the
    /// whole leaf was unchanged.
    std::vector<std::string> delta_bases;
};

class Metadata {
public:
    std::vector<AggNode> nodes;   // preorder; empty iff there are no leaves
    std::vector<MetaLeaf> leaves;
    std::vector<std::string> attr_names;
    std::vector<std::pair<double, double>> global_ranges;  // per attr
    std::vector<std::uint32_t> node_bitmaps;  // nodes.size() * num_attrs

    std::size_t num_attrs() const { return attr_names.size(); }
    std::uint64_t total_particles() const;

    /// Leaves that can contain points matching the box/attribute filters
    /// (attribute pruning via the global-range bitmaps; conservative).
    std::vector<int> query_leaves(const std::optional<Box>& box,
                                  std::span<const AttrFilter> filters = {}) const;

    std::vector<std::byte> to_bytes() const;
    static Metadata from_bytes(std::span<const std::byte> bytes);
    void save(const std::filesystem::path& path) const;
    static Metadata load(const std::filesystem::path& path);
};

/// Remap a 32-bit binned bitmap from a local value range onto the global
/// range: every local bin's value interval sets the global bins it overlaps
/// (conservative — never loses a set bin).
std::uint32_t remap_bitmap(std::uint32_t local_bits, std::pair<double, double> local_range,
                           std::pair<double, double> global_range);

/// Same, for arbitrary local bin edges (equal-depth binning support). The
/// global (metadata-level) bins are always equal-width over global_range.
std::uint32_t remap_bitmap(std::uint32_t local_bits, const BinEdges& local_edges,
                           std::pair<double, double> global_range);

/// Assemble the metadata on rank 0 from the aggregation and the leaf
/// reports (one per leaf, any order). `leaf_files[i]` is leaf i's file name.
Metadata build_metadata(const Aggregation& agg, std::vector<std::string> attr_names,
                        std::span<const LeafReport> reports,
                        std::span<const std::string> leaf_files);

}  // namespace bat
