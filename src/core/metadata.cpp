#include "core/metadata.hpp"

#include <algorithm>

#include "core/bat_builder.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/mmap_file.hpp"

namespace bat {

namespace {

constexpr std::uint32_t kMetaMagic = 0x4d544142;  // "BATM"
constexpr std::uint32_t kMetaVersion = 2;  // v2 added per-leaf delta_bases

void write_box(BufferWriter& w, const Box& b) {
    w.write(b.lower.x);
    w.write(b.lower.y);
    w.write(b.lower.z);
    w.write(b.upper.x);
    w.write(b.upper.y);
    w.write(b.upper.z);
}

Box read_box(BufferReader& r) {
    Box b;
    b.lower.x = r.read<float>();
    b.lower.y = r.read<float>();
    b.lower.z = r.read<float>();
    b.upper.x = r.read<float>();
    b.upper.y = r.read<float>();
    b.upper.z = r.read<float>();
    return b;
}

}  // namespace

std::vector<std::byte> LeafReport::to_bytes() const {
    BAT_CHECK(edges.empty() || edges.size() == ranges.size());
    BufferWriter w;
    w.write(static_cast<std::int32_t>(leaf_id));
    w.write(num_particles);
    w.write(static_cast<std::uint32_t>(ranges.size()));
    w.write(static_cast<std::uint8_t>(!edges.empty()));
    for (std::size_t a = 0; a < ranges.size(); ++a) {
        w.write(ranges[a].first);
        w.write(ranges[a].second);
        w.write(root_bitmaps[a]);
        if (!edges.empty()) {
            BAT_CHECK(edges[a].size() == kBitmapBins + 1);
            w.write_span(std::span<const double>(edges[a]));
        }
    }
    w.write_string(file_override);
    w.write(static_cast<std::uint32_t>(delta_bases.size()));
    for (const std::string& base : delta_bases) {
        w.write_string(base);
    }
    return w.take();
}

LeafReport LeafReport::from_bytes(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    LeafReport report;
    report.leaf_id = r.read<std::int32_t>();
    report.num_particles = r.read<std::uint64_t>();
    const auto nattrs = r.read<std::uint32_t>();
    const bool has_edges = r.read<std::uint8_t>() != 0;
    report.ranges.resize(nattrs);
    report.root_bitmaps.resize(nattrs);
    if (has_edges) {
        report.edges.resize(nattrs);
    }
    for (std::size_t a = 0; a < nattrs; ++a) {
        report.ranges[a].first = r.read<double>();
        report.ranges[a].second = r.read<double>();
        report.root_bitmaps[a] = r.read<std::uint32_t>();
        if (has_edges) {
            report.edges[a].resize(kBitmapBins + 1);
            r.read_into(std::span<double>(report.edges[a]));
        }
    }
    report.file_override = r.read_string();
    const auto nbases = r.read<std::uint32_t>();
    report.delta_bases.resize(nbases);
    for (std::uint32_t i = 0; i < nbases; ++i) {
        report.delta_bases[i] = r.read_string();
    }
    return report;
}

BinEdges LeafReport::edges_for(std::size_t a) const {
    if (a < edges.size()) {
        return edges[a];
    }
    return equal_width_edges(ranges[a].first, ranges[a].second);
}

std::uint32_t remap_bitmap(std::uint32_t local_bits, std::pair<double, double> local_range,
                           std::pair<double, double> global_range) {
    if (local_bits == 0) {
        return 0;
    }
    const auto [llo, lhi] = local_range;
    if (lhi <= llo) {
        // Degenerate local range: all local values equal llo.
        return bitmap_for_range(llo, llo, global_range.first, global_range.second);
    }
    const double width = (lhi - llo) / kBitmapBins;
    std::uint32_t out = 0;
    for (int b = 0; b < kBitmapBins; ++b) {
        if ((local_bits & (1u << b)) == 0) {
            continue;
        }
        const double bin_lo = llo + b * width;
        const double bin_hi = llo + (b + 1) * width;
        out |= bitmap_for_range(bin_lo, bin_hi, global_range.first, global_range.second);
    }
    return out;
}

std::uint32_t remap_bitmap(std::uint32_t local_bits, const BinEdges& local_edges,
                           std::pair<double, double> global_range) {
    if (local_bits == 0) {
        return 0;
    }
    BAT_CHECK(local_edges.size() == kBitmapBins + 1);
    std::uint32_t out = 0;
    for (int b = 0; b < kBitmapBins; ++b) {
        if ((local_bits & (1u << b)) == 0) {
            continue;
        }
        out |= bitmap_for_range(local_edges[static_cast<std::size_t>(b)],
                                local_edges[static_cast<std::size_t>(b + 1)],
                                global_range.first, global_range.second);
    }
    return out;
}

std::uint64_t Metadata::total_particles() const {
    std::uint64_t n = 0;
    for (const MetaLeaf& leaf : leaves) {
        n += leaf.num_particles;
    }
    return n;
}

std::vector<int> Metadata::query_leaves(const std::optional<Box>& box,
                                        std::span<const AttrFilter> filters) const {
    // Precompute query bitmaps relative to the global ranges.
    std::vector<std::uint32_t> query_bits;
    query_bits.reserve(filters.size());
    for (const AttrFilter& f : filters) {
        BAT_CHECK(f.attr < num_attrs());
        query_bits.push_back(bitmap_for_range(f.lo, f.hi, global_ranges[f.attr].first,
                                              global_ranges[f.attr].second));
    }
    std::vector<int> out;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const MetaLeaf& leaf = leaves[i];
        if (box && !leaf.bounds.overlaps(*box)) {
            continue;
        }
        bool match = true;
        for (std::size_t f = 0; f < filters.size(); ++f) {
            if ((leaf.bitmaps[filters[f].attr] & query_bits[f]) == 0) {
                match = false;
                break;
            }
        }
        if (match) {
            out.push_back(static_cast<int>(i));
        }
    }
    return out;
}

std::vector<std::byte> Metadata::to_bytes() const {
    const std::size_t nattrs = num_attrs();
    BufferWriter w;
    w.write(kMetaMagic);
    w.write(kMetaVersion);
    w.write(static_cast<std::uint32_t>(nattrs));
    w.write(static_cast<std::uint32_t>(nodes.size()));
    w.write(static_cast<std::uint32_t>(leaves.size()));
    for (std::size_t a = 0; a < nattrs; ++a) {
        w.write_string(attr_names[a]);
        w.write(global_ranges[a].first);
        w.write(global_ranges[a].second);
    }
    for (const AggNode& node : nodes) {
        write_box(w, node.bounds);
        w.write(static_cast<std::int32_t>(node.axis));
        w.write(node.split);
        w.write(static_cast<std::int32_t>(node.left));
        w.write(static_cast<std::int32_t>(node.right));
        w.write(static_cast<std::int32_t>(node.leaf_id));
    }
    for (const MetaLeaf& leaf : leaves) {
        write_box(w, leaf.bounds);
        w.write_string(leaf.file);
        w.write(leaf.num_particles);
        for (std::size_t a = 0; a < nattrs; ++a) {
            w.write(leaf.local_ranges[a].first);
            w.write(leaf.local_ranges[a].second);
            w.write(leaf.bitmaps[a]);
        }
        w.write(static_cast<std::uint32_t>(leaf.delta_bases.size()));
        for (const std::string& base : leaf.delta_bases) {
            w.write_string(base);
        }
    }
    w.write_span(std::span<const std::uint32_t>(node_bitmaps));
    return w.take();
}

Metadata Metadata::from_bytes(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    BAT_CHECK_MSG(r.read<std::uint32_t>() == kMetaMagic, "not a BAT metadata file");
    BAT_CHECK_MSG(r.read<std::uint32_t>() == kMetaVersion,
                  "unsupported metadata version");
    Metadata meta;
    const auto nattrs = r.read<std::uint32_t>();
    const auto nnodes = r.read<std::uint32_t>();
    const auto nleaves = r.read<std::uint32_t>();
    meta.attr_names.resize(nattrs);
    meta.global_ranges.resize(nattrs);
    for (std::size_t a = 0; a < nattrs; ++a) {
        meta.attr_names[a] = r.read_string();
        meta.global_ranges[a].first = r.read<double>();
        meta.global_ranges[a].second = r.read<double>();
    }
    meta.nodes.resize(nnodes);
    for (AggNode& node : meta.nodes) {
        node.bounds = read_box(r);
        node.axis = r.read<std::int32_t>();
        node.split = r.read<float>();
        node.left = r.read<std::int32_t>();
        node.right = r.read<std::int32_t>();
        node.leaf_id = r.read<std::int32_t>();
    }
    meta.leaves.resize(nleaves);
    for (MetaLeaf& leaf : meta.leaves) {
        leaf.bounds = read_box(r);
        leaf.file = r.read_string();
        leaf.num_particles = r.read<std::uint64_t>();
        leaf.local_ranges.resize(nattrs);
        leaf.bitmaps.resize(nattrs);
        for (std::size_t a = 0; a < nattrs; ++a) {
            leaf.local_ranges[a].first = r.read<double>();
            leaf.local_ranges[a].second = r.read<double>();
            leaf.bitmaps[a] = r.read<std::uint32_t>();
        }
        const auto nbases = r.read<std::uint32_t>();
        leaf.delta_bases.resize(nbases);
        for (std::uint32_t i = 0; i < nbases; ++i) {
            leaf.delta_bases[i] = r.read_string();
        }
    }
    meta.node_bitmaps.resize(static_cast<std::size_t>(nnodes) * nattrs);
    r.read_into(std::span<std::uint32_t>(meta.node_bitmaps));
    return meta;
}

void Metadata::save(const std::filesystem::path& path) const {
    write_file(path, to_bytes());
}

Metadata Metadata::load(const std::filesystem::path& path) {
    return from_bytes(read_file(path));
}

Metadata build_metadata(const Aggregation& agg, std::vector<std::string> attr_names,
                        std::span<const LeafReport> reports,
                        std::span<const std::string> leaf_files) {
    BAT_CHECK(reports.size() == agg.leaves.size());
    BAT_CHECK(leaf_files.size() == agg.leaves.size());
    Metadata meta;
    meta.attr_names = std::move(attr_names);
    const std::size_t nattrs = meta.attr_names.size();
    meta.nodes = agg.nodes;

    // Global attribute ranges: union of the aggregator-local ranges.
    meta.global_ranges.assign(nattrs, {0.0, 0.0});
    bool first = true;
    for (const LeafReport& report : reports) {
        BAT_CHECK(report.ranges.size() == nattrs);
        if (report.num_particles == 0) {
            continue;
        }
        for (std::size_t a = 0; a < nattrs; ++a) {
            if (first) {
                meta.global_ranges[a] = report.ranges[a];
            } else {
                meta.global_ranges[a].first =
                    std::min(meta.global_ranges[a].first, report.ranges[a].first);
                meta.global_ranges[a].second =
                    std::max(meta.global_ranges[a].second, report.ranges[a].second);
            }
        }
        first = false;
    }

    // Populate the leaves; each aggregator's bitmaps are remapped from its
    // local range onto the global range (§III-D).
    meta.leaves.resize(agg.leaves.size());
    for (const LeafReport& report : reports) {
        BAT_CHECK(report.leaf_id >= 0 &&
                  static_cast<std::size_t>(report.leaf_id) < agg.leaves.size());
        MetaLeaf& leaf = meta.leaves[static_cast<std::size_t>(report.leaf_id)];
        leaf.bounds = agg.leaves[static_cast<std::size_t>(report.leaf_id)].bounds;
        // Incremental steps that skipped the leaf entirely point the
        // metadata at the prior step's file (the .batmeta back-reference).
        leaf.file = !report.file_override.empty()
                        ? report.file_override
                        : leaf_files[static_cast<std::size_t>(report.leaf_id)];
        leaf.delta_bases = report.delta_bases;
        leaf.num_particles = report.num_particles;
        leaf.local_ranges = report.ranges;
        leaf.bitmaps.resize(nattrs);
        for (std::size_t a = 0; a < nattrs; ++a) {
            leaf.bitmaps[a] = remap_bitmap(report.root_bitmaps[a], report.edges_for(a),
                                           meta.global_ranges[a]);
        }
    }

    // Inner-node bitmaps merged bottom-up. Nodes are preorder (children
    // have larger indices), so a reverse sweep sees children first.
    meta.node_bitmaps.assign(meta.nodes.size() * nattrs, 0);
    for (std::size_t i = meta.nodes.size(); i-- > 0;) {
        const AggNode& node = meta.nodes[i];
        std::uint32_t* bm = meta.node_bitmaps.data() + i * nattrs;
        if (node.is_leaf()) {
            const MetaLeaf& leaf = meta.leaves[static_cast<std::size_t>(node.leaf_id)];
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] = leaf.bitmaps[a];
            }
        } else if (node.left >= 0) {
            const auto l = static_cast<std::size_t>(node.left);
            const auto r = static_cast<std::size_t>(node.right);
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] = meta.node_bitmaps[l * nattrs + a] | meta.node_bitmaps[r * nattrs + a];
            }
        }
        // Dead nodes (pruned empty leaves) keep zero bitmaps.
    }
    return meta;
}

}  // namespace bat
