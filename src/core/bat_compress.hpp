#pragma once
// Quantized BAT storage (paper §VII-A future work: "our BAT layout does not
// make use of compression or quantization, which would reduce memory use
// further").
//
// compress_bat() re-encodes a built BAT's particle payload with
//   - positions as 16-bit fixed point relative to each treelet's bounds
//     (error <= treelet extent / 65535 per axis), and
//   - attributes as 16-bit fixed point relative to the aggregator-local
//     attribute range (error <= range / 65535),
// shrinking the payload from 12 + 8*nattrs to 6 + 2*nattrs bytes per
// particle (~3.9x for the paper's 14-attribute schema). The tree structure,
// bitmaps, and dictionary are stored exactly as in the uncompressed format.
//
// The codec is intentionally a separate artifact (.batz) from the
// mmap-oriented .bat format: quantized payloads cannot be handed to query
// callbacks zero-copy, so decompress_bat() reconstructs an in-memory
// BatData, which supports the full query interface via BatDataView.
// Bitmaps remain valid after the round trip: quantized attribute values
// round to the nearest of 65536 levels, and each node's stored 32-bit
// bitmap is recomputed on decode so filtering stays exact with respect to
// the decoded values.

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/bat_builder.hpp"

namespace bat {

/// Serialize `bat` with quantized particle payloads.
std::vector<std::byte> compress_bat(const BatData& bat);

/// Reconstruct an in-memory BAT from compress_bat() output. Positions and
/// attribute values are the quantized (lossy) reconstructions; node
/// bitmaps are recomputed from the decoded values.
BatData decompress_bat(std::span<const std::byte> bytes);

void write_compressed_bat(const std::filesystem::path& path, const BatData& bat);
BatData read_compressed_bat(const std::filesystem::path& path);

/// Worst-case absolute reconstruction errors for a given BAT.
struct QuantizationError {
    Vec3 max_position_error;                 // per axis
    std::vector<double> max_attr_error;      // per attribute
};
QuantizationError quantization_error_bounds(const BatData& bat);

}  // namespace bat
