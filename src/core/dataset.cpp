#include "core/dataset.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bat {

Dataset::Dataset(const std::filesystem::path& metadata_path)
    : dir_(metadata_path.parent_path()), meta_(Metadata::load(metadata_path)) {}

Box Dataset::bounds() const {
    Box b;
    for (const MetaLeaf& leaf : meta_.leaves) {
        b.extend(leaf.bounds);
    }
    return b;
}

std::size_t Dataset::attr_index(const std::string& name) const {
    const auto it = std::find(meta_.attr_names.begin(), meta_.attr_names.end(), name);
    BAT_CHECK_MSG(it != meta_.attr_names.end(), "unknown attribute '" << name << "'");
    return static_cast<std::size_t>(it - meta_.attr_names.begin());
}

const BatFile& Dataset::leaf_file(int leaf_id) {
    BAT_CHECK(leaf_id >= 0 && static_cast<std::size_t>(leaf_id) < meta_.leaves.size());
    auto it = files_.find(leaf_id);
    if (it == files_.end()) {
        it = files_
                 .emplace(leaf_id,
                          std::make_unique<BatFile>(
                              dir_ / meta_.leaves[static_cast<std::size_t>(leaf_id)].file))
                 .first;
    }
    return *it->second;
}

std::uint64_t Dataset::query(const BatQuery& query, const QueryCallback& cb,
                             QueryStats* stats) {
    // QueryStats accumulate across query_bat calls, so one struct sums the
    // whole multi-leaf sweep.
    QueryStats total;
    std::uint64_t emitted = 0;
    for (int leaf : meta_.query_leaves(query.box, query.attr_filters)) {
        emitted += query_bat(leaf_file(leaf), query, cb, &total);
    }
    if (stats != nullptr) {
        *stats = total;
    }
    return emitted;
}

ParticleSet Dataset::collect(const BatQuery& query) {
    ParticleSet out(meta_.attr_names);
    this->query(query, [&out](Vec3 p, std::span<const double> attrs) {
        out.push_back(p, attrs);
    });
    return out;
}

}  // namespace bat
