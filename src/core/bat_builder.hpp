#pragma once
// Construction of the Binned Attribute Tree (BAT), the paper's
// multiresolution particle data layout (§III-C, Fig 2).
//
// The build runs on each aggregator after it has received its leaf's
// particles, in two parallel steps:
//   1. a data-parallel bottom-up build of a *shallow* k-d tree: particles
//      are Morton-sorted, their 12-bit code subprefixes merged, and a
//      Karras radix tree built over the merged subprefixes (§III-C1);
//   2. independent top-down builds of a median-split k-d "treelet" inside
//      each shallow leaf, setting aside a fixed number of stratified-sampled
//      LOD particles at every inner node so coarse representations need no
//      extra memory (§III-C2).
// Each leaf/inner node carries one 32-bit binned bitmap per attribute for
// attribute-filtered queries; bitmaps are deduplicated through a shared
// dictionary at compaction time (§III-C3, bat_file.hpp).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/particles.hpp"
#include "util/thread_pool.hpp"
#include "util/vec3.hpp"

namespace bat {

/// How attribute values are mapped to the 32 bitmap bins.
/// equal_width is the paper's standard binning (§III-C2); equal_depth
/// places bin edges at value quantiles (Wu et al. [43], the "more advanced
/// binning schemes" §VII-A suggests), which keeps bins useful for skewed
/// attribute distributions at the cost of computing quantiles per
/// aggregator.
enum class BinningScheme : std::uint32_t {
    equal_width = 0,
    equal_depth = 1,
};

struct BatConfig {
    /// Maximum Morton-code subprefix length merged to form the shallow tree
    /// (paper: 12 bits gives satisfactory leaf counts/sizes at the paper's
    /// multi-million-particle aggregator loads).
    int subprefix_bits = 12;
    /// When true (default), the subprefix is shortened for small inputs so
    /// treelets hold roughly `target_treelet_particles` each — without this,
    /// small aggregator files would shatter into thousands of near-empty
    /// 4 KB-aligned treelets and the layout overhead would explode.
    bool auto_subprefix = true;
    int target_treelet_particles = 4096;
    /// LOD particles set aside at each treelet inner node (paper evaluation
    /// uses 8).
    int lod_per_inner = 8;
    /// Maximum particles in a treelet leaf (paper evaluation uses 128).
    int max_leaf_size = 128;
    /// Seed for the stratified LOD sampling (deterministic builds).
    std::uint64_t seed = 0;
    /// Bitmap bin placement (see BinningScheme).
    BinningScheme binning = BinningScheme::equal_width;
    /// When true, compute a per-treelet content hash (Treelet::hash) over
    /// everything serialize_bat writes for the treelet. The incremental
    /// series writer compares these against the previous step to detect
    /// unchanged regions; standalone builds skip the pass.
    bool hash_treelets = false;
};

/// Number of bins in every attribute bitmap. The paper restricts bitmaps to
/// exactly 32 bits so they are cheap, fixed-size, and dictionary-friendly.
inline constexpr int kBitmapBins = 32;

/// Compute the bin of value `v` within [lo, hi] (degenerate ranges map to
/// bin 0).
int bitmap_bin(double v, double lo, double hi);

/// Bitmap with the bits of all bins overlapped by [lo, hi] set, relative to
/// the attribute range [range_lo, range_hi]. Empty intersection gives 0.
std::uint32_t bitmap_for_range(double lo, double hi, double range_lo, double range_hi);

/// Bin edges: kBitmapBins + 1 monotone non-decreasing values; bin b covers
/// [edges[b], edges[b+1]) (the last bin is closed above).
using BinEdges = std::vector<double>;

/// Equal-width edges over [lo, hi] (the paper's standard binning).
BinEdges equal_width_edges(double lo, double hi);

/// Equal-depth edges: bin boundaries at the value quantiles of `values`
/// (estimated from an evenly strided sample of at most `max_sample`).
BinEdges equal_depth_edges(std::span<const double> values,
                           std::size_t max_sample = 65536);

/// Bin of `v` under `edges` (clamped to [0, kBitmapBins-1]).
int bin_of(double v, const BinEdges& edges);

/// Bitmap with all bins whose interval can hold a value in [lo, hi] set.
std::uint32_t bitmap_for_range(double lo, double hi, const BinEdges& edges);

/// One node of a treelet, stored on disk verbatim. Children of an inner
/// node: left = own index + 1 (preorder), right = `right_child`.
/// Particles are treelet-local: a node's subtree occupies [start,
/// start+count); its *own* points (LOD samples for inner nodes, everything
/// for leaves) are the first `own_count` of the range.
struct TreeletNode {
    std::uint32_t start = 0;
    std::uint32_t count = 0;
    std::uint32_t own_count = 0;
    std::int32_t right_child = -1;  // -1 for leaves
    float split = 0.f;
    std::uint8_t axis = 0;
    std::uint8_t pad[3] = {0, 0, 0};

    bool is_leaf() const { return right_child < 0; }
};
static_assert(sizeof(TreeletNode) == 24);

/// One node of the shallow tree. Preorder: left child = own index + 1.
struct ShallowNode {
    Box bounds;                      // region from the Morton prefix
    std::int32_t right_child = -1;   // -1 for leaves
    std::int32_t treelet = -1;       // leaf: index of the treelet
    float split = 0.f;
    std::uint8_t axis = 0;
    std::uint8_t pad[3] = {0, 0, 0};

    bool is_leaf() const { return right_child < 0; }
};
static_assert(sizeof(ShallowNode) == 40);

/// In-memory treelet produced by the build (pre-compaction).
struct Treelet {
    Box bounds;                        // tight bounds of contained particles
    std::uint32_t first_particle = 0;  // offset into the BAT-wide order
    std::uint32_t num_particles = 0;
    std::int32_t max_depth = 0;        // deepest node depth (root = 0)
    std::vector<TreeletNode> nodes;
    /// Per node, per attribute: the node's 32-bit binned bitmap
    /// (nodes.size() * num_attrs entries, node-major).
    std::vector<std::uint32_t> bitmaps;
    /// Content hash (word-wise multiply-xorshift) over the treelet's
    /// serialized payload: counts, depth, bounds, nodes, bitmaps,
    /// positions, and attribute values. Only comparable against hashes
    /// from the same build (never persisted). Zero unless
    /// BatConfig::hash_treelets was set.
    std::uint64_t hash = 0;
};

/// The complete in-memory BAT for one aggregator, ready for compaction to
/// disk (bat_file.hpp) or direct in-transit queries.
struct BatData {
    BatConfig config;
    Box bounds;
    /// Particles reordered into the on-disk layout order (treelet by
    /// treelet; within a treelet, each node's own points come first,
    /// followed by the left then right subtrees).
    ParticleSet particles;
    std::vector<ShallowNode> shallow_nodes;
    /// Per shallow node, per attribute (node-major), pre-dictionary.
    std::vector<std::uint32_t> shallow_bitmaps;
    std::vector<Treelet> treelets;
    /// Aggregator-local (min, max) per attribute; bitmaps are binned
    /// relative to these (paper §III-C2).
    std::vector<std::pair<double, double>> attr_ranges;
    /// Per-attribute bitmap bin edges (kBitmapBins + 1 each; equal-width
    /// over the local range by default, quantiles for equal_depth).
    std::vector<BinEdges> attr_edges;

    std::size_t num_attrs() const { return particles.num_attrs(); }
    /// Root (whole-aggregator) bitmap of attribute `a`, used to populate
    /// the top-level metadata (§III-D).
    std::uint32_t root_bitmap(std::size_t a) const;
};

/// Wall-clock seconds per build_bat sub-phase (the bat.* trace spans),
/// aggregated across ranks like WritePhaseTimings.
struct BatBuildTimings {
    double edges = 0;     // attribute range + bin-edge scans
    double encode = 0;    // position deplane + batched Morton encode
    double sort = 0;      // radix sort of the Morton codes
    double treelets = 0;  // shallow tree + per-treelet k-d builds
    double reorder = 0;   // final gather into layout order
    double bitmaps = 0;   // per-node attribute bitmaps

    BatBuildTimings& operator+=(const BatBuildTimings& o);
    /// Component-wise max (for "slowest rank" reductions).
    static BatBuildTimings max(const BatBuildTimings& a, const BatBuildTimings& b);
};

/// Build the BAT over `particles` (consumed and reordered into the layout
/// order). `pool` parallelizes the shallow-tree and treelet builds. When
/// `timings` is given, per-sub-phase seconds are accumulated into it.
BatData build_bat(ParticleSet particles, const BatConfig& config, ThreadPool* pool = nullptr,
                  BatBuildTimings* timings = nullptr);

}  // namespace bat
