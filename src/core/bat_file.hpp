#pragma once
// BAT on-disk format and memory-mapped reader (paper §III-C3, Fig 2).
//
// Layout (little-endian):
//
//   [header]                fixed-size FileHeader
//   [attribute table]       per attr: length-prefixed name, f64 min, f64 max
//   [shallow tree]          ShallowNode[num_shallow_nodes], preorder
//   [shallow bitmap IDs]    u16[num_shallow_nodes * num_attrs]
//   [bitmap dictionary]     u32[dict_size] — unique bitmaps, shared by the
//                           shallow tree and every treelet; ID 0 is reserved
//                           for the all-ones bitmap (a conservative
//                           "matches anything" fallback)
//   [treelet directory]     TreeletDirEntry[num_treelets]
//   [treelets]              each aligned to a 4 KB page boundary:
//       u32 magic, u32 num_nodes, u32 num_points, u32 reserved
//       TreeletNode[num_nodes]
//       u16 bitmap_ids[num_nodes * num_attrs]
//       (pad to 4)  f32 positions[3 * num_points]
//       (pad to 8)  f64 attr values[num_points], one array per attribute
//
// The shallow tree and dictionary sit at the start of the file because they
// are touched by every query; treelets are page-aligned for fast mmap access
// (the paper's motivation for the 4 KB alignment).

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/bat_builder.hpp"
#include "util/mmap_file.hpp"

namespace bat {

inline constexpr std::uint32_t kBatMagic = 0x46544142;      // "BATF"
inline constexpr std::uint32_t kTreeletMagic = 0x544c5254;  // "TRLT"
inline constexpr std::uint32_t kBatVersion = 2;  // v2 added per-attr bin edges
inline constexpr std::size_t kTreeletAlignment = 4096;
/// Dictionary ID 0 always refers to the all-ones bitmap; it doubles as the
/// overflow fallback if a file ever exceeds 65535 unique bitmaps (queries
/// stay correct, only filtering efficiency degrades).
inline constexpr std::uint16_t kBitmapIdAllOnes = 0;

struct FileHeader {
    std::uint32_t magic = kBatMagic;
    std::uint32_t version = kBatVersion;
    std::uint64_t num_particles = 0;
    std::uint64_t shallow_nodes_offset = 0;
    std::uint64_t shallow_bitmap_ids_offset = 0;
    std::uint64_t dict_offset = 0;
    std::uint64_t treelet_dir_offset = 0;
    std::uint64_t file_size = 0;
    std::uint32_t num_attrs = 0;
    std::uint32_t subprefix_bits = 0;
    std::uint32_t lod_per_inner = 0;
    std::uint32_t max_leaf_size = 0;
    std::uint32_t num_shallow_nodes = 0;
    std::uint32_t dict_size = 0;
    std::uint32_t num_treelets = 0;
    std::uint32_t flags = 0;
    float bounds[6] = {0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(FileHeader) == 112);

struct TreeletDirEntry {
    std::uint64_t offset = 0;  // absolute file offset, 4 KB aligned
    std::uint32_t num_nodes = 0;
    std::uint32_t num_points = 0;
    float bounds[6] = {0, 0, 0, 0, 0, 0};
    std::int32_t max_depth = 0;
    std::uint32_t first_particle = 0;  // offset in the file-wide point order
};
static_assert(sizeof(TreeletDirEntry) == 48);

/// Serialize a built BAT into its on-disk byte layout.
std::vector<std::byte> serialize_bat(const BatData& bat);

/// Convenience: serialize and write to `path`.
void write_bat_file(const std::filesystem::path& path, const BatData& bat);

/// Size statistics of a serialized BAT, for the paper's §VI-B memory
/// overhead evaluation (layout overhead ≈ 0.9% of raw data).
struct BatSizeStats {
    std::uint64_t file_bytes = 0;
    std::uint64_t raw_particle_bytes = 0;  // 12 + 8*num_attrs per particle
    std::uint64_t overhead_bytes() const {
        return file_bytes > raw_particle_bytes ? file_bytes - raw_particle_bytes : 0;
    }
    double overhead_fraction() const {
        return raw_particle_bytes > 0
                   ? static_cast<double>(overhead_bytes()) /
                         static_cast<double>(raw_particle_bytes)
                   : 0.0;
    }
};
BatSizeStats bat_size_stats(const BatData& bat, std::uint64_t file_bytes);

/// View of one treelet's nodes, bitmaps, and particle payload. Produced by
/// BatFile (spans into the mapping) and by BatDataView (spans into the
/// in-memory build, for in-transit queries before/instead of writing —
/// paper §III-C3).
struct BatTreeletView {
    Box bounds;
    std::uint32_t num_points = 0;
    std::int32_t max_depth = 0;
    std::uint32_t first_particle = 0;
    std::span<const TreeletNode> nodes;
    std::span<const std::uint16_t> bitmap_ids;  // file-backed: dictionary IDs
    std::span<const std::uint32_t> raw_bitmaps; // in-memory: bitmaps directly
    std::span<const float> positions;           // xyz interleaved
    std::vector<std::span<const double>> attrs;

    Vec3 position(std::uint32_t i) const {
        return {positions[3 * i], positions[3 * i + 1], positions[3 * i + 2]};
    }
};

/// Memory-mapped, zero-copy view of a BAT file. All accessors return spans
/// into the mapping; the BatFile must outlive them.
class BatFile {
public:
    explicit BatFile(const std::filesystem::path& path);
    /// Parse from an in-memory buffer (used for in-transit queries and
    /// tests; the buffer must outlive the BatFile).
    explicit BatFile(std::span<const std::byte> bytes);

    std::uint64_t num_particles() const { return header_.num_particles; }
    std::size_t num_attrs() const { return attr_names_.size(); }
    Box bounds() const;
    const std::vector<std::string>& attr_names() const { return attr_names_; }
    std::pair<double, double> attr_range(std::size_t a) const { return attr_ranges_[a]; }
    /// Bitmap bin edges of attribute `a` (kBitmapBins + 1 values).
    const BinEdges& attr_edges(std::size_t a) const { return attr_edges_[a]; }
    const FileHeader& header() const { return header_; }

    std::span<const ShallowNode> shallow_nodes() const { return shallow_nodes_; }
    std::span<const std::uint32_t> dictionary() const { return dict_; }

    /// Bitmap of shallow node `i` for attribute `a` (dictionary resolved).
    std::uint32_t shallow_bitmap(std::size_t i, std::size_t a) const;

    using TreeletView = BatTreeletView;
    std::size_t num_treelets() const { return treelet_dir_.size(); }
    TreeletView treelet(std::size_t t) const;

    /// Bitmap of treelet node `node` for attribute `a`.
    std::uint32_t treelet_bitmap(const TreeletView& view, std::size_t node,
                                 std::size_t a) const;

private:
    void parse(std::span<const std::byte> bytes);

    MappedFile map_;  // empty when constructed from a buffer
    std::span<const std::byte> bytes_;
    FileHeader header_{};
    std::vector<std::string> attr_names_;
    std::vector<std::pair<double, double>> attr_ranges_;
    std::vector<BinEdges> attr_edges_;
    std::span<const ShallowNode> shallow_nodes_;
    std::span<const std::uint16_t> shallow_bitmap_ids_;
    std::span<const std::uint32_t> dict_;
    std::span<const TreeletDirEntry> treelet_dir_;
};

}  // namespace bat
