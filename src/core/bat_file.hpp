#pragma once
// BAT on-disk format and memory-mapped reader (paper §III-C3, Fig 2).
//
// Layout (little-endian):
//
//   [header]                fixed-size FileHeader
//   [attribute table]       per attr: length-prefixed name, f64 min, f64 max
//   [base file table]       only when flags & kBatFlagHasBases: u32 count,
//                           then length-prefixed file names (relative to the
//                           BAT's directory) that delta treelets reference
//   [shallow tree]          ShallowNode[num_shallow_nodes], preorder
//   [shallow bitmap IDs]    u16[num_shallow_nodes * num_attrs]
//   [bitmap dictionary]     u32[dict_size] — unique bitmaps, shared by the
//                           shallow tree and every treelet; ID 0 is reserved
//                           for the all-ones bitmap (a conservative
//                           "matches anything" fallback)
//   [treelet directory]     TreeletDirEntry[num_treelets]
//   [treelets]              each aligned to a 4 KB page boundary:
//       u32 magic, u32 num_nodes, u32 num_points, u32 reserved
//       TreeletNode[num_nodes]
//       u16 bitmap_ids[num_nodes * num_attrs]
//       (pad to 4)  f32 positions[3 * num_points]
//       (pad to 8)  f64 attr values[num_points], one array per attribute
//
// The shallow tree and dictionary sit at the start of the file because they
// are touched by every query; treelets are page-aligned for fast mmap access
// (the paper's motivation for the 4 KB alignment).
//
// v3 adds *delta treelets* for slowly-evolving time series: a directory
// entry whose `base_file >= 0` has no treelet block in this file — its
// payload is treelet `base_treelet` of the base-table file `base_file`,
// byte-identical to what a full rewrite would have stored. The series
// writer always points a reference at the file that physically holds the
// bytes (references are flattened, never chained through intermediate
// delta files), so resolution is one hop per treelet and the set of live
// base files is bounded by the keyframe interval.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/bat_builder.hpp"
#include "util/mmap_file.hpp"

namespace bat {

inline constexpr std::uint32_t kBatMagic = 0x46544142;      // "BATF"
inline constexpr std::uint32_t kTreeletMagic = 0x544c5254;  // "TRLT"
inline constexpr std::uint32_t kBatVersion = 3;  // v3 added delta treelets
/// FileHeader::flags bit: the file carries a base file table and may hold
/// directory entries that reference treelets stored in those base files.
inline constexpr std::uint32_t kBatFlagHasBases = 1u;
inline constexpr std::size_t kTreeletAlignment = 4096;
/// Dictionary ID 0 always refers to the all-ones bitmap; it doubles as the
/// overflow fallback if a file ever exceeds 65535 unique bitmaps (queries
/// stay correct, only filtering efficiency degrades).
inline constexpr std::uint16_t kBitmapIdAllOnes = 0;

struct FileHeader {
    std::uint32_t magic = kBatMagic;
    std::uint32_t version = kBatVersion;
    std::uint64_t num_particles = 0;
    std::uint64_t shallow_nodes_offset = 0;
    std::uint64_t shallow_bitmap_ids_offset = 0;
    std::uint64_t dict_offset = 0;
    std::uint64_t treelet_dir_offset = 0;
    std::uint64_t file_size = 0;
    std::uint32_t num_attrs = 0;
    std::uint32_t subprefix_bits = 0;
    std::uint32_t lod_per_inner = 0;
    std::uint32_t max_leaf_size = 0;
    std::uint32_t num_shallow_nodes = 0;
    std::uint32_t dict_size = 0;
    std::uint32_t num_treelets = 0;
    std::uint32_t flags = 0;
    float bounds[6] = {0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(FileHeader) == 112);

struct TreeletDirEntry {
    std::uint64_t offset = 0;  // absolute file offset, 4 KB aligned
    std::uint32_t num_nodes = 0;
    std::uint32_t num_points = 0;
    float bounds[6] = {0, 0, 0, 0, 0, 0};
    std::int32_t max_depth = 0;
    std::uint32_t first_particle = 0;  // offset in the file-wide point order
    /// v3 delta reference: when >= 0, this treelet's block is not stored in
    /// this file; its payload is treelet `base_treelet` of base-table file
    /// `base_file` (and `offset` is 0).
    std::int32_t base_file = -1;
    std::uint32_t base_treelet = 0;
};
static_assert(sizeof(TreeletDirEntry) == 56);

/// Reference of one treelet into a prior step's BAT file.
struct DeltaRef {
    std::int32_t base_file = -1;  // index into BatDeltaSpec::base_files
    std::uint32_t base_treelet = 0;
};

/// Instructions for an incremental serialize_bat: which treelets to write
/// by reference instead of inline. `refs` is either empty (write everything
/// inline) or one entry per treelet, with base_file == -1 marking inline
/// treelets.
struct BatDeltaSpec {
    std::vector<std::string> base_files;  // relative to the BAT's directory
    std::vector<DeltaRef> refs;
};

/// Serialize a built BAT into its on-disk byte layout. With a delta spec,
/// referenced treelets contribute only their 56-byte directory entry.
std::vector<std::byte> serialize_bat(const BatData& bat,
                                     const BatDeltaSpec* delta = nullptr);

/// Convenience: serialize and write to `path`.
void write_bat_file(const std::filesystem::path& path, const BatData& bat);

/// Size statistics of a serialized BAT, for the paper's §VI-B memory
/// overhead evaluation (layout overhead ≈ 0.9% of raw data).
struct BatSizeStats {
    std::uint64_t file_bytes = 0;
    std::uint64_t raw_particle_bytes = 0;  // 12 + 8*num_attrs per particle
    std::uint64_t overhead_bytes() const {
        return file_bytes > raw_particle_bytes ? file_bytes - raw_particle_bytes : 0;
    }
    double overhead_fraction() const {
        return raw_particle_bytes > 0
                   ? static_cast<double>(overhead_bytes()) /
                         static_cast<double>(raw_particle_bytes)
                   : 0.0;
    }
};
BatSizeStats bat_size_stats(const BatData& bat, std::uint64_t file_bytes);

/// View of one treelet's nodes, bitmaps, and particle payload. Produced by
/// BatFile (spans into the mapping) and by BatDataView (spans into the
/// in-memory build, for in-transit queries before/instead of writing —
/// paper §III-C3).
struct BatTreeletView {
    Box bounds;
    std::uint32_t num_points = 0;
    std::int32_t max_depth = 0;
    std::uint32_t first_particle = 0;
    std::span<const TreeletNode> nodes;
    std::span<const std::uint16_t> bitmap_ids;  // file-backed: dictionary IDs
    /// Dictionary the bitmap_ids index into. For a treelet resolved through
    /// a delta reference this is the *base* file's dictionary, so the view
    /// stays self-contained wherever it came from.
    std::span<const std::uint32_t> dict;
    std::span<const std::uint32_t> raw_bitmaps; // in-memory: bitmaps directly
    std::span<const float> positions;           // xyz interleaved
    std::vector<std::span<const double>> attrs;

    Vec3 position(std::uint32_t i) const {
        return {positions[3 * i], positions[3 * i + 1], positions[3 * i + 2]};
    }
};

class BatFile;

/// How a BatFile opens the base files its delta treelets reference. The
/// LeafFileCache passes itself in so base files land in (and are charged
/// to) the cache under their own path keys; the default opener simply maps
/// the file recursively.
using BatFileOpener =
    std::function<std::shared_ptr<const BatFile>(const std::filesystem::path&)>;

/// Memory-mapped, zero-copy view of a BAT file. All accessors return spans
/// into the mapping; the BatFile must outlive them. Delta treelets (v3)
/// resolve transparently: `treelet()` returns a view into the base file's
/// mapping, which the BatFile keeps alive.
class BatFile {
public:
    explicit BatFile(const std::filesystem::path& path,
                     const BatFileOpener& opener = {});
    /// Parse from an in-memory buffer (used for in-transit queries and
    /// tests; the buffer must outlive the BatFile). Buffers with delta
    /// references are rejected — they have no directory to resolve
    /// base files against.
    explicit BatFile(std::span<const std::byte> bytes);

    std::uint64_t num_particles() const { return header_.num_particles; }
    std::size_t num_attrs() const { return attr_names_.size(); }
    Box bounds() const;
    const std::vector<std::string>& attr_names() const { return attr_names_; }
    std::pair<double, double> attr_range(std::size_t a) const { return attr_ranges_[a]; }
    /// Bitmap bin edges of attribute `a` (kBitmapBins + 1 values).
    const BinEdges& attr_edges(std::size_t a) const { return attr_edges_[a]; }
    const FileHeader& header() const { return header_; }

    std::span<const ShallowNode> shallow_nodes() const { return shallow_nodes_; }
    std::span<const std::uint32_t> dictionary() const { return dict_; }

    /// Bitmap of shallow node `i` for attribute `a` (dictionary resolved).
    std::uint32_t shallow_bitmap(std::size_t i, std::size_t a) const;

    using TreeletView = BatTreeletView;
    std::size_t num_treelets() const { return treelet_dir_.size(); }
    TreeletView treelet(std::size_t t) const;

    /// Bitmap of treelet node `node` for attribute `a`.
    std::uint32_t treelet_bitmap(const TreeletView& view, std::size_t node,
                                 std::size_t a) const;

    /// v3 delta introspection: base file names referenced by this file's
    /// delta treelets (empty for full/keyframe files).
    const std::vector<std::string>& base_file_names() const { return base_names_; }
    /// True when treelet `t` is stored by reference into a base file.
    bool treelet_is_delta(std::size_t t) const {
        return treelet_dir_[t].base_file >= 0;
    }

private:
    void parse(std::span<const std::byte> bytes);
    void open_bases(const std::filesystem::path& dir, const BatFileOpener& opener);

    MappedFile map_;  // empty when constructed from a buffer
    std::span<const std::byte> bytes_;
    FileHeader header_{};
    std::vector<std::string> attr_names_;
    std::vector<std::pair<double, double>> attr_ranges_;
    std::vector<BinEdges> attr_edges_;
    std::span<const ShallowNode> shallow_nodes_;
    std::span<const std::uint16_t> shallow_bitmap_ids_;
    std::span<const std::uint32_t> dict_;
    std::span<const TreeletDirEntry> treelet_dir_;
    std::vector<std::string> base_names_;
    std::vector<std::shared_ptr<const BatFile>> bases_;
};

}  // namespace bat
