#pragma once
// Particle container. Follows the paper's array-based attribute storage
// model (like HDF5/ADIOS/Silo): three single-precision spatial coordinates
// per particle plus any number of named double-precision attribute arrays
// (structure-of-arrays).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/buffer.hpp"
#include "util/vec3.hpp"

namespace bat {

class ThreadPool;

class ParticleSet {
public:
    ParticleSet() = default;
    /// Create an empty set with the given attribute names.
    explicit ParticleSet(std::vector<std::string> attr_names);

    std::size_t count() const { return positions_.size() / 3; }
    std::size_t num_attrs() const { return attrs_.size(); }
    bool empty() const { return positions_.empty(); }

    /// Bytes one particle occupies in this set's schema (3*f32 + attrs*f64).
    std::size_t bytes_per_particle() const { return 12 + 8 * attrs_.size(); }
    /// Total payload bytes of the set.
    std::size_t payload_bytes() const { return count() * bytes_per_particle(); }

    const std::vector<std::string>& attr_names() const { return attr_names_; }
    /// Index of a named attribute; throws if absent.
    std::size_t attr_index(const std::string& name) const;

    Vec3 position(std::size_t i) const {
        return {positions_[3 * i], positions_[3 * i + 1], positions_[3 * i + 2]};
    }
    void set_position(std::size_t i, Vec3 p) {
        positions_[3 * i] = p.x;
        positions_[3 * i + 1] = p.y;
        positions_[3 * i + 2] = p.z;
    }

    std::span<const float> positions() const { return positions_; }
    std::span<float> positions_mut() { return positions_; }
    std::span<const double> attr(std::size_t a) const { return attrs_[a]; }
    std::span<double> attr_mut(std::size_t a) { return attrs_[a]; }

    void reserve(std::size_t n);
    void resize(std::size_t n);

    /// Append one particle. `attr_values.size()` must equal num_attrs().
    void push_back(Vec3 p, std::span<const double> attr_values);

    /// Append all particles of `other` (same schema required).
    void append(const ParticleSet& other);

    /// Append particle `i` of `other` (same schema required).
    void append_from(const ParticleSet& other, std::size_t i);

    /// Bulk-append a block of particles given as raw columns: `xyz` is
    /// interleaved positions (3 floats per particle) and `attr_columns` one
    /// span per attribute, all of length xyz.size() / 3. Used by the query
    /// fast path to ingest contiguous treelet ranges without per-point
    /// callbacks.
    void append_block(std::span<const float> xyz,
                      std::span<const std::span<const double>> attr_columns);

    /// Copy every particle of `src` (same schema required) into slots
    /// [at, at + src.count()); this set must already be resized to hold
    /// them. The zero-copy aggregation path places each sender's particles
    /// at a precomputed offset so arrival order cannot change the result.
    void copy_from(const ParticleSet& src, std::size_t at);

    /// Tight bounding box of all particle positions (empty box if none).
    Box bounds() const;

    /// Deplane the interleaved xyz storage into three SoA coordinate planes
    /// of length count() (the BAT builder's batch-encode / treelet-build
    /// scratch layout). Chunked over `pool` when one is given.
    void deplane_positions(float* xs, float* ys, float* zs,
                           ThreadPool* pool = nullptr) const;

    /// Reorder so particle i moves to position `perm[i]`... precisely:
    /// new[i] = old[order[i]]. `order` must be a permutation of [0, count).
    /// The gather loops are chunked over `pool` when one is given.
    void reorder(std::span<const std::uint32_t> order, ThreadPool* pool = nullptr);

    /// reorder() for the attribute arrays only; positions are untouched.
    /// The BAT build rewrites positions from its own already-permuted
    /// scratch, so gathering them here would be wasted work.
    void reorder_attrs(std::span<const std::uint32_t> order, ThreadPool* pool = nullptr);

    /// (min, max) of attribute `a`; (0, 0) for an empty set.
    std::pair<double, double> attr_range(std::size_t a) const;

    // ---- serialization (wire format for aggregation transfers) ----------
    void serialize(BufferWriter& w) const;
    static ParticleSet deserialize(BufferReader& r);
    std::vector<std::byte> to_bytes() const;
    static ParticleSet from_bytes(std::span<const std::byte> bytes);

    /// Deserialize a wire payload (as produced by to_bytes) directly into
    /// slots [at, at + payload count) of this pre-sized set — no
    /// intermediate ParticleSet. The payload's schema must match. Returns
    /// the number of particles placed.
    std::size_t deserialize_into(std::span<const std::byte> bytes, std::size_t at);

    /// Append a wire payload's particles at the end of this set without
    /// constructing an intermediate ParticleSet. Returns the number of
    /// particles appended.
    std::size_t append_from_bytes(std::span<const std::byte> bytes);

private:
    std::vector<float> positions_;  // xyz interleaved
    std::vector<std::string> attr_names_;
    std::vector<std::vector<double>> attrs_;  // [attr][particle]
};

}  // namespace bat
