#include "core/particles.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace bat {

ParticleSet::ParticleSet(std::vector<std::string> attr_names)
    : attr_names_(std::move(attr_names)), attrs_(attr_names_.size()) {}

std::size_t ParticleSet::attr_index(const std::string& name) const {
    const auto it = std::find(attr_names_.begin(), attr_names_.end(), name);
    BAT_CHECK_MSG(it != attr_names_.end(), "unknown attribute '" << name << "'");
    return static_cast<std::size_t>(it - attr_names_.begin());
}

void ParticleSet::reserve(std::size_t n) {
    positions_.reserve(3 * n);
    for (auto& a : attrs_) {
        a.reserve(n);
    }
}

void ParticleSet::resize(std::size_t n) {
    positions_.resize(3 * n);
    for (auto& a : attrs_) {
        a.resize(n);
    }
}

void ParticleSet::push_back(Vec3 p, std::span<const double> attr_values) {
    BAT_CHECK_MSG(attr_values.size() == attrs_.size(),
                  "expected " << attrs_.size() << " attribute values, got "
                              << attr_values.size());
    positions_.push_back(p.x);
    positions_.push_back(p.y);
    positions_.push_back(p.z);
    for (std::size_t a = 0; a < attrs_.size(); ++a) {
        attrs_[a].push_back(attr_values[a]);
    }
}

void ParticleSet::append(const ParticleSet& other) {
    BAT_CHECK_MSG(other.attr_names_ == attr_names_, "schema mismatch in append");
    positions_.insert(positions_.end(), other.positions_.begin(), other.positions_.end());
    for (std::size_t a = 0; a < attrs_.size(); ++a) {
        attrs_[a].insert(attrs_[a].end(), other.attrs_[a].begin(), other.attrs_[a].end());
    }
}

void ParticleSet::append_block(std::span<const float> xyz,
                               std::span<const std::span<const double>> attr_columns) {
    BAT_CHECK_MSG(xyz.size() % 3 == 0, "append_block positions not a multiple of 3");
    BAT_CHECK_MSG(attr_columns.size() == attrs_.size(),
                  "attribute column count mismatch in append_block");
    const std::size_t n = xyz.size() / 3;
    positions_.insert(positions_.end(), xyz.begin(), xyz.end());
    for (std::size_t a = 0; a < attrs_.size(); ++a) {
        BAT_CHECK_MSG(attr_columns[a].size() == n,
                      "attribute column length mismatch in append_block");
        attrs_[a].insert(attrs_[a].end(), attr_columns[a].begin(), attr_columns[a].end());
    }
}

void ParticleSet::append_from(const ParticleSet& other, std::size_t i) {
    BAT_CHECK(other.attr_names_.size() == attr_names_.size());
    positions_.push_back(other.positions_[3 * i]);
    positions_.push_back(other.positions_[3 * i + 1]);
    positions_.push_back(other.positions_[3 * i + 2]);
    for (std::size_t a = 0; a < attrs_.size(); ++a) {
        attrs_[a].push_back(other.attrs_[a][i]);
    }
}

Box ParticleSet::bounds() const {
    Box b;
    for (std::size_t i = 0; i < count(); ++i) {
        b.extend(position(i));
    }
    return b;
}

void ParticleSet::copy_from(const ParticleSet& src, std::size_t at) {
    BAT_CHECK_MSG(src.attr_names_ == attr_names_, "schema mismatch in copy_from");
    BAT_CHECK_MSG(at + src.count() <= count(), "copy_from past the end of the set");
    std::copy(src.positions_.begin(), src.positions_.end(),
              positions_.begin() + static_cast<std::ptrdiff_t>(3 * at));
    for (std::size_t a = 0; a < attrs_.size(); ++a) {
        std::copy(src.attrs_[a].begin(), src.attrs_[a].end(),
                  attrs_[a].begin() + static_cast<std::ptrdiff_t>(at));
    }
}

void ParticleSet::deplane_positions(float* xs, float* ys, float* zs,
                                    ThreadPool* pool) const {
    constexpr std::size_t kGrain = std::size_t{1} << 14;
    parallel_ranges(pool, count(), kGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            xs[i] = positions_[3 * i];
            ys[i] = positions_[3 * i + 1];
            zs[i] = positions_[3 * i + 2];
        }
    });
}

void ParticleSet::reorder(std::span<const std::uint32_t> order, ThreadPool* pool) {
    BAT_CHECK(order.size() == count());
    constexpr std::size_t kGrain = std::size_t{1} << 14;
    std::vector<float> pos(positions_.size());
    parallel_ranges(pool, order.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t src = order[i];
            pos[3 * i] = positions_[3 * src];
            pos[3 * i + 1] = positions_[3 * src + 1];
            pos[3 * i + 2] = positions_[3 * src + 2];
        }
    });
    positions_ = std::move(pos);
    reorder_attrs(order, pool);
}

void ParticleSet::reorder_attrs(std::span<const std::uint32_t> order, ThreadPool* pool) {
    BAT_CHECK(order.size() == count());
    constexpr std::size_t kGrain = std::size_t{1} << 14;
    for (auto& attr : attrs_) {
        std::vector<double> tmp(attr.size());
        const double* src = attr.data();
        double* dst = tmp.data();
        parallel_ranges(pool, order.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                dst[i] = src[order[i]];
            }
        });
        attr = std::move(tmp);
    }
}

std::pair<double, double> ParticleSet::attr_range(std::size_t a) const {
    BAT_CHECK(a < attrs_.size());
    if (attrs_[a].empty()) {
        return {0.0, 0.0};
    }
    double lo = 0.0;
    double hi = 0.0;
    simd::minmax_f64(attrs_[a].data(), attrs_[a].size(), &lo, &hi);
    return {lo, hi};
}

void ParticleSet::serialize(BufferWriter& w) const {
    w.write(static_cast<std::uint64_t>(count()));
    w.write(static_cast<std::uint32_t>(attrs_.size()));
    for (const auto& name : attr_names_) {
        w.write_string(name);
    }
    w.write_span(std::span<const float>(positions_));
    for (const auto& a : attrs_) {
        w.write_span(std::span<const double>(a));
    }
}

ParticleSet ParticleSet::deserialize(BufferReader& r) {
    const auto n = r.read<std::uint64_t>();
    const auto nattrs = r.read<std::uint32_t>();
    std::vector<std::string> names(nattrs);
    for (auto& name : names) {
        name = r.read_string();
    }
    ParticleSet set(std::move(names));
    set.positions_.resize(3 * n);
    r.read_into(std::span<float>(set.positions_));
    for (auto& a : set.attrs_) {
        a.resize(n);
        r.read_into(std::span<double>(a));
    }
    return set;
}

std::vector<std::byte> ParticleSet::to_bytes() const {
    BufferWriter w(payload_bytes() + 64);
    serialize(w);
    return w.take();
}

ParticleSet ParticleSet::from_bytes(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    return deserialize(r);
}

std::size_t ParticleSet::deserialize_into(std::span<const std::byte> bytes,
                                          std::size_t at) {
    BufferReader r(bytes);
    const auto n = static_cast<std::size_t>(r.read<std::uint64_t>());
    const auto nattrs = r.read<std::uint32_t>();
    BAT_CHECK_MSG(nattrs == attrs_.size(),
                  "deserialize_into schema mismatch: payload has " << nattrs
                                                                  << " attrs, set has "
                                                                  << attrs_.size());
    for (const auto& name : attr_names_) {
        const std::string got = r.read_string();
        BAT_CHECK_MSG(got == name, "deserialize_into attr mismatch: payload '"
                                       << got << "' vs set '" << name << "'");
    }
    BAT_CHECK_MSG(at + n <= count(), "deserialize_into past the end of the set");
    r.read_into(std::span<float>(positions_.data() + 3 * at, 3 * n));
    for (auto& a : attrs_) {
        r.read_into(std::span<double>(a.data() + at, n));
    }
    return n;
}

std::size_t ParticleSet::append_from_bytes(std::span<const std::byte> bytes) {
    // Peek the payload's particle count to grow the arrays, then place the
    // data directly at the old end.
    BufferReader header(bytes);
    const auto n = static_cast<std::size_t>(header.read<std::uint64_t>());
    const std::size_t at = count();
    resize(at + n);
    return deserialize_into(bytes, at);
}

}  // namespace bat
