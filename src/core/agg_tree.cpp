#include "core/agg_tree.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "util/check.hpp"

namespace bat {

namespace {

struct BuildNode {
    Box bounds;
    int axis = -1;
    float split = 0.f;
    std::unique_ptr<BuildNode> left;
    std::unique_ptr<BuildNode> right;
    std::vector<int> ranks;  // filled for leaves only
    std::uint64_t num_particles = 0;
    bool is_leaf = false;
};

struct SplitResult {
    int axis = -1;
    float position = 0.f;
    double cost = 0.0;        // |0.5 - nl/(nl+nr)|, paper's split cost
    double imbalance = 1.0;   // max(nl,nr)/min(nl,nr), drives overfull leaves
    bool valid = false;
};

struct Builder {
    std::span<const RankInfo> ranks;
    const AggTreeConfig& config;
    ThreadPool* pool;

    Box bounds_of(std::span<const int> ids) const {
        Box b;
        for (int id : ids) {
            b.extend(ranks[static_cast<std::size_t>(id)].bounds);
        }
        return b;
    }

    Box bounds_of_nonempty(std::span<const int> ids) const {
        Box b;
        for (int id : ids) {
            if (ranks[static_cast<std::size_t>(id)].num_particles > 0) {
                b.extend(ranks[static_cast<std::size_t>(id)].bounds);
            }
        }
        return b;
    }

    std::uint64_t particles_of(std::span<const int> ids) const {
        std::uint64_t n = 0;
        for (int id : ids) {
            n += ranks[static_cast<std::size_t>(id)].num_particles;
        }
        return n;
    }

    /// Find the lowest-cost candidate split of `ids` along `axis`.
    /// Candidates are the unique edges of member ranks' bounds; a rank falls
    /// left when its bounds center is below the split (so ranks are never
    /// divided between subtrees).
    SplitResult best_split_on_axis(std::span<const int> ids, int axis) const {
        // Sort member ranks by bounds center along the axis, with prefix
        // particle sums, so each candidate is evaluated in O(log R).
        std::vector<std::pair<float, std::uint64_t>> by_center;
        by_center.reserve(ids.size());
        std::vector<float> candidates;
        candidates.reserve(2 * ids.size());
        for (int id : ids) {
            const RankInfo& r = ranks[static_cast<std::size_t>(id)];
            by_center.emplace_back(r.bounds.center()[axis], r.num_particles);
            candidates.push_back(r.bounds.lower[axis]);
            candidates.push_back(r.bounds.upper[axis]);
        }
        std::sort(by_center.begin(), by_center.end());
        std::vector<std::uint64_t> prefix(by_center.size() + 1, 0);
        for (std::size_t i = 0; i < by_center.size(); ++i) {
            prefix[i + 1] = prefix[i] + by_center[i].second;
        }
        const std::uint64_t total = prefix.back();
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

        SplitResult best;
        for (float s : candidates) {
            // Number of ranks whose center is strictly below s.
            const auto it = std::lower_bound(
                by_center.begin(), by_center.end(), s,
                [](const std::pair<float, std::uint64_t>& a, float v) { return a.first < v; });
            const auto n_left_ranks = static_cast<std::size_t>(it - by_center.begin());
            if (n_left_ranks == 0 || n_left_ranks == by_center.size()) {
                continue;  // one side would hold no ranks
            }
            const std::uint64_t nl = prefix[n_left_ranks];
            const std::uint64_t nr = total - nl;
            const double frac =
                total > 0 ? static_cast<double>(nl) / static_cast<double>(total) : 0.5;
            const double cost = std::abs(0.5 - frac);
            if (!best.valid || cost < best.cost) {
                best.valid = true;
                best.axis = axis;
                best.position = s;
                best.cost = cost;
                const auto lo = static_cast<double>(std::min(nl, nr));
                const auto hi = static_cast<double>(std::max(nl, nr));
                best.imbalance = hi / std::max(1.0, lo);
            }
        }
        return best;
    }

    SplitResult best_split(std::span<const int> ids) const {
        if (config.split_all_axes) {
            SplitResult best;
            for (int axis = 0; axis < 3; ++axis) {
                const SplitResult s = best_split_on_axis(ids, axis);
                if (s.valid && (!best.valid || s.cost < best.cost)) {
                    best = s;
                }
            }
            return best;
        }
        // Paper: choose the longest axis of the aggregate bounds of the
        // member ranks that have particles. If that axis admits no valid
        // candidate (e.g. a 2D decomposition where every rank spans the
        // whole z extent), fall back to the remaining axes by decreasing
        // extent — otherwise the build would stop at an unsplittable node.
        Box b = bounds_of_nonempty(ids);
        if (b.empty()) {
            b = bounds_of(ids);
        }
        const Vec3 ext = b.extent();
        int axes[3] = {0, 1, 2};
        std::sort(axes, axes + 3, [&ext](int a, int c) { return ext[a] > ext[c]; });
        for (int axis : axes) {
            const SplitResult s = best_split_on_axis(ids, axis);
            if (s.valid) {
                return s;
            }
        }
        return SplitResult{};
    }

    void build(std::vector<int> ids, BuildNode* node, TaskGroup* group) const {
        node->bounds = bounds_of(ids);
        node->num_particles = particles_of(ids);
        const std::uint64_t bytes = node->num_particles * config.bytes_per_particle;

        const bool fits = bytes <= config.target_file_size;
        if (fits || ids.size() == 1) {
            make_leaf(std::move(ids), node);
            return;
        }

        const SplitResult split = best_split(ids);
        if (!split.valid) {
            // Every candidate left one side without ranks (e.g. all ranks
            // share identical bounds); the node cannot be subdivided.
            make_leaf(std::move(ids), node);
            return;
        }

        // Overfull leaf: the best split is very uneven and the node is not
        // too far over the target (paper §III-A).
        const bool bad_split = split.imbalance >= config.overfull_imbalance;
        const bool near_target =
            static_cast<double>(bytes) <=
            config.overfull_factor * static_cast<double>(config.target_file_size);
        if (bad_split && near_target) {
            make_leaf(std::move(ids), node);
            return;
        }

        node->axis = split.axis;
        node->split = split.position;
        std::vector<int> left_ids;
        std::vector<int> right_ids;
        for (int id : ids) {
            const float c = ranks[static_cast<std::size_t>(id)].bounds.center()[split.axis];
            (c < split.position ? left_ids : right_ids).push_back(id);
        }
        BAT_CHECK(!left_ids.empty() && !right_ids.empty());

        node->left = std::make_unique<BuildNode>();
        node->right = std::make_unique<BuildNode>();
        // Paper: a task is spawned for the right subtree while the current
        // thread proceeds with the left.
        if (group != nullptr && right_ids.size() > 64) {
            BuildNode* right_node = node->right.get();
            auto right_work = std::make_shared<std::vector<int>>(std::move(right_ids));
            group->run([this, right_work, right_node, group] {
                build(std::move(*right_work), right_node, group);
            });
        } else {
            build(std::move(right_ids), node->right.get(), group);
        }
        build(std::move(left_ids), node->left.get(), group);
    }

    static void make_leaf(std::vector<int> ids, BuildNode* node) {
        std::sort(ids.begin(), ids.end());
        node->ranks = std::move(ids);
        node->is_leaf = true;
    }
};

/// Flatten the pointer tree into Aggregation's arrays (pre-order). Leaves
/// with no particles are dropped: their ranks have nothing to send.
int flatten(const BuildNode& node, Aggregation& out) {
    const int index = static_cast<int>(out.nodes.size());
    out.nodes.push_back(AggNode{});
    out.nodes[static_cast<std::size_t>(index)].bounds = node.bounds;
    if (node.is_leaf) {
        if (node.num_particles > 0) {
            const int leaf_id = static_cast<int>(out.leaves.size());
            AggLeaf leaf;
            leaf.bounds = node.bounds;
            leaf.ranks = node.ranks;
            leaf.num_particles = node.num_particles;
            out.leaves.push_back(std::move(leaf));
            out.nodes[static_cast<std::size_t>(index)].leaf_id = leaf_id;
            for (int r : node.ranks) {
                out.rank_to_leaf[static_cast<std::size_t>(r)] = leaf_id;
            }
        }
        return index;
    }
    out.nodes[static_cast<std::size_t>(index)].axis = node.axis;
    out.nodes[static_cast<std::size_t>(index)].split = node.split;
    const int l = flatten(*node.left, out);
    const int r = flatten(*node.right, out);
    out.nodes[static_cast<std::size_t>(index)].left = l;
    out.nodes[static_cast<std::size_t>(index)].right = r;
    return index;
}

}  // namespace

Aggregation build_agg_tree(std::span<const RankInfo> ranks, const AggTreeConfig& config,
                           ThreadPool* pool) {
    BAT_CHECK_MSG(!ranks.empty(), "build_agg_tree requires at least one rank");
    BAT_CHECK(config.target_file_size > 0);
    BAT_CHECK(config.bytes_per_particle > 0);

    Builder builder{ranks, config, pool};
    std::vector<int> all(ranks.size());
    std::iota(all.begin(), all.end(), 0);

    BuildNode root;
    if (pool != nullptr && pool->num_threads() > 0) {
        TaskGroup group(*pool);
        builder.build(std::move(all), &root, &group);
        group.wait();
    } else {
        builder.build(std::move(all), &root, nullptr);
    }

    Aggregation out;
    out.rank_to_leaf.assign(ranks.size(), -1);
    flatten(root, out);
    return out;
}

Aggregation build_file_per_process(std::span<const RankInfo> ranks) {
    Aggregation out;
    out.rank_to_leaf.assign(ranks.size(), -1);
    for (std::size_t r = 0; r < ranks.size(); ++r) {
        if (ranks[r].num_particles == 0) {
            continue;
        }
        AggLeaf leaf;
        leaf.bounds = ranks[r].bounds;
        leaf.ranks = {static_cast<int>(r)};
        leaf.num_particles = ranks[r].num_particles;
        out.rank_to_leaf[r] = static_cast<int>(out.leaves.size());
        out.leaves.push_back(std::move(leaf));
    }
    build_tree_over_leaves(out);
    return out;
}

namespace {

/// Recursively build a median-split k-d tree over leaf ids (by center).
int build_leaf_tree(Aggregation& agg, std::span<int> leaf_ids) {
    const int index = static_cast<int>(agg.nodes.size());
    agg.nodes.push_back(AggNode{});
    Box bounds;
    for (int id : leaf_ids) {
        bounds.extend(agg.leaves[static_cast<std::size_t>(id)].bounds);
    }
    agg.nodes[static_cast<std::size_t>(index)].bounds = bounds;
    if (leaf_ids.size() == 1) {
        agg.nodes[static_cast<std::size_t>(index)].leaf_id = leaf_ids[0];
        return index;
    }
    const int axis = bounds.longest_axis();
    const std::size_t mid = leaf_ids.size() / 2;
    std::nth_element(leaf_ids.begin(), leaf_ids.begin() + static_cast<std::ptrdiff_t>(mid),
                     leaf_ids.end(), [&agg, axis](int a, int b) {
                         return agg.leaves[static_cast<std::size_t>(a)].bounds.center()[axis] <
                                agg.leaves[static_cast<std::size_t>(b)].bounds.center()[axis];
                     });
    agg.nodes[static_cast<std::size_t>(index)].axis = axis;
    agg.nodes[static_cast<std::size_t>(index)].split =
        agg.leaves[static_cast<std::size_t>(leaf_ids[mid])].bounds.center()[axis];
    const int l = build_leaf_tree(agg, leaf_ids.subspan(0, mid));
    const int r = build_leaf_tree(agg, leaf_ids.subspan(mid));
    agg.nodes[static_cast<std::size_t>(index)].left = l;
    agg.nodes[static_cast<std::size_t>(index)].right = r;
    return index;
}

}  // namespace

void build_tree_over_leaves(Aggregation& agg) {
    agg.nodes.clear();
    if (agg.leaves.empty()) {
        return;
    }
    std::vector<int> ids(agg.leaves.size());
    std::iota(ids.begin(), ids.end(), 0);
    build_leaf_tree(agg, ids);
}

std::vector<int> Aggregation::overlapping_leaves(const Box& box) const {
    std::vector<int> out;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (leaves[i].bounds.overlaps(box)) {
            out.push_back(static_cast<int>(i));
        }
    }
    return out;
}

void Aggregation::assign_aggregators(int nranks) {
    BAT_CHECK(nranks > 0);
    BAT_CHECK_MSG(leaves.size() <= static_cast<std::size_t>(nranks),
                  "more leaves than ranks: " << leaves.size() << " > " << nranks);
    const auto nleaves = static_cast<std::uint64_t>(leaves.size());
    for (std::uint64_t i = 0; i < nleaves; ++i) {
        leaves[i].aggregator =
            static_cast<int>((i * static_cast<std::uint64_t>(nranks)) / nleaves);
    }
}

std::uint64_t Aggregation::total_particles() const {
    std::uint64_t n = 0;
    for (const auto& leaf : leaves) {
        n += leaf.num_particles;
    }
    return n;
}

}  // namespace bat
