#pragma once
// Visualization reads on the BAT layout (paper §V).
//
// A query takes a desired quality level, an optional bounding box, and a
// set of attribute range filters, and invokes a callback for every matching
// point. Spatial pruning uses the k-d hierarchy (exact); attribute pruning
// tests the query's 32-bit bitmap against each node's bitmap (conservative:
// bitwise AND == 0 proves the subtree holds no matches, so subtrees are
// never wrongly skipped), with a final exact per-point check to discard
// false positives (§V-A).
//
// Progressive multiresolution reads (§V-B): the quality parameter in [0, 1]
// is remapped on a log scale (LOD particle counts double per level) and
// scaled to a maximum treelet depth; a fractional part selects a percentage
// of the deepest level's points for smooth transitions. Passing the
// previously requested quality as `quality_lo` processes only the new
// points for the increment.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/bat_file.hpp"

namespace bat {

struct AttrFilter {
    std::uint32_t attr = 0;
    double lo = 0.0;
    double hi = 0.0;
};

struct BatQuery {
    /// Spatial filter; nullopt = whole domain.
    std::optional<Box> box;
    /// Conjunction of attribute range filters.
    std::vector<AttrFilter> attr_filters;
    /// Progressive window: points belonging to qualities in
    /// (quality_lo, quality_hi] are returned. Initial reads use
    /// quality_lo = 0; quality_hi = 1 returns the full resolution.
    float quality_lo = 0.f;
    float quality_hi = 1.f;
    /// When false, box containment is half-open ([lo, hi) per axis) —
    /// used for non-overlapping checkpoint-restart decompositions.
    bool inclusive_upper = true;
};

/// Query counters. The struct ACCUMULATES: query_bat adds to the caller's
/// counters rather than resetting them, so one QueryStats can sum a whole
/// multi-leaf read (Dataset::query, the parallel read path). Callers wanting
/// per-call numbers pass a zero-initialized struct. `points_fast_path`
/// counts points emitted through the fully-contained fast path, which skips
/// the per-point box/filter test — so the testing invariant is
/// points_tested + points_fast_path >= points_emitted.
struct QueryStats {
    std::uint64_t shallow_nodes_visited = 0;
    std::uint64_t treelet_nodes_visited = 0;
    std::uint64_t pruned_by_box = 0;
    std::uint64_t pruned_by_bitmap = 0;
    std::uint64_t points_tested = 0;
    std::uint64_t points_emitted = 0;
    std::uint64_t points_fast_path = 0;
};

/// Callback invoked per matching point: position plus one value per file
/// attribute (in file attribute order).
using QueryCallback = std::function<void(Vec3, std::span<const double>)>;

/// Bulk callback for the fully-contained fast path: every point of the
/// contiguous treelet range [begin, end) matches the query. Positions are
/// view.positions.subspan(3 * begin, 3 * (end - begin)); attribute columns
/// are view.attrs[a].subspan(begin, end - begin).
using QueryRangeCallback =
    std::function<void(const BatTreeletView&, std::uint32_t, std::uint32_t)>;

/// Emission sinks for a query. `point` is required; when `range` is set and
/// a node's region lies entirely inside the query box with no attribute
/// filters active, its progressive window is emitted as one contiguous
/// range with no per-point box/filter work (so ParticleSet consumers can
/// bulk-append).
struct QuerySink {
    QueryCallback point;
    QueryRangeCallback range;
};

/// Run a query against a BAT file; returns the number of points emitted
/// by this call (stats, if given, accumulate — see QueryStats).
std::uint64_t query_bat(const BatFile& file, const BatQuery& query, const QueryCallback& cb,
                        QueryStats* stats = nullptr);
std::uint64_t query_bat(const BatFile& file, const BatQuery& query, const QuerySink& sink,
                        QueryStats* stats = nullptr);

/// Zero-copy adapter exposing a just-built, not-yet-serialized BAT through
/// the same interface as BatFile, enabling the paper's in-transit use: "the
/// tree can be used for in transit visualization and analysis on the
/// aggregators before or instead of being written to disk" (§III-C3).
class BatDataView {
public:
    explicit BatDataView(const BatData& bat) : bat_(&bat) {}

    std::size_t num_attrs() const { return bat_->num_attrs(); }
    std::pair<double, double> attr_range(std::size_t a) const {
        return bat_->attr_ranges[a];
    }
    const BinEdges& attr_edges(std::size_t a) const { return bat_->attr_edges[a]; }
    std::span<const ShallowNode> shallow_nodes() const { return bat_->shallow_nodes; }
    std::uint32_t shallow_bitmap(std::size_t i, std::size_t a) const {
        return bat_->shallow_bitmaps[i * num_attrs() + a];
    }
    std::size_t num_treelets() const { return bat_->treelets.size(); }
    BatTreeletView treelet(std::size_t t) const;
    std::uint32_t treelet_bitmap(const BatTreeletView& view, std::size_t node,
                                 std::size_t a) const {
        return view.raw_bitmaps[node * num_attrs() + a];
    }

private:
    const BatData* bat_;
};

/// Run a query against an in-memory BAT (same semantics as the file path).
std::uint64_t query_bat(const BatDataView& bat, const BatQuery& query,
                        const QueryCallback& cb, QueryStats* stats = nullptr);
std::uint64_t query_bat(const BatDataView& bat, const BatQuery& query,
                        const QuerySink& sink, QueryStats* stats = nullptr);
inline std::uint64_t query_bat(const BatData& bat, const BatQuery& query,
                               const QueryCallback& cb, QueryStats* stats = nullptr) {
    return query_bat(BatDataView(bat), query, cb, stats);
}
inline std::uint64_t query_bat(const BatData& bat, const BatQuery& query,
                               const QuerySink& sink, QueryStats* stats = nullptr) {
    return query_bat(BatDataView(bat), query, sink, stats);
}

/// The log-scale quality remap (§V-B), exposed for tests: maps quality in
/// [0, 1] to a fractional traversal depth in [0, levels], where `levels` is
/// the treelet's max depth + 1.
double remap_quality(double quality, int levels);

/// Number of a node's own points included at fractional depth `t` for a
/// node at `depth` owning `own_count` points (monotone in t; exposed for
/// tests of progressive-read consistency).
std::uint32_t points_at_depth(double t, int depth, std::uint32_t own_count);

}  // namespace bat
