#include "core/bat_query.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bat {

double remap_quality(double quality, int levels) {
    BAT_CHECK(levels >= 1);
    if (quality <= 0.0) {
        return 0.0;
    }
    if (quality >= 1.0) {
        return static_cast<double>(levels);
    }
    // Log remap: the number of LOD particles stored doubles each level, so a
    // linear quality slider would jump abruptly between coarse levels.
    return std::log2(1.0 + quality * (std::exp2(static_cast<double>(levels)) - 1.0));
}

std::uint32_t points_at_depth(double t, int depth, std::uint32_t own_count) {
    const auto d = static_cast<double>(depth);
    if (t <= d) {
        return 0;
    }
    if (t >= d + 1.0) {
        return own_count;
    }
    const double frac = t - d;
    return static_cast<std::uint32_t>(std::lround(frac * static_cast<double>(own_count)));
}

namespace {

template <typename Source>
struct QueryContext {
    const Source& file;
    const BatQuery& query;
    const QuerySink& sink;
    QueryStats& stats;
    /// Per-attribute query bitmaps (relative to the file's local attribute
    /// ranges); empty when no attribute filters are present.
    std::vector<std::uint32_t> query_bitmaps;  // parallel to query.attr_filters
    std::vector<double> attr_scratch;          // one value per file attribute

    // Explicit traversal stacks (reused across treelets). Recursion depth
    // scales with tree height, and the serve path now runs queries on pool
    // worker threads whose stacks we do not control.
    struct TreeletFrame {
        std::uint32_t node = 0;
        std::int32_t depth = 0;
        Box region;
        bool contained = false;  // region entirely inside the query box
    };
    std::vector<TreeletFrame> treelet_stack;
    struct ShallowFrame {
        std::uint32_t node = 0;
        bool contained = false;
    };
    std::vector<ShallowFrame> shallow_stack;

    bool box_contains(Vec3 p) const {
        if (!query.box) {
            return true;
        }
        const Box& b = *query.box;
        if (query.inclusive_upper) {
            return b.contains(p);
        }
        return p.x >= b.lower.x && p.x < b.upper.x && p.y >= b.lower.y && p.y < b.upper.y &&
               p.z >= b.lower.z && p.z < b.upper.z;
    }

    bool box_overlaps(const Box& region) const {
        return !query.box || query.box->overlaps(region);
    }

    /// True when every point inside `region` passes the box test, so the
    /// test can be skipped for the whole subtree. Conservative for the
    /// half-open case: the region's upper face must be strictly inside.
    bool box_covers(const Box& region) const {
        if (!query.box) {
            return true;
        }
        const Box& b = *query.box;
        if (b.lower.x > region.lower.x || b.lower.y > region.lower.y ||
            b.lower.z > region.lower.z) {
            return false;
        }
        if (query.inclusive_upper) {
            return region.upper.x <= b.upper.x && region.upper.y <= b.upper.y &&
                   region.upper.z <= b.upper.z;
        }
        return region.upper.x < b.upper.x && region.upper.y < b.upper.y &&
               region.upper.z < b.upper.z;
    }

    /// Conservative bitmap test: can this node's subtree contain matches?
    template <typename F>
    bool bitmaps_may_match(F&& node_bitmap) const {
        for (std::size_t f = 0; f < query.attr_filters.size(); ++f) {
            const std::uint32_t node_bits =
                node_bitmap(static_cast<std::size_t>(query.attr_filters[f].attr));
            if ((node_bits & query_bitmaps[f]) == 0) {
                return false;
            }
        }
        return true;
    }

    void fill_scratch(const BatTreeletView& view, std::uint32_t i) {
        for (std::size_t a = 0; a < view.attrs.size(); ++a) {
            attr_scratch[a] = view.attrs[a][i];
        }
    }

    /// Exact per-point check (removes bitmap false positives) and emit.
    /// `skip_box` elides the containment test when the node's region is
    /// already known to be inside the query box.
    void test_and_emit(const BatTreeletView& view, std::uint32_t i, bool skip_box) {
        ++stats.points_tested;
        const Vec3 p = view.position(i);
        if (!skip_box && !box_contains(p)) {
            return;
        }
        for (const AttrFilter& f : query.attr_filters) {
            const double v = view.attrs[f.attr][i];
            if (v < f.lo || v > f.hi) {
                return;
            }
        }
        fill_scratch(view, i);
        ++stats.points_emitted;
        sink.point(p, attr_scratch);
    }

    /// Fully-matching contiguous window [begin, end): bulk-emit through the
    /// range sink when present, else per point with no tests.
    void emit_range(const BatTreeletView& view, std::uint32_t begin, std::uint32_t end) {
        stats.points_emitted += end - begin;
        stats.points_fast_path += end - begin;
        if (sink.range) {
            sink.range(view, begin, end);
            return;
        }
        for (std::uint32_t i = begin; i < end; ++i) {
            fill_scratch(view, i);
            sink.point(view.position(i), attr_scratch);
        }
    }

    void traverse_treelet(std::size_t treelet_index, bool contained_hint) {
        const BatTreeletView view = file.treelet(treelet_index);
        if (view.nodes.empty()) {
            return;
        }
        const int levels = view.max_depth + 1;
        const double t_lo = remap_quality(query.quality_lo, levels);
        const double t_hi = remap_quality(query.quality_hi, levels);
        if (t_hi <= 0.0) {
            return;
        }
        const bool filtered = !query.attr_filters.empty();
        treelet_stack.clear();
        treelet_stack.push_back(
            {0, 0, view.bounds, contained_hint || box_covers(view.bounds)});
        while (!treelet_stack.empty()) {
            const TreeletFrame frame = treelet_stack.back();
            treelet_stack.pop_back();
            const TreeletNode& node = view.nodes[frame.node];
            ++stats.treelet_nodes_visited;
            if (!frame.contained && !box_overlaps(frame.region)) {
                ++stats.pruned_by_box;
                continue;
            }
            if (filtered) {
                const auto bitmap = [this, &view, &frame](std::size_t a) {
                    return file.treelet_bitmap(view, frame.node, a);
                };
                if (!bitmaps_may_match(bitmap)) {
                    ++stats.pruned_by_bitmap;
                    continue;
                }
            }
            // Progressive window over the node's own points.
            const std::uint32_t n_lo = points_at_depth(t_lo, frame.depth, node.own_count);
            const std::uint32_t n_hi = points_at_depth(t_hi, frame.depth, node.own_count);
            if (frame.contained && !filtered) {
                if (n_hi > n_lo) {
                    emit_range(view, node.start + n_lo, node.start + n_hi);
                }
            } else {
                for (std::uint32_t i = node.start + n_lo; i < node.start + n_hi; ++i) {
                    test_and_emit(view, i, frame.contained);
                }
            }
            if (node.is_leaf()) {
                continue;
            }
            // Children hold points only at depth+1 and below; skip the
            // descent when the quality window cannot include them.
            if (t_hi <= static_cast<double>(frame.depth) + 1.0) {
                continue;
            }
            Box left = frame.region;
            Box right = frame.region;
            left.upper[node.axis] = node.split;
            right.lower[node.axis] = node.split;
            // Right pushed first so the left child pops next — emission
            // order stays exactly the old recursive pre-order.
            treelet_stack.push_back({static_cast<std::uint32_t>(node.right_child),
                                     frame.depth + 1, right,
                                     frame.contained || box_covers(right)});
            treelet_stack.push_back({frame.node + 1, frame.depth + 1, left,
                                     frame.contained || box_covers(left)});
        }
    }

    void traverse_shallow() {
        const bool filtered = !query.attr_filters.empty();
        shallow_stack.clear();
        shallow_stack.push_back({0, false});
        while (!shallow_stack.empty()) {
            const ShallowFrame frame = shallow_stack.back();
            shallow_stack.pop_back();
            const ShallowNode& node = file.shallow_nodes()[frame.node];
            ++stats.shallow_nodes_visited;
            bool contained = frame.contained;
            if (!contained) {
                if (!box_overlaps(node.bounds)) {
                    ++stats.pruned_by_box;
                    continue;
                }
                contained = box_covers(node.bounds);
            }
            if (filtered) {
                const auto bitmap = [this, &frame](std::size_t a) {
                    return file.shallow_bitmap(frame.node, a);
                };
                if (!bitmaps_may_match(bitmap)) {
                    ++stats.pruned_by_bitmap;
                    continue;
                }
            }
            if (node.is_leaf()) {
                traverse_treelet(static_cast<std::size_t>(node.treelet), contained);
                continue;
            }
            shallow_stack.push_back(
                {static_cast<std::uint32_t>(node.right_child), contained});
            shallow_stack.push_back({frame.node + 1, contained});
        }
    }
};

}  // namespace

template <typename Source>
std::uint64_t query_bat_impl(const Source& file, const BatQuery& query,
                             const QuerySink& sink, QueryStats* stats) {
    BAT_CHECK_MSG(sink.point != nullptr, "QuerySink requires a point callback");
    BAT_CHECK_MSG(query.quality_lo <= query.quality_hi,
                  "quality_lo must not exceed quality_hi");
    for (const AttrFilter& f : query.attr_filters) {
        BAT_CHECK_MSG(f.attr < file.num_attrs(), "attribute filter index out of range");
        BAT_CHECK_MSG(f.lo <= f.hi, "attribute filter range inverted");
    }
    QueryStats local_stats;
    QueryStats& st = stats != nullptr ? *stats : local_stats;
    // Stats accumulate (see QueryStats in the header); the return value is
    // still this call's emission count.
    const std::uint64_t emitted_before = st.points_emitted;

    QueryContext<Source> ctx{file, query, sink, st, {}, {}, {}, {}};
    ctx.attr_scratch.resize(file.num_attrs());
    ctx.query_bitmaps.reserve(query.attr_filters.size());
    for (const AttrFilter& f : query.attr_filters) {
        const std::uint32_t bits =
            bitmap_for_range(f.lo, f.hi, file.attr_edges(f.attr));
        if (bits == 0) {
            // The filter cannot match anything in this file.
            return 0;
        }
        ctx.query_bitmaps.push_back(bits);
    }

    if (!file.shallow_nodes().empty()) {
        ctx.traverse_shallow();
    }
    return st.points_emitted - emitted_before;
}

std::uint64_t query_bat(const BatFile& file, const BatQuery& query, const QueryCallback& cb,
                        QueryStats* stats) {
    return query_bat_impl(file, query, QuerySink{cb, nullptr}, stats);
}

std::uint64_t query_bat(const BatFile& file, const BatQuery& query, const QuerySink& sink,
                        QueryStats* stats) {
    return query_bat_impl(file, query, sink, stats);
}

std::uint64_t query_bat(const BatDataView& bat, const BatQuery& query,
                        const QueryCallback& cb, QueryStats* stats) {
    return query_bat_impl(bat, query, QuerySink{cb, nullptr}, stats);
}

std::uint64_t query_bat(const BatDataView& bat, const BatQuery& query,
                        const QuerySink& sink, QueryStats* stats) {
    return query_bat_impl(bat, query, sink, stats);
}

BatTreeletView BatDataView::treelet(std::size_t t) const {
    const Treelet& tr = bat_->treelets[t];
    BatTreeletView view;
    view.bounds = tr.bounds;
    view.num_points = tr.num_particles;
    view.max_depth = tr.max_depth;
    view.first_particle = tr.first_particle;
    view.nodes = tr.nodes;
    view.raw_bitmaps = tr.bitmaps;
    view.positions =
        bat_->particles.positions().subspan(3 * tr.first_particle, 3 * tr.num_particles);
    view.attrs.reserve(num_attrs());
    for (std::size_t a = 0; a < num_attrs(); ++a) {
        view.attrs.push_back(
            bat_->particles.attr(a).subspan(tr.first_particle, tr.num_particles));
    }
    return view;
}

}  // namespace bat
