#include "core/bat_query.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bat {

double remap_quality(double quality, int levels) {
    BAT_CHECK(levels >= 1);
    if (quality <= 0.0) {
        return 0.0;
    }
    if (quality >= 1.0) {
        return static_cast<double>(levels);
    }
    // Log remap: the number of LOD particles stored doubles each level, so a
    // linear quality slider would jump abruptly between coarse levels.
    return std::log2(1.0 + quality * (std::exp2(static_cast<double>(levels)) - 1.0));
}

std::uint32_t points_at_depth(double t, int depth, std::uint32_t own_count) {
    const auto d = static_cast<double>(depth);
    if (t <= d) {
        return 0;
    }
    if (t >= d + 1.0) {
        return own_count;
    }
    const double frac = t - d;
    return static_cast<std::uint32_t>(std::lround(frac * static_cast<double>(own_count)));
}

namespace {

template <typename Source>
struct QueryContext {
    const Source& file;
    const BatQuery& query;
    const QueryCallback& cb;
    QueryStats& stats;
    /// Per-attribute query bitmaps (relative to the file's local attribute
    /// ranges); empty when no attribute filters are present.
    std::vector<std::uint32_t> query_bitmaps;  // parallel to query.attr_filters
    std::vector<double> attr_scratch;          // one value per file attribute

    bool box_contains(Vec3 p) const {
        if (!query.box) {
            return true;
        }
        const Box& b = *query.box;
        if (query.inclusive_upper) {
            return b.contains(p);
        }
        return p.x >= b.lower.x && p.x < b.upper.x && p.y >= b.lower.y && p.y < b.upper.y &&
               p.z >= b.lower.z && p.z < b.upper.z;
    }

    bool box_overlaps(const Box& region) const {
        return !query.box || query.box->overlaps(region);
    }

    /// Conservative bitmap test: can this node's subtree contain matches?
    template <typename F>
    bool bitmaps_may_match(F&& node_bitmap) const {
        for (std::size_t f = 0; f < query.attr_filters.size(); ++f) {
            const std::uint32_t node_bits =
                node_bitmap(static_cast<std::size_t>(query.attr_filters[f].attr));
            if ((node_bits & query_bitmaps[f]) == 0) {
                return false;
            }
        }
        return true;
    }

    /// Exact per-point check (removes bitmap false positives) and emit.
    void test_and_emit(const BatTreeletView& view, std::uint32_t i) {
        ++stats.points_tested;
        const Vec3 p = view.position(i);
        if (!box_contains(p)) {
            return;
        }
        for (const AttrFilter& f : query.attr_filters) {
            const double v = view.attrs[f.attr][i];
            if (v < f.lo || v > f.hi) {
                return;
            }
        }
        for (std::size_t a = 0; a < view.attrs.size(); ++a) {
            attr_scratch[a] = view.attrs[a][i];
        }
        ++stats.points_emitted;
        cb(p, attr_scratch);
    }

    void traverse_treelet(std::size_t treelet_index) {
        const BatTreeletView view = file.treelet(treelet_index);
        if (view.nodes.empty()) {
            return;
        }
        const int levels = view.max_depth + 1;
        const double t_lo = remap_quality(query.quality_lo, levels);
        const double t_hi = remap_quality(query.quality_hi, levels);
        if (t_hi <= 0.0) {
            return;
        }
        traverse_node(view, 0, 0, view.bounds, t_lo, t_hi);
    }

    void traverse_node(const BatTreeletView& view, std::size_t node_index, int depth,
                       const Box& region, double t_lo, double t_hi) {
        const TreeletNode& node = view.nodes[node_index];
        ++stats.treelet_nodes_visited;
        if (!box_overlaps(region)) {
            ++stats.pruned_by_box;
            return;
        }
        if (!query.attr_filters.empty()) {
            const auto bitmap = [this, &view, node_index](std::size_t a) {
                return file.treelet_bitmap(view, node_index, a);
            };
            if (!bitmaps_may_match(bitmap)) {
                ++stats.pruned_by_bitmap;
                return;
            }
        }
        // Progressive window over the node's own points.
        const std::uint32_t n_lo = points_at_depth(t_lo, depth, node.own_count);
        const std::uint32_t n_hi = points_at_depth(t_hi, depth, node.own_count);
        for (std::uint32_t i = node.start + n_lo; i < node.start + n_hi; ++i) {
            test_and_emit(view, i);
        }
        if (node.is_leaf()) {
            return;
        }
        // Children hold points only at depth+1 and below; skip the descent
        // when the quality window cannot include them.
        if (t_hi <= static_cast<double>(depth) + 1.0) {
            return;
        }
        Box left = region;
        Box right = region;
        left.upper[node.axis] = node.split;
        right.lower[node.axis] = node.split;
        traverse_node(view, node_index + 1, depth + 1, left, t_lo, t_hi);
        traverse_node(view, static_cast<std::size_t>(node.right_child), depth + 1, right,
                      t_lo, t_hi);
    }

    void traverse_shallow(std::size_t node_index) {
        const ShallowNode& node = file.shallow_nodes()[node_index];
        ++stats.shallow_nodes_visited;
        if (!box_overlaps(node.bounds)) {
            ++stats.pruned_by_box;
            return;
        }
        if (!query.attr_filters.empty()) {
            const auto bitmap = [this, node_index](std::size_t a) {
                return file.shallow_bitmap(node_index, a);
            };
            if (!bitmaps_may_match(bitmap)) {
                ++stats.pruned_by_bitmap;
                return;
            }
        }
        if (node.is_leaf()) {
            traverse_treelet(static_cast<std::size_t>(node.treelet));
            return;
        }
        traverse_shallow(node_index + 1);
        traverse_shallow(static_cast<std::size_t>(node.right_child));
    }
};

}  // namespace

template <typename Source>
std::uint64_t query_bat_impl(const Source& file, const BatQuery& query,
                             const QueryCallback& cb, QueryStats* stats) {
    BAT_CHECK_MSG(query.quality_lo <= query.quality_hi,
                  "quality_lo must not exceed quality_hi");
    for (const AttrFilter& f : query.attr_filters) {
        BAT_CHECK_MSG(f.attr < file.num_attrs(), "attribute filter index out of range");
        BAT_CHECK_MSG(f.lo <= f.hi, "attribute filter range inverted");
    }
    QueryStats local_stats;
    QueryStats& st = stats != nullptr ? *stats : local_stats;
    st = QueryStats{};

    QueryContext<Source> ctx{file, query, cb, st, {}, {}};
    ctx.attr_scratch.resize(file.num_attrs());
    ctx.query_bitmaps.reserve(query.attr_filters.size());
    for (const AttrFilter& f : query.attr_filters) {
        const std::uint32_t bits =
            bitmap_for_range(f.lo, f.hi, file.attr_edges(f.attr));
        if (bits == 0) {
            // The filter cannot match anything in this file.
            return 0;
        }
        ctx.query_bitmaps.push_back(bits);
    }

    if (!file.shallow_nodes().empty()) {
        ctx.traverse_shallow(0);
    }
    return st.points_emitted;
}

std::uint64_t query_bat(const BatFile& file, const BatQuery& query, const QueryCallback& cb,
                        QueryStats* stats) {
    return query_bat_impl(file, query, cb, stats);
}

std::uint64_t query_bat(const BatDataView& bat, const BatQuery& query,
                        const QueryCallback& cb, QueryStats* stats) {
    return query_bat_impl(bat, query, cb, stats);
}

BatTreeletView BatDataView::treelet(std::size_t t) const {
    const Treelet& tr = bat_->treelets[t];
    BatTreeletView view;
    view.bounds = tr.bounds;
    view.num_points = tr.num_particles;
    view.max_depth = tr.max_depth;
    view.first_particle = tr.first_particle;
    view.nodes = tr.nodes;
    view.raw_bitmaps = tr.bitmaps;
    view.positions =
        bat_->particles.positions().subspan(3 * tr.first_particle, 3 * tr.num_particles);
    view.attrs.reserve(num_attrs());
    for (std::size_t a = 0; a < num_attrs(); ++a) {
        view.attrs.push_back(
            bat_->particles.attr(a).subspan(tr.first_particle, tr.num_particles));
    }
    return view;
}

}  // namespace bat
