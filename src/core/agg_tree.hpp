#pragma once
// Adaptive Aggregation Tree (paper §III-A, Fig 1a).
//
// Rank 0 gathers every rank's spatial bounds and particle count and builds a
// k-d tree over the *ranks* whose leaves each hold a similar amount of data.
// Split positions are restricted to rank-bounds edges so no rank's data is
// ever divided between aggregators. Each leaf becomes one output file,
// aggregated and written by one assigned aggregator rank.
//
// The same Aggregation structure is produced by the AUG baseline (aug.hpp)
// and by the trivial file-per-process strategy, so the writer, metadata, and
// performance models are strategy-agnostic.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/vec3.hpp"

namespace bat {

/// Per-rank input to aggregation: the rank's domain bounds and how many
/// particles it currently owns.
struct RankInfo {
    Box bounds;
    std::uint64_t num_particles = 0;
};

struct AggTreeConfig {
    /// Desired size of each output file, in bytes. Determines the number of
    /// leaves and the aggregation factor (paper: tunable for portability).
    std::uint64_t target_file_size = 8ull << 20;
    /// Bytes per particle (schema-dependent; 3*f32 + nattrs*f64).
    std::uint64_t bytes_per_particle = 12 + 14 * 8;
    /// Overfull leaves may grow to this multiple of the target size when the
    /// best available split is too uneven (paper §III-A; results use 1.5x).
    double overfull_factor = 1.5;
    /// A split is "bad" when the heavier side holds at least this many times
    /// the particles of the lighter side (paper's runs use 4).
    double overfull_imbalance = 4.0;
    /// When true, candidate splits on all three axes are tested instead of
    /// only the longest axis (optional mode mentioned in §III-A).
    bool split_all_axes = false;
};

struct AggNode {
    Box bounds;               // union of contained ranks' bounds
    int axis = -1;            // split axis for inner nodes
    float split = 0.f;        // split position (a rank-bounds edge)
    int left = -1;            // child node index; -1 for leaves
    int right = -1;
    int leaf_id = -1;         // index into Aggregation::leaves; -1 for inner

    bool is_leaf() const { return leaf_id >= 0; }
};

struct AggLeaf {
    Box bounds;                    // union of member ranks' bounds
    std::vector<int> ranks;        // member ranks (ascending)
    std::uint64_t num_particles = 0;
    int aggregator = -1;           // rank that aggregates + writes this leaf
};

/// Result of any aggregation strategy: a spatial tree whose leaves are the
/// output files, plus the rank -> leaf map.
struct Aggregation {
    std::vector<AggNode> nodes;    // nodes[0] is the root (when non-empty)
    std::vector<AggLeaf> leaves;
    std::vector<int> rank_to_leaf; // per input rank; -1 only when a rank has
                                   // no particles and fell outside all leaves

    /// IDs of leaves whose bounds overlap `box`.
    std::vector<int> overlapping_leaves(const Box& box) const;

    /// Spread leaf->aggregator assignments evenly across the rank space
    /// (paper §III-A, following Kumar et al. [39]).
    void assign_aggregators(int nranks);

    /// Sum of particles over leaves (for invariant checks).
    std::uint64_t total_particles() const;
};

/// Build the adaptive Aggregation Tree over rank bounds (runs on rank 0).
/// `pool` parallelizes the top-down build (a task per right subtree); pass
/// nullptr for serial construction.
Aggregation build_agg_tree(std::span<const RankInfo> ranks, const AggTreeConfig& config,
                           ThreadPool* pool = nullptr);

/// Trivial baseline: one leaf per rank that owns particles (file per
/// process), with a k-d tree built over the leaves for metadata queries.
Aggregation build_file_per_process(std::span<const RankInfo> ranks);

/// Build a balanced k-d tree over a set of finished leaves (used by the
/// AUG and file-per-process strategies, which produce leaves without a
/// tree). Fills `nodes` and leaf_id links; leaves themselves are untouched.
void build_tree_over_leaves(Aggregation& agg);

}  // namespace bat
