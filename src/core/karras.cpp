#include "core/karras.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace bat {

int common_prefix_bits(std::uint64_t a, std::uint64_t b, int key_bits) {
    BAT_CHECK(key_bits >= 1 && key_bits <= 63);
    const std::uint64_t x = (a ^ b) << (64 - key_bits);
    if (x == 0) {
        return key_bits;
    }
    return std::countl_zero(x);
}

namespace {

/// delta(i, j) from the paper: common prefix of keys i and j, or -1 when j
/// is out of range. Keys are distinct so delta is well defined.
struct Delta {
    std::span<const std::uint64_t> codes;
    int key_bits;

    int operator()(std::int64_t i, std::int64_t j) const {
        if (j < 0 || j >= static_cast<std::int64_t>(codes.size())) {
            return -1;
        }
        return common_prefix_bits(codes[static_cast<std::size_t>(i)],
                                  codes[static_cast<std::size_t>(j)], key_bits);
    }
};

}  // namespace

RadixTree build_radix_tree(std::span<const std::uint64_t> codes, int key_bits,
                           ThreadPool* pool) {
    BAT_CHECK_MSG(!codes.empty(), "radix tree requires at least one key");
    for (std::size_t i = 1; i < codes.size(); ++i) {
        BAT_CHECK_MSG(codes[i - 1] < codes[i], "keys must be sorted and distinct");
    }
    RadixTree tree;
    const auto k = static_cast<std::int64_t>(codes.size());
    if (k == 1) {
        tree.internal.clear();
        tree.root = 0;
        return tree;
    }
    tree.internal.resize(static_cast<std::size_t>(k - 1));
    const Delta delta{codes, key_bits};

    auto build_node = [&](std::size_t idx) {
        const auto i = static_cast<std::int64_t>(idx);
        // Direction of the node's range: towards the neighbour with the
        // longer common prefix.
        const int d = delta(i, i + 1) > delta(i, i - 1) ? 1 : -1;
        const int delta_min = delta(i, i - d);

        // Exponential search for an upper bound on the range length.
        std::int64_t lmax = 2;
        while (delta(i, i + lmax * d) > delta_min) {
            lmax *= 2;
        }
        // Binary search for the actual other end j.
        std::int64_t l = 0;
        for (std::int64_t t = lmax / 2; t >= 1; t /= 2) {
            if (delta(i, i + (l + t) * d) > delta_min) {
                l += t;
            }
        }
        const std::int64_t j = i + l * d;
        const std::int64_t first = std::min(i, j);
        const std::int64_t last = std::max(i, j);

        // Binary search for the split position: the largest s in
        // [first, last) such that delta(first, s+1) > delta_node.
        const int delta_node = delta(i, j);
        std::int64_t s = 0;
        std::int64_t range = last - first;
        for (std::int64_t t = (range + 1) / 2;; t = (t + 1) / 2) {
            if (delta(first, first + s + t) > delta_node) {
                s += t;
            }
            if (t <= 1) {
                break;
            }
        }
        const std::int64_t gamma = first + s;

        RadixNode& node = tree.internal[idx];
        node.first = static_cast<std::int32_t>(first);
        node.last = static_cast<std::int32_t>(last);
        node.prefix_len = delta_node;
        node.left_is_leaf = (gamma == first);
        node.right_is_leaf = (gamma + 1 == last);
        node.left = static_cast<std::int32_t>(gamma);
        node.right = static_cast<std::int32_t>(gamma + 1);
    };

    if (pool != nullptr && pool->num_threads() > 0 && k > 2048) {
        pool->parallel_for(0, static_cast<std::size_t>(k - 1), build_node, 512);
    } else {
        for (std::size_t i = 0; i + 1 < static_cast<std::size_t>(k); ++i) {
            build_node(i);
        }
    }
    tree.root = 0;
    return tree;
}

}  // namespace bat
