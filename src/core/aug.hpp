#pragma once
// Adjustable Uniform Grid (AUG) aggregation — the prior state of the art
// this paper compares against (Kumar et al., "Spatially-aware Parallel I/O
// for Particle Data", ICPP 2019), implemented inside this library to enable
// a direct algorithmic comparison, exactly as the paper does (§VI-A2).
//
// The grid is fit to the bounds of the ranks that own particles and its
// resolution is chosen from the target file size under a *uniform density
// assumption*: total bytes / target size cells, distributed across axes in
// proportion to the domain extents. Each rank is assigned to the grid cell
// containing the center of its bounds; empty cells are discarded. On
// nonuniform distributions the uniform-density assumption breaks down,
// producing imbalanced aggregation — the behaviour our adaptive tree fixes.

#include <span>

#include "core/agg_tree.hpp"

namespace bat {

struct AugConfig {
    std::uint64_t target_file_size = 8ull << 20;
    std::uint64_t bytes_per_particle = 12 + 14 * 8;
};

/// Build an AUG aggregation. The returned structure has one leaf per
/// non-empty grid cell and a k-d tree over the leaves for metadata queries.
Aggregation build_aug(std::span<const RankInfo> ranks, const AugConfig& config);

/// Grid dimensions the AUG would use (exposed for tests and benchmarks).
struct AugGridDims {
    int nx = 1;
    int ny = 1;
    int nz = 1;
    int cells() const { return nx * ny * nz; }
};
AugGridDims aug_grid_dims(const Box& domain, std::uint64_t total_bytes,
                          std::uint64_t target_file_size);

}  // namespace bat
