#include "core/aug.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.hpp"

namespace bat {

AugGridDims aug_grid_dims(const Box& domain, std::uint64_t total_bytes,
                          std::uint64_t target_file_size) {
    BAT_CHECK(target_file_size > 0);
    AugGridDims dims;
    if (domain.empty() || total_bytes == 0) {
        return dims;
    }
    const double want_cells = std::max(
        1.0, static_cast<double>(total_bytes) / static_cast<double>(target_file_size));
    const Vec3 ext = domain.extent();
    // Distribute cells across axes in proportion to the extents so cells are
    // roughly cubic (the uniform-density assumption of the AUG).
    const double ex = std::max(1e-30, static_cast<double>(ext.x));
    const double ey = std::max(1e-30, static_cast<double>(ext.y));
    const double ez = std::max(1e-30, static_cast<double>(ext.z));
    const double scale = std::cbrt(want_cells / (ex * ey * ez));
    dims.nx = std::max(1, static_cast<int>(std::round(ex * scale)));
    dims.ny = std::max(1, static_cast<int>(std::round(ey * scale)));
    dims.nz = std::max(1, static_cast<int>(std::round(ez * scale)));
    // Round-off can undershoot; grow the axis with the coarsest cells until
    // the grid has at least the desired number of cells.
    while (static_cast<double>(dims.cells()) < want_cells) {
        const double cx = ex / dims.nx;
        const double cy = ey / dims.ny;
        const double cz = ez / dims.nz;
        if (cx >= cy && cx >= cz) {
            ++dims.nx;
        } else if (cy >= cz) {
            ++dims.ny;
        } else {
            ++dims.nz;
        }
    }
    return dims;
}

Aggregation build_aug(std::span<const RankInfo> ranks, const AugConfig& config) {
    BAT_CHECK_MSG(!ranks.empty(), "build_aug requires at least one rank");
    Aggregation out;
    out.rank_to_leaf.assign(ranks.size(), -1);

    // Fit the grid to the bounds of the data (the "adjustable" part of the
    // AUG: the grid is resized to a subdomain containing all particles).
    Box domain;
    std::uint64_t total_particles = 0;
    for (const RankInfo& r : ranks) {
        if (r.num_particles > 0) {
            domain.extend(r.bounds);
            total_particles += r.num_particles;
        }
    }
    if (total_particles == 0) {
        return out;
    }
    const AugGridDims dims =
        aug_grid_dims(domain, total_particles * config.bytes_per_particle,
                      config.target_file_size);

    const Vec3 ext = domain.extent();
    auto cell_of = [&](Vec3 p) {
        int c[3];
        const int n[3] = {dims.nx, dims.ny, dims.nz};
        for (int a = 0; a < 3; ++a) {
            const float e = ext[a];
            float t = e > 0.f ? (p[a] - domain.lower[a]) / e : 0.f;
            t = std::clamp(t, 0.f, 1.f);
            c[a] = std::min(static_cast<int>(t * static_cast<float>(n[a])), n[a] - 1);
        }
        return (c[2] * dims.ny + c[1]) * dims.nx + c[0];
    };

    // Assign each particle-owning rank to the cell containing its center;
    // discard empty cells (paper: "discards empty regions of the grid").
    std::map<int, AggLeaf> cells;  // ordered so leaf numbering is deterministic
    for (std::size_t r = 0; r < ranks.size(); ++r) {
        if (ranks[r].num_particles == 0) {
            continue;
        }
        const int cell = cell_of(ranks[r].bounds.center());
        AggLeaf& leaf = cells[cell];
        leaf.bounds.extend(ranks[r].bounds);
        leaf.ranks.push_back(static_cast<int>(r));
        leaf.num_particles += ranks[r].num_particles;
    }

    out.leaves.reserve(cells.size());
    for (auto& [cell, leaf] : cells) {
        (void)cell;
        const int leaf_id = static_cast<int>(out.leaves.size());
        for (int r : leaf.ranks) {
            out.rank_to_leaf[static_cast<std::size_t>(r)] = leaf_id;
        }
        out.leaves.push_back(std::move(leaf));
    }
    build_tree_over_leaves(out);
    return out;
}

}  // namespace bat
