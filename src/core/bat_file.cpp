#include "core/bat_file.hpp"

#include <cstring>
#include <unordered_map>

#include "util/buffer.hpp"
#include "util/check.hpp"

namespace bat {

namespace {

/// Incremental bitmap dictionary with the reserved all-ones entry at ID 0.
class BitmapDictionary {
public:
    BitmapDictionary() {
        entries_.push_back(0xFFFFFFFFu);
        ids_.emplace(0xFFFFFFFFu, kBitmapIdAllOnes);
    }

    std::uint16_t intern(std::uint32_t bitmap) {
        const auto it = ids_.find(bitmap);
        if (it != ids_.end()) {
            return it->second;
        }
        if (entries_.size() >= 65536) {
            // Paper: 16-bit IDs limit the dictionary to 65k bitmaps, "more
            // than sufficient in practice". If a pathological data set
            // overflows it we degrade to the conservative all-ones bitmap.
            return kBitmapIdAllOnes;
        }
        const auto id = static_cast<std::uint16_t>(entries_.size());
        entries_.push_back(bitmap);
        ids_.emplace(bitmap, id);
        return id;
    }

    const std::vector<std::uint32_t>& entries() const { return entries_; }

private:
    std::vector<std::uint32_t> entries_;
    std::unordered_map<std::uint32_t, std::uint16_t> ids_;
};

Box box_from(const float b[6]) {
    return Box({b[0], b[1], b[2]}, {b[3], b[4], b[5]});
}

}  // namespace

std::vector<std::byte> serialize_bat(const BatData& bat, const BatDeltaSpec* delta) {
    const std::size_t nattrs = bat.num_attrs();
    const bool has_refs = delta != nullptr && !delta->refs.empty();
    if (has_refs) {
        BAT_CHECK_MSG(delta->refs.size() == bat.treelets.size(),
                      "delta spec must cover every treelet");
    }
    auto ref_of = [&](std::size_t t) {
        return has_refs ? delta->refs[t] : DeltaRef{};
    };
    FileHeader header;
    if (delta != nullptr && !delta->base_files.empty()) {
        header.flags |= kBatFlagHasBases;
    }
    header.num_particles = bat.particles.count();
    header.num_attrs = static_cast<std::uint32_t>(nattrs);
    header.subprefix_bits = static_cast<std::uint32_t>(bat.config.subprefix_bits);
    header.lod_per_inner = static_cast<std::uint32_t>(bat.config.lod_per_inner);
    header.max_leaf_size = static_cast<std::uint32_t>(bat.config.max_leaf_size);
    header.num_shallow_nodes = static_cast<std::uint32_t>(bat.shallow_nodes.size());
    header.num_treelets = static_cast<std::uint32_t>(bat.treelets.size());
    header.bounds[0] = bat.bounds.lower.x;
    header.bounds[1] = bat.bounds.lower.y;
    header.bounds[2] = bat.bounds.lower.z;
    header.bounds[3] = bat.bounds.upper.x;
    header.bounds[4] = bat.bounds.upper.y;
    header.bounds[5] = bat.bounds.upper.z;

    // Intern every bitmap up front (shallow tree first: it lives at the
    // start of the file and is read on every query).
    BitmapDictionary dict;
    std::vector<std::uint16_t> shallow_ids(bat.shallow_bitmaps.size());
    for (std::size_t i = 0; i < bat.shallow_bitmaps.size(); ++i) {
        shallow_ids[i] = dict.intern(bat.shallow_bitmaps[i]);
    }
    // Referenced treelets keep their bitmaps in the base file (their IDs
    // index the base's dictionary), so only inline treelets intern here.
    std::vector<std::vector<std::uint16_t>> treelet_ids(bat.treelets.size());
    for (std::size_t t = 0; t < bat.treelets.size(); ++t) {
        if (ref_of(t).base_file >= 0) {
            continue;
        }
        const Treelet& tr = bat.treelets[t];
        treelet_ids[t].resize(tr.bitmaps.size());
        for (std::size_t i = 0; i < tr.bitmaps.size(); ++i) {
            treelet_ids[t][i] = dict.intern(tr.bitmaps[i]);
        }
    }
    header.dict_size = static_cast<std::uint32_t>(dict.entries().size());

    BufferWriter w;
    const std::size_t header_pos = w.size();
    w.write(header);  // patched below once offsets are known

    for (std::size_t a = 0; a < nattrs; ++a) {
        w.write_string(bat.particles.attr_names()[a]);
        w.write(bat.attr_ranges[a].first);
        w.write(bat.attr_ranges[a].second);
        // v2: bitmap bin edges (equal-width or equal-depth; §VII-A).
        BAT_CHECK(bat.attr_edges[a].size() == kBitmapBins + 1);
        w.write_span(std::span<const double>(bat.attr_edges[a]));
    }

    if (header.flags & kBatFlagHasBases) {
        w.write(static_cast<std::uint32_t>(delta->base_files.size()));
        for (const std::string& name : delta->base_files) {
            w.write_string(name);
        }
    }

    w.align_to(8);
    header.shallow_nodes_offset = w.size();
    w.write_span(std::span<const ShallowNode>(bat.shallow_nodes));

    header.shallow_bitmap_ids_offset = w.size();
    w.write_span(std::span<const std::uint16_t>(shallow_ids));

    w.align_to(4);
    header.dict_offset = w.size();
    w.write_span(std::span<const std::uint32_t>(dict.entries()));

    w.align_to(8);
    header.treelet_dir_offset = w.size();
    const std::size_t dir_pos = w.size();
    for (std::size_t t = 0; t < bat.treelets.size(); ++t) {
        const Treelet& tr = bat.treelets[t];
        TreeletDirEntry entry;  // offset patched once the treelet is placed
        entry.num_nodes = static_cast<std::uint32_t>(tr.nodes.size());
        entry.num_points = tr.num_particles;
        entry.bounds[0] = tr.bounds.lower.x;
        entry.bounds[1] = tr.bounds.lower.y;
        entry.bounds[2] = tr.bounds.lower.z;
        entry.bounds[3] = tr.bounds.upper.x;
        entry.bounds[4] = tr.bounds.upper.y;
        entry.bounds[5] = tr.bounds.upper.z;
        entry.max_depth = tr.max_depth;
        entry.first_particle = tr.first_particle;
        const DeltaRef ref = ref_of(t);
        if (ref.base_file >= 0) {
            BAT_CHECK(static_cast<std::size_t>(ref.base_file) <
                      delta->base_files.size());
            entry.base_file = ref.base_file;
            entry.base_treelet = ref.base_treelet;
        }
        w.write(entry);
    }

    for (std::size_t t = 0; t < bat.treelets.size(); ++t) {
        if (ref_of(t).base_file >= 0) {
            continue;  // payload lives in the base file
        }
        const Treelet& tr = bat.treelets[t];
        w.align_to(kTreeletAlignment);
        const std::uint64_t offset = w.size();
        w.patch(dir_pos + t * sizeof(TreeletDirEntry) + offsetof(TreeletDirEntry, offset),
                offset);
        w.write(kTreeletMagic);
        w.write(static_cast<std::uint32_t>(tr.nodes.size()));
        w.write(tr.num_particles);
        w.write(std::uint32_t{0});
        w.write_span(std::span<const TreeletNode>(tr.nodes));
        w.write_span(std::span<const std::uint16_t>(treelet_ids[t]));
        w.align_to(4);
        const std::size_t p0 = 3 * tr.first_particle;
        w.write_span(bat.particles.positions().subspan(p0, 3 * tr.num_particles));
        w.align_to(8);
        for (std::size_t a = 0; a < nattrs; ++a) {
            w.write_span(bat.particles.attr(a).subspan(tr.first_particle, tr.num_particles));
        }
    }

    header.file_size = w.size();
    w.patch(header_pos, header);
    return w.take();
}

void write_bat_file(const std::filesystem::path& path, const BatData& bat) {
    const std::vector<std::byte> bytes = serialize_bat(bat);
    write_file(path, bytes);
}

BatSizeStats bat_size_stats(const BatData& bat, std::uint64_t file_bytes) {
    BatSizeStats stats;
    stats.file_bytes = file_bytes;
    stats.raw_particle_bytes = bat.particles.count() * bat.particles.bytes_per_particle();
    return stats;
}

// ---- BatFile ---------------------------------------------------------------

namespace {

/// Guards against reference cycles between delta files (impossible for
/// writer-produced chains, which only ever point backwards in time, but a
/// corrupted or hand-crafted pair of files could otherwise recurse forever).
thread_local int g_open_depth = 0;

struct OpenDepthGuard {
    OpenDepthGuard() {
        BAT_CHECK_MSG(++g_open_depth <= 64, "BAT delta base chain too deep");
    }
    ~OpenDepthGuard() { --g_open_depth; }
};

}  // namespace

BatFile::BatFile(const std::filesystem::path& path, const BatFileOpener& opener)
    : map_(path) {
    parse(map_.bytes());
    open_bases(path.parent_path(), opener);
}

BatFile::BatFile(std::span<const std::byte> bytes) {
    parse(bytes);
    BAT_CHECK_MSG(base_names_.empty(),
                  "buffer-backed BAT cannot resolve delta base files");
}

void BatFile::open_bases(const std::filesystem::path& dir, const BatFileOpener& opener) {
    if (base_names_.empty()) {
        return;
    }
    const OpenDepthGuard guard;
    bases_.reserve(base_names_.size());
    for (const std::string& name : base_names_) {
        const std::filesystem::path base_path = dir / name;
        bases_.push_back(opener ? opener(base_path)
                                : std::make_shared<const BatFile>(base_path, opener));
        BAT_CHECK_MSG(bases_.back() != nullptr,
                      "opener returned no BAT for base file " << name);
    }
}

namespace {

/// Reinterpret a byte range of the mapping as an array of T. The offsets
/// are aligned by construction of the format; verify anyway.
template <typename T>
std::span<const T> view_array(std::span<const std::byte> bytes, std::uint64_t offset,
                              std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    BAT_CHECK_MSG(offset + count * sizeof(T) <= bytes.size(), "BAT file truncated");
    const auto addr = reinterpret_cast<std::uintptr_t>(bytes.data() + offset);
    BAT_CHECK_MSG(addr % alignof(T) == 0, "misaligned BAT array");
    return {reinterpret_cast<const T*>(bytes.data() + offset), count};
}

}  // namespace

void BatFile::parse(std::span<const std::byte> bytes) {
    bytes_ = bytes;
    BAT_CHECK_MSG(bytes.size() >= sizeof(FileHeader), "file too small for a BAT header");
    std::memcpy(&header_, bytes.data(), sizeof(FileHeader));
    BAT_CHECK_MSG(header_.magic == kBatMagic, "not a BAT file (bad magic)");
    BAT_CHECK_MSG(header_.version == kBatVersion,
                  "unsupported BAT version " << header_.version);
    BAT_CHECK_MSG(header_.file_size == bytes.size(),
                  "BAT file size mismatch: header says " << header_.file_size << ", got "
                                                         << bytes.size());

    BufferReader r(bytes);
    r.seek(sizeof(FileHeader));
    attr_names_.resize(header_.num_attrs);
    attr_ranges_.resize(header_.num_attrs);
    attr_edges_.resize(header_.num_attrs);
    for (std::size_t a = 0; a < header_.num_attrs; ++a) {
        attr_names_[a] = r.read_string();
        attr_ranges_[a].first = r.read<double>();
        attr_ranges_[a].second = r.read<double>();
        attr_edges_[a].resize(kBitmapBins + 1);
        r.read_into(std::span<double>(attr_edges_[a]));
    }

    if (header_.flags & kBatFlagHasBases) {
        const auto num_bases = r.read<std::uint32_t>();
        base_names_.resize(num_bases);
        for (std::uint32_t i = 0; i < num_bases; ++i) {
            base_names_[i] = r.read_string();
        }
    }

    shallow_nodes_ =
        view_array<ShallowNode>(bytes, header_.shallow_nodes_offset, header_.num_shallow_nodes);
    shallow_bitmap_ids_ = view_array<std::uint16_t>(
        bytes, header_.shallow_bitmap_ids_offset,
        static_cast<std::size_t>(header_.num_shallow_nodes) * header_.num_attrs);
    dict_ = view_array<std::uint32_t>(bytes, header_.dict_offset, header_.dict_size);
    treelet_dir_ =
        view_array<TreeletDirEntry>(bytes, header_.treelet_dir_offset, header_.num_treelets);
    BAT_CHECK_MSG(!dict_.empty() || header_.num_shallow_nodes == 0,
                  "BAT dictionary missing");
    for (const TreeletDirEntry& entry : treelet_dir_) {
        if (entry.base_file >= 0) {
            BAT_CHECK_MSG(static_cast<std::size_t>(entry.base_file) < base_names_.size(),
                          "delta treelet references an unlisted base file");
        }
    }
}

Box BatFile::bounds() const { return box_from(header_.bounds); }

std::uint32_t BatFile::shallow_bitmap(std::size_t i, std::size_t a) const {
    const std::uint16_t id = shallow_bitmap_ids_[i * header_.num_attrs + a];
    BAT_CHECK(id < dict_.size());
    return dict_[id];
}

BatFile::TreeletView BatFile::treelet(std::size_t t) const {
    BAT_CHECK(t < treelet_dir_.size());
    const TreeletDirEntry& entry = treelet_dir_[t];
    if (entry.base_file >= 0) {
        // Delta treelet: byte-identical payload lives in the base file. The
        // base view is complete (its spans point into the base mapping, its
        // dict is the base's dictionary); only first_particle is this
        // file's — it positions the treelet in *our* file-wide point order.
        const auto& base = bases_[static_cast<std::size_t>(entry.base_file)];
        TreeletView view = base->treelet(entry.base_treelet);
        BAT_CHECK_MSG(view.num_points == entry.num_points,
                      "delta treelet size mismatch against base file");
        view.first_particle = entry.first_particle;
        return view;
    }
    TreeletView view;
    view.bounds = box_from(entry.bounds);
    view.num_points = entry.num_points;
    view.max_depth = entry.max_depth;
    view.first_particle = entry.first_particle;

    std::uint64_t pos = entry.offset;
    BAT_CHECK_MSG(pos % kTreeletAlignment == 0, "treelet not page aligned");
    BufferReader r(bytes_);
    r.seek(pos);
    BAT_CHECK_MSG(r.read<std::uint32_t>() == kTreeletMagic, "bad treelet magic");
    BAT_CHECK(r.read<std::uint32_t>() == entry.num_nodes);
    BAT_CHECK(r.read<std::uint32_t>() == entry.num_points);
    r.read<std::uint32_t>();  // reserved
    pos += 16;

    view.dict = dict_;
    view.nodes = view_array<TreeletNode>(bytes_, pos, entry.num_nodes);
    pos += entry.num_nodes * sizeof(TreeletNode);
    view.bitmap_ids = view_array<std::uint16_t>(
        bytes_, pos, static_cast<std::size_t>(entry.num_nodes) * header_.num_attrs);
    pos += static_cast<std::uint64_t>(entry.num_nodes) * header_.num_attrs * 2;
    pos = (pos + 3) & ~std::uint64_t{3};
    view.positions = view_array<float>(bytes_, pos, 3ull * entry.num_points);
    pos += 12ull * entry.num_points;
    pos = (pos + 7) & ~std::uint64_t{7};
    view.attrs.reserve(header_.num_attrs);
    for (std::size_t a = 0; a < header_.num_attrs; ++a) {
        view.attrs.push_back(view_array<double>(bytes_, pos, entry.num_points));
        pos += 8ull * entry.num_points;
    }
    return view;
}

std::uint32_t BatFile::treelet_bitmap(const TreeletView& view, std::size_t node,
                                      std::size_t a) const {
    // Resolve through the view's own dictionary: a delta treelet's IDs
    // index the base file's dictionary, not ours.
    const std::uint16_t id = view.bitmap_ids[node * header_.num_attrs + a];
    BAT_CHECK(id < view.dict.size());
    return view.dict[id];
}

}  // namespace bat
