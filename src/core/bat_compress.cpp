#include "core/bat_compress.hpp"

#include <algorithm>
#include <cmath>

#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/mmap_file.hpp"

namespace bat {

namespace {

constexpr std::uint32_t kBatzMagic = 0x5a544142;  // "BATZ"
constexpr std::uint32_t kBatzVersion = 1;
constexpr double kLevels = 65535.0;

std::uint16_t quantize(double v, double lo, double hi) {
    if (hi <= lo) {
        return 0;
    }
    const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
    return static_cast<std::uint16_t>(std::lround(t * kLevels));
}

double dequantize(std::uint16_t q, double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(q) / kLevels);
}

void write_box(BufferWriter& w, const Box& b) {
    w.write(b.lower.x);
    w.write(b.lower.y);
    w.write(b.lower.z);
    w.write(b.upper.x);
    w.write(b.upper.y);
    w.write(b.upper.z);
}

Box read_box(BufferReader& r) {
    Box b;
    b.lower.x = r.read<float>();
    b.lower.y = r.read<float>();
    b.lower.z = r.read<float>();
    b.upper.x = r.read<float>();
    b.upper.y = r.read<float>();
    b.upper.z = r.read<float>();
    return b;
}

}  // namespace

std::vector<std::byte> compress_bat(const BatData& bat) {
    const std::size_t nattrs = bat.num_attrs();
    BufferWriter w;
    w.write(kBatzMagic);
    w.write(kBatzVersion);
    w.write(static_cast<std::uint64_t>(bat.particles.count()));
    w.write(static_cast<std::uint32_t>(nattrs));
    w.write(static_cast<std::int32_t>(bat.config.subprefix_bits));
    w.write(static_cast<std::int32_t>(bat.config.lod_per_inner));
    w.write(static_cast<std::int32_t>(bat.config.max_leaf_size));
    w.write(bat.config.seed);
    write_box(w, bat.bounds);
    for (std::size_t a = 0; a < nattrs; ++a) {
        w.write_string(bat.particles.attr_names()[a]);
        w.write(bat.attr_ranges[a].first);
        w.write(bat.attr_ranges[a].second);
        BAT_CHECK(bat.attr_edges[a].size() == kBitmapBins + 1);
        w.write_span(std::span<const double>(bat.attr_edges[a]));
    }

    // Shallow tree verbatim (bitmaps are recomputed on decode, so only the
    // structure is stored).
    w.write(static_cast<std::uint32_t>(bat.shallow_nodes.size()));
    w.write_span(std::span<const ShallowNode>(bat.shallow_nodes));

    // Treelets: structure + quantized payload.
    w.write(static_cast<std::uint32_t>(bat.treelets.size()));
    for (const Treelet& t : bat.treelets) {
        write_box(w, t.bounds);
        w.write(t.first_particle);
        w.write(t.num_particles);
        w.write(t.max_depth);
        w.write(static_cast<std::uint32_t>(t.nodes.size()));
        w.write_span(std::span<const TreeletNode>(t.nodes));
        // Quantized positions relative to the treelet bounds.
        const Box& b = t.bounds;
        for (std::uint32_t i = 0; i < t.num_particles; ++i) {
            const Vec3 p = bat.particles.position(t.first_particle + i);
            for (int axis = 0; axis < 3; ++axis) {
                w.write(quantize(p[axis], b.lower[axis], b.upper[axis]));
            }
        }
        // Quantized attributes relative to the local ranges.
        for (std::size_t a = 0; a < nattrs; ++a) {
            const auto [lo, hi] = bat.attr_ranges[a];
            const std::span<const double> values =
                bat.particles.attr(a).subspan(t.first_particle, t.num_particles);
            for (double v : values) {
                w.write(quantize(v, lo, hi));
            }
        }
    }
    return w.take();
}

BatData decompress_bat(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    BAT_CHECK_MSG(r.read<std::uint32_t>() == kBatzMagic, "not a compressed BAT (.batz)");
    BAT_CHECK_MSG(r.read<std::uint32_t>() == kBatzVersion,
                  "unsupported .batz version");
    BatData bat;
    const auto num_particles = r.read<std::uint64_t>();
    const auto nattrs = r.read<std::uint32_t>();
    bat.config.subprefix_bits = r.read<std::int32_t>();
    bat.config.lod_per_inner = r.read<std::int32_t>();
    bat.config.max_leaf_size = r.read<std::int32_t>();
    bat.config.seed = r.read<std::uint64_t>();
    bat.bounds = read_box(r);
    std::vector<std::string> names(nattrs);
    bat.attr_ranges.resize(nattrs);
    bat.attr_edges.resize(nattrs);
    for (std::size_t a = 0; a < nattrs; ++a) {
        names[a] = r.read_string();
        bat.attr_ranges[a].first = r.read<double>();
        bat.attr_ranges[a].second = r.read<double>();
        bat.attr_edges[a].resize(kBitmapBins + 1);
        r.read_into(std::span<double>(bat.attr_edges[a]));
    }
    bat.particles = ParticleSet(std::move(names));
    bat.particles.resize(num_particles);

    bat.shallow_nodes.resize(r.read<std::uint32_t>());
    r.read_into(std::span<ShallowNode>(bat.shallow_nodes));

    bat.treelets.resize(r.read<std::uint32_t>());
    for (Treelet& t : bat.treelets) {
        t.bounds = read_box(r);
        t.first_particle = r.read<std::uint32_t>();
        t.num_particles = r.read<std::uint32_t>();
        t.max_depth = r.read<std::int32_t>();
        t.nodes.resize(r.read<std::uint32_t>());
        r.read_into(std::span<TreeletNode>(t.nodes));
        for (std::uint32_t i = 0; i < t.num_particles; ++i) {
            Vec3 p;
            for (int axis = 0; axis < 3; ++axis) {
                p[axis] = static_cast<float>(dequantize(
                    r.read<std::uint16_t>(), t.bounds.lower[axis], t.bounds.upper[axis]));
            }
            bat.particles.set_position(t.first_particle + i, p);
        }
        for (std::size_t a = 0; a < nattrs; ++a) {
            const auto [lo, hi] = bat.attr_ranges[a];
            const std::span<double> values =
                bat.particles.attr_mut(a).subspan(t.first_particle, t.num_particles);
            for (double& v : values) {
                v = dequantize(r.read<std::uint16_t>(), lo, hi);
            }
        }
    }

    // Recompute bitmaps from the decoded values so attribute filtering is
    // exact for the reconstruction.
    for (Treelet& t : bat.treelets) {
        t.bitmaps.assign(t.nodes.size() * nattrs, 0);
        for (std::size_t i = t.nodes.size(); i-- > 0;) {
            const TreeletNode& node = t.nodes[i];
            std::uint32_t* bm = t.bitmaps.data() + i * nattrs;
            const std::uint32_t begin = t.first_particle + node.start;
            for (std::uint32_t p = begin; p < begin + node.own_count; ++p) {
                for (std::size_t a = 0; a < nattrs; ++a) {
                    bm[a] |= 1u << bin_of(bat.particles.attr(a)[p], bat.attr_edges[a]);
                }
            }
            if (!node.is_leaf()) {
                const std::size_t l = i + 1;
                const auto rc = static_cast<std::size_t>(node.right_child);
                for (std::size_t a = 0; a < nattrs; ++a) {
                    bm[a] |= t.bitmaps[l * nattrs + a] | t.bitmaps[rc * nattrs + a];
                }
            }
        }
    }
    bat.shallow_bitmaps.assign(bat.shallow_nodes.size() * nattrs, 0);
    for (std::size_t i = bat.shallow_nodes.size(); i-- > 0;) {
        const ShallowNode& node = bat.shallow_nodes[i];
        std::uint32_t* bm = bat.shallow_bitmaps.data() + i * nattrs;
        if (node.is_leaf()) {
            const Treelet& t = bat.treelets[static_cast<std::size_t>(node.treelet)];
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] = t.nodes.empty() ? 0 : t.bitmaps[a];
            }
        } else {
            const std::size_t l = i + 1;
            const auto rc = static_cast<std::size_t>(node.right_child);
            for (std::size_t a = 0; a < nattrs; ++a) {
                bm[a] = bat.shallow_bitmaps[l * nattrs + a] |
                        bat.shallow_bitmaps[rc * nattrs + a];
            }
        }
    }
    return bat;
}

void write_compressed_bat(const std::filesystem::path& path, const BatData& bat) {
    write_file(path, compress_bat(bat));
}

BatData read_compressed_bat(const std::filesystem::path& path) {
    return decompress_bat(read_file(path));
}

QuantizationError quantization_error_bounds(const BatData& bat) {
    QuantizationError err;
    err.max_position_error = Vec3(0.f);
    err.max_attr_error.assign(bat.num_attrs(), 0.0);
    for (const Treelet& t : bat.treelets) {
        const Vec3 ext = t.bounds.extent();
        for (int a = 0; a < 3; ++a) {
            err.max_position_error[a] = std::max(
                err.max_position_error[a], static_cast<float>(ext[a] / kLevels));
        }
    }
    for (std::size_t a = 0; a < bat.num_attrs(); ++a) {
        err.max_attr_error[a] =
            (bat.attr_ranges[a].second - bat.attr_ranges[a].first) / kLevels;
    }
    return err;
}

}  // namespace bat
