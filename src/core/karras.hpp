#pragma once
// Karras's parallel bottom-up radix-tree construction (HPG 2012), used by
// the BAT builder to construct the shallow tree over merged Morton-code
// subprefixes (paper §III-C1). For k sorted, distinct keys the algorithm
// computes all k-1 internal nodes independently — here parallelized with
// ThreadPool::parallel_for — by locating each node's key range and split
// from common-prefix lengths. The resulting radix tree is interpreted as a
// k-d tree: the split bit's position selects the split axis and plane.

#include <cstdint>
#include <span>
#include <vector>

#include "util/thread_pool.hpp"

namespace bat {

/// One node of the binary radix tree. Internal nodes are numbered
/// 0..k-2, leaves 0..k-1 (separate index spaces, as in the paper).
struct RadixNode {
    // Child index; the flag says whether it refers to a leaf or an
    // internal node.
    std::int32_t left = -1;
    std::int32_t right = -1;
    bool left_is_leaf = false;
    bool right_is_leaf = false;
    // Range of keys covered by this node and the length of their common
    // prefix (in bits, counted from the MSB of the key_bits-wide key).
    std::int32_t first = 0;
    std::int32_t last = 0;
    std::int32_t prefix_len = 0;
};

struct RadixTree {
    std::vector<RadixNode> internal;  // empty when there is a single key
    std::int32_t root = 0;
};

/// Build the radix tree over `codes`: sorted, strictly increasing keys of
/// `key_bits` significant bits (key_bits in [1, 63]). `pool` parallelizes
/// the per-internal-node computation; nullptr runs serially.
RadixTree build_radix_tree(std::span<const std::uint64_t> codes, int key_bits,
                           ThreadPool* pool = nullptr);

/// Length of the common prefix of two distinct key_bits-wide keys.
int common_prefix_bits(std::uint64_t a, std::uint64_t b, int key_bits);

}  // namespace bat
