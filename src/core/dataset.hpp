#pragma once
// Dataset: postprocess-side view of one written timestep — the top-level
// metadata plus lazily opened (mmapped) leaf BAT files — exposing the
// paper's §V visualization reads over the *whole* data set as if it were a
// single file: spatial box queries, attribute filtering, and progressive
// multiresolution reads, with leaf-level pruning through the Aggregation
// Tree metadata before any leaf file is touched.

#include <filesystem>
#include <map>
#include <memory>
#include <optional>

#include "core/bat_file.hpp"
#include "core/bat_query.hpp"
#include "core/metadata.hpp"

namespace bat {

class Dataset {
public:
    /// Open from a metadata file written by the I/O pipeline.
    explicit Dataset(const std::filesystem::path& metadata_path);

    const Metadata& metadata() const { return meta_; }
    std::uint64_t num_particles() const { return meta_.total_particles(); }
    std::size_t num_attrs() const { return meta_.num_attrs(); }
    const std::vector<std::string>& attr_names() const { return meta_.attr_names; }
    std::pair<double, double> attr_range(std::size_t a) const {
        return meta_.global_ranges[a];
    }
    /// Union of all leaf bounds.
    Box bounds() const;

    /// Index of a named attribute; throws if absent.
    std::size_t attr_index(const std::string& name) const;

    /// Run a query across every matching leaf file; returns points emitted.
    /// Leaves are pruned through the metadata (spatially and by the
    /// global-range bitmaps) before being opened.
    std::uint64_t query(const BatQuery& query, const QueryCallback& cb,
                        QueryStats* stats = nullptr);

    /// Convenience: collect the matching points into a ParticleSet.
    ParticleSet collect(const BatQuery& query);

    /// Leaf file handle (opened/mmapped on first use).
    const BatFile& leaf_file(int leaf_id);
    /// Number of leaf files currently open.
    std::size_t open_files() const { return files_.size(); }

private:
    std::filesystem::path dir_;
    Metadata meta_;
    std::map<int, std::unique_ptr<BatFile>> files_;
};

}  // namespace bat
