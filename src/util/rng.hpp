#pragma once
// Deterministic, seedable PRNG (PCG32). Every stochastic component in the
// library (workload generators, stratified LOD sampling, tests) draws from a
// seeded Pcg32 so runs are bit-reproducible across machines — a requirement
// for comparing adaptive vs. baseline aggregation on "the same" data.

#include <cmath>
#include <cstdint>

namespace bat {

/// Minimal PCG32 generator (O'Neill, pcg-random.org; XSH-RR variant).
class Pcg32 {
public:
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
        state_ = 0u;
        inc_ = (stream << 1u) | 1u;
        next_u32();
        state_ += seed;
        next_u32();
    }

    std::uint32_t next_u32() {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        const auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    std::uint64_t next_u64() {
        return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
    }

    /// Uniform in [0, 1).
    float next_float() {
        return static_cast<float>(next_u32() >> 8) * (1.f / 16777216.f);
    }

    /// Uniform in [0, 1).
    double next_double() {
        return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
    }

    /// Uniform in [lo, hi).
    float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

    /// Unbiased uniform integer in [0, bound). bound must be > 0.
    std::uint32_t next_bounded(std::uint32_t bound) {
        const std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint32_t r = next_u32();
            if (r >= threshold) {
                return r % bound;
            }
        }
    }

    /// Standard normal via Box-Muller (one value per call; simple, adequate).
    float next_normal();

private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

inline float Pcg32::next_normal() {
    // Box-Muller; discard the second value for simplicity.
    float u1 = next_float();
    const float u2 = next_float();
    if (u1 < 1e-12f) {
        u1 = 1e-12f;
    }
    const float r = std::sqrt(-2.f * std::log(u1));
    return r * std::cos(6.28318530718f * u2);
}

/// Derive a child seed deterministically (splitmix64 finalizer) so that
/// per-rank / per-timestep streams are independent but reproducible.
inline std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace bat
