#include "util/thread_pool.hpp"

#include <algorithm>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace bat {

namespace {

// Stack of groups whose tasks this thread is currently executing; used to
// detect a task wait()ing on its own group (which can never finish: the
// running task's pending count only drops after the task returns).
thread_local std::vector<TaskGroup*> t_executing_groups;

// Current parallel_for nesting depth on this thread.
thread_local int t_parallel_for_depth = 0;

}  // namespace

TaskGroup::~TaskGroup() {
    // A group must be drained before destruction; waiting here keeps the
    // failure mode (forgot to wait) safe instead of a use-after-free.
    if (pending_.load(std::memory_order_acquire) != 0) {
        try {
            wait();
        } catch (...) {
            // Destructors must not throw; the error was already recorded.
        }
    }
    if (pending_.load(std::memory_order_acquire) != 0) {
        // wait() aborted early (DeadlockError during schedule exploration):
        // pull our queued tasks back out so none outlives the group, then
        // ride out the in-flight ones.
        pool_.purge_group(this);
        while (pending_.load(std::memory_order_acquire) != 0) {
            std::this_thread::yield();
        }
    }
}

void TaskGroup::run(std::function<void()> f) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    pool_.enqueue(ThreadPool::Task{std::move(f), this});
}

void TaskGroup::wait() {
    if (lockdbg::enabled() &&
        std::find(t_executing_groups.begin(), t_executing_groups.end(), this) !=
            t_executing_groups.end()) {
        lockdbg::fatal(
            "TaskGroup::wait() called from inside one of the group's own tasks — "
            "the task's pending count cannot reach zero (self-wait deadlock)");
    }
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (!pool_.try_run_one()) {
            // Under schedule exploration this is a free switch to another
            // runnable thread (and throws once the run is declared
            // deadlocked); otherwise a plain OS yield.
            sched::yield_blocked("taskgroup.wait");
        }
    }
    if (sched::maybe_active() && sched::this_thread_scheduled()) {
        std::lock_guard<std::mutex> vc_lock(vc_mutex_);
        sched::acquire_token(done_vc_);
    }
    std::lock_guard<CheckedMutex> lock(err_mutex_);
    if (first_error_) {
        std::exception_ptr e = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(e);
    }
}

std::size_t ThreadPool::default_concurrency() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        // Announce before spawning: the creating thread fixes the worker's
        // scheduler slot (and donates its clock) deterministically; handle
        // is 0 when no scheduled run is active.
        const std::uint64_t handle =
            sched::maybe_active() ? sched::announce_thread("pool.worker" + std::to_string(i))
                                  : 0;
        worker_handles_.push_back(handle);
        workers_.emplace_back([this, handle] { worker_loop(handle); });
    }
    diag_provider_ = obs::register_diag_provider("pool", [this] {
        return "{\"workers\":" + std::to_string(workers_.size()) +
               ",\"queue_depth\":" + std::to_string(queue_depth()) +
               ",\"active_tasks\":" + std::to_string(active_tasks()) + "}";
    });
}

ThreadPool::~ThreadPool() {
    obs::unregister_diag_provider(diag_provider_);
    {
        std::lock_guard<CheckedMutex> lock(mutex_);
        shutting_down_ = true;
    }
    cv_.notify_all();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        // Scheduled join (see Runtime::run_impl_inner): wait for the worker
        // to leave the schedule, then reap it natively with the token held
        // so the decision stream stays deterministic.
        if (sched::maybe_active() && sched::this_thread_scheduled()) {
            try {
                while (!sched::thread_finished(worker_handles_[i])) {
                    sched::yield_blocked("pool.join");
                }
            } catch (const sched::DeadlockError&) {
                // Workers leave the schedule on a declared deadlock and fall
                // back to the native cv wait; shutting_down_ is already set,
                // so the native join below still completes.
            }
        }
        workers_[i].join();
    }
    // Drain any tasks that never got picked up (possible with 0 workers).
    while (try_run_one()) {
    }
}

void ThreadPool::enqueue(Task t) {
    if (obs::trace_enabled()) {
        t.enqueue_ns = obs::trace_now_ns();
    }
    t.qctx = obs::current_query();
    if (obs::span_tracking_enabled()) {
        t.origin_span = obs::health_detail::innermost_span();
    }
    if (sched::maybe_active()) {
        t.vc = sched::fork_token();  // enqueue→dequeue happens-before edge
    }
    if (workers_.empty()) {
        // Inline execution keeps zero-thread pools functional.
        execute(t);
        return;
    }
    {
        std::lock_guard<CheckedMutex> lock(mutex_);
        queue_.push_back(std::move(t));
    }
    cv_.notify_one();
}

bool ThreadPool::try_run_one() {
    Task t;
    {
        std::lock_guard<CheckedMutex> lock(mutex_);
        if (queue_.empty()) {
            return false;
        }
        t = std::move(queue_.front());
        queue_.pop_front();
    }
    execute(t);
    return true;
}

std::size_t ThreadPool::queue_depth() const {
    std::lock_guard<CheckedMutex> lock(mutex_);
    return queue_.size();
}

void ThreadPool::worker_loop(std::uint64_t sched_handle) {
    // Workers participate in CPU sampling for their whole lifetime; the
    // guard retires this thread's profiler state on any exit path.
    struct ProfReg {
        ProfReg() { obs::prof_register_thread("pool"); }
        ~ProfReg() { obs::prof_unregister_thread(); }
    } prof_reg;
    sched::AdoptScope adopt(sched_handle);
    for (;;) {
        Task t;
        if (sched::maybe_active() && sched::this_thread_scheduled()) {
            // Scheduled dequeue: the scheduler owns all blocking, so the
            // native cv wait is replaced by polling at a free yield point.
            bool got = false;
            try {
                sched::yield_idle("pool.dequeue");
                std::lock_guard<CheckedMutex> lock(mutex_);
                if (!queue_.empty()) {
                    t = std::move(queue_.front());
                    queue_.pop_front();
                    got = true;
                } else if (shutting_down_) {
                    return;
                }
            } catch (const sched::DeadlockError&) {
                // Run declared deadlocked while we held the token: leave the
                // schedule and fall back to the native path.
                sched::release_thread();
                continue;
            }
            if (got) {
                execute(t);
            }
            continue;
        }
        {
            std::unique_lock<CheckedMutex> lock(mutex_);
            cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (shutting_down_) {
                    return;
                }
                continue;
            }
            t = std::move(queue_.front());
            queue_.pop_front();
        }
        execute(t);
    }
}

void ThreadPool::purge_group(TaskGroup* g) {
    std::size_t removed = 0;
    {
        std::lock_guard<CheckedMutex> lock(mutex_);
        for (auto it = queue_.begin(); it != queue_.end();) {
            if (it->group == g) {
                it = queue_.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
    }
    if (removed != 0) {
        g->pending_.fetch_sub(removed, std::memory_order_acq_rel);
    }
}

void ThreadPool::execute(Task& t) {
    // Span + queue-wait/run-time histograms when the task was enqueued (and
    // is still being executed) under tracing; one relaxed load otherwise.
    const bool traced = t.enqueue_ns != 0 && obs::trace_enabled();
    std::uint64_t run_start_ns = 0;
    if (traced) {
        run_start_ns = obs::trace_now_ns();
        obs::emit_begin_arg("pool.task", "pool", "queue_us",
                            static_cast<std::int64_t>((run_start_ns - t.enqueue_ns) / 1000));
    }
    TaskGroup* g = t.group;
    sched::join_token(t.vc);  // dequeue side of the enqueue→dequeue edge
    t_executing_groups.push_back(g);
    active_.fetch_add(1, std::memory_order_relaxed);
    // Re-install the submitter's query context for the task body; pool time
    // is attributed to that query (best-effort: a task finishing after its
    // query finalized loses its delta, it is never charged elsewhere).
    obs::QueryScope qscope(t.qctx);
    // Re-open the submit-site span around the body so profiler samples in
    // this task fold under their originating phase, whichever thread runs it.
    const bool origin_pushed = t.origin_span != nullptr && obs::span_tracking_enabled();
    if (origin_pushed) {
        obs::health_detail::push_span(t.origin_span);
    }
    const std::uint64_t qt0 =
        t.qctx.valid() && obs::query_trace_enabled() ? obs::trace_now_ns() : 0;
    try {
        t.fn();
        if (g != nullptr && sched::maybe_active() && sched::this_thread_scheduled()) {
            std::lock_guard<std::mutex> vc_lock(g->vc_mutex_);
            sched::merge_token(g->done_vc_);  // completion→wait edge
        }
    } catch (...) {
        if (g != nullptr) {
            try {
                std::lock_guard<CheckedMutex> lock(g->err_mutex_);
                if (!g->first_error_) {
                    g->first_error_ = std::current_exception();
                }
            } catch (...) {
                // Acquiring err_mutex_ can itself throw DeadlockError during
                // schedule-exploration teardown; the scheduler has already
                // recorded the failure, and execute() must not throw (the
                // pending_ decrement below keeps waiters sound).
            }
        }
    }
    if (origin_pushed) {
        obs::health_detail::pop_span();
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
    t_executing_groups.pop_back();
    if (qt0 != 0) {
        obs::query_note_pool_ns(obs::trace_now_ns() - qt0);
    }
    obs::note_pool_task();
    if (sched::maybe_active()) {
        sched::note_progress();  // a task ran: forward progress for the deadlock detector
    }
    if (traced) {
        obs::emit_end("pool.task", "pool");
        auto& metrics = obs::MetricsRegistry::global();
        metrics.histogram("pool.queue_us")
            .record(static_cast<double>(run_start_ns - t.enqueue_ns) / 1e3);
        metrics.histogram("pool.run_us")
            .record(static_cast<double>(obs::trace_now_ns() - run_start_ns) / 1e3);
    }
    if (g != nullptr) {
        g->pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& f, std::size_t grain) {
    BAT_CHECK(begin <= end);
    BAT_CHECK(grain > 0);
    BAT_CHECK_MSG(t_parallel_for_depth < kMaxParallelForDepth,
                  "parallel_for re-entrancy depth exceeded ("
                      << kMaxParallelForDepth
                      << "): the loop body recursively re-enters parallel_for");
    struct DepthGuard {
        DepthGuard() { ++t_parallel_for_depth; }
        ~DepthGuard() { --t_parallel_for_depth; }
    } depth_guard;
    if (begin == end) {
        return;
    }
    if (workers_.empty() || end - begin <= grain) {
        for (std::size_t i = begin; i < end; ++i) {
            f(i);
        }
        return;
    }
    TaskGroup group(*this);
    for (std::size_t chunk = begin; chunk < end; chunk += grain) {
        const std::size_t hi = std::min(chunk + grain, end);
        group.run([&f, chunk, hi] {
            for (std::size_t i = chunk; i < hi; ++i) {
                f(i);
            }
        });
    }
    group.wait();
}

void parallel_ranges(ThreadPool* pool, std::size_t n, std::size_t min_grain,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
    BAT_CHECK(min_grain > 0);
    if (n == 0) {
        return;
    }
    if (pool == nullptr || pool->num_threads() == 0 || n <= min_grain) {
        fn(0, n);
        return;
    }
    // ~4 chunks per participant (workers + the waiting caller) balances load
    // without flooding the queue; the decomposition is schedule-independent.
    const std::size_t participants = pool->num_threads() + 1;
    const std::size_t chunk =
        std::max(min_grain, (n + 4 * participants - 1) / (4 * participants));
    const std::size_t nchunks = (n + chunk - 1) / chunk;
    pool->parallel_for(
        0, nchunks,
        [&](std::size_t c) { fn(c * chunk, std::min(n, (c + 1) * chunk)); }, 1);
}

}  // namespace bat
