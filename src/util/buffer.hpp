#pragma once
// Byte-buffer serialization. All on-disk and over-the-wire encoding in the
// library goes through BufferWriter/BufferReader, which use memcpy-based
// codecs (no type punning, no alignment assumptions) and little-endian
// layout. The library targets little-endian hosts, as the paper's systems
// (x86 Stampede2, POWER9 little-endian Summit) both are.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace bat {

static_assert(std::endian::native == std::endian::little,
              "on-disk format assumes a little-endian host");

/// Appends POD values / spans to a growable byte vector.
class BufferWriter {
public:
    BufferWriter() = default;
    explicit BufferWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

    template <typename T>
    void write(const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* p = reinterpret_cast<const std::byte*>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    template <typename T>
    void write_span(std::span<const T> s) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* p = reinterpret_cast<const std::byte*>(s.data());
        buf_.insert(buf_.end(), p, p + s.size_bytes());
    }

    /// Length-prefixed (u32) UTF-8 string.
    void write_string(const std::string& s) {
        write(static_cast<std::uint32_t>(s.size()));
        const auto* p = reinterpret_cast<const std::byte*>(s.data());
        buf_.insert(buf_.end(), p, p + s.size());
    }

    /// Pad with zero bytes so size() becomes a multiple of `alignment`.
    void align_to(std::size_t alignment) {
        const std::size_t rem = buf_.size() % alignment;
        if (rem != 0) {
            buf_.insert(buf_.end(), alignment - rem, std::byte{0});
        }
    }

    /// Overwrite a previously-written POD at `offset` (for back-patching).
    template <typename T>
    void patch(std::size_t offset, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        BAT_CHECK(offset + sizeof(T) <= buf_.size());
        std::memcpy(buf_.data() + offset, &v, sizeof(T));
    }

    std::size_t size() const { return buf_.size(); }
    const std::vector<std::byte>& bytes() const { return buf_; }
    std::vector<std::byte> take() { return std::move(buf_); }

private:
    std::vector<std::byte> buf_;
};

/// Reads POD values / spans from a byte span with bounds checking.
class BufferReader {
public:
    explicit BufferReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

    template <typename T>
    T read() {
        static_assert(std::is_trivially_copyable_v<T>);
        BAT_CHECK_MSG(pos_ + sizeof(T) <= bytes_.size(), "buffer underrun");
        T v;
        std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    template <typename T>
    void read_into(std::span<T> out) {
        static_assert(std::is_trivially_copyable_v<T>);
        BAT_CHECK_MSG(pos_ + out.size_bytes() <= bytes_.size(), "buffer underrun");
        std::memcpy(out.data(), bytes_.data() + pos_, out.size_bytes());
        pos_ += out.size_bytes();
    }

    std::string read_string() {
        const auto n = read<std::uint32_t>();
        BAT_CHECK_MSG(pos_ + n <= bytes_.size(), "buffer underrun (string)");
        std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
        pos_ += n;
        return s;
    }

    void seek(std::size_t pos) {
        BAT_CHECK(pos <= bytes_.size());
        pos_ = pos;
    }
    void skip(std::size_t n) { seek(pos_ + n); }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return bytes_.size() - pos_; }

private:
    std::span<const std::byte> bytes_;
    std::size_t pos_ = 0;
};

}  // namespace bat
