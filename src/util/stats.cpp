#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bat {

double mean(std::span<const double> xs) {
    if (xs.empty()) {
        return 0.0;
    }
    double s = 0.0;
    for (double x : xs) {
        s += x;
    }
    return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
    if (xs.size() < 2) {
        return 0.0;
    }
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs) {
        s += (x - m) * (x - m);
    }
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double geomean(std::span<const double> xs) {
    if (xs.empty()) {
        return 0.0;
    }
    double logsum = 0.0;
    for (double x : xs) {
        BAT_CHECK_MSG(x > 0.0, "geomean requires positive samples");
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
    if (xs.empty()) {
        return 0.0;
    }
    const std::size_t mid = xs.size() / 2;
    std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
    double hi = xs[mid];
    if (xs.size() % 2 == 1) {
        return hi;
    }
    const double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lo + hi);
}

double percentile(std::vector<double> xs, double p) {
    if (xs.empty()) {
        return 0.0;
    }
    BAT_CHECK(p >= 0.0 && p <= 100.0);
    std::sort(xs.begin(), xs.end());
    const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) {
        return;
    }
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

RunningStats RunningStats::from_raw(std::size_t count, double mean, double m2,
                                    double min, double max) {
    RunningStats rs;
    rs.n_ = count;
    rs.mean_ = mean;
    rs.m2_ = m2;
    rs.min_ = min;
    rs.max_ = max;
    return rs;
}

double RunningStats::stddev() const {
    if (n_ < 2) {
        return 0.0;
    }
    return std::sqrt(m2_ / static_cast<double>(n_));
}

}  // namespace bat
