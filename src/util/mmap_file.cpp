#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"

namespace bat {

MappedFile::MappedFile(const std::filesystem::path& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    BAT_CHECK_MSG(fd >= 0, "open(" << path << ") failed: " << std::strerror(errno));
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        BAT_FAIL("fstat(" << path << ") failed: " << std::strerror(errno));
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) {
        ::close(fd);
        data_ = nullptr;
        return;
    }
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    BAT_CHECK_MSG(p != MAP_FAILED, "mmap(" << path << ") failed: " << std::strerror(errno));
    data_ = p;
}

MappedFile::~MappedFile() { close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
    if (this != &other) {
        close();
        data_ = other.data_;
        size_ = other.size_;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

void MappedFile::close() {
    if (data_ != nullptr) {
        ::munmap(data_, size_);
        data_ = nullptr;
        size_ = 0;
    }
}

void write_file(const std::filesystem::path& path, std::span<const std::byte> bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    BAT_CHECK_MSG(f != nullptr, "fopen(" << path << ") failed: " << std::strerror(errno));
    std::size_t written = 0;
    if (!bytes.empty()) {
        written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    }
    const int rc = std::fclose(f);
    BAT_CHECK_MSG(written == bytes.size() && rc == 0, "short write to " << path);
}

std::vector<std::byte> read_file(const std::filesystem::path& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    BAT_CHECK_MSG(f != nullptr, "fopen(" << path << ") failed: " << std::strerror(errno));
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::byte> out(static_cast<std::size_t>(size));
    std::size_t got = 0;
    if (size > 0) {
        got = std::fread(out.data(), 1, out.size(), f);
    }
    std::fclose(f);
    BAT_CHECK_MSG(got == out.size(), "short read from " << path);
    return out;
}

}  // namespace bat
