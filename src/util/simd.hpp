#pragma once
// Runtime-dispatched SIMD kernels for the BAT build hot path (Morton
// encode, bitmap binning, min/max scans). Three tiers:
//
//   scalar     — portable C++, the reference implementation;
//   sse42_bmi2 — scalar loops using BMI2 pdep for the Morton bit spread;
//   avx2       — AVX2 vector quantize / compare / reduce + BMI2 spread.
//
// Every tier produces bit-identical results for NaN-free inputs (the BAT
// determinism tests are the contract: a build with BAT_NO_SIMD=1 must
// serialize to exactly the bytes the default build makes). To keep min/max
// reductions order-independent even for mixed ±0.0 inputs, the min/max
// kernels canonicalize -0.0 to +0.0 (v + 0.0) in *all* tiers.
//
// Dispatch: the best tier supported by the CPU is detected once (cpuid);
// the BAT_NO_SIMD environment variable (any value but "" or "0") forces
// the scalar tier at runtime, and configuring with -DBAT_DISABLE_SIMD=ON
// removes the vector tiers at compile time (non-x86 builds always compile
// scalar-only). See docs/PERFORMANCE.md.

#include <cstddef>
#include <cstdint>

// Compile-time gate: vector tiers exist only on x86-64 builds that did not
// force them off. BAT_SIMD_X86 guards every intrinsics definition.
#if defined(__x86_64__) && !defined(BAT_DISABLE_SIMD)
#define BAT_SIMD_X86 1
#else
#define BAT_SIMD_X86 0
#endif

namespace bat::simd {

enum class Level : int {
    scalar = 0,
    sse42_bmi2 = 1,
    avx2 = 2,
};

/// Human-readable tier name ("scalar", "sse4.2+bmi2", "avx2").
const char* level_name(Level level);

/// Best tier this binary + CPU supports (compile-time gate + cpuid).
/// Ignores BAT_NO_SIMD and test overrides.
Level detected_level();

/// Tier the kernels dispatch on: detected_level(), downgraded to scalar
/// when BAT_NO_SIMD is set in the environment (checked once), or replaced
/// by a test override.
Level active_level();

/// Pure parse helper for the BAT_NO_SIMD contract, exposed for tests:
/// unset (nullptr), "" and "0" leave SIMD on; anything else disables it.
bool env_value_disables_simd(const char* value);

/// Force `level` for subsequent kernel calls (clamped to detected_level());
/// used by the equivalence tests to run every tier in one process.
void set_level_for_testing(Level level);
/// Drop the test override, restoring env-aware dispatch.
void clear_level_for_testing();

// ---- kernels ---------------------------------------------------------------
// All kernels tolerate n == 0 and unaligned pointers.

/// Number of bitmap bins the binning kernel is specialized for; must match
/// bat::kBitmapBins (static_asserted at the call site).
inline constexpr int kBinCount = 32;

/// OR of (1u << bin) over `values[0..n)`, where bin is the number of edges
/// in edges[1..kBinCount-1] that are <= v — exactly the upper_bound-based
/// bat::bin_of. `edges` has kBinCount + 1 monotone entries. NaN-free input.
std::uint32_t bin_bitmap_batch(const double* values, std::size_t n,
                               const double* edges);

/// Per-value bins (same definition as bin_bitmap_batch) written to
/// `bins[0..n)`; the treelet bitmap pass computes bins once per particle
/// and ORs sub-ranges per node.
void bin_values_batch(const double* values, std::size_t n, const double* edges,
                      std::uint8_t* bins);

/// Min/max of values[0..n) with -0.0 canonicalized to +0.0. n >= 1.
void minmax_f64(const double* values, std::size_t n, double* lo, double* hi);

/// Min/max of values[0..n) with -0.0 canonicalized to +0.0. n >= 1.
void minmax_f32(const float* values, std::size_t n, float* lo, float* hi);

/// Per-component min/max of `n` 3-float positions stored with a stride of
/// four floats (the BAT builder's 16-byte {x, y, z, rank} records); the
/// fourth lane is ignored. -0.0 canonicalized to +0.0. n >= 1.
void minmax_pos4(const float* base, std::size_t n, float lo[3], float hi[3]);

}  // namespace bat::simd
