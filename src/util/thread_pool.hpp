#pragma once
// Task pool replacing Intel TBB in the original system. The aggregation
// tree, Karras build, and treelet construction use fork/join-style task
// parallelism: a task is spawned for the right subtree while the current
// worker descends the left (paper §III-A).
//
// The pool supports nested task submission from inside tasks (workers that
// block in TaskGroup::wait help execute pending tasks, so recursive
// parallelism cannot deadlock).
//
// Concurrency invariants are enforced in instrumented builds (see
// docs/CORRECTNESS.md): the queue and error mutexes participate in
// lock-order checking, TaskGroup::wait() aborts if called from inside one
// of the group's own tasks (a self-wait that would otherwise livelock),
// and parallel_for flags runaway re-entrant recursion.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/query_trace.hpp"
#include "sched/sched.hpp"
#include "util/lock_order.hpp"

namespace bat {

class ThreadPool;

/// A group of tasks forming one fork/join region. wait() participates in
/// execution (work-helping) rather than blocking, so nested groups are safe.
class TaskGroup {
public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    ~TaskGroup();

    /// Enqueue a task belonging to this group.
    void run(std::function<void()> f);

    /// Block until every task run() on this group has finished, helping to
    /// execute queued tasks in the meantime. Rethrows the first exception
    /// raised by any task in the group. Must not be called from inside one
    /// of this group's own tasks (the task's own pending count would never
    /// reach zero): instrumented builds abort with a diagnostic.
    void wait();

private:
    friend class ThreadPool;
    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
    CheckedMutex err_mutex_{"taskgroup.error"};
    std::exception_ptr first_error_;
    // Schedule exploration (sched): clock accumulated at each task's
    // completion and acquired by wait(), giving task-completion→wait
    // happens-before edges. Guarded by a plain mutex — the critical section
    // never yields, so scheduled threads cannot block each other here.
    std::mutex vc_mutex_;
    sched::ClockToken done_vc_;
};

/// Fixed-size pool of worker threads with a shared FIFO queue.
class ThreadPool {
public:
    /// 0 threads is allowed: every task then runs inline at wait()/run()
    /// time on the calling thread, which keeps single-core machines and
    /// deterministic unit tests simple.
    explicit ThreadPool(std::size_t num_threads = default_concurrency());
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t num_threads() const { return workers_.size(); }

    /// Hardware concurrency minus one (the caller participates via wait()),
    /// at least 0.
    static std::size_t default_concurrency();

    /// Process-wide shared pool, sized by default_concurrency().
    static ThreadPool& global();

    /// Parallel for over [begin, end) in contiguous chunks. `f` is called
    /// as f(index) for each index. Grain controls the chunk size. Nested
    /// calls (f itself calling parallel_for) are supported; recursion
    /// deeper than kMaxParallelForDepth is rejected as a re-entrancy bug.
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& f, std::size_t grain = 1024);

    /// Deepest supported parallel_for nesting per thread. Legitimate use
    /// is a handful of levels; hitting this means f re-enters parallel_for
    /// unboundedly.
    static constexpr int kMaxParallelForDepth = 64;

    /// Dequeue and execute one pending task on the calling thread; returns
    /// false if the queue was empty. This is the work-helping primitive
    /// behind TaskGroup::wait, exposed so polling loops (the read path's
    /// comm thread) can serve tasks instead of yielding their timeslice
    /// when there is nothing else to do. Safe from any thread.
    bool try_run_one();

    /// Live introspection for stall diagnoses (obs/health.hpp): tasks
    /// currently queued, and tasks currently executing on any thread.
    std::size_t queue_depth() const;
    std::size_t active_tasks() const { return active_.load(std::memory_order_relaxed); }

private:
    friend class TaskGroup;

    struct Task {
        std::function<void()> fn;
        TaskGroup* group = nullptr;
        // Enqueue timestamp (obs::trace_now_ns) when tracing was enabled at
        // submission; execution spans report queue wait vs. run time.
        std::uint64_t enqueue_ns = 0;
        // Submitter's query context (obs/query_trace.hpp), re-installed for
        // the task's execution so per-query attribution survives the hop to
        // a worker thread — and work-helping, where a comm thread may run a
        // task submitted on behalf of a different query.
        obs::QueryContext qctx;
        // Innermost span open at the submit site when span tracking was on
        // (a string literal, or null): re-pushed around the task body so
        // profiler samples taken inside pool tasks — including work-helping
        // on a comm thread — attribute back to the phase that spawned them.
        const char* origin_span = nullptr;
        // Submitter's vector clock under schedule exploration (empty
        // otherwise): the enqueue→dequeue happens-before edge.
        sched::ClockToken vc;
    };

    void enqueue(Task t);
    void worker_loop(std::uint64_t sched_handle);
    void execute(Task& t);
    /// Remove this group's queued-but-unstarted tasks (deadlock teardown in
    /// schedule exploration: ~TaskGroup must not leave tasks referencing it).
    void purge_group(TaskGroup* g);

    std::vector<std::thread> workers_;
    std::vector<std::uint64_t> worker_handles_;  // sched handles, 0 when disarmed
    std::deque<Task> queue_;
    mutable CheckedMutex mutex_{"threadpool.queue"};
    std::condition_variable_any cv_;
    bool shutting_down_ = false;
    std::atomic<std::size_t> active_{0};
    // Health diag provider id; 0 until registered, unregistered first thing
    // in the destructor so the watchdog never probes a dying pool.
    std::uint64_t diag_provider_ = 0;
};

/// Split [0, n) into contiguous chunks of at least `min_grain` elements and
/// run fn(lo, hi) for each. Chunks run on `pool` when it has workers and the
/// range is worth splitting, inline on the caller otherwise. The chunk
/// decomposition depends only on (n, min_grain, pool size), never on
/// scheduling, so order-insensitive bodies produce deterministic results.
void parallel_ranges(ThreadPool* pool, std::size_t n, std::size_t min_grain,
                     const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace bat
