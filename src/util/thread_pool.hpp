#pragma once
// Task pool replacing Intel TBB in the original system. The aggregation
// tree, Karras build, and treelet construction use fork/join-style task
// parallelism: a task is spawned for the right subtree while the current
// worker descends the left (paper §III-A).
//
// The pool supports nested task submission from inside tasks (workers that
// block in TaskGroup::wait help execute pending tasks, so recursive
// parallelism cannot deadlock).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bat {

class ThreadPool;

/// A group of tasks forming one fork/join region. wait() participates in
/// execution (work-helping) rather than blocking, so nested groups are safe.
class TaskGroup {
public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    ~TaskGroup();

    /// Enqueue a task belonging to this group.
    void run(std::function<void()> f);

    /// Block until every task run() on this group has finished, helping to
    /// execute queued tasks in the meantime. Rethrows the first exception
    /// raised by any task in the group.
    void wait();

private:
    friend class ThreadPool;
    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex err_mutex_;
    std::exception_ptr first_error_;
};

/// Fixed-size pool of worker threads with a shared FIFO queue.
class ThreadPool {
public:
    /// 0 threads is allowed: every task then runs inline at wait()/run()
    /// time on the calling thread, which keeps single-core machines and
    /// deterministic unit tests simple.
    explicit ThreadPool(std::size_t num_threads = default_concurrency());
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t num_threads() const { return workers_.size(); }

    /// Hardware concurrency minus one (the caller participates via wait()),
    /// at least 0.
    static std::size_t default_concurrency();

    /// Process-wide shared pool, sized by default_concurrency().
    static ThreadPool& global();

    /// Parallel for over [begin, end) in contiguous chunks. `f` is called
    /// as f(index) for each index. Grain controls the chunk size.
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& f, std::size_t grain = 1024);

private:
    friend class TaskGroup;

    struct Task {
        std::function<void()> fn;
        TaskGroup* group = nullptr;
    };

    void enqueue(Task t);
    bool try_run_one();  // returns false if the queue was empty
    void worker_loop();
    void execute(Task& t);

    std::vector<std::thread> workers_;
    std::deque<Task> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool shutting_down_ = false;
};

}  // namespace bat
