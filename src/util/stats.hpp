#pragma once
// Small statistics helpers used by the benchmark harnesses: the paper
// reports the geometric mean of bandwidth over 15 write/read repetitions
// (following the IO500 methodology) and mean/stddev of output file sizes.

#include <cstddef>
#include <span>
#include <vector>

namespace bat {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);  // population stddev
double geomean(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: needs to sort
double percentile(std::vector<double> xs, double p);  // p in [0,100]

/// Online accumulator for min/max/mean/stddev without storing samples.
class RunningStats {
public:
    void add(double x);
    /// Combine with another accumulator as if both sample streams had been
    /// added to one (parallel Welford / Chan et al. pairwise update). Used
    /// for cross-rank metrics reduction (obs/metrics.hpp).
    void merge(const RunningStats& other);
    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }
    /// Raw sum of squared deviations (serialization; stddev² · n).
    double m2() const { return m2_; }
    static RunningStats from_raw(std::size_t count, double mean, double m2,
                                 double min, double max);

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace bat
