#pragma once
// Small statistics helpers used by the benchmark harnesses: the paper
// reports the geometric mean of bandwidth over 15 write/read repetitions
// (following the IO500 methodology) and mean/stddev of output file sizes.

#include <cstddef>
#include <span>
#include <vector>

namespace bat {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);  // population stddev
double geomean(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: needs to sort
double percentile(std::vector<double> xs, double p);  // p in [0,100]

/// Online accumulator for min/max/mean/stddev without storing samples.
class RunningStats {
public:
    void add(double x);
    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace bat
