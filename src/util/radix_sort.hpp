#pragma once
// Parallel LSD radix sort over (64-bit key, 32-bit index) pairs — the
// Morton-ordering hot path of the BAT build (paper §III-C; Burstedde's
// parallel tree algorithms identify the sort/partition steps as the
// scalable core of such builds). The sort is stable in the keys, processes
// one 11-bit digit per pass (6 passes cover 64 bits), skips passes whose
// digit is constant across all keys, and splits histogram/scatter work into
// per-block tasks on a ThreadPool. Block decomposition and scatter offsets
// are fixed up front, so the result is byte-identical regardless of thread
// count or schedule.

#include <cstdint>
#include <span>
#include <vector>

#include "util/thread_pool.hpp"

namespace bat {

/// One sort record: the key plus the record's original position. Kept to
/// 16 bytes so scatter passes move a single aligned struct.
struct KeyIndex {
    std::uint64_t key = 0;
    std::uint32_t index = 0;
};

/// Sort `pairs` in place by ascending key; entries with equal keys keep
/// their input order (LSD radix passes are stable). Small inputs fall back
/// to a comparison sort on (key, index), which is identical to the stable
/// order whenever indices are distinct and ascending in the input — the
/// layout radix_sort_order produces.
void radix_sort_pairs(std::span<KeyIndex> pairs, ThreadPool* pool = nullptr);

/// Sorting permutation of `keys`: returns `order` such that
/// keys[order[0]] <= keys[order[1]] <= ... with ties broken by the original
/// index. Equivalent to
///   std::sort(order, [&](a, b) { return keys[a] != keys[b] ? keys[a] < keys[b]
///                                                          : a < b; })
/// but O(n) per digit and parallel over `pool`.
std::vector<std::uint32_t> radix_sort_order(std::span<const std::uint64_t> keys,
                                            ThreadPool* pool = nullptr);

}  // namespace bat
