#pragma once
// Tiny leveled logger. Quiet by default (warnings and errors only) so test
// and benchmark output stays parseable; verbosity is raised via
// bat::set_log_level or the BAT_LOG environment variable (0=off .. 3=debug).

#include <sstream>
#include <string>

namespace bat {

enum class LogLevel : int { off = 0, error = 1, warn = 2, info = 3, debug = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Rank tag for the calling thread, prefixed to its log lines (and used by
/// the tracer to assign events to rank tracks). Set by the vmpi runtime for
/// rank threads; -1 (the default) means "not a rank thread".
void set_thread_log_rank(int rank);
int thread_log_rank();

namespace detail {
/// Thread-safe: the line is formatted up front and written with a single
/// stdio call under a mutex, so multi-rank output never interleaves mid-line.
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace bat

#define BAT_LOG_AT(level, msg)                                       \
    do {                                                             \
        if (static_cast<int>(::bat::log_level()) >=                  \
            static_cast<int>(level)) {                               \
            std::ostringstream bat_log_os_;                          \
            bat_log_os_ << msg;                                      \
            ::bat::detail::log_emit(level, bat_log_os_.str());       \
        }                                                            \
    } while (false)

#define BAT_LOG_ERROR(msg) BAT_LOG_AT(::bat::LogLevel::error, msg)
#define BAT_LOG_WARN(msg) BAT_LOG_AT(::bat::LogLevel::warn, msg)
#define BAT_LOG_INFO(msg) BAT_LOG_AT(::bat::LogLevel::info, msg)
#define BAT_LOG_DEBUG(msg) BAT_LOG_AT(::bat::LogLevel::debug, msg)
