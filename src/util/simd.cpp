#include "util/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if BAT_SIMD_X86
#include <immintrin.h>
#endif

namespace bat::simd {

const char* level_name(Level level) {
    switch (level) {
        case Level::scalar: return "scalar";
        case Level::sse42_bmi2: return "sse4.2+bmi2";
        case Level::avx2: return "avx2";
    }
    return "?";
}

bool env_value_disables_simd(const char* value) {
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
}

Level detected_level() {
#if BAT_SIMD_X86
    static const Level detected = [] {
        __builtin_cpu_init();
        // Both vector tiers lean on BMI2 pdep for the Morton bit spread, so
        // bmi2 gates both (every AVX2 CPU since Haswell also has BMI2).
        if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2")) {
            return Level::avx2;
        }
        if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("bmi2")) {
            return Level::sse42_bmi2;
        }
        return Level::scalar;
    }();
    return detected;
#else
    return Level::scalar;
#endif
}

namespace {

/// -1 = no override; otherwise the forced Level value.
std::atomic<int> g_test_override{-1};

Level env_level() {
    static const Level level = env_value_disables_simd(std::getenv("BAT_NO_SIMD"))
                                   ? Level::scalar
                                   : detected_level();
    return level;
}

}  // namespace

Level active_level() {
    const int forced = g_test_override.load(std::memory_order_relaxed);
    if (forced >= 0) {
        return static_cast<Level>(forced);
    }
    return env_level();
}

void set_level_for_testing(Level level) {
    const int clamped = std::min(static_cast<int>(level),
                                 static_cast<int>(detected_level()));
    g_test_override.store(clamped, std::memory_order_relaxed);
}

void clear_level_for_testing() {
    g_test_override.store(-1, std::memory_order_relaxed);
}

// ---- binning ---------------------------------------------------------------
// bin(v) = #{ j in [1, kBinCount) : edges[j] <= v }, which is exactly what
// std::upper_bound(edges+1, edges+kBinCount, v) - (edges+1) computes over
// monotone edges (bat::bin_of). The scalar tier keeps the branchy binary
// search the seed used; the AVX2 tier counts all 31 comparisons branch-free.

namespace {

inline int bin_scalar(double v, const double* edges) {
    const double* it = std::upper_bound(edges + 1, edges + kBinCount, v);
    return static_cast<int>(it - (edges + 1));
}

std::uint32_t bin_bitmap_scalar(const double* values, std::size_t n,
                                const double* edges) {
    std::uint32_t bm = 0;
    for (std::size_t i = 0; i < n; ++i) {
        bm |= 1u << bin_scalar(values[i], edges);
    }
    return bm;
}

void bin_values_scalar(const double* values, std::size_t n, const double* edges,
                       std::uint8_t* bins) {
    for (std::size_t i = 0; i < n; ++i) {
        bins[i] = static_cast<std::uint8_t>(bin_scalar(values[i], edges));
    }
}

#if BAT_SIMD_X86

/// Bins of 8 values (two 4-lane registers) as packed u64 lane counts:
/// for each interior edge, v >= edge contributes one (cmp_pd mask is -1).
[[gnu::target("avx2")]] inline void bins8_avx2(__m256d v0, __m256d v1,
                                               const double* edges, __m256i* b0,
                                               __m256i* b1) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (int j = 1; j < kBinCount; ++j) {
        const __m256d e = _mm256_broadcast_sd(edges + j);
        acc0 = _mm256_sub_epi64(acc0,
                                _mm256_castpd_si256(_mm256_cmp_pd(v0, e, _CMP_GE_OQ)));
        acc1 = _mm256_sub_epi64(acc1,
                                _mm256_castpd_si256(_mm256_cmp_pd(v1, e, _CMP_GE_OQ)));
    }
    *b0 = acc0;
    *b1 = acc1;
}

[[gnu::target("avx2")]] std::uint32_t bin_bitmap_avx2(const double* values,
                                                      std::size_t n,
                                                      const double* edges) {
    __m256i or_acc = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi64x(1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i b0, b1;
        bins8_avx2(_mm256_loadu_pd(values + i), _mm256_loadu_pd(values + i + 4),
                   edges, &b0, &b1);
        or_acc = _mm256_or_si256(or_acc, _mm256_sllv_epi64(one, b0));
        or_acc = _mm256_or_si256(or_acc, _mm256_sllv_epi64(one, b1));
    }
    const __m128i folded = _mm_or_si128(_mm256_castsi256_si128(or_acc),
                                        _mm256_extracti128_si256(or_acc, 1));
    std::uint32_t bm = static_cast<std::uint32_t>(
        _mm_cvtsi128_si64(folded) | _mm_extract_epi64(folded, 1));
    for (; i < n; ++i) {
        bm |= 1u << bin_scalar(values[i], edges);
    }
    return bm;
}

[[gnu::target("avx2")]] void bin_values_avx2(const double* values, std::size_t n,
                                             const double* edges,
                                             std::uint8_t* bins) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i b0, b1;
        bins8_avx2(_mm256_loadu_pd(values + i), _mm256_loadu_pd(values + i + 4),
                   edges, &b0, &b1);
        // Lane counts are < 32: pack the eight u64s down to bytes.
        alignas(32) std::uint64_t lanes[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), b0);
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 4), b1);
        for (int k = 0; k < 8; ++k) {
            bins[i + static_cast<std::size_t>(k)] =
                static_cast<std::uint8_t>(lanes[k]);
        }
    }
    for (; i < n; ++i) {
        bins[i] = static_cast<std::uint8_t>(bin_scalar(values[i], edges));
    }
}

#endif  // BAT_SIMD_X86

}  // namespace

std::uint32_t bin_bitmap_batch(const double* values, std::size_t n,
                               const double* edges) {
#if BAT_SIMD_X86
    if (active_level() == Level::avx2) {
        return bin_bitmap_avx2(values, n, edges);
    }
#endif
    return bin_bitmap_scalar(values, n, edges);
}

void bin_values_batch(const double* values, std::size_t n, const double* edges,
                      std::uint8_t* bins) {
#if BAT_SIMD_X86
    if (active_level() == Level::avx2) {
        bin_values_avx2(values, n, edges, bins);
        return;
    }
#endif
    bin_values_scalar(values, n, edges, bins);
}

// ---- min/max ---------------------------------------------------------------
// Both tiers canonicalize -0.0 to +0.0 (v + 0.0) so the reduction result is
// bitwise independent of association order; with that, vector lane folding
// is exactly equivalent to the scalar left fold for NaN-free input.

namespace {

void minmax_f64_scalar(const double* values, std::size_t n, double* lo,
                       double* hi) {
    double mn = values[0] + 0.0;
    double mx = mn;
    for (std::size_t i = 1; i < n; ++i) {
        const double v = values[i] + 0.0;
        mn = v < mn ? v : mn;
        mx = v > mx ? v : mx;
    }
    *lo = mn;
    *hi = mx;
}

void minmax_f32_scalar(const float* values, std::size_t n, float* lo, float* hi) {
    float mn = values[0] + 0.f;
    float mx = mn;
    for (std::size_t i = 1; i < n; ++i) {
        const float v = values[i] + 0.f;
        mn = v < mn ? v : mn;
        mx = v > mx ? v : mx;
    }
    *lo = mn;
    *hi = mx;
}

#if BAT_SIMD_X86

[[gnu::target("avx2")]] void minmax_f64_avx2(const double* values, std::size_t n,
                                             double* lo, double* hi) {
    if (n < 8) {
        minmax_f64_scalar(values, n, lo, hi);
        return;
    }
    const __m256d zero = _mm256_setzero_pd();
    __m256d mn = _mm256_add_pd(_mm256_loadu_pd(values), zero);
    __m256d mx = mn;
    std::size_t i = 4;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_add_pd(_mm256_loadu_pd(values + i), zero);
        mn = _mm256_min_pd(mn, v);
        mx = _mm256_max_pd(mx, v);
    }
    alignas(32) double mns[4];
    alignas(32) double mxs[4];
    _mm256_store_pd(mns, mn);
    _mm256_store_pd(mxs, mx);
    double smn = mns[0];
    double smx = mxs[0];
    for (int k = 1; k < 4; ++k) {
        smn = mns[k] < smn ? mns[k] : smn;
        smx = mxs[k] > smx ? mxs[k] : smx;
    }
    for (; i < n; ++i) {
        const double v = values[i] + 0.0;
        smn = v < smn ? v : smn;
        smx = v > smx ? v : smx;
    }
    *lo = smn;
    *hi = smx;
}

[[gnu::target("avx2")]] void minmax_f32_avx2(const float* values, std::size_t n,
                                             float* lo, float* hi) {
    if (n < 16) {
        minmax_f32_scalar(values, n, lo, hi);
        return;
    }
    const __m256 zero = _mm256_setzero_ps();
    __m256 mn = _mm256_add_ps(_mm256_loadu_ps(values), zero);
    __m256 mx = mn;
    std::size_t i = 8;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_add_ps(_mm256_loadu_ps(values + i), zero);
        mn = _mm256_min_ps(mn, v);
        mx = _mm256_max_ps(mx, v);
    }
    alignas(32) float mns[8];
    alignas(32) float mxs[8];
    _mm256_store_ps(mns, mn);
    _mm256_store_ps(mxs, mx);
    float smn = mns[0];
    float smx = mxs[0];
    for (int k = 1; k < 8; ++k) {
        smn = mns[k] < smn ? mns[k] : smn;
        smx = mxs[k] > smx ? mxs[k] : smx;
    }
    for (; i < n; ++i) {
        const float v = values[i] + 0.f;
        smn = v < smn ? v : smn;
        smx = v > smx ? v : smx;
    }
    *lo = smn;
    *hi = smx;
}

#endif  // BAT_SIMD_X86

void minmax_pos4_scalar(const float* base, std::size_t n, float* lo, float* hi) {
    float mn[3];
    float mx[3];
    for (int c = 0; c < 3; ++c) {
        mn[c] = base[c] + 0.f;
        mx[c] = mn[c];
    }
    for (std::size_t i = 1; i < n; ++i) {
        const float* r = base + 4 * i;
        for (int c = 0; c < 3; ++c) {
            const float v = r[c] + 0.f;
            mn[c] = v < mn[c] ? v : mn[c];
            mx[c] = v > mx[c] ? v : mx[c];
        }
    }
    for (int c = 0; c < 3; ++c) {
        lo[c] = mn[c];
        hi[c] = mx[c];
    }
}

#if BAT_SIMD_X86

/// One record per vector; lane 3 (the rank bits) is zeroed before the fold
/// so reinterpreted integers never feed the FP units.
void minmax_pos4_sse(const float* base, std::size_t n, float* lo, float* hi) {
    const __m128 zero = _mm_setzero_ps();
    const __m128 xyz = _mm_castsi128_ps(_mm_setr_epi32(-1, -1, -1, 0));
    auto load = [&](std::size_t i) {
        return _mm_add_ps(_mm_and_ps(_mm_loadu_ps(base + 4 * i), xyz), zero);
    };
    __m128 mn0 = load(0);
    __m128 mx0 = mn0;
    __m128 mn1 = mn0;
    __m128 mx1 = mx0;
    std::size_t i = 1;
    for (; i + 2 <= n; i += 2) {
        const __m128 a = load(i);
        const __m128 b = load(i + 1);
        mn0 = _mm_min_ps(mn0, a);
        mx0 = _mm_max_ps(mx0, a);
        mn1 = _mm_min_ps(mn1, b);
        mx1 = _mm_max_ps(mx1, b);
    }
    if (i < n) {
        const __m128 a = load(i);
        mn0 = _mm_min_ps(mn0, a);
        mx0 = _mm_max_ps(mx0, a);
    }
    alignas(16) float mns[4];
    alignas(16) float mxs[4];
    _mm_store_ps(mns, _mm_min_ps(mn0, mn1));
    _mm_store_ps(mxs, _mm_max_ps(mx0, mx1));
    for (int c = 0; c < 3; ++c) {
        lo[c] = mns[c];
        hi[c] = mxs[c];
    }
}

#endif  // BAT_SIMD_X86

}  // namespace

void minmax_f64(const double* values, std::size_t n, double* lo, double* hi) {
#if BAT_SIMD_X86
    if (active_level() == Level::avx2) {
        minmax_f64_avx2(values, n, lo, hi);
        return;
    }
#endif
    minmax_f64_scalar(values, n, lo, hi);
}

void minmax_f32(const float* values, std::size_t n, float* lo, float* hi) {
#if BAT_SIMD_X86
    if (active_level() == Level::avx2) {
        minmax_f32_avx2(values, n, lo, hi);
        return;
    }
#endif
    minmax_f32_scalar(values, n, lo, hi);
}

void minmax_pos4(const float* base, std::size_t n, float lo[3], float hi[3]) {
#if BAT_SIMD_X86
    // Plain SSE2 code, but gated on the dispatch level so BAT_NO_SIMD
    // really does force the scalar reference loop.
    if (active_level() >= Level::sse42_bmi2) {
        minmax_pos4_sse(base, n, lo, hi);
        return;
    }
#endif
    minmax_pos4_scalar(base, n, lo, hi);
}

}  // namespace bat::simd
