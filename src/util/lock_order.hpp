#pragma once
// Lockdep-style lock-order tracking (docs/CORRECTNESS.md).
//
// CheckedMutex is a drop-in std::mutex replacement whose instances are
// grouped into *classes* by name ("threadpool.queue", "vmpi.mailbox", ...).
// The global registry records every "class A held while acquiring class B"
// edge the process ever executes and aborts on the first acquisition that
// would close a cycle in that graph — the ABBA pattern that deadlocks only
// under unlucky scheduling. Acquiring two instances of the same class at
// once is also flagged: it is exactly the case where a total instance order
// must be established, and no code in this repository needs it.
//
// Checking defaults on when built with BAT_LOCK_CHECKS (the default CMake
// configuration) and can be disabled at startup with BAT_LOCK_CHECKS=0 in
// the environment. Violations print the held-lock chain to stderr and
// abort(): they can fire while arbitrary locks are held, where throwing
// would be unsafe.

#include <mutex>
#include <string>

#include "sched/sched.hpp"

namespace bat {

namespace lockdbg {

/// True when lock-order tracking is active for this process.
bool enabled();
/// Runtime override (tests); wins over the environment and build default.
void set_enabled(bool on);

/// Print `msg` to stderr and abort. For invariant violations detected while
/// locks may be held, where throwing is not an option.
[[noreturn]] void fatal(const std::string& msg);

// Hooks used by CheckedMutex; not for direct use.
int register_class(const char* name);
void before_lock(int class_id);   // order check; call before blocking
void after_lock(int class_id);    // push onto this thread's held stack
void after_unlock(int class_id);  // pop from this thread's held stack

}  // namespace lockdbg

/// std::mutex with lock-order checking. Satisfies Lockable, so it works
/// with std::lock_guard, std::unique_lock, and std::condition_variable_any.
/// Under an armed schedule-exploration run (sched::run_scheduled) every
/// acquisition by a participating thread is also a scheduler yield point
/// and a release→acquire happens-before edge for the race checker.
class CheckedMutex {
public:
    explicit CheckedMutex(const char* name)
        : class_id_(lockdbg::register_class(name)), name_(name) {}
    CheckedMutex(const CheckedMutex&) = delete;
    CheckedMutex& operator=(const CheckedMutex&) = delete;

    void lock() {
        if (lockdbg::enabled()) {
            lockdbg::before_lock(class_id_);
        }
        if (sched::maybe_active() && sched::this_thread_scheduled()) {
            // Deterministic acquisition: try_lock + scheduler yields, never
            // a native block while holding the scheduling token.
            sched::scheduled_lock(m_, this, name_);
        } else {
            m_.lock();
        }
        if (lockdbg::enabled()) {
            lockdbg::after_lock(class_id_);
        }
    }

    bool try_lock() {
        // try_lock cannot deadlock, so no order check; still record the
        // hold so locks taken underneath it are ordered against it.
        if (!m_.try_lock()) {
            return false;
        }
        if (lockdbg::enabled()) {
            lockdbg::after_lock(class_id_);
        }
        if (sched::maybe_active()) {
            sched::lock_acquired(this);
        }
        return true;
    }

    void unlock() {
        if (sched::maybe_active()) {
            // Record the release clock edge while still holding the mutex.
            sched::lock_released(this);
        }
        m_.unlock();
        if (lockdbg::enabled()) {
            lockdbg::after_unlock(class_id_);
        }
    }

private:
    std::mutex m_;
    int class_id_;
    const char* name_;
};

}  // namespace bat
