#include "util/radix_sort.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>

#include "util/check.hpp"

namespace bat {

namespace {

// 11-bit digits: 6 passes cover 64-bit keys (vs 8 with bytes) and the
// 2048-entry count tables still live comfortably in L1.
constexpr int kDigitBits = 11;
constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
constexpr std::uint64_t kDigitMask = kBuckets - 1;
constexpr int kMaxPasses = (64 + kDigitBits - 1) / kDigitBits;

/// Below this size a comparison sort wins over pass setup costs.
constexpr std::size_t kComparisonCutoff = 256;
/// Minimum elements per parallel block; below ~2 blocks the serial path
/// avoids task overhead.
constexpr std::size_t kMinBlock = std::size_t{1} << 15;

inline std::size_t digit_of(std::uint64_t key, int shift) {
    return static_cast<std::size_t>((key >> shift) & kDigitMask);
}

/// Digits where at least two keys differ, derived from the bytewise
/// OR/AND aggregates: a pass is a no-op exactly when every key shares the
/// same digit value there (or == and in that byte).
std::vector<int> active_shifts(std::uint64_t key_or, std::uint64_t key_and) {
    std::vector<int> shifts;
    const std::uint64_t diff = key_or ^ key_and;
    for (int shift = 0; shift < 64; shift += kDigitBits) {
        if ((diff >> shift) & kDigitMask) {
            shifts.push_back(shift);
        }
    }
    return shifts;
}

/// Serial path. Digit counts are permutation-invariant, so `counts` (one
/// table per fixed pass position, filled during the single or/and pre-scan)
/// serves every pass — no per-pass counting read over the data.
void serial_radix(std::span<KeyIndex> pairs, std::span<const int> shifts,
                  std::vector<std::array<std::uint32_t, kBuckets>>& counts) {
    const std::size_t n = pairs.size();
    std::vector<KeyIndex> scratch(n);
    KeyIndex* src = pairs.data();
    KeyIndex* dst = scratch.data();
    for (int shift : shifts) {
        auto& count = counts[static_cast<std::size_t>(shift / kDigitBits)];
        std::uint32_t run = 0;
        for (std::size_t d = 0; d < kBuckets; ++d) {
            const std::uint32_t c = count[d];
            count[d] = run;
            run += c;
        }
        for (std::size_t i = 0; i < n; ++i) {
            dst[count[digit_of(src[i].key, shift)]++] = src[i];
        }
        std::swap(src, dst);
    }
    if (src != pairs.data()) {
        std::memcpy(pairs.data(), src, n * sizeof(KeyIndex));
    }
}

void parallel_radix(std::span<KeyIndex> pairs, std::span<const int> shifts,
                    ThreadPool& pool) {
    const std::size_t n = pairs.size();
    // Fixed block decomposition: the same input always produces the same
    // blocks and scatter offsets, so output does not depend on scheduling.
    const std::size_t max_blocks = 4 * (pool.num_threads() + 1);
    const std::size_t nblocks = std::clamp<std::size_t>(n / kMinBlock, 1, max_blocks);
    auto block_lo = [&](std::size_t b) { return b * n / nblocks; };

    std::vector<KeyIndex> scratch(n);
    std::vector<std::array<std::uint32_t, kBuckets>> hist(nblocks);
    KeyIndex* src = pairs.data();
    KeyIndex* dst = scratch.data();
    for (int shift : shifts) {
        pool.parallel_for(
            0, nblocks,
            [&](std::size_t b) {
                auto& h = hist[b];
                h.fill(0);
                const std::size_t hi = block_lo(b + 1);
                for (std::size_t i = block_lo(b); i < hi; ++i) {
                    ++h[digit_of(src[i].key, shift)];
                }
            },
            1);
        // Exclusive scan in (digit, block) order: stable across blocks.
        std::uint32_t run = 0;
        for (std::size_t d = 0; d < kBuckets; ++d) {
            for (std::size_t b = 0; b < nblocks; ++b) {
                const std::uint32_t c = hist[b][d];
                hist[b][d] = run;
                run += c;
            }
        }
        pool.parallel_for(
            0, nblocks,
            [&](std::size_t b) {
                auto& offset = hist[b];  // this block's scatter cursors
                const std::size_t hi = block_lo(b + 1);
                for (std::size_t i = block_lo(b); i < hi; ++i) {
                    dst[offset[digit_of(src[i].key, shift)]++] = src[i];
                }
            },
            1);
        std::swap(src, dst);
    }
    if (src != pairs.data()) {
        std::memcpy(pairs.data(), src, n * sizeof(KeyIndex));
    }
}

}  // namespace

void radix_sort_pairs(std::span<KeyIndex> pairs, ThreadPool* pool) {
    const std::size_t n = pairs.size();
    if (n < 2) {
        return;
    }
    if (n <= kComparisonCutoff) {
        std::sort(pairs.begin(), pairs.end(), [](const KeyIndex& a, const KeyIndex& b) {
            return a.key != b.key ? a.key < b.key : a.index < b.index;
        });
        return;
    }
    const bool parallel = pool != nullptr && pool->num_threads() > 0 && n >= 2 * kMinBlock;
    std::uint64_t key_or = 0;
    std::uint64_t key_and = ~std::uint64_t{0};
    if (parallel) {
        const std::size_t nchunks =
            std::clamp<std::size_t>(n / kMinBlock, 1, 4 * (pool->num_threads() + 1));
        std::vector<std::uint64_t> ors(nchunks, 0);
        std::vector<std::uint64_t> ands(nchunks, ~std::uint64_t{0});
        pool->parallel_for(
            0, nchunks,
            [&](std::size_t c) {
                const std::size_t hi = (c + 1) * n / nchunks;
                std::uint64_t o = 0;
                std::uint64_t a = ~std::uint64_t{0};
                for (std::size_t i = c * n / nchunks; i < hi; ++i) {
                    o |= pairs[i].key;
                    a &= pairs[i].key;
                }
                ors[c] = o;
                ands[c] = a;
            },
            1);
        for (std::size_t c = 0; c < nchunks; ++c) {
            key_or |= ors[c];
            key_and &= ands[c];
        }
        const std::vector<int> shifts = active_shifts(key_or, key_and);
        if (!shifts.empty()) {
            parallel_radix(pairs, shifts, *pool);
        }
        return;
    }
    // Serial: one fused pre-scan computes or/and plus the digit counts of
    // every pass (counts are permutation-invariant, so they stay valid for
    // later passes over reordered data).
    std::vector<std::array<std::uint32_t, kBuckets>> counts(kMaxPasses);
    for (auto& c : counts) {
        c.fill(0);
    }
    for (const KeyIndex& p : pairs) {
        key_or |= p.key;
        key_and &= p.key;
        for (int j = 0; j < kMaxPasses; ++j) {
            ++counts[static_cast<std::size_t>(j)][digit_of(p.key, j * kDigitBits)];
        }
    }
    const std::vector<int> shifts = active_shifts(key_or, key_and);
    if (!shifts.empty()) {
        serial_radix(pairs, shifts, counts);
    }
}

std::vector<std::uint32_t> radix_sort_order(std::span<const std::uint64_t> keys,
                                            ThreadPool* pool) {
    const std::size_t n = keys.size();
    BAT_CHECK_MSG(n <= static_cast<std::size_t>(UINT32_MAX),
                  "radix_sort_order indexes with 32 bits");
    std::vector<KeyIndex> pairs(n);
    parallel_ranges(pool, n, kMinBlock, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            pairs[i] = KeyIndex{keys[i], static_cast<std::uint32_t>(i)};
        }
    });
    radix_sort_pairs(pairs, pool);
    std::vector<std::uint32_t> order(n);
    parallel_ranges(pool, n, kMinBlock, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            order[i] = pairs[i].index;
        }
    });
    return order;
}

}  // namespace bat
