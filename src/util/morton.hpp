#pragma once
// 3D Morton (Z-order) codes. The BAT builder quantizes particle positions to
// a 2^21 grid inside the aggregator's bounds and interleaves the bits into a
// 63-bit code (21 bits per axis), matching the precision commonly used for
// Karras-style bottom-up tree builds.

#include <cstdint>

#include "util/vec3.hpp"

namespace bat {

/// Bits used per axis in a 63-bit Morton code.
inline constexpr int kMortonBitsPerAxis = 21;
/// Total bits in a Morton code.
inline constexpr int kMortonBits = 3 * kMortonBitsPerAxis;

/// Spread the low 21 bits of `v` so consecutive bits land three apart.
std::uint64_t morton_part1by2(std::uint32_t v);

/// Inverse of morton_part1by2: compact every third bit back together.
std::uint32_t morton_compact1by2(std::uint64_t v);

/// Interleave three 21-bit integer coordinates into a 63-bit Morton code.
/// Bit layout: the most significant interleaved bit comes from x.
std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// Recover the three 21-bit coordinates from a Morton code.
void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y, std::uint32_t& z);

/// Quantize a position inside `bounds` to the Morton grid and encode it.
/// Positions on the upper boundary map to the last cell.
std::uint64_t morton_encode_position(Vec3 p, const Box& bounds);

/// Batched morton_encode over integer coordinate planes: out[i] =
/// morton_encode(x[i], y[i], z[i]). Runtime-dispatched (util/simd.hpp):
/// the BMI2 tiers replace the magic-number bit spread with pdep; every
/// tier produces bit-identical codes.
void morton_encode_batch(const std::uint32_t* x, const std::uint32_t* y,
                         const std::uint32_t* z, std::size_t n, std::uint64_t* out);

/// Batched morton_encode_position over deplaned position planes (the BAT
/// builder's SoA scratch): out[i] = morton_encode_position({xs[i], ys[i],
/// zs[i]}, bounds), bit-identical across dispatch tiers. The AVX2 tier
/// vectorizes the quantization (sub/div/clamp/truncate) 8 positions at a
/// time; quantized cells are interleaved with pdep where available.
void morton_encode_positions(const float* xs, const float* ys, const float* zs,
                             std::size_t n, const Box& bounds, std::uint64_t* out);

/// Axis (0=x, 1=y, 2=z) that the bit at position `bit` (0 = LSB) splits.
/// With the layout produced by morton_encode, bit index b counts from the
/// LSB; the axis cycles z, y, x as b increases... concretely:
/// bit 3k   -> z, bit 3k+1 -> y, bit 3k+2 -> x.
int morton_bit_axis(int bit);

}  // namespace bat
