#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace bat {

namespace {

std::atomic<int> g_level{[] {
    if (const char* env = std::getenv("BAT_LOG")) {
        return std::atoi(env);
    }
    return static_cast<int>(LogLevel::warn);
}()};

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::error: return "ERROR";
        case LogLevel::warn: return "WARN";
        case LogLevel::info: return "INFO";
        case LogLevel::debug: return "DEBUG";
        default: return "?";
    }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    std::fprintf(stderr, "[bat %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace bat
