#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace bat {

namespace {

std::atomic<int> g_level{[] {
    if (const char* env = std::getenv("BAT_LOG")) {
        return std::atoi(env);
    }
    return static_cast<int>(LogLevel::warn);
}()};

thread_local int t_rank = -1;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::error: return "ERROR";
        case LogLevel::warn: return "WARN";
        case LogLevel::info: return "INFO";
        case LogLevel::debug: return "DEBUG";
        default: return "?";
    }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_thread_log_rank(int rank) { t_rank = rank; }

int thread_log_rank() { return t_rank; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
    // Preformat the whole line so a single fwrite emits it; the mutex
    // orders lines from concurrent rank threads (fwrite alone would keep a
    // line intact but not its position among multi-line messages).
    std::string line = "[bat ";
    if (t_rank >= 0) {
        line += "r" + std::to_string(t_rank) + " ";
    }
    line += level_name(level);
    line += "] ";
    line += msg;
    line += '\n';
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace bat
