#pragma once
// Memory-mapped read access to BAT files. The on-disk layout (4 KB-aligned
// treelets, paper Fig 2) is designed so visualization reads can mmap the
// file and let the OS page cache serve frequently-accessed regions
// (paper §V). Also provides plain buffered whole-file read/write helpers.

#include <cstddef>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace bat {

/// RAII read-only memory mapping of a whole file.
class MappedFile {
public:
    MappedFile() = default;
    explicit MappedFile(const std::filesystem::path& path);
    ~MappedFile();

    MappedFile(MappedFile&& other) noexcept;
    MappedFile& operator=(MappedFile&& other) noexcept;
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    bool valid() const { return data_ != nullptr; }
    std::size_t size() const { return size_; }
    std::span<const std::byte> bytes() const {
        return {static_cast<const std::byte*>(data_), size_};
    }

private:
    void close();
    void* data_ = nullptr;
    std::size_t size_ = 0;
};

/// Write `bytes` to `path` atomically enough for our purposes (truncate +
/// single write). Throws bat::Error on failure.
void write_file(const std::filesystem::path& path, std::span<const std::byte> bytes);

/// Read an entire file into memory. Throws bat::Error on failure.
std::vector<std::byte> read_file(const std::filesystem::path& path);

}  // namespace bat
