#pragma once
// Minimal 3D vector and axis-aligned bounding box types used throughout the
// library. Positions are single-precision (matching the paper's particle
// format: three float coordinates); box arithmetic is done in float with
// care to keep containment checks conservative.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>

namespace bat {

struct Vec3 {
    float x = 0.f;
    float y = 0.f;
    float z = 0.f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}
    explicit constexpr Vec3(float v) : x(v), y(v), z(v) {}

    constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
    float& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }

    friend constexpr Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
    friend constexpr Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
    friend constexpr Vec3 operator*(Vec3 a, float s) { return {a.x * s, a.y * s, a.z * s}; }
    friend constexpr Vec3 operator*(float s, Vec3 a) { return a * s; }
    friend constexpr Vec3 operator/(Vec3 a, float s) { return {a.x / s, a.y / s, a.z / s}; }
    friend constexpr bool operator==(Vec3 a, Vec3 b) {
        return a.x == b.x && a.y == b.y && a.z == b.z;
    }

    friend std::ostream& operator<<(std::ostream& os, Vec3 v) {
        return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
    }
};

inline Vec3 min(Vec3 a, Vec3 b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}
inline Vec3 max(Vec3 a, Vec3 b) {
    return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

/// Axis-aligned bounding box. A default-constructed box is empty (inverted).
struct Box {
    Vec3 lower{std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
               std::numeric_limits<float>::max()};
    Vec3 upper{std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
               std::numeric_limits<float>::lowest()};

    constexpr Box() = default;
    constexpr Box(Vec3 lo, Vec3 hi) : lower(lo), upper(hi) {}

    bool empty() const {
        return lower.x > upper.x || lower.y > upper.y || lower.z > upper.z;
    }

    void extend(Vec3 p) {
        lower = min(lower, p);
        upper = max(upper, p);
    }
    void extend(const Box& b) {
        lower = min(lower, b.lower);
        upper = max(upper, b.upper);
    }

    Vec3 extent() const { return upper - lower; }
    Vec3 center() const { return (lower + upper) * 0.5f; }

    /// Index (0=x,1=y,2=z) of the longest axis.
    int longest_axis() const {
        const Vec3 e = extent();
        if (e.x >= e.y && e.x >= e.z) return 0;
        if (e.y >= e.z) return 1;
        return 2;
    }

    bool contains(Vec3 p) const {
        return p.x >= lower.x && p.x <= upper.x && p.y >= lower.y && p.y <= upper.y &&
               p.z >= lower.z && p.z <= upper.z;
    }

    bool overlaps(const Box& b) const {
        return lower.x <= b.upper.x && upper.x >= b.lower.x && lower.y <= b.upper.y &&
               upper.y >= b.lower.y && lower.z <= b.upper.z && upper.z >= b.lower.z;
    }

    /// True when `b` lies entirely within this box.
    bool contains_box(const Box& b) const {
        return contains(b.lower) && contains(b.upper);
    }

    friend bool operator==(const Box& a, const Box& b) {
        return a.lower == b.lower && a.upper == b.upper;
    }

    friend std::ostream& operator<<(std::ostream& os, const Box& b) {
        return os << "[" << b.lower << " - " << b.upper << "]";
    }
};

inline Box intersection(const Box& a, const Box& b) {
    Box r(max(a.lower, b.lower), min(a.upper, b.upper));
    return r;
}

}  // namespace bat
