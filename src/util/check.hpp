#pragma once
// Error-handling primitives shared across the library.
//
// BAT_CHECK(cond) / BAT_CHECK_MSG(cond, msg): precondition and invariant
// checks that are always on (I/O libraries must not silently corrupt data).
// Failures throw bat::Error so callers — including the C API shim — can
// translate them into error codes instead of aborting the simulation.

#include <sstream>
#include <stdexcept>
#include <string>

namespace bat {

/// Exception type thrown on any precondition, format, or I/O failure.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
    std::ostringstream os;
    os << "BAT_CHECK failed: (" << expr << ") at " << file << ":" << line;
    if (!msg.empty()) {
        os << ": " << msg;
    }
    throw Error(os.str());
}
}  // namespace detail

}  // namespace bat

#define BAT_CHECK(cond)                                                      \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::bat::detail::check_failed(#cond, __FILE__, __LINE__, "");      \
        }                                                                    \
    } while (false)

#define BAT_CHECK_MSG(cond, msg)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream bat_check_os_;                                \
            bat_check_os_ << msg;                                            \
            ::bat::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                        bat_check_os_.str());                \
        }                                                                    \
    } while (false)

#define BAT_FAIL(msg)                                                        \
    do {                                                                     \
        std::ostringstream bat_check_os_;                                    \
        bat_check_os_ << msg;                                                \
        ::bat::detail::check_failed("unreachable", __FILE__, __LINE__,       \
                                    bat_check_os_.str());                    \
    } while (false)
