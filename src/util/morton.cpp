#include "util/morton.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace bat {

std::uint64_t morton_part1by2(std::uint32_t v) {
    std::uint64_t x = v & 0x1fffff;  // keep 21 bits
    x = (x | x << 32) & 0x1f00000000ffffULL;
    x = (x | x << 16) & 0x1f0000ff0000ffULL;
    x = (x | x << 8) & 0x100f00f00f00f00fULL;
    x = (x | x << 4) & 0x10c30c30c30c30c3ULL;
    x = (x | x << 2) & 0x1249249249249249ULL;
    return x;
}

std::uint32_t morton_compact1by2(std::uint64_t x) {
    x &= 0x1249249249249249ULL;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
    x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
    x = (x ^ (x >> 32)) & 0x1fffffULL;
    return static_cast<std::uint32_t>(x);
}

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (morton_part1by2(x) << 2) | (morton_part1by2(y) << 1) | morton_part1by2(z);
}

void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y, std::uint32_t& z) {
    x = morton_compact1by2(code >> 2);
    y = morton_compact1by2(code >> 1);
    z = morton_compact1by2(code);
}

std::uint64_t morton_encode_position(Vec3 p, const Box& bounds) {
    BAT_CHECK(!bounds.empty());
    const Vec3 ext = bounds.extent();
    constexpr float kGrid = static_cast<float>(1u << kMortonBitsPerAxis);
    std::uint32_t q[3];
    for (int a = 0; a < 3; ++a) {
        // Degenerate axes (all particles share a coordinate) map to cell 0.
        float t = ext[a] > 0.f ? (p[a] - bounds.lower[a]) / ext[a] : 0.f;
        t = std::clamp(t, 0.f, 1.f);
        const auto cell = static_cast<std::uint32_t>(t * kGrid);
        q[a] = std::min(cell, (1u << kMortonBitsPerAxis) - 1);
    }
    return morton_encode(q[0], q[1], q[2]);
}

int morton_bit_axis(int bit) {
    BAT_CHECK(bit >= 0 && bit < kMortonBits);
    // morton_encode places x bits at positions 3k+2, y at 3k+1, z at 3k.
    switch (bit % 3) {
        case 2: return 0;
        case 1: return 1;
        default: return 2;
    }
}

}  // namespace bat
