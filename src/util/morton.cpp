#include "util/morton.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/simd.hpp"

#if BAT_SIMD_X86
#include <immintrin.h>
#endif

namespace bat {

std::uint64_t morton_part1by2(std::uint32_t v) {
    std::uint64_t x = v & 0x1fffff;  // keep 21 bits
    x = (x | x << 32) & 0x1f00000000ffffULL;
    x = (x | x << 16) & 0x1f0000ff0000ffULL;
    x = (x | x << 8) & 0x100f00f00f00f00fULL;
    x = (x | x << 4) & 0x10c30c30c30c30c3ULL;
    x = (x | x << 2) & 0x1249249249249249ULL;
    return x;
}

std::uint32_t morton_compact1by2(std::uint64_t x) {
    x &= 0x1249249249249249ULL;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
    x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
    x = (x ^ (x >> 32)) & 0x1fffffULL;
    return static_cast<std::uint32_t>(x);
}

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (morton_part1by2(x) << 2) | (morton_part1by2(y) << 1) | morton_part1by2(z);
}

void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y, std::uint32_t& z) {
    x = morton_compact1by2(code >> 2);
    y = morton_compact1by2(code >> 1);
    z = morton_compact1by2(code);
}

std::uint64_t morton_encode_position(Vec3 p, const Box& bounds) {
    BAT_CHECK(!bounds.empty());
    const Vec3 ext = bounds.extent();
    constexpr float kGrid = static_cast<float>(1u << kMortonBitsPerAxis);
    std::uint32_t q[3];
    for (int a = 0; a < 3; ++a) {
        // Degenerate axes (all particles share a coordinate) map to cell 0.
        float t = ext[a] > 0.f ? (p[a] - bounds.lower[a]) / ext[a] : 0.f;
        t = std::clamp(t, 0.f, 1.f);
        const auto cell = static_cast<std::uint32_t>(t * kGrid);
        q[a] = std::min(cell, (1u << kMortonBitsPerAxis) - 1);
    }
    return morton_encode(q[0], q[1], q[2]);
}

// ---- batched encode --------------------------------------------------------
// The batch kernels are the BAT builder's hot path: the scalar tier is the
// reference (a plain loop over morton_encode / morton_encode_position), the
// BMI2 tiers swap the five-step magic spread for one pdep per axis, and the
// AVX2 position tier additionally quantizes eight positions per iteration.
// Quantized cells are exact in every tier (sub/div/clamp/truncate all follow
// IEEE semantics lane-wise), so the emitted codes are bit-identical.

namespace {

void encode_batch_scalar(const std::uint32_t* x, const std::uint32_t* y,
                         const std::uint32_t* z, std::size_t n, std::uint64_t* out) {
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = morton_encode(x[i], y[i], z[i]);
    }
}

#if BAT_SIMD_X86

// Bit positions per axis in the interleaved code: z at 3k, y at 3k+1, x at 3k+2.
constexpr std::uint64_t kSpreadZ = 0x1249249249249249ULL;
constexpr std::uint64_t kSpreadY = kSpreadZ << 1;
constexpr std::uint64_t kSpreadX = kSpreadZ << 2;

[[gnu::target("bmi2")]] inline std::uint64_t encode_pdep(std::uint32_t x,
                                                         std::uint32_t y,
                                                         std::uint32_t z) {
    return _pdep_u64(x, kSpreadX) | _pdep_u64(y, kSpreadY) | _pdep_u64(z, kSpreadZ);
}

[[gnu::target("bmi2")]] void encode_batch_pdep(const std::uint32_t* x,
                                               const std::uint32_t* y,
                                               const std::uint32_t* z, std::size_t n,
                                               std::uint64_t* out) {
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = encode_pdep(x[i] & 0x1fffffu, y[i] & 0x1fffffu, z[i] & 0x1fffffu);
    }
}

/// Quantize 8 coordinates of one axis, matching morton_encode_position's
/// scalar math lane for lane: t = (p - lower) / ext clamped to [0, 1],
/// cell = trunc(t * kGrid) capped at the last cell. Degenerate axes (the
/// ext > 0 check is uniform across the batch) map to cell 0.
[[gnu::target("avx2")]] inline __m256i quantize8_avx2(const float* p, float lower,
                                                      float ext) {
    if (!(ext > 0.f)) {
        return _mm256_setzero_si256();
    }
    constexpr float kGrid = static_cast<float>(1u << kMortonBitsPerAxis);
    const __m256 t = _mm256_div_ps(
        _mm256_sub_ps(_mm256_loadu_ps(p), _mm256_set1_ps(lower)),
        _mm256_set1_ps(ext));
    const __m256 clamped = _mm256_min_ps(
        _mm256_max_ps(t, _mm256_setzero_ps()), _mm256_set1_ps(1.f));
    const __m256i cell =
        _mm256_cvttps_epi32(_mm256_mul_ps(clamped, _mm256_set1_ps(kGrid)));
    return _mm256_min_epu32(cell,
                            _mm256_set1_epi32((1 << kMortonBitsPerAxis) - 1));
}

[[gnu::target("avx2,bmi2")]] void encode_positions_avx2(
    const float* xs, const float* ys, const float* zs, std::size_t n,
    const Box& bounds, std::uint64_t* out) {
    const Vec3 ext = bounds.extent();
    alignas(32) std::uint32_t qx[8];
    alignas(32) std::uint32_t qy[8];
    alignas(32) std::uint32_t qz[8];
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_store_si256(reinterpret_cast<__m256i*>(qx),
                           quantize8_avx2(xs + i, bounds.lower[0], ext[0]));
        _mm256_store_si256(reinterpret_cast<__m256i*>(qy),
                           quantize8_avx2(ys + i, bounds.lower[1], ext[1]));
        _mm256_store_si256(reinterpret_cast<__m256i*>(qz),
                           quantize8_avx2(zs + i, bounds.lower[2], ext[2]));
        for (int k = 0; k < 8; ++k) {
            out[i + static_cast<std::size_t>(k)] = encode_pdep(qx[k], qy[k], qz[k]);
        }
    }
    for (; i < n; ++i) {
        out[i] = morton_encode_position({xs[i], ys[i], zs[i]}, bounds);
    }
}

[[gnu::target("bmi2")]] void encode_positions_pdep(const float* xs, const float* ys,
                                                   const float* zs, std::size_t n,
                                                   const Box& bounds,
                                                   std::uint64_t* out) {
    const Vec3 ext = bounds.extent();
    constexpr float kGrid = static_cast<float>(1u << kMortonBitsPerAxis);
    for (std::size_t i = 0; i < n; ++i) {
        const float p[3] = {xs[i], ys[i], zs[i]};
        std::uint32_t q[3];
        for (int a = 0; a < 3; ++a) {
            float t = ext[a] > 0.f ? (p[a] - bounds.lower[a]) / ext[a] : 0.f;
            t = std::clamp(t, 0.f, 1.f);
            const auto cell = static_cast<std::uint32_t>(t * kGrid);
            q[a] = std::min(cell, (1u << kMortonBitsPerAxis) - 1);
        }
        out[i] = encode_pdep(q[0], q[1], q[2]);
    }
}

#endif  // BAT_SIMD_X86

}  // namespace

void morton_encode_batch(const std::uint32_t* x, const std::uint32_t* y,
                         const std::uint32_t* z, std::size_t n, std::uint64_t* out) {
#if BAT_SIMD_X86
    if (simd::active_level() >= simd::Level::sse42_bmi2) {
        encode_batch_pdep(x, y, z, n, out);
        return;
    }
#endif
    encode_batch_scalar(x, y, z, n, out);
}

void morton_encode_positions(const float* xs, const float* ys, const float* zs,
                             std::size_t n, const Box& bounds, std::uint64_t* out) {
    if (n == 0) {
        return;
    }
    BAT_CHECK(!bounds.empty());
#if BAT_SIMD_X86
    const simd::Level level = simd::active_level();
    if (level == simd::Level::avx2) {
        encode_positions_avx2(xs, ys, zs, n, bounds, out);
        return;
    }
    if (level == simd::Level::sse42_bmi2) {
        encode_positions_pdep(xs, ys, zs, n, bounds, out);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = morton_encode_position({xs[i], ys[i], zs[i]}, bounds);
    }
}

int morton_bit_axis(int bit) {
    BAT_CHECK(bit >= 0 && bit < kMortonBits);
    // morton_encode places x bits at positions 3k+2, y at 3k+1, z at 3k.
    switch (bit % 3) {
        case 2: return 0;
        case 1: return 1;
        default: return 2;
    }
}

}  // namespace bat
