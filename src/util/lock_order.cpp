#include "util/lock_order.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

namespace bat::lockdbg {
namespace {

// Registry state. Guarded by a plain std::mutex: the registry must not use
// CheckedMutex itself.
struct Registry {
    std::mutex mutex;
    std::vector<std::string> names;                    // class id -> name
    std::vector<std::unordered_set<int>> edges;        // a -> {b}: b taken while a held
};

Registry& registry() {
    static Registry r;
    return r;
}

// Per-thread stack of held lock classes, in acquisition order. Deliberately
// trivially destructible (fixed array, no heap): CheckedMutex locks are
// taken from static destructors at process exit (e.g. the global thread
// pool draining in its atexit-time destructor), which run after this
// thread's TLS destructors — a std::vector here would push into a freed
// heap buffer. Depths beyond the cap are silently not recorded.
constexpr int kMaxHeldDepth = 64;
struct HeldStack {
    int ids[kMaxHeldDepth];
    int size;
};
thread_local HeldStack t_held{};

bool default_enabled() {
#ifdef BAT_LOCK_CHECKS
    bool on = true;
#else
    bool on = false;
#endif
    if (const char* env = std::getenv("BAT_LOCK_CHECKS")) {
        on = !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0);
    }
    return on;
}

std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{default_enabled()};
    return flag;
}

// True if `to` is reachable from `from` in the edge graph. Caller holds the
// registry mutex. The graph has one node per lock class (a handful), so a
// simple DFS is plenty.
bool reachable(const Registry& r, int from, int to) {
    if (from == to) {
        return true;
    }
    std::vector<int> stack{from};
    std::unordered_set<int> seen{from};
    while (!stack.empty()) {
        const int node = stack.back();
        stack.pop_back();
        for (const int next : r.edges[static_cast<std::size_t>(node)]) {
            if (next == to) {
                return true;
            }
            if (seen.insert(next).second) {
                stack.push_back(next);
            }
        }
    }
    return false;
}

std::string held_chain(const Registry& r) {
    std::string s;
    for (int i = 0; i < t_held.size; ++i) {
        if (!s.empty()) {
            s += " -> ";
        }
        s += r.names[static_cast<std::size_t>(t_held.ids[i])];
    }
    return s;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

void fatal(const std::string& msg) {
    std::fprintf(stderr, "bat lockdbg FATAL: %s\n", msg.c_str());
    std::fflush(stderr);
    std::abort();
}

int register_class(const char* name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (std::size_t i = 0; i < r.names.size(); ++i) {
        if (r.names[i] == name) {
            return static_cast<int>(i);
        }
    }
    r.names.emplace_back(name);
    r.edges.emplace_back();
    return static_cast<int>(r.names.size() - 1);
}

void before_lock(int class_id) {
    if (t_held.size == 0) {
        return;
    }
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const std::string& name = r.names[static_cast<std::size_t>(class_id)];
    for (int i = 0; i < t_held.size; ++i) {
        if (t_held.ids[i] == class_id) {
            fatal("lock order violation: acquiring a second instance of lock class '" +
                  name + "' while already holding one (held: " + held_chain(r) +
                  "); same-class nesting requires an explicit instance order");
        }
    }
    for (int i = 0; i < t_held.size; ++i) {
        const int held = t_held.ids[i];
        // Adding held -> class_id; a pre-existing path class_id -> held
        // means some thread takes them in the opposite order.
        if (reachable(r, class_id, held)) {
            fatal("lock order violation: acquiring '" + name + "' while holding '" +
                  r.names[static_cast<std::size_t>(held)] +
                  "', but the opposite order was previously established (held: " +
                  held_chain(r) + ")");
        }
        r.edges[static_cast<std::size_t>(held)].insert(class_id);
    }
}

void after_lock(int class_id) {
    if (t_held.size < kMaxHeldDepth) {
        t_held.ids[t_held.size++] = class_id;
    }
}

void after_unlock(int class_id) {
    // Usually top-of-stack; tolerate out-of-order unlocks and toggling
    // enabled() mid-stream (entry may be absent).
    for (int i = t_held.size - 1; i >= 0; --i) {
        if (t_held.ids[i] == class_id) {
            for (int j = i; j + 1 < t_held.size; ++j) {
                t_held.ids[j] = t_held.ids[j + 1];
            }
            --t_held.size;
            return;
        }
    }
}

}  // namespace bat::lockdbg
