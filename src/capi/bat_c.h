#ifndef BAT_C_H
#define BAT_C_H
/* C API for the BAT parallel I/O library (paper §III: "We provide a C API
 * to ease integration of our proposed I/O strategy into simulations written
 * in a range of programming languages. The API follows an array-based
 * attribute storage model similar to HDF5, ADIOS, and Silo.").
 *
 * Usage (write):
 *   bat_io* io = bat_io_create();
 *   bat_io_set_output(io, "/tmp/out", "step42");
 *   bat_io_set_strategy(io, "adaptive");
 *   bat_io_set_target_size(io, 8ull << 20);
 *   bat_io_set_positions(io, xyz, n);                 // 3*n floats
 *   bat_io_add_attribute(io, "temperature", temp);    // n doubles
 *   bat_io_commit(io);                                // writes BAT + metadata
 *   bat_io_destroy(io);
 *
 * All functions return BAT_OK (0) on success; bat_io_last_error() returns a
 * message for the most recent failure.
 */

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define BAT_OK 0
#define BAT_ERR 1

typedef struct bat_io_s bat_io;

bat_io* bat_io_create(void);
void bat_io_destroy(bat_io* io);
const char* bat_io_last_error(const bat_io* io);

int bat_io_set_output(bat_io* io, const char* directory, const char* basename);
/* strategy: "adaptive" (default), "aug", or "file-per-process". */
int bat_io_set_strategy(bat_io* io, const char* strategy);
int bat_io_set_target_size(bat_io* io, uint64_t bytes);
/* Domain bounds of this dataset (optional; defaults to the particle
 * bounds). */
int bat_io_set_bounds(bat_io* io, const float lower[3], const float upper[3]);

/* Positions: interleaved xyz, `count` particles. Must be set before
 * attributes. The data is copied. */
int bat_io_set_positions(bat_io* io, const float* xyz, uint64_t count);
/* One named double array of `count` values (count from set_positions). */
int bat_io_add_attribute(bat_io* io, const char* name, const double* values);

/* Write the BAT file(s) + metadata. Returns BAT_OK on success. After a
 * commit the staged particles are cleared so the handle can be reused for
 * the next timestep. */
int bat_io_commit(bat_io* io);
/* Path of the metadata file written by the last successful commit. */
const char* bat_io_metadata_path(const bat_io* io);

/* ---- reads ------------------------------------------------------------ */

typedef struct bat_dataset_s bat_dataset;

bat_dataset* bat_dataset_open(const char* metadata_path);
void bat_dataset_close(bat_dataset* ds);
const char* bat_dataset_last_error(const bat_dataset* ds);

uint64_t bat_dataset_num_particles(const bat_dataset* ds);
uint32_t bat_dataset_num_attributes(const bat_dataset* ds);
const char* bat_dataset_attribute_name(const bat_dataset* ds, uint32_t index);
/* Global (min, max) of an attribute. */
int bat_dataset_attribute_range(const bat_dataset* ds, uint32_t index, double* lo,
                                double* hi);

/* Callback receives the position and one value per attribute. Return is
 * ignored. */
typedef void (*bat_query_callback)(const float position[3], const double* attributes,
                                   void* user);

/* Query the data set: spatial box (NULL for the full domain), optional
 * single attribute filter (attr_index < 0 disables it), and a progressive
 * quality window (quality_lo, quality_hi] in [0, 1]. Returns the number of
 * points emitted, or UINT64_MAX on error. */
uint64_t bat_dataset_query(bat_dataset* ds, const float lower[3], const float upper[3],
                           int attr_index, double attr_lo, double attr_hi,
                           float quality_lo, float quality_hi, bat_query_callback cb,
                           void* user);

#ifdef __cplusplus
}
#endif

#endif /* BAT_C_H */
