#include "capi/bat_c.h"

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/bat_file.hpp"
#include "core/bat_query.hpp"
#include "core/metadata.hpp"
#include "core/particles.hpp"
#include "io/writer.hpp"
#include "util/check.hpp"

using namespace bat;

struct bat_io_s {
    WriterConfig config;
    std::optional<Box> bounds;
    std::vector<float> positions;
    std::vector<std::string> attr_names;
    std::vector<std::vector<double>> attrs;
    std::string last_error;
    std::string metadata_path;
};

struct bat_dataset_s {
    std::filesystem::path dir;
    Metadata meta;
    std::map<int, std::unique_ptr<BatFile>> files;
    std::string last_error;

    const BatFile& open(int leaf) {
        auto it = files.find(leaf);
        if (it == files.end()) {
            it = files
                     .emplace(leaf, std::make_unique<BatFile>(
                                        dir / meta.leaves[static_cast<std::size_t>(leaf)].file))
                     .first;
        }
        return *it->second;
    }
};

namespace {

template <typename F>
int guarded(bat_io* io, F&& f) {
    try {
        f();
        return BAT_OK;
    } catch (const std::exception& e) {
        if (io != nullptr) {
            io->last_error = e.what();
        }
        return BAT_ERR;
    }
}

}  // namespace

extern "C" {

bat_io* bat_io_create(void) {
    auto* io = new bat_io_s;
    io->config.directory = ".";
    io->config.basename = "particles";
    return io;
}

void bat_io_destroy(bat_io* io) { delete io; }

const char* bat_io_last_error(const bat_io* io) {
    return io != nullptr ? io->last_error.c_str() : "null handle";
}

int bat_io_set_output(bat_io* io, const char* directory, const char* basename) {
    return guarded(io, [&] {
        BAT_CHECK(io != nullptr && directory != nullptr && basename != nullptr);
        io->config.directory = directory;
        io->config.basename = basename;
    });
}

int bat_io_set_strategy(bat_io* io, const char* strategy) {
    return guarded(io, [&] {
        BAT_CHECK(io != nullptr && strategy != nullptr);
        const std::string s = strategy;
        if (s == "adaptive") {
            io->config.strategy = AggStrategy::adaptive;
        } else if (s == "aug") {
            io->config.strategy = AggStrategy::aug;
        } else if (s == "file-per-process" || s == "fpp") {
            io->config.strategy = AggStrategy::file_per_process;
        } else {
            BAT_FAIL("unknown strategy '" << s << "'");
        }
    });
}

int bat_io_set_target_size(bat_io* io, uint64_t bytes) {
    return guarded(io, [&] {
        BAT_CHECK(io != nullptr && bytes > 0);
        io->config.tree.target_file_size = bytes;
    });
}

int bat_io_set_bounds(bat_io* io, const float lower[3], const float upper[3]) {
    return guarded(io, [&] {
        BAT_CHECK(io != nullptr && lower != nullptr && upper != nullptr);
        io->bounds = Box({lower[0], lower[1], lower[2]}, {upper[0], upper[1], upper[2]});
    });
}

int bat_io_set_positions(bat_io* io, const float* xyz, uint64_t count) {
    return guarded(io, [&] {
        BAT_CHECK(io != nullptr && (xyz != nullptr || count == 0));
        io->positions.assign(xyz, xyz + 3 * count);
        io->attr_names.clear();
        io->attrs.clear();
    });
}

int bat_io_add_attribute(bat_io* io, const char* name, const double* values) {
    return guarded(io, [&] {
        BAT_CHECK(io != nullptr && name != nullptr);
        const std::size_t n = io->positions.size() / 3;
        BAT_CHECK(values != nullptr || n == 0);
        io->attr_names.emplace_back(name);
        io->attrs.emplace_back(values, values + n);
    });
}

int bat_io_commit(bat_io* io) {
    return guarded(io, [&] {
        BAT_CHECK(io != nullptr);
        ParticleSet set(io->attr_names);
        const std::size_t n = io->positions.size() / 3;
        set.resize(n);
        std::copy(io->positions.begin(), io->positions.end(), set.positions_mut().begin());
        for (std::size_t a = 0; a < io->attrs.size(); ++a) {
            BAT_CHECK_MSG(io->attrs[a].size() == n, "attribute size mismatch");
            std::copy(io->attrs[a].begin(), io->attrs[a].end(), set.attr_mut(a).begin());
        }
        const Box bounds = io->bounds.value_or(set.bounds());
        const WriteResult result =
            write_particles_serial(std::span(&set, 1), std::span(&bounds, 1), io->config);
        io->metadata_path = result.metadata_path.string();
        io->positions.clear();
        io->attr_names.clear();
        io->attrs.clear();
    });
}

const char* bat_io_metadata_path(const bat_io* io) {
    return io != nullptr ? io->metadata_path.c_str() : "";
}

bat_dataset* bat_dataset_open(const char* metadata_path) {
    if (metadata_path == nullptr) {
        return nullptr;
    }
    try {
        auto ds = std::make_unique<bat_dataset_s>();
        const std::filesystem::path path = metadata_path;
        ds->dir = path.parent_path();
        ds->meta = Metadata::load(path);
        return ds.release();
    } catch (const std::exception&) {
        return nullptr;
    }
}

void bat_dataset_close(bat_dataset* ds) { delete ds; }

const char* bat_dataset_last_error(const bat_dataset* ds) {
    return ds != nullptr ? ds->last_error.c_str() : "null handle";
}

uint64_t bat_dataset_num_particles(const bat_dataset* ds) {
    return ds != nullptr ? ds->meta.total_particles() : 0;
}

uint32_t bat_dataset_num_attributes(const bat_dataset* ds) {
    return ds != nullptr ? static_cast<uint32_t>(ds->meta.num_attrs()) : 0;
}

const char* bat_dataset_attribute_name(const bat_dataset* ds, uint32_t index) {
    if (ds == nullptr || index >= ds->meta.num_attrs()) {
        return nullptr;
    }
    return ds->meta.attr_names[index].c_str();
}

int bat_dataset_attribute_range(const bat_dataset* ds, uint32_t index, double* lo,
                                double* hi) {
    if (ds == nullptr || index >= ds->meta.num_attrs() || lo == nullptr || hi == nullptr) {
        return BAT_ERR;
    }
    *lo = ds->meta.global_ranges[index].first;
    *hi = ds->meta.global_ranges[index].second;
    return BAT_OK;
}

uint64_t bat_dataset_query(bat_dataset* ds, const float lower[3], const float upper[3],
                           int attr_index, double attr_lo, double attr_hi,
                           float quality_lo, float quality_hi, bat_query_callback cb,
                           void* user) {
    if (ds == nullptr || cb == nullptr) {
        return UINT64_MAX;
    }
    try {
        BatQuery query;
        if (lower != nullptr && upper != nullptr) {
            query.box = Box({lower[0], lower[1], lower[2]}, {upper[0], upper[1], upper[2]});
        }
        if (attr_index >= 0) {
            query.attr_filters.push_back(
                {static_cast<std::uint32_t>(attr_index), attr_lo, attr_hi});
        }
        query.quality_lo = quality_lo;
        query.quality_hi = quality_hi;
        const std::vector<int> leaves =
            ds->meta.query_leaves(query.box, query.attr_filters);
        uint64_t emitted = 0;
        for (int leaf : leaves) {
            const BatFile& file = ds->open(leaf);
            emitted += query_bat(file, query, [&](Vec3 p, std::span<const double> attrs) {
                const float pos[3] = {p.x, p.y, p.z};
                cb(pos, attrs.data(), user);
            });
        }
        return emitted;
    } catch (const std::exception& e) {
        ds->last_error = e.what();
        return UINT64_MAX;
    }
}

}  // extern "C"
