#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/output_path.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace bat::obs {

namespace {

enum class EventType : std::uint8_t {
    begin,
    end,
    instant,
    counter,
    flow_start,
    flow_end,
};

/// Fixed-size POD event; name/cat/arg-name pointers reference string
/// literals owned by the instrumentation sites.
struct TraceEvent {
    const char* name = nullptr;
    const char* cat = nullptr;
    std::uint64_t ts_ns = 0;
    std::uint64_t flow_id = 0;
    const char* arg_names[4] = {nullptr, nullptr, nullptr, nullptr};
    std::int64_t arg_vals[4] = {0, 0, 0, 0};
    EventType type = EventType::instant;
    int rank = -1;
    std::uint32_t tid = 0;
};

/// Single-writer ring: the owning thread stores and bumps head; the
/// exporter snapshots head with acquire ordering. Overflow overwrites the
/// oldest events and counts them as dropped.
struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity, std::uint32_t tid)
        : capacity(capacity), tid(tid) {
        // Reserve (not resize): rank threads are short-lived, and eagerly
        // zero-filling the full ring costs milliseconds per thread. The data
        // pointer never moves after this, so the exporter can read entries
        // below `head` (published with release order) without locking.
        ring.reserve(capacity);
    }
    const std::size_t capacity;
    std::vector<TraceEvent> ring;  // grows to `capacity`, then wraps
    std::atomic<std::uint64_t> head{0};  // events ever pushed
    std::uint32_t tid;

    void push(const TraceEvent& ev) {
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        if (ring.size() < capacity) {
            ring.push_back(ev);
        } else {
            ring[h % capacity] = ev;
        }
        head.store(h + 1, std::memory_order_release);
    }
};

struct Registry {
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::map<std::uint32_t, std::string> virtual_tracks;
    // Bumped by reset_trace(); threads holding a buffer from an older
    // generation re-register on their next event. Atomic so the per-event
    // staleness check stays lock-free.
    std::atomic<std::uint64_t> generation{0};
};

Registry& registry() {
    static Registry r;
    return r;
}

std::atomic<bool> g_enabled{[] {
    const char* env = std::getenv("BAT_TRACE");
    return env != nullptr && std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}()};

std::atomic<std::uint64_t> g_flow_counter{0};
std::atomic<std::uint32_t> g_tid_counter{1};
std::atomic<std::uint32_t> g_virtual_tid_counter{1 << 16};

std::size_t env_ring_capacity() {
    if (const char* env = std::getenv("BAT_TRACE_BUFFER")) {
        const long v = std::atol(env);
        if (v > 0) {
            return static_cast<std::size_t>(v);
        }
    }
    return std::size_t{1} << 16;
}

std::atomic<std::size_t> g_ring_capacity{env_ring_capacity()};

std::chrono::steady_clock::time_point trace_epoch() {
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/// Export-at-exit hook, registered once: dumps the trace (and global
/// metrics) to the paths named by BAT_TRACE_FILE / BAT_METRICS_FILE.
void register_atexit_export() {
    static std::once_flag once;
    std::call_once(once, [] {
        if (std::getenv("BAT_TRACE_FILE") != nullptr ||
            std::getenv("BAT_METRICS_FILE") != nullptr) {
            // Touch every function-local static the handler uses before
            // std::atexit, so they are constructed first and therefore
            // destroyed only after the export handler has run.
            registry();
            trace_epoch();
            MetricsRegistry::global();
            std::atexit([] {
                // "%p" in either path expands to the pid so concurrent test
                // processes sharing one env do not clobber each other.
                if (const char* path = std::getenv("BAT_TRACE_FILE")) {
                    write_chrome_trace(expand_output_path(path));
                }
                if (const char* path = std::getenv("BAT_METRICS_FILE")) {
                    MetricsRegistry::global().write_json(expand_output_path(path));
                }
            });
        }
    });
}

ThreadBuffer& thread_buffer() {
    struct Holder {
        std::shared_ptr<ThreadBuffer> buffer;
        std::uint64_t generation = 0;
    };
    thread_local Holder holder;
    Registry& reg = registry();
    // Fast path: one relaxed load to confirm the cached buffer is still
    // registered; re-register after reset_trace() bumped the generation.
    if (holder.buffer != nullptr &&
        holder.generation == reg.generation.load(std::memory_order_acquire)) {
        return *holder.buffer;
    }
    std::lock_guard<std::mutex> lock(reg.mutex);
    holder.buffer = std::make_shared<ThreadBuffer>(
        g_ring_capacity.load(std::memory_order_relaxed),
        g_tid_counter.fetch_add(1, std::memory_order_relaxed));
    holder.generation = reg.generation.load(std::memory_order_relaxed);
    reg.buffers.push_back(holder.buffer);
    return *holder.buffer;
}

TraceEvent make_event(EventType type, const char* name, const char* cat) {
    TraceEvent ev;
    ev.type = type;
    ev.name = name;
    ev.cat = cat;
    ev.ts_ns = trace_now_ns();
    ev.rank = bat::thread_log_rank();
    return ev;
}

void push_event(TraceEvent ev) {
    register_atexit_export();
    ThreadBuffer& buf = thread_buffer();
    ev.tid = buf.tid;
    buf.push(ev);
}

// ---- export helpers -------------------------------------------------------

void json_escape(std::string& out, const char* s) {
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char hex[8];
                    std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                    out += hex;
                } else {
                    out += c;
                }
        }
    }
}

/// Chrome "pid": rank r maps to pid r+1 named "rank r"; rank-less threads
/// (main, pool workers outside a runtime, virtual tracks) map to pid 0.
int event_pid(const TraceEvent& ev) { return ev.rank >= 0 ? ev.rank + 1 : 0; }

const char* phase_letter(EventType t) {
    switch (t) {
        case EventType::begin: return "B";
        case EventType::end: return "E";
        case EventType::instant: return "i";
        case EventType::counter: return "C";
        case EventType::flow_start: return "s";
        case EventType::flow_end: return "f";
    }
    return "i";
}

void append_event_json(std::string& out, const TraceEvent& ev) {
    char num[64];
    out += "{\"name\":\"";
    json_escape(out, ev.name != nullptr ? ev.name : "");
    out += "\",\"cat\":\"";
    json_escape(out, ev.cat != nullptr ? ev.cat : "");
    out += "\",\"ph\":\"";
    out += phase_letter(ev.type);
    out += "\",\"ts\":";
    std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(ev.ts_ns) / 1e3);
    out += num;
    std::snprintf(num, sizeof(num), ",\"pid\":%d,\"tid\":%u", event_pid(ev), ev.tid);
    out += num;
    if (ev.type == EventType::flow_start || ev.type == EventType::flow_end) {
        std::snprintf(num, sizeof(num), ",\"id\":%llu",
                      static_cast<unsigned long long>(ev.flow_id));
        out += num;
        if (ev.type == EventType::flow_end) {
            out += ",\"bp\":\"e\"";
        }
    }
    if (ev.type == EventType::instant) {
        out += ",\"s\":\"t\"";
    }
    bool has_args = false;
    for (int i = 0; i < 4; ++i) {
        if (ev.arg_names[i] == nullptr) {
            continue;
        }
        out += has_args ? "," : ",\"args\":{";
        has_args = true;
        out += "\"";
        json_escape(out, ev.arg_names[i]);
        std::snprintf(num, sizeof(num), "\":%lld",
                      static_cast<long long>(ev.arg_vals[i]));
        out += num;
    }
    if (has_args) {
        out += "}";
    }
    out += "}";
}

void append_metadata_json(std::string& out, const char* kind, int pid,
                          std::uint32_t tid, bool with_tid, const std::string& name) {
    char num[64];
    out += "{\"name\":\"";
    out += kind;
    out += "\",\"ph\":\"M\",\"ts\":0";
    std::snprintf(num, sizeof(num), ",\"pid\":%d", pid);
    out += num;
    if (with_tid) {
        std::snprintf(num, sizeof(num), ",\"tid\":%u", tid);
        out += num;
    }
    out += ",\"args\":{\"name\":\"";
    json_escape(out, name.c_str());
    out += "\"}}";
}

}  // namespace

bool trace_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_trace_enabled(bool on) {
    g_enabled.store(on, std::memory_order_relaxed);
    if (on) {
        register_atexit_export();
    }
}

std::uint64_t trace_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - trace_epoch())
            .count());
}

std::uint64_t next_flow_id() {
    return g_flow_counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void emit_begin(const char* name, const char* cat) {
    push_event(make_event(EventType::begin, name, cat));
}

void emit_begin_arg(const char* name, const char* cat, const char* arg,
                    std::int64_t value) {
    TraceEvent ev = make_event(EventType::begin, name, cat);
    ev.arg_names[0] = arg;
    ev.arg_vals[0] = value;
    push_event(ev);
}

void emit_begin_msg(const char* name, const char* cat, int tag, int peer,
                    std::int64_t bytes, std::int64_t wait_us, std::uint64_t qtrace) {
    TraceEvent ev = make_event(EventType::begin, name, cat);
    ev.arg_names[0] = "tag";
    ev.arg_vals[0] = tag;
    ev.arg_names[1] = "peer";
    ev.arg_vals[1] = peer;
    ev.arg_names[2] = "bytes";
    ev.arg_vals[2] = bytes;
    if (wait_us >= 0) {
        ev.arg_names[3] = "wait_us";
        ev.arg_vals[3] = wait_us;
    } else if (qtrace != 0) {
        ev.arg_names[3] = "qtrace";
        ev.arg_vals[3] = static_cast<std::int64_t>(qtrace);
    }
    push_event(ev);
}

void emit_end(const char* name, const char* cat) {
    push_event(make_event(EventType::end, name, cat));
}

void emit_instant(const char* name, const char* cat) {
    push_event(make_event(EventType::instant, name, cat));
}

void emit_counter(const char* name, const char* cat, std::int64_t value) {
    TraceEvent ev = make_event(EventType::counter, name, cat);
    ev.arg_names[0] = "value";
    ev.arg_vals[0] = value;
    push_event(ev);
}

void emit_flow_start(const char* cat, std::uint64_t flow_id) {
    TraceEvent ev = make_event(EventType::flow_start, "msg", cat);
    ev.flow_id = flow_id;
    push_event(ev);
}

void emit_flow_end(const char* cat, std::uint64_t flow_id) {
    TraceEvent ev = make_event(EventType::flow_end, "msg", cat);
    ev.flow_id = flow_id;
    push_event(ev);
}

std::uint32_t new_virtual_track(const std::string& name) {
    Registry& reg = registry();
    const std::uint32_t tid = g_virtual_tid_counter.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.virtual_tracks[tid] = name;
    return tid;
}

void emit_span_on_track(std::uint32_t track, const char* name, const char* cat,
                        std::uint64_t ts_ns, std::uint64_t dur_ns) {
    TraceEvent begin;
    begin.type = EventType::begin;
    begin.name = name;
    begin.cat = cat;
    begin.ts_ns = ts_ns;
    begin.rank = -1;  // virtual tracks live under the rank-less process
    TraceEvent end = begin;
    end.type = EventType::end;
    end.ts_ns = ts_ns + dur_ns;
    register_atexit_export();
    ThreadBuffer& buf = thread_buffer();
    begin.tid = track;
    end.tid = track;
    buf.push(begin);
    buf.push(end);
}

std::uint64_t dropped_events() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::uint64_t dropped = 0;
    for (const auto& buf : reg.buffers) {
        const std::uint64_t head = buf->head.load(std::memory_order_acquire);
        if (head > buf->capacity) {
            dropped += head - buf->capacity;
        }
    }
    return dropped;
}

void reset_trace() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    // Old buffers stay reachable through live threads' thread-local holders
    // but no longer contribute to exports; each live thread re-registers a
    // fresh buffer on its next event via the generation check.
    reg.buffers.clear();
    reg.virtual_tracks.clear();
    reg.generation.fetch_add(1, std::memory_order_release);
}

void set_ring_capacity(std::size_t events) {
    BAT_CHECK(events > 0);
    g_ring_capacity.store(events, std::memory_order_relaxed);
}

std::string chrome_trace_json() {
    // Snapshot the buffers, then pull each ring's surviving events.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::map<std::uint32_t, std::string> virtual_tracks;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
        virtual_tracks = reg.virtual_tracks;
    }
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
    for (const auto& buf : buffers) {
        const std::uint64_t head = buf->head.load(std::memory_order_acquire);
        const std::uint64_t cap = buf->capacity;
        const std::uint64_t count = std::min(head, cap);
        if (head > cap) {
            dropped += head - cap;
        }
        // Oldest surviving event first, preserving per-thread push order.
        for (std::uint64_t i = head - count; i < head; ++i) {
            events.push_back(buf->ring[i % cap]);
        }
    }
    // Stable sort keeps per-thread ordering for equal timestamps, so a
    // begin never trades places with its own end.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.ts_ns < b.ts_ns;
                     });

    std::string out;
    out.reserve(events.size() * 96 + 4096);
    out += "{\"traceEvents\":[";
    bool first = true;
    std::set<int> pids;
    for (const TraceEvent& ev : events) {
        pids.insert(event_pid(ev));
    }
    for (const int pid : pids) {
        if (!first) {
            out += ",\n";
        }
        first = false;
        append_metadata_json(out, "process_name", pid, 0, false,
                             pid == 0 ? "process" : "rank " + std::to_string(pid - 1));
    }
    for (const auto& [tid, name] : virtual_tracks) {
        if (!first) {
            out += ",\n";
        }
        first = false;
        append_metadata_json(out, "thread_name", 0, tid, true, name);
    }
    for (const TraceEvent& ev : events) {
        if (!first) {
            out += ",\n";
        }
        first = false;
        append_event_json(out, ev);
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
    out += std::to_string(dropped);
    out += "}}";
    return out;
}

std::string trace_tail_json(std::size_t max_per_thread) {
    // Flight-recorder view: newest events only, no cross-thread sort, no
    // metadata. Reading below each ring's release-stored head is safe for
    // events already published; entries being overwritten concurrently can
    // at worst surface a stale (whole, never torn) event.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    std::string out = "[";
    bool first = true;
    for (const auto& buf : buffers) {
        const std::uint64_t head = buf->head.load(std::memory_order_acquire);
        const std::uint64_t cap = buf->capacity;
        const std::uint64_t count = std::min({head, cap, std::uint64_t{max_per_thread}});
        for (std::uint64_t i = head - count; i < head; ++i) {
            if (!first) {
                out += ",\n";
            }
            first = false;
            append_event_json(out, buf->ring[i % cap]);
        }
    }
    out += "]";
    return out;
}

void write_chrome_trace(const std::filesystem::path& path) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        BAT_LOG_ERROR("trace export: cannot open " << path.string());
        return;
    }
    const std::string json = chrome_trace_json();
    f.write(json.data(), static_cast<std::streamsize>(json.size()));
    BAT_LOG_INFO("trace written to " << path.string() << " (" << json.size()
                                     << " bytes)");
}

// ---- validation -----------------------------------------------------------

TraceCheck validate_chrome_trace(const json::Value& root) {
    TraceCheck check;
    auto fail = [&check](const std::string& why) {
        check.ok = false;
        check.error = why;
        return check;
    };
    if (!root.is_object()) {
        return fail("root is not an object");
    }
    const json::Value* events = root.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
        return fail("missing traceEvents array");
    }
    // Per-(pid, tid) span stacks and the set of live flow ids.
    std::map<std::pair<std::int64_t, std::int64_t>, std::vector<std::string>> stacks;
    std::set<std::int64_t> open_flows;
    std::set<std::int64_t> span_ranks;
    for (const json::Value& ev : events->array()) {
        if (!ev.is_object()) {
            return fail("trace event is not an object");
        }
        const json::Value* ph = ev.find("ph");
        const json::Value* name = ev.find("name");
        if (ph == nullptr || !ph->is_string() || name == nullptr ||
            !name->is_string()) {
            return fail("event missing ph or name");
        }
        if (ph->string() == "M") {
            continue;  // metadata carries no timestamped payload
        }
        const json::Value* ts = ev.find("ts");
        const json::Value* pid = ev.find("pid");
        const json::Value* tid = ev.find("tid");
        if (ts == nullptr || !ts->is_number() || pid == nullptr ||
            !pid->is_number() || tid == nullptr || !tid->is_number()) {
            return fail("event '" + name->string() + "' missing ts/pid/tid");
        }
        if (ts->number() < 0) {
            return fail("event '" + name->string() + "' has negative timestamp");
        }
        ++check.num_events;
        const auto track = std::make_pair(static_cast<std::int64_t>(pid->number()),
                                          static_cast<std::int64_t>(tid->number()));
        const std::string& phase = ph->string();
        if (phase == "B") {
            stacks[track].push_back(name->string());
            if (pid->number() >= 1) {
                span_ranks.insert(static_cast<std::int64_t>(pid->number()));
            }
        } else if (phase == "E") {
            auto& stack = stacks[track];
            if (stack.empty()) {
                return fail("end event '" + name->string() +
                            "' with no open span on its track");
            }
            if (stack.back() != name->string()) {
                return fail("end event '" + name->string() +
                            "' does not match open span '" + stack.back() + "'");
            }
            stack.pop_back();
            ++check.num_spans;
        } else if (phase == "s" || phase == "f") {
            const json::Value* id = ev.find("id");
            if (id == nullptr || !id->is_number()) {
                return fail("flow event missing id");
            }
            const auto flow = static_cast<std::int64_t>(id->number());
            if (phase == "s") {
                if (!open_flows.insert(flow).second) {
                    return fail("duplicate flow start id " + std::to_string(flow));
                }
            } else {
                if (open_flows.erase(flow) == 0) {
                    return fail("flow end id " + std::to_string(flow) +
                                " without a start");
                }
                ++check.num_flows;
            }
        } else if (phase != "i" && phase != "C" && phase != "X") {
            return fail("unknown event phase '" + phase + "'");
        }
    }
    for (const auto& [track, stack] : stacks) {
        if (!stack.empty()) {
            return fail("unbalanced span '" + stack.back() + "' on pid " +
                        std::to_string(track.first) + " tid " +
                        std::to_string(track.second));
        }
    }
    check.num_ranks = static_cast<int>(span_ranks.size());
    check.ok = true;
    return check;
}

}  // namespace bat::obs
