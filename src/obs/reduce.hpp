#pragma once
// Cross-rank metrics reduction: gather every rank's serialized registry to
// `root` and merge (counters add, gauges max, histograms combine via
// RunningStats::merge). Header-only so obs itself stays independent of the
// vmpi layer; any TU that links bat_vmpi can use it.

#include "obs/metrics.hpp"
#include "vmpi/comm.hpp"

namespace bat::obs {

/// Collective: returns the merged registry on `root`, an empty one elsewhere.
inline MetricsRegistry reduce_metrics(vmpi::Comm& comm, const MetricsRegistry& local,
                                      int root = 0) {
    std::vector<vmpi::Bytes> blobs = comm.gatherv(local.to_bytes(), root);
    MetricsRegistry merged;
    if (comm.rank() == root) {
        for (const vmpi::Bytes& blob : blobs) {
            merged.merge(MetricsRegistry::from_bytes(blob));
        }
    }
    return merged;
}

}  // namespace bat::obs
