#pragma once
// Cross-rank metrics reduction: gather every rank's serialized registry to
// `root` and merge (counters add, gauges max, histograms combine via
// RunningStats::merge). Header-only so obs itself stays independent of the
// vmpi layer; any TU that links bat_vmpi can use it.

#include "obs/metrics.hpp"
#include "vmpi/comm.hpp"

namespace bat::obs {

/// Collective: returns the merged registry on `root`, an empty one elsewhere.
inline MetricsRegistry reduce_metrics(vmpi::Comm& comm, const MetricsRegistry& local,
                                      int root = 0) {
    std::vector<vmpi::Bytes> blobs = comm.gatherv(local.to_bytes(), root);
    MetricsRegistry merged;
    if (comm.rank() == root) {
        for (const vmpi::Bytes& blob : blobs) {
            merged.merge(MetricsRegistry::from_bytes(blob));
        }
    }
    return merged;
}

/// Per-counter spread across ranks, for the run report's imbalance view. A
/// counter absent on a rank contributes 0 to that rank (and can be the min).
struct CounterSpread {
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    int min_rank = -1;
    int max_rank = -1;
};

struct ReducedMetrics {
    MetricsRegistry merged;  // counters add, gauges max, histograms combine
    std::map<std::string, CounterSpread> counter_spread;
};

/// Collective like reduce_metrics, but the root also gets per-rank min/max
/// for every counter name any rank recorded.
inline ReducedMetrics reduce_metrics_spread(vmpi::Comm& comm,
                                            const MetricsRegistry& local,
                                            int root = 0) {
    std::vector<vmpi::Bytes> blobs = comm.gatherv(local.to_bytes(), root);
    ReducedMetrics out;
    if (comm.rank() != root) {
        return out;
    }
    std::vector<MetricsRegistry> registries;
    registries.reserve(blobs.size());
    for (const vmpi::Bytes& blob : blobs) {
        registries.push_back(MetricsRegistry::from_bytes(blob));
        out.merged.merge(registries.back());
    }
    // Union of counter names, then one pass per rank including implicit 0s.
    std::map<std::string, CounterSpread> spread;
    for (const auto& [name, value] : out.merged.counter_values()) {
        (void)value;
        spread.emplace(name, CounterSpread{});
    }
    for (auto& [name, sp] : spread) {
        for (int rank = 0; rank < static_cast<int>(registries.size()); ++rank) {
            std::uint64_t v = 0;
            for (const auto& [rname, rvalue] :
                 registries[static_cast<std::size_t>(rank)].counter_values()) {
                if (rname == name) {
                    v = rvalue;
                    break;
                }
            }
            sp.sum += v;
            if (sp.min_rank < 0 || v < sp.min) {
                sp.min = v;
                sp.min_rank = rank;
            }
            if (sp.max_rank < 0 || v > sp.max) {
                sp.max = v;
                sp.max_rank = rank;
            }
        }
    }
    out.counter_spread = std::move(spread);
    return out;
}

}  // namespace bat::obs
