#pragma once
// Minimal recursive-descent JSON parser for the observability tooling
// (trace validation, metrics inspection, tools/trace_summarize). Parses the
// full JSON grammar into a simple tree of Values; throws bat::Error with a
// byte offset on malformed input. Not a streaming parser — traces from the
// bounded ring buffers are a few MB at most.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bat::obs::json {

struct Value {
    enum class Kind { null, boolean, number, string, array, object };

    Kind kind = Kind::null;
    bool bool_v = false;
    double num_v = 0.0;
    std::string str_v;
    std::vector<Value> arr_v;
    std::vector<std::pair<std::string, Value>> obj_v;  // preserves order

    bool is_null() const { return kind == Kind::null; }
    bool is_bool() const { return kind == Kind::boolean; }
    bool is_number() const { return kind == Kind::number; }
    bool is_string() const { return kind == Kind::string; }
    bool is_array() const { return kind == Kind::array; }
    bool is_object() const { return kind == Kind::object; }

    bool boolean() const { return bool_v; }
    double number() const { return num_v; }
    const std::string& string() const { return str_v; }
    const std::vector<Value>& array() const { return arr_v; }
    const std::vector<std::pair<std::string, Value>>& object() const { return obj_v; }

    /// First member with the given key, or nullptr (objects only).
    const Value* find(std::string_view key) const;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

}  // namespace bat::obs::json
