#include "obs/output_path.hpp"

#include <unistd.h>

namespace bat::obs {

std::string expand_output_path(const std::string& path_template) {
    std::string out = path_template;
    const std::string pid = std::to_string(static_cast<long>(::getpid()));
    std::size_t at = 0;
    while ((at = out.find("%p", at)) != std::string::npos) {
        out.replace(at, 2, pid);
        at += pid.size();
    }
    return out;
}

}  // namespace bat::obs
