#include "obs/query_trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/output_path.hpp"
#include "util/log.hpp"

namespace bat::obs {

namespace {

// All state is heap-allocated once and leaked, like obs/health.cpp: pool
// workers and rank threads attribute costs past any static destruction
// order, and the atexit log export must never race a destructor.

constexpr std::size_t kMaxRecords = 8192;
constexpr std::size_t kMaxServeSpans = 65536;
constexpr std::size_t kCostSlots = 4096;
constexpr std::size_t kCostProbeLimit = 128;

/// Lock-free per-query cost accumulator, claimed by CAS on the trace id.
struct CostSlot {
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> pool_ns{0};
    std::atomic<std::uint64_t> windows{0};
};

struct QueryState {
    std::atomic<std::uint64_t> next_id{0};

    // Rings: slots are claimed with one fetch_add, filled, then committed
    // with a release store so exporters never read a half-written entry.
    QueryRecord records[kMaxRecords];
    std::atomic<bool> record_committed[kMaxRecords] = {};
    std::atomic<std::size_t> record_next{0};

    QueryServeSpan spans[kMaxServeSpans];
    std::atomic<bool> span_committed[kMaxServeSpans] = {};
    std::atomic<std::size_t> span_next{0};

    CostSlot costs[kCostSlots];
    std::atomic<std::uint64_t> dropped{0};

    std::atomic<bool> enabled{false};
    std::atomic<std::uint32_t> sample_every{1};
    std::atomic<bool> log_armed{false};
    std::mutex log_path_mutex;
    std::string log_path;  // set by arm_query_log; BAT_QUERY_LOG otherwise
};

QueryState& state() {
    static QueryState* s = new QueryState;
    return *s;
}

thread_local QueryContext t_current;
thread_local std::uint64_t t_cache_hits = 0;
thread_local std::uint64_t t_cache_misses = 0;

/// One-time environment arming: BAT_QUERY_LOG enables ring recording and
/// registers the exit-time JSONL export; BAT_QUERY_SAMPLE sets sampling.
void ensure_init() {
    static std::once_flag once;
    std::call_once(once, [] {
        QueryState& s = state();
        if (const char* sample = std::getenv("BAT_QUERY_SAMPLE")) {
            const long n = std::strtol(sample, nullptr, 10);
            if (n > 0) {
                s.sample_every.store(static_cast<std::uint32_t>(n),
                                     std::memory_order_relaxed);
            }
        }
        if (const char* path = std::getenv("BAT_QUERY_LOG")) {
            s.enabled.store(true, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lock(s.log_path_mutex);
                s.log_path = path;
            }
            s.log_armed.store(true, std::memory_order_relaxed);
            std::atexit([] {
                std::string path;
                {
                    std::lock_guard<std::mutex> lock(state().log_path_mutex);
                    path = state().log_path;
                }
                if (!path.empty()) {
                    write_query_log(path);
                }
            });
        }
    });
}

/// Sampling is a pure function of the trace id (its low bits are the global
/// mint counter), so the origin and every serving rank agree on whether a
/// query is recorded without shipping an extra flag.
bool sampled(std::uint64_t trace_id) {
    const std::uint32_t every = state().sample_every.load(std::memory_order_relaxed);
    return every <= 1 || (trace_id & 0xFFFFFFFFFFull) % every == 0;
}

bool recording(const QueryContext& ctx) {
    return ctx.valid() && state().enabled.load(std::memory_order_relaxed) &&
           sampled(ctx.trace_id);
}

CostSlot* find_cost_slot(std::uint64_t id, bool create) {
    QueryState& s = state();
    std::size_t at = (id * 0x9E3779B97F4A7C15ull) % kCostSlots;
    for (std::size_t probe = 0; probe < kCostProbeLimit; ++probe) {
        CostSlot& slot = s.costs[at];
        std::uint64_t cur = slot.id.load(std::memory_order_acquire);
        if (cur == id) {
            return &slot;
        }
        if (cur == 0 && create) {
            if (slot.id.compare_exchange_strong(cur, id, std::memory_order_acq_rel)) {
                return &slot;
            }
            if (cur == id) {
                return &slot;  // lost the race to ourselves on another thread
            }
        }
        at = (at + 1) % kCostSlots;
    }
    if (create) {
        s.dropped.fetch_add(1, std::memory_order_relaxed);
    }
    return nullptr;
}

// ---- JSONL rendering -------------------------------------------------------

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void append_us(std::string& out, std::uint64_t ns) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
    out += buf;
}

void append_span_json(std::string& out, const QueryServeSpan& sp) {
    out += "{\"rank\":";
    out += std::to_string(sp.serve_rank);
    out += ",\"leaf\":";
    out += std::to_string(sp.leaf);
    out += ",\"start_us\":";
    append_us(out, sp.start_ns);
    out += ",\"dur_us\":";
    append_us(out, sp.dur_ns);
    out += ",\"bytes\":";
    append_u64(out, sp.bytes);
    out += ",\"cache_hit\":";
    out += sp.cache_hit ? "true" : "false";
    out += "}";
}

}  // namespace

QueryContext current_query() { return t_current; }

QueryScope::QueryScope(const QueryContext& ctx) : prev_(t_current) { t_current = ctx; }

QueryScope::~QueryScope() { t_current = prev_; }

QueryContext query_begin(int origin_rank) {
    ensure_init();
    QueryContext ctx;
    const std::uint64_t n =
        state().next_id.fetch_add(1, std::memory_order_relaxed) + 1;
    // Origin rank in the high bits keeps ids readable in logs; the low 40
    // bits are the process-wide mint counter sampling keys off.
    ctx.trace_id =
        (static_cast<std::uint64_t>(origin_rank + 1) << 40) | (n & 0xFFFFFFFFFFull);
    ctx.origin_rank = origin_rank;
    ctx.seq = static_cast<std::uint32_t>(n - 1);
    return ctx;
}

bool query_trace_enabled() {
    ensure_init();
    return state().enabled.load(std::memory_order_relaxed);
}

void set_query_trace_enabled(bool on) {
    ensure_init();
    state().enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t query_sample_every() {
    ensure_init();
    return state().sample_every.load(std::memory_order_relaxed);
}

void set_query_sample_every(std::uint32_t n) {
    ensure_init();
    state().sample_every.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

void query_note_cache(bool hit) {
    const QueryContext ctx = t_current;
    if (!recording(ctx)) {
        return;
    }
    (hit ? t_cache_hits : t_cache_misses) += 1;
    if (CostSlot* slot = find_cost_slot(ctx.trace_id, /*create=*/true)) {
        (hit ? slot->cache_hits : slot->cache_misses)
            .fetch_add(1, std::memory_order_relaxed);
    }
}

void query_thread_cache_counts(std::uint64_t* hits, std::uint64_t* misses) {
    if (hits != nullptr) {
        *hits = t_cache_hits;
    }
    if (misses != nullptr) {
        *misses = t_cache_misses;
    }
}

void query_note_pool_ns(std::uint64_t ns) {
    const QueryContext ctx = t_current;
    if (!recording(ctx)) {
        return;
    }
    if (CostSlot* slot = find_cost_slot(ctx.trace_id, /*create=*/true)) {
        slot->pool_ns.fetch_add(ns, std::memory_order_relaxed);
    }
}

void query_note_fastpath_window() {
    const QueryContext ctx = t_current;
    if (!recording(ctx)) {
        return;
    }
    if (CostSlot* slot = find_cost_slot(ctx.trace_id, /*create=*/true)) {
        slot->windows.fetch_add(1, std::memory_order_relaxed);
    }
}

void query_record_serve_span(const QueryServeSpan& span) {
    QueryState& s = state();
    if (!s.enabled.load(std::memory_order_relaxed) || !sampled(span.trace_id)) {
        return;
    }
    const std::size_t at = s.span_next.fetch_add(1, std::memory_order_relaxed);
    if (at >= kMaxServeSpans) {
        s.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    s.spans[at] = span;
    s.span_committed[at].store(true, std::memory_order_release);
}

void query_finalize(QueryRecord record) {
    ensure_init();
    // Percentile accounting is always on: the run report's p50/p99 must not
    // depend on the query log being armed.
    MetricsRegistry::global()
        .histogram(std::string("query.") + record.op + ".us",
                   MetricsRegistry::hdr_us_bounds())
        .record(static_cast<double>(record.wall_ns) / 1e3);
    QueryState& s = state();
    if (!s.enabled.load(std::memory_order_relaxed) || !sampled(record.trace_id)) {
        return;
    }
    if (CostSlot* slot = find_cost_slot(record.trace_id, /*create=*/false)) {
        record.cache_hits += slot->cache_hits.load(std::memory_order_relaxed);
        record.cache_misses += slot->cache_misses.load(std::memory_order_relaxed);
        record.pool_task_ns += slot->pool_ns.load(std::memory_order_relaxed);
        record.fastpath_windows += slot->windows.load(std::memory_order_relaxed);
        // Release the slot; a straggling pool-task attribution after this
        // point re-claims a fresh slot under the same id (its delta is lost
        // with the already-emitted record, never charged to another query).
        slot->cache_hits.store(0, std::memory_order_relaxed);
        slot->cache_misses.store(0, std::memory_order_relaxed);
        slot->pool_ns.store(0, std::memory_order_relaxed);
        slot->windows.store(0, std::memory_order_relaxed);
        slot->id.store(0, std::memory_order_release);
    }
    const std::size_t at = s.record_next.fetch_add(1, std::memory_order_relaxed);
    if (at >= kMaxRecords) {
        s.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    s.records[at] = record;
    s.record_committed[at].store(true, std::memory_order_release);
}

bool query_log_armed() {
    ensure_init();
    return state().log_armed.load(std::memory_order_relaxed);
}

void arm_query_log(const std::filesystem::path& path, std::uint32_t sample_every) {
    ensure_init();
    QueryState& s = state();
    {
        std::lock_guard<std::mutex> lock(s.log_path_mutex);
        s.log_path = path.string();
    }
    if (sample_every > 0) {
        s.sample_every.store(sample_every, std::memory_order_relaxed);
    }
    s.enabled.store(true, std::memory_order_relaxed);
    if (!s.log_armed.exchange(true, std::memory_order_relaxed)) {
        std::atexit([] {
            std::string p;
            {
                std::lock_guard<std::mutex> lock(state().log_path_mutex);
                p = state().log_path;
            }
            if (!p.empty()) {
                write_query_log(p);
            }
        });
    }
}

std::vector<QueryRecord> query_records() {
    QueryState& s = state();
    std::vector<QueryRecord> out;
    const std::size_t n = std::min(s.record_next.load(std::memory_order_relaxed),
                                   kMaxRecords);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (s.record_committed[i].load(std::memory_order_acquire)) {
            out.push_back(s.records[i]);
        }
    }
    return out;
}

std::vector<QueryServeSpan> query_serve_spans() {
    QueryState& s = state();
    std::vector<QueryServeSpan> out;
    const std::size_t n =
        std::min(s.span_next.load(std::memory_order_relaxed), kMaxServeSpans);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (s.span_committed[i].load(std::memory_order_acquire)) {
            out.push_back(s.spans[i]);
        }
    }
    return out;
}

std::uint64_t query_dropped() {
    return state().dropped.load(std::memory_order_relaxed);
}

void reset_query_trace() {
    ensure_init();
    QueryState& s = state();
    // Uncommit first so concurrent readers drop out, then rewind the claim
    // counters. Resets are quiescent-time operations (tests, bench reruns).
    for (std::size_t i = 0; i < kMaxRecords; ++i) {
        s.record_committed[i].store(false, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxServeSpans; ++i) {
        s.span_committed[i].store(false, std::memory_order_relaxed);
    }
    s.record_next.store(0, std::memory_order_relaxed);
    s.span_next.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kCostSlots; ++i) {
        s.costs[i].cache_hits.store(0, std::memory_order_relaxed);
        s.costs[i].cache_misses.store(0, std::memory_order_relaxed);
        s.costs[i].pool_ns.store(0, std::memory_order_relaxed);
        s.costs[i].windows.store(0, std::memory_order_relaxed);
        s.costs[i].id.store(0, std::memory_order_relaxed);
    }
    s.dropped.store(0, std::memory_order_relaxed);
}

std::string query_log_jsonl() {
    const std::vector<QueryRecord> records = query_records();
    std::multimap<std::uint64_t, const QueryServeSpan*> by_id;
    const std::vector<QueryServeSpan> spans = query_serve_spans();
    for (const QueryServeSpan& sp : spans) {
        by_id.emplace(sp.trace_id, &sp);
    }
    std::string out;
    out.reserve(records.size() * 256 + spans.size() * 96);
    for (const QueryRecord& r : records) {
        out += "{\"schema\":\"bat-query-v1\",\"trace_id\":";
        append_u64(out, r.trace_id);
        out += ",\"origin_rank\":";
        out += std::to_string(r.origin_rank);
        out += ",\"seq\":";
        out += std::to_string(r.seq);
        out += ",\"op\":\"";
        out += r.op;
        out += "\",\"start_us\":";
        append_us(out, r.start_ns);
        out += ",\"wall_us\":";
        append_us(out, r.wall_ns);
        out += ",\"stages\":{\"request_us\":";
        append_us(out, r.request_ns);
        out += ",\"serve_us\":";
        append_us(out, r.serve_ns);
        out += ",\"merge_us\":";
        append_us(out, r.merge_ns);
        out += ",\"local_us\":";
        append_us(out, r.local_ns);
        out += "},\"leaves_local\":";
        out += std::to_string(r.leaves_local);
        out += ",\"leaves_remote\":";
        out += std::to_string(r.leaves_remote);
        out += ",\"request_msgs\":";
        out += std::to_string(r.request_msgs);
        out += ",\"bytes_moved\":";
        append_u64(out, r.bytes_moved);
        out += ",\"particles\":";
        append_u64(out, r.particles);
        out += ",\"cache_hits\":";
        append_u64(out, r.cache_hits);
        out += ",\"cache_misses\":";
        append_u64(out, r.cache_misses);
        out += ",\"pool_task_us\":";
        append_us(out, r.pool_task_ns);
        out += ",\"fastpath_windows\":";
        append_u64(out, r.fastpath_windows);
        out += ",\"serve_spans\":[";
        const auto [lo, hi] = by_id.equal_range(r.trace_id);
        bool first = true;
        for (auto it = lo; it != hi; ++it) {
            if (!first) {
                out += ",";
            }
            first = false;
            append_span_json(out, *it->second);
        }
        by_id.erase(lo, hi);
        out += "]}\n";
    }
    // Anything still unmatched is a serve span whose query never finalized:
    // surfaced, not dropped, so CI can assert zero unattributed spans.
    for (const auto& [id, sp] : by_id) {
        out += "{\"schema\":\"bat-query-orphan-v1\",\"trace_id\":";
        append_u64(out, id);
        out += ",\"origin_rank\":";
        out += std::to_string(sp->origin_rank);
        out += ",\"seq\":";
        out += std::to_string(sp->query_seq);
        out += ",\"span\":";
        append_span_json(out, *sp);
        out += "}\n";
    }
    return out;
}

bool write_query_log(const std::filesystem::path& path) {
    const std::string expanded = expand_output_path(path.string());
    std::ofstream f(expanded, std::ios::binary | std::ios::app);
    if (!f) {
        BAT_LOG_ERROR("query log: cannot open " << expanded);
        return false;
    }
    const std::string jsonl = query_log_jsonl();
    f.write(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
    BAT_LOG_INFO("query log appended to " << expanded << " (" << jsonl.size()
                                          << " bytes)");
    return true;
}

}  // namespace bat::obs
