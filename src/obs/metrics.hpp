#pragma once
// Metrics registry (docs/OBSERVABILITY.md): named counters, gauges, and
// fixed-bucket histograms, recorded process-wide and exported as JSON next
// to the trace. Registries merge() — counters add, gauges keep the maximum,
// histograms combine bucket counts and their running moments via
// RunningStats::merge — which is the cross-rank reduction used by
// obs::reduce_metrics (obs/reduce.hpp).
//
// Entry references returned by counter()/gauge()/histogram() stay valid for
// the registry's lifetime; recording on them is thread-safe.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/lock_order.hpp"
#include "util/stats.hpp"

namespace bat::obs {

class Counter {
public:
    void add(std::uint64_t delta = 1) {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges,
/// with an implicit overflow bucket past the last edge. Also tracks
/// min/max/mean/stddev of the raw samples via RunningStats.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void record(double x);

    const std::vector<double>& bounds() const { return bounds_; }
    std::vector<std::uint64_t> bucket_counts() const;
    RunningStats stats() const;

    /// Estimate the q-quantile (q in [0, 1]) by linear interpolation inside
    /// the bucket holding the target rank, clamped to the observed
    /// [min, max]. With HDR-style log-spaced buckets (hdr_us_bounds) the
    /// relative error is bounded by the sub-octave resolution. 0 when empty.
    double percentile(double q) const;

    void merge_from(const Histogram& other);

private:
    friend class MetricsRegistry;
    mutable std::mutex mutex_;
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
    RunningStats stats_;
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(MetricsRegistry&& other) noexcept;
    MetricsRegistry& operator=(MetricsRegistry&& other) noexcept;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Process-wide registry used by the built-in instrumentation.
    static MetricsRegistry& global();

    /// Default exponential latency buckets in microseconds (1us .. ~17min).
    static std::vector<double> default_us_bounds();

    /// HDR-style log-bucketed latency bounds in microseconds: every octave
    /// from 1us to ~8.7min split into 4 sub-buckets, so percentile
    /// interpolation stays within ~12% of the true quantile at any scale.
    static std::vector<double> hdr_us_bounds();

    /// Find-or-create; a histogram's bucket bounds are fixed by the first
    /// call (later `bounds` arguments are ignored). Empty bounds mean
    /// default_us_bounds().
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

    /// Merge another registry into this one: counters add, gauges keep the
    /// max (cross-rank reductions want the slowest/largest rank), histograms
    /// combine buckets and moments.
    void merge(const MetricsRegistry& other);

    bool empty() const;
    /// Drop every entry. Callers must not hold entry references across this.
    void clear();

    /// Point-in-time snapshots, name-sorted — the run report and
    /// reduce_metrics_spread read these instead of holding entry references.
    std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
    std::vector<std::pair<std::string, double>> gauge_values() const;
    struct HistogramSnapshot {
        std::string name;
        std::uint64_t count = 0;
        double mean = 0;
        double min = 0;
        double max = 0;
        double p50 = 0;
        double p90 = 0;
        double p99 = 0;
    };
    std::vector<HistogramSnapshot> histogram_snapshots() const;

    std::string to_json() const;
    void write_json(const std::filesystem::path& path) const;

    /// Wire format for cross-rank reduction (obs/reduce.hpp).
    std::vector<std::byte> to_bytes() const;
    static MetricsRegistry from_bytes(std::span<const std::byte> bytes);

private:
    // Guards the maps; entries synchronize themselves. CheckedMutex: the
    // registry participates in lock-order checking and in schedule
    // exploration (find-or-create and snapshots are annotated accesses).
    mutable CheckedMutex mutex_{"obs.metrics"};
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bat::obs
