#pragma once
// Run-health layer (docs/OBSERVABILITY.md): Darshan-style always-on run
// reports, a stall watchdog, and crash/stall flight-recorder dumps.
//
// Three facilities share one progress-epoch table:
//
//   - RunReport: near-zero-cost per-run I/O characterization. Phase wall
//     times arrive through obs::PhaseSpan (the same accumulation that fills
//     WritePhaseTimings / ReadPhaseTimings, so the report and the structs
//     agree by construction), message counts/bytes through the vmpi hooks,
//     per-rank volumes through record_rank_value. Emitted at exit as
//     bat-report-v1 JSON when BAT_REPORT_FILE is set; pretty-printed by
//     tools/bat_report.
//
//   - Stall watchdog: every vmpi send/recv/collective completion, leaf
//     serving job, pool task, and phase completion bumps a per-rank progress
//     epoch (a relaxed atomic increment). A monitor thread — armed by
//     BAT_WATCHDOG_SEC=N or start_watchdog() — declares a stall when no
//     active rank makes progress for `stale_intervals` consecutive
//     intervals, then logs which ranks are stuck, what they are blocked on,
//     their open span stacks, in-flight messages, and pool queue depths.
//
//   - Flight recorder: the same diagnostic snapshot plus the tail of the
//     thread-local trace rings, written as JSON on watchdog trip, fatal
//     signal (handlers installed when BAT_FLIGHT_RECORD_FILE is set), or an
//     explicit dump_flight_record() call.
//
// obs stays independent of vmpi and io: those layers call *into* this one
// (progress notes) and register diag providers for subsystem introspection.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

namespace bat::obs {

// ---- progress epochs ------------------------------------------------------

/// Bump the calling thread's rank epoch (rank-less threads share a process
/// slot). One relaxed atomic increment; safe to call from any thread.
void note_progress();
void note_progress(int rank);

/// Progress + message accounting for the report's traffic section.
void note_send(int rank, std::uint64_t bytes);
void note_recv(int rank, std::uint64_t bytes);
void note_collective(int rank);
void note_pool_task();
void note_leaves_served(int rank, std::uint64_t leaves);

/// Rank lifecycle, called by the vmpi runtime around each rank body. A rank
/// only participates in stall detection while active.
void rank_begin(int rank);
void rank_end(int rank);

/// True while the watchdog or flight recorder is armed; callers use this to
/// gate building the (string) descriptions behind set_blocked_on.
bool health_armed();

/// Record/clear what `rank` is currently blocked on, shown in stall
/// diagnoses and flight records ("irecv(src=0, tag=7)", "ibarrier(seq=3)").
/// Three relaxed stores — cheap enough for every wait; `op` must be a
/// string literal. Rendering to text happens only at diagnosis time.
void set_blocked_op(int rank, const char* op, int peer, int tag);
void clear_blocked_op(int rank);

// ---- run report -----------------------------------------------------------

/// Per-rank accumulators for the report's io section ("write.bytes_written",
/// "read.bytes_read", ...). Values add; rank is thread_log_rank().
void record_rank_value(const char* name, std::uint64_t value);

/// Build the bat-report-v1 JSON document from the current process state.
std::string run_report_json();

/// Write run_report_json() to `path` ("%p" expands to the pid).
bool write_run_report(const std::filesystem::path& path);

/// Drop all report accumulators (phases, messages, rank values) and reset
/// watchdog trip counts — tests and repeated benchmark runs.
void reset_run_report();

// ---- stall watchdog -------------------------------------------------------

struct StallReport {
    std::vector<int> stuck_ranks;  // active ranks whose epoch never moved
    std::string text;              // full human-readable diagnosis
};

struct WatchdogOptions {
    std::chrono::milliseconds interval{10'000};
    /// Consecutive no-progress intervals before declaring a stall; 2 avoids
    /// tripping on a single long compute phase straddling one check.
    int stale_intervals = 2;
    /// Called on every trip, after logging and the flight-record dump.
    std::function<void(const StallReport&)> on_stall;
    /// Flight-record destination on trip; empty falls back to
    /// BAT_FLIGHT_RECORD_FILE (no dump when neither is set).
    std::filesystem::path flight_record_path;
};

/// Start the monitor thread (idempotent: a running watchdog is stopped
/// first). Also enables span-stack tracking and blocked-on recording.
void start_watchdog(WatchdogOptions opts = {});
/// Stop and join the monitor thread; no-op when not running.
void stop_watchdog();
bool watchdog_running();
/// Stalls declared since start_watchdog()/reset_run_report().
std::uint64_t watchdog_trips();

// ---- flight recorder ------------------------------------------------------

/// Build the diagnostic snapshot JSON: rank health, blocked ops, open span
/// stacks, subsystem diag providers, trace-ring tails, and metrics.
std::string flight_record_json(const std::string& reason);

/// Write flight_record_json() to `path`, or to BAT_FLIGHT_RECORD_FILE when
/// `path` is empty ("%p" expands to the pid). Returns false when no
/// destination is configured.
bool dump_flight_record(const std::string& reason = "explicit",
                        const std::filesystem::path& path = {});

// ---- subsystem diag providers ---------------------------------------------

/// Register a provider returning a JSON value describing live subsystem
/// state (pending mailbox messages, pool queue depth, ...). Included in
/// stall diagnoses and flight records. Providers run on the watchdog (or
/// dumping) thread and must never block — try_lock and report "busy".
/// unregister_diag_provider synchronizes with in-flight calls: once it
/// returns, the provider is not running and will never run again, so a
/// subsystem may unregister in its destructor before tearing down the
/// state its provider reads.
std::uint64_t register_diag_provider(std::string name, std::function<std::string()> fn);
void unregister_diag_provider(std::uint64_t id);

// ---- span-stack tracking (SpanScope / PhaseSpan hooks) ---------------------

/// True while open-span stacks are being tracked (armed with the watchdog /
/// flight recorder); the disabled path in SpanScope is one relaxed load.
bool span_tracking_enabled();
void set_span_tracking(bool on);

struct ThreadSpanStack {
    int rank = -1;
    std::vector<std::string> spans;  // outermost first
};
/// Snapshot every tracked thread's open spans (lock-free reads; a stack
/// mutating mid-snapshot yields a truncated, never torn, view).
std::vector<ThreadSpanStack> snapshot_span_stacks();

namespace health_detail {
/// Called by SpanScope/PhaseSpan when span_tracking_enabled(); `name` must
/// be a string literal (the pointer is stored, not the contents).
void push_span(const char* name);
void pop_span();
/// Called by every PhaseSpan::close(), tracing on or off: accumulates the
/// phase's wall seconds into the report under the calling thread's rank.
void record_phase(const char* name, double seconds);

/// Force the calling thread's span stack into existence (takes the registry
/// lock). The profiler calls this at thread registration so the two readers
/// below never allocate.
void ensure_span_stack();
/// Copy the calling thread's open-span labels (outermost first) into `out`,
/// up to `max`; returns the count. Async-signal-safe: reads a
/// constant-initialized thread_local pointer and relaxed atomics only, and
/// never creates the stack — an unregistered thread reads 0.
int read_own_span_stack(const char** out, int max);
/// The calling thread's innermost open span label, or null. Same safety
/// contract as read_own_span_stack; used by the thread pool to stamp tasks
/// with their enqueue-site origin.
const char* innermost_span();
}  // namespace health_detail

}  // namespace bat::obs
