#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "sched/sched.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace bat::obs {

namespace {

// Schedule-exploration annotation for the registry maps (one relaxed load
// when disarmed). Find-or-create accessors count as writes: they may insert.
void note_registry_access(const void* reg, bool is_write) {
    if (sched::maybe_active()) {
        sched::note_access(reg, "obs.metrics", is_write);
    }
}

}  // namespace

// ---- Histogram ------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    BAT_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bucket bounds must be ascending");
    counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double x) {
    // lower_bound keeps the edges inclusive: x == bounds_[i] lands in bucket i.
    const std::size_t bucket =
        static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), x) -
                                 bounds_.begin());
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[bucket];
    stats_.add(x);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
}

RunningStats Histogram::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

namespace {

/// Shared quantile estimator over a bucket-count snapshot: find the bucket
/// holding rank q*total, interpolate linearly inside it, clamp to the
/// observed extremes.
double percentile_impl(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts,
                       const RunningStats& stats, double q) {
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) {
        total += c;
    }
    if (total == 0) {
        return 0.0;
    }
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) {
            continue;
        }
        const double next = static_cast<double>(cum + counts[i]);
        if (next >= target) {
            // Bucket i covers (lo, hi]; the first and overflow buckets use
            // the observed extremes as their missing edge.
            const double lo = i == 0 ? stats.min() : bounds[i - 1];
            const double hi = i < bounds.size() ? bounds[i] : stats.max();
            const double frac =
                (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
            const double v = lo + frac * (hi - lo);
            return std::min(stats.max(), std::max(stats.min(), v));
        }
        cum += counts[i];
    }
    return stats.max();
}

}  // namespace

double Histogram::percentile(double q) const {
    std::vector<std::uint64_t> counts;
    RunningStats stats;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        counts = counts_;
        stats = stats_;
    }
    return percentile_impl(bounds_, counts, stats, q);
}

void Histogram::merge_from(const Histogram& other) {
    // Snapshot the source first so the two locks never overlap.
    std::vector<std::uint64_t> other_counts = other.bucket_counts();
    const RunningStats other_stats = other.stats();
    std::lock_guard<std::mutex> lock(mutex_);
    BAT_CHECK_MSG(other_counts.size() == counts_.size(),
                  "histogram merge with mismatched bucket layout");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other_counts[i];
    }
    stats_.merge(other_stats);
}

// ---- MetricsRegistry ------------------------------------------------------

MetricsRegistry::MetricsRegistry(MetricsRegistry&& other) noexcept {
    std::lock_guard<CheckedMutex> lock(other.mutex_);
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& other) noexcept {
    if (this != &other) {
        // Two sequential critical sections instead of one scoped_lock:
        // holding two instances of the same CheckedMutex class at once is a
        // lock-order violation, and a registry being moved from has no
        // concurrent users anyway.
        std::map<std::string, std::unique_ptr<Counter>> counters;
        std::map<std::string, std::unique_ptr<Gauge>> gauges;
        std::map<std::string, std::unique_ptr<Histogram>> histograms;
        {
            std::lock_guard<CheckedMutex> lock(other.mutex_);
            counters = std::move(other.counters_);
            gauges = std::move(other.gauges_);
            histograms = std::move(other.histograms_);
        }
        std::lock_guard<CheckedMutex> lock(mutex_);
        counters_ = std::move(counters);
        gauges_ = std::move(gauges);
        histograms_ = std::move(histograms);
    }
    return *this;
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

std::vector<double> MetricsRegistry::default_us_bounds() {
    // Powers of four: 1us, 4us, ..., ~17.9 minutes; 16 buckets + overflow.
    std::vector<double> bounds;
    double b = 1.0;
    for (int i = 0; i < 16; ++i) {
        bounds.push_back(b);
        b *= 4.0;
    }
    return bounds;
}

std::vector<double> MetricsRegistry::hdr_us_bounds() {
    // 4 sub-buckets per octave, 1us .. 2^19us (~8.7 min): 1, 1.25, 1.5,
    // 1.75, 2, 2.5, ... — 76 buckets + overflow.
    std::vector<double> bounds;
    bounds.reserve(76);
    for (int octave = 0; octave < 19; ++octave) {
        const double base = static_cast<double>(1u << octave);
        for (int sub = 0; sub < 4; ++sub) {
            bounds.push_back(base * (1.0 + 0.25 * sub));
        }
    }
    return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    std::lock_guard<CheckedMutex> lock(mutex_);
    note_registry_access(this, /*is_write=*/true);
    auto& slot = counters_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard<CheckedMutex> lock(mutex_);
    note_registry_access(this, /*is_write=*/true);
    auto& slot = gauges_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
    std::lock_guard<CheckedMutex> lock(mutex_);
    note_registry_access(this, /*is_write=*/true);
    auto& slot = histograms_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Histogram>(bounds.empty() ? default_us_bounds()
                                                          : std::move(bounds));
    }
    return *slot;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    // Snapshot the other registry's entry pointers under its lock; entries
    // are never deleted while the registry is alive, so recording into them
    // afterwards is safe.
    std::vector<std::pair<std::string, const Counter*>> counters;
    std::vector<std::pair<std::string, const Gauge*>> gauges;
    std::vector<std::pair<std::string, const Histogram*>> histograms;
    {
        std::lock_guard<CheckedMutex> lock(other.mutex_);
        for (const auto& [name, c] : other.counters_) {
            counters.emplace_back(name, c.get());
        }
        for (const auto& [name, g] : other.gauges_) {
            gauges.emplace_back(name, g.get());
        }
        for (const auto& [name, h] : other.histograms_) {
            histograms.emplace_back(name, h.get());
        }
    }
    for (const auto& [name, c] : counters) {
        counter(name).add(c->value());
    }
    for (const auto& [name, g] : gauges) {
        Gauge& mine = gauge(name);
        mine.set(std::max(mine.value(), g->value()));
    }
    for (const auto& [name, h] : histograms) {
        histogram(name, h->bounds()).merge_from(*h);
    }
}

bool MetricsRegistry::empty() const {
    std::lock_guard<CheckedMutex> lock(mutex_);
    note_registry_access(this, /*is_write=*/false);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
    std::lock_guard<CheckedMutex> lock(mutex_);
    note_registry_access(this, /*is_write=*/true);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counter_values()
    const {
    std::lock_guard<CheckedMutex> lock(mutex_);
    note_registry_access(this, /*is_write=*/false);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        out.emplace_back(name, c->value());
    }
    return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values() const {
    std::lock_guard<CheckedMutex> lock(mutex_);
    note_registry_access(this, /*is_write=*/false);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        out.emplace_back(name, g->value());
    }
    return out;
}

std::vector<MetricsRegistry::HistogramSnapshot> MetricsRegistry::histogram_snapshots()
    const {
    std::vector<std::pair<std::string, const Histogram*>> entries;
    {
        std::lock_guard<CheckedMutex> lock(mutex_);
        note_registry_access(this, /*is_write=*/false);
        entries.reserve(histograms_.size());
        for (const auto& [name, h] : histograms_) {
            entries.emplace_back(name, h.get());
        }
    }
    // Entries outlive the registry lock; each stats() takes the histogram's
    // own mutex (registry lock released first, same order as merge()).
    std::vector<HistogramSnapshot> out;
    out.reserve(entries.size());
    for (const auto& [name, h] : entries) {
        const RunningStats stats = h->stats();
        HistogramSnapshot snap;
        snap.name = name;
        snap.count = static_cast<std::uint64_t>(stats.count());
        snap.mean = stats.mean();
        snap.min = stats.min();
        snap.max = stats.max();
        snap.p50 = h->percentile(0.50);
        snap.p90 = h->percentile(0.90);
        snap.p99 = h->percentile(0.99);
        out.push_back(std::move(snap));
    }
    return out;
}

namespace {

void append_number(std::string& out, double v) {
    char num[64];
    if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
        std::snprintf(num, sizeof(num), "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(num, sizeof(num), "%.9g", v);
    }
    out += num;
}

void json_escape_into(std::string& out, const std::string& s) {
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
}

}  // namespace

std::string MetricsRegistry::to_json() const {
    std::lock_guard<CheckedMutex> lock(mutex_);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        json_escape_into(out, name);
        out += "\": ";
        out += std::to_string(c->value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        json_escape_into(out, name);
        out += "\": ";
        append_number(out, g->value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        const RunningStats stats = h->stats();
        const std::vector<std::uint64_t> counts = h->bucket_counts();
        out += "    \"";
        json_escape_into(out, name);
        out += "\": {\"count\": " + std::to_string(stats.count());
        out += ", \"mean\": ";
        append_number(out, stats.mean());
        out += ", \"stddev\": ";
        append_number(out, stats.stddev());
        out += ", \"min\": ";
        append_number(out, stats.min());
        out += ", \"max\": ";
        append_number(out, stats.max());
        out += ", \"p50\": ";
        append_number(out, percentile_impl(h->bounds(), counts, stats, 0.50));
        out += ", \"p90\": ";
        append_number(out, percentile_impl(h->bounds(), counts, stats, 0.90));
        out += ", \"p99\": ";
        append_number(out, percentile_impl(h->bounds(), counts, stats, 0.99));
        out += ", \"buckets\": [";
        const std::vector<double>& bounds = h->bounds();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (i > 0) {
                out += ", ";
            }
            out += "{\"le\": ";
            if (i < bounds.size()) {
                append_number(out, bounds[i]);
            } else {
                out += "\"inf\"";
            }
            out += ", \"count\": " + std::to_string(counts[i]) + "}";
        }
        out += "]}";
    }
    out += first ? "}\n}\n" : "\n  }\n}\n";
    return out;
}

void MetricsRegistry::write_json(const std::filesystem::path& path) const {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        BAT_LOG_ERROR("metrics export: cannot open " << path.string());
        return;
    }
    const std::string json = to_json();
    f.write(json.data(), static_cast<std::streamsize>(json.size()));
}

std::vector<std::byte> MetricsRegistry::to_bytes() const {
    std::lock_guard<CheckedMutex> lock(mutex_);
    BufferWriter w;
    w.write(static_cast<std::uint32_t>(counters_.size()));
    for (const auto& [name, c] : counters_) {
        w.write_string(name);
        w.write(c->value());
    }
    w.write(static_cast<std::uint32_t>(gauges_.size()));
    for (const auto& [name, g] : gauges_) {
        w.write_string(name);
        w.write(g->value());
    }
    w.write(static_cast<std::uint32_t>(histograms_.size()));
    for (const auto& [name, h] : histograms_) {
        w.write_string(name);
        const RunningStats stats = h->stats();
        const std::vector<std::uint64_t> counts = h->bucket_counts();
        w.write(static_cast<std::uint32_t>(h->bounds().size()));
        w.write_span(std::span<const double>(h->bounds()));
        w.write_span(std::span<const std::uint64_t>(counts));
        w.write(static_cast<std::uint64_t>(stats.count()));
        w.write(stats.mean());
        w.write(stats.m2());
        w.write(stats.min());
        w.write(stats.max());
    }
    return w.take();
}

MetricsRegistry MetricsRegistry::from_bytes(std::span<const std::byte> bytes) {
    MetricsRegistry reg;
    BufferReader r(bytes);
    const auto ncounters = r.read<std::uint32_t>();
    for (std::uint32_t i = 0; i < ncounters; ++i) {
        const std::string name = r.read_string();
        reg.counter(name).add(r.read<std::uint64_t>());
    }
    const auto ngauges = r.read<std::uint32_t>();
    for (std::uint32_t i = 0; i < ngauges; ++i) {
        const std::string name = r.read_string();
        reg.gauge(name).set(r.read<double>());
    }
    const auto nhistograms = r.read<std::uint32_t>();
    for (std::uint32_t i = 0; i < nhistograms; ++i) {
        const std::string name = r.read_string();
        const auto nbounds = r.read<std::uint32_t>();
        std::vector<double> bounds(nbounds);
        r.read_into(std::span<double>(bounds));
        std::vector<std::uint64_t> counts(nbounds + 1);
        r.read_into(std::span<std::uint64_t>(counts));
        const auto count = r.read<std::uint64_t>();
        const double mean = r.read<double>();
        const double m2 = r.read<double>();
        const double min = r.read<double>();
        const double max = r.read<double>();
        Histogram& h = reg.histogram(name, std::move(bounds));
        h.counts_ = std::move(counts);
        h.stats_ = RunningStats::from_raw(count, mean, m2, min, max);
    }
    return reg;
}

}  // namespace bat::obs
