#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

#include "util/check.hpp"

namespace bat::obs::json {

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        BAT_FAIL("JSON parse error at byte " << pos_ << ": " << why);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) {
            return false;
        }
        pos_ += lit.size();
        return true;
    }

    Value parse_value() {
        skip_ws();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': {
                Value v;
                v.kind = Value::Kind::string;
                v.str_v = parse_string();
                return v;
            }
            case 't':
            case 'f': {
                Value v;
                v.kind = Value::Kind::boolean;
                if (consume_literal("true")) {
                    v.bool_v = true;
                } else if (consume_literal("false")) {
                    v.bool_v = false;
                } else {
                    fail("invalid literal");
                }
                return v;
            }
            case 'n': {
                if (!consume_literal("null")) {
                    fail("invalid literal");
                }
                return Value{};
            }
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Value v;
        v.kind = Value::Kind::object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.obj_v.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value parse_array() {
        expect('[');
        Value v;
        v.kind = Value::Kind::array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.arr_v.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code += static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code += static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code += static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("invalid \\u escape digit");
                        }
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs in
                    // trace names do not occur; pass them through raw).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("invalid number");
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("invalid number '" + token + "'");
        }
        Value out;
        out.kind = Value::Kind::number;
        out.num_v = v;
        return out;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
    if (kind != Kind::object) {
        return nullptr;
    }
    for (const auto& [k, v] : obj_v) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace bat::obs::json
