#pragma once
// Request-scoped query tracing and cost attribution (docs/OBSERVABILITY.md).
//
// Phase-level tracing (obs/trace.hpp) and the run report (obs/health.hpp)
// aggregate by phase and rank, so two concurrent queries in the same
// DataService round are indistinguishable. This layer gives every
// DataService::query_round / read_particles invocation an identity — a
// QueryContext carrying a process-unique trace id, the origin rank, and a
// per-origin sequence number — and propagates it across rank boundaries
// inside the coalesced leaf-request framing (io/read_protocol) and through
// ThreadPool tasks (context-carrying tasks survive work-helping), so work
// performed *for* a query on any rank or worker thread is attributed to it:
//
//   - every remotely served leaf becomes one QueryServeSpan (serving rank,
//     leaf id, wall window, response bytes, cache hit/miss);
//   - LeafFileCache hits/misses and pool task time land in a lock-free
//     per-query cost slot via the thread-local current context;
//   - at round exit the origin emits one QueryRecord (stage breakdown,
//     leaves local/remote, bytes moved, cache and pool costs, fast-path
//     windows) into a lock-cheap ring.
//
// Records and spans are stitched by trace id at export into an append-only
// JSONL log (one `bat-query-v1` object per line), armed by BAT_QUERY_LOG
// ("%p" expands to the pid) with 1-in-N sampling via BAT_QUERY_SAMPLE.
// tools/query_profile reconstructs per-query critical paths from the log.
// Latency percentiles (p50/p90/p99) per operation type are recorded into
// the MetricsRegistry regardless of arming, so they always reach the run
// report.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace bat::obs {

/// Identity of one in-flight query. trace_id is process-unique and nonzero
/// for a valid context; it encodes the origin rank in its high bits so log
/// lines stay human-readable.
struct QueryContext {
    std::uint64_t trace_id = 0;
    std::int32_t origin_rank = -1;
    std::uint32_t seq = 0;  // per-origin query counter
    bool valid() const { return trace_id != 0; }
};

/// The calling thread's current query context (invalid when none).
QueryContext current_query();

/// Install `ctx` as the thread's current context for the enclosing scope;
/// restores the previous context on destruction. Nesting is allowed (the
/// innermost context wins), which is how a serving rank temporarily adopts
/// a *remote* query's identity around each leaf evaluation.
class QueryScope {
public:
    explicit QueryScope(const QueryContext& ctx);
    QueryScope(const QueryScope&) = delete;
    QueryScope& operator=(const QueryScope&) = delete;
    ~QueryScope();

private:
    QueryContext prev_;
};

/// Mint a fresh context at a query's origin. Cheap (one relaxed atomic
/// increment); does not install the context — wrap the returned value in a
/// QueryScope.
QueryContext query_begin(int origin_rank);

// ---- recording switch -----------------------------------------------------

/// True when ring recording (records, serve spans, cost slots) is on.
/// Armed automatically when BAT_QUERY_LOG is set; tests and benches toggle
/// it directly. Latency histograms are recorded regardless.
bool query_trace_enabled();
void set_query_trace_enabled(bool on);

/// 1-in-N record sampling (BAT_QUERY_SAMPLE, default 1 = every query).
/// Applies to ring records only; serve spans follow their record.
std::uint32_t query_sample_every();
void set_query_sample_every(std::uint32_t n);

// ---- attribution hooks ----------------------------------------------------
// All are no-ops (one thread-local read + branch) when no context is
// installed or recording is off.

/// A LeafFileCache lookup under the current context.
void query_note_cache(bool hit);
/// Pool task wall time executed under the current context.
void query_note_pool_ns(std::uint64_t ns);
/// One contiguous-range fast-path window emitted under the current context.
void query_note_fastpath_window();

/// Monotonic per-thread counts of cache notes recorded via query_note_cache
/// on the calling thread. Serve tasks snapshot the delta around a single
/// leaf evaluation (the cache open runs synchronously inside it, even under
/// comm-thread work-helping) to label that leaf's span as hit or miss.
void query_thread_cache_counts(std::uint64_t* hits, std::uint64_t* misses);

// ---- per-leaf serve spans --------------------------------------------------

/// One remotely served leaf, recorded by the serving rank before the
/// response ships (so a query's spans are all visible once its responses
/// arrived — no cross-rank flush needed).
struct QueryServeSpan {
    std::uint64_t trace_id = 0;
    std::int32_t origin_rank = -1;
    std::uint32_t query_seq = 0;
    std::int32_t serve_rank = -1;
    std::int32_t leaf = -1;
    std::uint64_t start_ns = 0;  // trace_now_ns clock, shared by all ranks
    std::uint64_t dur_ns = 0;
    std::uint64_t bytes = 0;  // serialized response part size
    bool cache_hit = false;
};

void query_record_serve_span(const QueryServeSpan& span);

// ---- query records ---------------------------------------------------------

/// One finished query, emitted by the origin rank at round exit.
struct QueryRecord {
    std::uint64_t trace_id = 0;
    std::int32_t origin_rank = -1;
    std::uint32_t seq = 0;
    const char* op = "";  // string literal: "service.query_round" | "read.read_particles"
    std::uint64_t start_ns = 0;
    std::uint64_t wall_ns = 0;
    // Stage breakdown (request build+send / serve loop / response merge /
    // local leaf evaluation).
    std::uint64_t request_ns = 0;
    std::uint64_t serve_ns = 0;
    std::uint64_t merge_ns = 0;
    std::uint64_t local_ns = 0;
    std::uint32_t leaves_local = 0;
    std::uint32_t leaves_remote = 0;
    std::uint32_t request_msgs = 0;
    std::uint64_t bytes_moved = 0;  // response payload bytes received
    std::uint64_t particles = 0;
    // Cost-slot snapshot: local + remote attribution at finalize time.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t pool_task_ns = 0;
    std::uint64_t fastpath_windows = 0;
};

/// Snapshot the cost slot for `ctx` into the record's cost fields, push the
/// record into the ring (subject to sampling), and release the cost slot.
void query_finalize(QueryRecord record);

// ---- export ----------------------------------------------------------------

/// True once BAT_QUERY_LOG arming (or arm_query_log) registered the
/// exit-time export.
bool query_log_armed();

/// Arm the exit-time JSONL export programmatically (tests, benches);
/// `sample_every` = 0 keeps the current sampling rate.
void arm_query_log(const std::filesystem::path& path, std::uint32_t sample_every = 0);

/// Render the stitched log: one bat-query-v1 JSON object per line, serve
/// spans embedded in their record by trace id; spans whose record was never
/// finalized (or sampled out) become bat-query-orphan-v1 lines so nothing
/// is silently dropped.
std::string query_log_jsonl();

/// Append query_log_jsonl() to `path` ("%p" expands to the pid).
bool write_query_log(const std::filesystem::path& path);

/// Ring snapshots for tests and in-process consumers.
std::vector<QueryRecord> query_records();
std::vector<QueryServeSpan> query_serve_spans();

/// Records or spans lost to ring overflow since the last reset.
std::uint64_t query_dropped();

/// Drop all rings and cost slots (tests, repeated benchmark runs).
void reset_query_trace();

}  // namespace bat::obs
