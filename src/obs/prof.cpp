#include "obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>

#include <signal.h>
#include <time.h>
#include <unistd.h>

// Per-thread CPU-clock timers with SIGEV_THREAD_ID delivery are a Linux
// extension; elsewhere the profiler compiles to stubs that warn at start.
#if defined(__linux__)
#define BAT_PROF_HAVE_TIMERS 1
#include <execinfo.h>
#include <pthread.h>
#include <sys/syscall.h>
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#else
#define BAT_PROF_HAVE_TIMERS 0
#endif

#include "obs/health.hpp"
#include "obs/output_path.hpp"
#include "obs/query_trace.hpp"
#include "util/log.hpp"

namespace bat::obs {

namespace {

constexpr int kMaxSpanFrames = 16;
constexpr int kMaxNativeFrames = 12;
constexpr int kDiagTopK = 8;

struct RawSample {
    std::uint64_t qtrace = 0;
    std::int32_t rank = -1;
    std::int32_t depth = 0;
    std::int32_t native_depth = 0;
    const char* frames[kMaxSpanFrames];
    void* native[kMaxNativeFrames];
};

/// Per-registered-thread sampling state. The SIGPROF handler (which runs on
/// the owning thread) is the single producer of the ring; drain passes are
/// the single consumer (serialized by ProfState::drain_mutex). head is
/// store-release by the handler / load-acquire by drains, tail the reverse,
/// so slot contents are published without the handler ever taking a lock.
struct ProfThread {
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> tail{0};
    std::atomic<std::uint64_t> dropped{0};
    RawSample* slots = nullptr;
    std::size_t nslots = 0;
    /// Handler gate. Cleared (on the owning thread) before the timer is
    /// deleted, so a SIGPROF already queued at unregister time finds the
    /// gate closed instead of a dying record.
    std::atomic<bool> armed{false};
    bool timer_created = false;
#if BAT_PROF_HAVE_TIMERS
    timer_t timer{};
    pthread_t pthread{};
    pid_t tid = 0;
#endif
    const char* kind = "thread";
};

/// The handler reaches its thread's state through this single thread_local
/// pointer (constant-initialized, so reading it is async-signal-safe).
thread_local ProfThread* t_prof = nullptr;

/// Aggregation key: (rank, span-label stack). Labels are string literals,
/// but identical literals in different translation units may not be pooled
/// to one address, so ordering compares contents, not pointers.
struct StackKey {
    std::int32_t rank = -1;
    std::vector<const char*> frames;
};

struct StackKeyLess {
    bool operator()(const StackKey& a, const StackKey& b) const {
        if (a.rank != b.rank) {
            return a.rank < b.rank;
        }
        const std::size_t n = std::min(a.frames.size(), b.frames.size());
        for (std::size_t i = 0; i < n; ++i) {
            const int c = std::strcmp(a.frames[i], b.frames[i]);
            if (c != 0) {
                return c < 0;
            }
        }
        return a.frames.size() < b.frames.size();
    }
};

struct Agg {
    std::map<StackKey, std::uint64_t, StackKeyLess> stacks;
    std::map<std::uint64_t, std::uint64_t> queries;
    std::map<std::vector<void*>, std::uint64_t> native;
    std::map<std::string, std::uint64_t> kind_samples;
    std::uint64_t samples = 0;
    std::uint64_t attributed = 0;
    std::uint64_t dropped = 0;
};

struct ProfState {
    std::mutex lifecycle_mutex;  // serializes start/stop/reset

    // Thread registry. Held across whole drain passes (folds are tiny: at
    // 97 Hz a 100 ms drain interval folds ~10 samples per thread), so
    // unregistration can recycle records without racing a concurrent fold.
    std::mutex reg_mutex;
    std::vector<ProfThread*> threads;
    // Recycled records from unregistered threads. Rank threads live one
    // vmpi collective each, so without reuse every run would re-pay the
    // ring allocation; with it, steady state allocates nothing.
    std::vector<ProfThread*> free_pool;
    std::map<std::string, std::uint64_t> kind_threads;  // registrations seen

    std::atomic<bool> running{false};
    ProfOptions opts;
    std::uint64_t interval_ns = 0;

    // Drain thread + serialization of drain passes (periodic vs on-demand
    // export). Lock order: drain_mutex -> reg_mutex -> agg_mutex.
    std::thread drain_thread;
    std::mutex drain_cv_mutex;
    std::condition_variable drain_cv;
    bool drain_stop = false;
    std::mutex drain_mutex;

    std::mutex agg_mutex;
    Agg agg;

    std::chrono::steady_clock::time_point session_start{};
    double wall_seconds = 0;  // accumulated across stopped sessions
    std::uint64_t diag_id = 0;
};

/// Heap-allocated and leaked so atexit-time exports never race static
/// destruction (same pattern as the health and trace state).
ProfState& pstate() {
    static ProfState* s = new ProfState;
    return *s;
}

std::atomic<bool> g_native{false};

// ---- signal handler --------------------------------------------------------
// Everything here must be async-signal-safe: plain thread_local reads
// (t_prof, the log rank, the query context), relaxed/acquire-release
// atomics, and stores into the preallocated ring. No malloc, no locks, no
// lazily-initialized statics; errno is saved around the body.

void sigprof_handler(int /*sig*/, siginfo_t* /*info*/, void* /*ctx*/) {
    ProfThread* pt = t_prof;
    if (pt == nullptr || !pt->armed.load(std::memory_order_acquire)) {
        return;
    }
    const int saved_errno = errno;
    const std::uint64_t head = pt->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = pt->tail.load(std::memory_order_acquire);
    if (head - tail >= pt->nslots) {
        pt->dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
        RawSample& s = pt->slots[head % pt->nslots];
        s.rank = thread_log_rank();
        s.qtrace = current_query().trace_id;
        s.depth = health_detail::read_own_span_stack(s.frames, kMaxSpanFrames);
        s.native_depth = 0;
#if BAT_PROF_HAVE_TIMERS
        if (g_native.load(std::memory_order_relaxed)) {
            s.native_depth = ::backtrace(s.native, kMaxNativeFrames);
        }
#endif
        pt->head.store(head + 1, std::memory_order_release);
    }
    errno = saved_errno;
}

void install_sigaction_once() {
#if BAT_PROF_HAVE_TIMERS
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_sigaction = sigprof_handler;
        // SA_RESTART: the rest of the codebase must never see EINTR from a
        // profiling tick mid-read/write.
        sa.sa_flags = SA_SIGINFO | SA_RESTART;
        sigemptyset(&sa.sa_mask);
        ::sigaction(SIGPROF, &sa, nullptr);
    });
#endif
}

// ---- arming ----------------------------------------------------------------

/// Create (if needed) and arm this record's timer. Caller holds reg_mutex.
bool arm_thread(ProfState& s, ProfThread* pt) {
#if BAT_PROF_HAVE_TIMERS
    if (pt->slots == nullptr) {
        // Raw, uninitialized storage: the handler writes every field it
        // publishes, and constructing 4096 slots would fault in the whole
        // ring up front — with lazy pages only slots that actually receive
        // samples cost anything.
        pt->nslots = s.opts.ring_slots;
        pt->slots = static_cast<RawSample*>(
            ::operator new(pt->nslots * sizeof(RawSample)));
    }
    if (!pt->timer_created) {
        clockid_t cid;
        if (::pthread_getcpuclockid(pt->pthread, &cid) != 0) {
            BAT_LOG_WARN("prof: pthread_getcpuclockid failed for a " << pt->kind
                                                                     << " thread");
            return false;
        }
        struct sigevent sev;
        std::memset(&sev, 0, sizeof(sev));
        sev.sigev_notify = SIGEV_THREAD_ID;
        sev.sigev_signo = SIGPROF;
        sev.sigev_notify_thread_id = pt->tid;
        if (::timer_create(cid, &sev, &pt->timer) != 0) {
            BAT_LOG_WARN("prof: timer_create failed for a " << pt->kind << " thread");
            return false;
        }
        pt->timer_created = true;
    }
    struct itimerspec its;
    its.it_interval.tv_sec = static_cast<time_t>(s.interval_ns / 1'000'000'000ull);
    its.it_interval.tv_nsec = static_cast<long>(s.interval_ns % 1'000'000'000ull);
    // Stagger the first expiry per arming (splitmix-style hash of tid plus
    // an arming sequence number): a full-interval initial delay would blind
    // the profiler to the first ~1/hz seconds of every thread's CPU life,
    // systematically undercounting the early phases of short-lived rank
    // threads. The sequence number matters because the kernel recycles tids:
    // without it, a re-spawned worker pool whose tids all hash to a late
    // phase would miss its entire CPU life on every single run.
    static std::atomic<std::uint64_t> arm_seq{0};
    std::uint64_t h = static_cast<std::uint64_t>(pt->tid) +
                      arm_seq.fetch_add(1, std::memory_order_relaxed) *
                          0x2545f4914f6cdd1dull +
                      0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    const std::uint64_t first_ns = (h ^ (h >> 31)) % s.interval_ns + 1;
    its.it_value.tv_sec = static_cast<time_t>(first_ns / 1'000'000'000ull);
    its.it_value.tv_nsec = static_cast<long>(first_ns % 1'000'000'000ull);
    // Open the handler gate before the first expiry can fire; the release
    // store publishes the freshly allocated ring to the handler.
    pt->armed.store(true, std::memory_order_release);
    ::timer_settime(pt->timer, 0, &its, nullptr);
    return true;
#else
    (void)s;
    (void)pt;
    return false;
#endif
}

/// Pause sampling without destroying the timer. Caller holds reg_mutex.
void disarm_thread(ProfThread* pt) {
    pt->armed.store(false, std::memory_order_release);
#if BAT_PROF_HAVE_TIMERS
    if (pt->timer_created) {
        struct itimerspec zero;
        std::memset(&zero, 0, sizeof(zero));
        ::timer_settime(pt->timer, 0, &zero, nullptr);
    }
#endif
}

// ---- folding ---------------------------------------------------------------

/// Fold one ring into the aggregates. Caller holds reg_mutex + agg_mutex.
void fold_ring(Agg& agg, ProfThread* pt) {
    const std::uint64_t head = pt->head.load(std::memory_order_acquire);
    std::uint64_t tail = pt->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
        const RawSample& raw = pt->slots[tail % pt->nslots];
        agg.samples += 1;
        agg.kind_samples[pt->kind] += 1;
        if (raw.qtrace != 0) {
            agg.queries[raw.qtrace] += 1;
        }
        const int depth = std::min(raw.depth, kMaxSpanFrames);
        if (depth > 0) {
            agg.attributed += 1;
            StackKey key;
            key.rank = raw.rank;
            key.frames.assign(raw.frames, raw.frames + depth);
            agg.stacks[key] += 1;
        }
        const int ndepth = std::min(raw.native_depth, kMaxNativeFrames);
        if (ndepth > 0) {
            agg.native[std::vector<void*>(raw.native, raw.native + ndepth)] += 1;
        }
    }
    pt->tail.store(tail, std::memory_order_release);
    agg.dropped += pt->dropped.exchange(0, std::memory_order_relaxed);
}

/// Fold every live ring into the aggregates.
void drain_all(ProfState& s) {
    std::lock_guard<std::mutex> drain(s.drain_mutex);
    std::lock_guard<std::mutex> reg(s.reg_mutex);
    std::lock_guard<std::mutex> agg(s.agg_mutex);
    for (ProfThread* pt : s.threads) {
        fold_ring(s.agg, pt);
    }
}

void drain_loop(ProfState& s) {
    std::unique_lock<std::mutex> lk(s.drain_cv_mutex);
    for (;;) {
        s.drain_cv.wait_for(lk, s.opts.drain_interval, [&s] { return s.drain_stop; });
        if (s.drain_stop) {
            return;
        }
        lk.unlock();
        drain_all(s);
        lk.lock();
    }
}

// ---- registration ----------------------------------------------------------

void register_thread_impl(const char* kind) {
    if (t_prof != nullptr) {
        return;  // idempotent: the first registration's kind wins
    }
    ProfState& s = pstate();
    // Force the span stack into existence now (takes a lock), so the
    // handler's lock-free read path never needs to create it.
    health_detail::ensure_span_stack();
    std::lock_guard<std::mutex> reg(s.reg_mutex);
    ProfThread* pt;
    if (!s.free_pool.empty()) {
        pt = s.free_pool.back();
        s.free_pool.pop_back();
    } else {
        pt = new ProfThread;
    }
    pt->kind = kind;
#if BAT_PROF_HAVE_TIMERS
    pt->pthread = ::pthread_self();
    pt->tid = static_cast<pid_t>(::syscall(SYS_gettid));
#endif
    s.threads.push_back(pt);
    s.kind_threads[kind] += 1;
    t_prof = pt;
    if (s.running.load(std::memory_order_relaxed)) {
        arm_thread(s, pt);
    }
}

// ---- lifecycle -------------------------------------------------------------

void stop_locked(ProfState& s) {
    if (!s.running.load(std::memory_order_relaxed)) {
        return;
    }
    {
        std::lock_guard<std::mutex> reg(s.reg_mutex);
        s.running.store(false, std::memory_order_relaxed);
        for (ProfThread* pt : s.threads) {
            disarm_thread(pt);
        }
    }
    {
        std::lock_guard<std::mutex> lk(s.drain_cv_mutex);
        s.drain_stop = true;
    }
    s.drain_cv.notify_all();
    if (s.drain_thread.joinable()) {
        s.drain_thread.join();
    }
    drain_all(s);  // final fold of every ring
    if (s.diag_id != 0) {
        unregister_diag_provider(s.diag_id);
        s.diag_id = 0;
    }
    s.wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s.session_start)
            .count();
    // Mirror stop_watchdog: tracking stays on if the watchdog or flight
    // recorder still needs it.
    if (!health_armed()) {
        set_span_tracking(false);
    }
}

std::string prof_diag_json();

bool start_impl(ProfOptions opts) {
    if (!profiler_supported()) {
        BAT_LOG_WARN(
            "prof: per-thread CPU-clock timers unavailable on this platform; "
            "profiler not started");
        return false;
    }
    ProfState& s = pstate();
    std::lock_guard<std::mutex> lifecycle(s.lifecycle_mutex);
    stop_locked(s);
    opts.hz = std::clamp(opts.hz, 1.0, 1000.0);
    opts.ring_slots = std::max<std::size_t>(opts.ring_slots, 64);
    if (opts.drain_interval.count() <= 0) {
        opts.drain_interval = std::chrono::milliseconds(100);
    }
    s.opts = opts;
    s.interval_ns = static_cast<std::uint64_t>(1e9 / opts.hz);
    g_native.store(opts.native_frames, std::memory_order_relaxed);
    install_sigaction_once();
#if BAT_PROF_HAVE_TIMERS
    if (opts.native_frames) {
        // glibc's first backtrace call may allocate (loading the unwinder);
        // take it here so handler-context calls never do.
        void* warm[4];
        ::backtrace(warm, 4);
    }
#endif
    set_span_tracking(true);
    s.session_start = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> reg(s.reg_mutex);
        s.running.store(true, std::memory_order_relaxed);
        for (ProfThread* pt : s.threads) {
            arm_thread(s, pt);
        }
    }
    s.diag_id = register_diag_provider("prof", [] { return prof_diag_json(); });
    {
        std::lock_guard<std::mutex> lk(s.drain_cv_mutex);
        s.drain_stop = false;
    }
    s.drain_thread = std::thread([&s] { drain_loop(s); });
    BAT_LOG_INFO("prof: sampling at " << s.opts.hz << " Hz per thread");
    return true;
}

/// One-time environment arming: BAT_PROF_HZ starts sampling, BAT_PROF_FILE
/// registers the exit-time export. Runs start_impl directly — the public
/// start_profiler would re-enter this call_once from the same thread and
/// deadlock (the bug class PR 5's watchdog arming hit).
void ensure_prof_env() {
    static std::once_flag once;
    std::call_once(once, [] {
        const char* hz_env = std::getenv("BAT_PROF_HZ");
        const double hz = hz_env != nullptr ? std::strtod(hz_env, nullptr) : 0.0;
        if (hz <= 0 && std::getenv("BAT_PROF_FILE") == nullptr) {
            return;
        }
        std::atexit([] {
            stop_profiler();
            if (std::getenv("BAT_PROF_FILE") != nullptr) {
                write_profile();
            }
        });
        if (hz <= 0) {
            return;
        }
        ProfOptions opts;
        opts.hz = hz;
        if (const char* ring = std::getenv("BAT_PROF_RING")) {
            const long long v = std::atoll(ring);
            if (v > 0) {
                opts.ring_slots = static_cast<std::size_t>(v);
            }
        }
        if (const char* native = std::getenv("BAT_PROF_NATIVE")) {
            opts.native_frames = *native != '\0' && std::strcmp(native, "0") != 0;
        }
        start_impl(opts);
    });
}

// ---- JSON rendering --------------------------------------------------------

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

void append_double(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

void append_frames(std::string& out, const std::vector<const char*>& frames) {
    out += '[';
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i != 0) {
            out += ',';
        }
        out += '"';
        out += frames[i];  // span labels are identifier-like literals
        out += '"';
    }
    out += ']';
}

/// Diag-provider payload: totals + top-k hottest stacks, the "profile tail"
/// a watchdog trip or flight record embeds. try_lock only — a provider must
/// never block the watchdog behind a drain or export in progress.
std::string prof_diag_json() {
    ProfState& s = pstate();
    std::unique_lock<std::mutex> agg_lock(s.agg_mutex, std::try_to_lock);
    if (!agg_lock.owns_lock()) {
        return "{\"busy\":true}";
    }
    const Agg& agg = s.agg;
    std::vector<std::pair<const StackKey*, std::uint64_t>> top;
    top.reserve(agg.stacks.size());
    for (const auto& [key, count] : agg.stacks) {
        top.emplace_back(&key, count);
    }
    std::sort(top.begin(), top.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (top.size() > kDiagTopK) {
        top.resize(kDiagTopK);
    }
    std::string out = "{\"hz\":";
    append_double(out, s.opts.hz);
    out += ",\"samples\":";
    append_u64(out, agg.samples);
    out += ",\"attributed\":";
    append_u64(out, agg.attributed);
    out += ",\"dropped\":";
    append_u64(out, agg.dropped);
    out += ",\"top\":[";
    for (std::size_t i = 0; i < top.size(); ++i) {
        if (i != 0) {
            out += ',';
        }
        out += "{\"rank\":" + std::to_string(top[i].first->rank) + ",\"samples\":";
        append_u64(out, top[i].second);
        out += ",\"frames\":";
        append_frames(out, top[i].first->frames);
        out += '}';
    }
    out += "]}";
    return out;
}

}  // namespace

// ---- public API ------------------------------------------------------------

bool profiler_supported() {
    return BAT_PROF_HAVE_TIMERS != 0;
}

bool profiler_running() {
    return pstate().running.load(std::memory_order_relaxed);
}

bool start_profiler(ProfOptions opts) {
    ensure_prof_env();
    register_thread_impl("main");  // the caller participates
    return start_impl(opts);
}

void stop_profiler() {
    ensure_prof_env();
    ProfState& s = pstate();
    std::lock_guard<std::mutex> lifecycle(s.lifecycle_mutex);
    stop_locked(s);
}

void reset_profiler() {
    ensure_prof_env();
    ProfState& s = pstate();
    std::lock_guard<std::mutex> lifecycle(s.lifecycle_mutex);
    drain_all(s);  // advance every ring past old samples
    {
        std::lock_guard<std::mutex> reg(s.reg_mutex);
        std::lock_guard<std::mutex> agg(s.agg_mutex);
        s.agg = Agg{};
        s.kind_threads.clear();
        for (const ProfThread* pt : s.threads) {
            s.kind_threads[pt->kind] += 1;
        }
    }
    s.wall_seconds = 0;
    s.session_start = std::chrono::steady_clock::now();
}

void prof_register_thread(const char* kind) {
    ensure_prof_env();
    register_thread_impl(kind);
}

void prof_unregister_thread() {
    ProfThread* pt = t_prof;
    if (pt == nullptr) {
        return;
    }
    // Null the handler's pointer first: this store is sequenced on the
    // owning thread, so any later SIGPROF delivery (even one already queued
    // when the timer dies) returns without touching the record.
    t_prof = nullptr;
    ProfState& s = pstate();
    std::lock_guard<std::mutex> reg(s.reg_mutex);
    pt->armed.store(false, std::memory_order_release);
#if BAT_PROF_HAVE_TIMERS
    if (pt->timer_created) {
        ::timer_delete(pt->timer);
        pt->timer_created = false;
    }
#endif
    // The ring is quiescent now (this thread can take no more SIGPROFs), so
    // fold any pending samples inline and recycle the record — its ring
    // allocation carries over to the next registered thread.
    if (pt->slots != nullptr) {
        std::lock_guard<std::mutex> agg(s.agg_mutex);
        fold_ring(s.agg, pt);
    }
    s.threads.erase(std::find(s.threads.begin(), s.threads.end(), pt));
    s.free_pool.push_back(pt);
}

ProfTotals prof_totals() {
    ensure_prof_env();
    ProfState& s = pstate();
    drain_all(s);
    std::lock_guard<std::mutex> agg(s.agg_mutex);
    ProfTotals t;
    t.samples = s.agg.samples;
    t.attributed = s.agg.attributed;
    t.dropped = s.agg.dropped;
    t.hz = s.opts.hz;
    t.wall_seconds = s.wall_seconds;
    if (s.running.load(std::memory_order_relaxed)) {
        t.wall_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - s.session_start)
                              .count();
    }
    return t;
}

std::vector<ProfStackCount> prof_stack_counts() {
    ensure_prof_env();
    ProfState& s = pstate();
    drain_all(s);
    std::lock_guard<std::mutex> agg(s.agg_mutex);
    std::vector<ProfStackCount> out;
    out.reserve(s.agg.stacks.size());
    for (const auto& [key, count] : s.agg.stacks) {
        ProfStackCount c;
        c.rank = key.rank;
        c.frames.assign(key.frames.begin(), key.frames.end());
        c.samples = count;
        out.push_back(std::move(c));
    }
    return out;
}

std::vector<ProfQueryCount> prof_query_counts() {
    ensure_prof_env();
    ProfState& s = pstate();
    drain_all(s);
    std::lock_guard<std::mutex> agg(s.agg_mutex);
    std::vector<ProfQueryCount> out;
    out.reserve(s.agg.queries.size());
    for (const auto& [id, count] : s.agg.queries) {
        out.push_back(ProfQueryCount{id, count});
    }
    return out;
}

std::string profile_json() {
    ensure_prof_env();
    ProfState& s = pstate();
    drain_all(s);
    std::lock_guard<std::mutex> reg(s.reg_mutex);
    std::lock_guard<std::mutex> agg(s.agg_mutex);
    const Agg& a = s.agg;
    double wall = s.wall_seconds;
    if (s.running.load(std::memory_order_relaxed)) {
        wall += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              s.session_start)
                    .count();
    }
    std::string out = "{\"schema\":\"bat-prof-v1\",\"pid\":";
    out += std::to_string(static_cast<long>(::getpid()));
    out += ",\"hz\":";
    append_double(out, s.opts.hz);
    out += ",\"native\":";
    out += s.opts.native_frames ? "true" : "false";
    out += ",\"wall_seconds\":";
    append_double(out, wall);
    out += ",\"samples\":";
    append_u64(out, a.samples);
    out += ",\"attributed\":";
    append_u64(out, a.attributed);
    out += ",\"dropped\":";
    append_u64(out, a.dropped);
    out += ",\"kinds\":{";
    bool first = true;
    for (const auto& [kind, threads] : s.kind_threads) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += '"';
        out += kind;
        out += "\":{\"threads\":";
        append_u64(out, threads);
        out += ",\"samples\":";
        const auto it = a.kind_samples.find(kind);
        append_u64(out, it != a.kind_samples.end() ? it->second : 0);
        out += '}';
    }
    out += "},\"stacks\":[";
    first = true;
    for (const auto& [key, count] : a.stacks) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"rank\":" + std::to_string(key.rank) + ",\"samples\":";
        append_u64(out, count);
        out += ",\"frames\":";
        append_frames(out, key.frames);
        out += '}';
    }
    out += "],\"queries\":[";
    first = true;
    for (const auto& [id, count] : a.queries) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"trace_id\":";
        append_u64(out, id);
        out += ",\"samples\":";
        append_u64(out, count);
        out += '}';
    }
    out += ']';
    if (!a.native.empty()) {
        out += ",\"native_stacks\":[";
        first = true;
        for (const auto& [addrs, count] : a.native) {
#if BAT_PROF_HAVE_TIMERS
            char** symbols = ::backtrace_symbols(
                const_cast<void* const*>(addrs.data()), static_cast<int>(addrs.size()));
#else
            char** symbols = nullptr;
#endif
            if (!first) {
                out += ',';
            }
            first = false;
            out += "{\"samples\":";
            append_u64(out, count);
            out += ",\"frames\":[";
            for (std::size_t i = 0; i < addrs.size(); ++i) {
                if (i != 0) {
                    out += ',';
                }
                out += '"';
                if (symbols != nullptr) {
                    for (const char* c = symbols[i]; *c != '\0'; ++c) {
                        if (*c == '"' || *c == '\\') {
                            out += '\\';
                        }
                        out += *c;
                    }
                } else {
                    char buf[24];
                    std::snprintf(buf, sizeof(buf), "%p", addrs[i]);
                    out += buf;
                }
                out += '"';
            }
            out += "]}";
            std::free(symbols);  // NOLINT(cppcoreguidelines-no-malloc)
        }
        out += ']';
    }
    out += '}';
    return out;
}

bool write_profile(const std::filesystem::path& path) {
    ensure_prof_env();
    std::string target = path.string();
    if (target.empty()) {
        if (const char* env = std::getenv("BAT_PROF_FILE")) {
            target = env;
        }
    }
    if (target.empty()) {
        return false;
    }
    const std::string expanded = expand_output_path(target);
    std::ofstream out(expanded);
    if (!out) {
        BAT_LOG_WARN("prof: cannot open " << expanded << " for writing");
        return false;
    }
    out << profile_json() << '\n';
    out.flush();
    if (out.good()) {
        BAT_LOG_INFO("prof: wrote bat-prof-v1 profile to " << expanded);
        return true;
    }
    return false;
}

// ---- diffing ---------------------------------------------------------------

ProfDiff prof_diff(const json::Value& before, const json::Value& after,
                   double threshold_pts) {
    const auto shares = [](const json::Value& doc, std::uint64_t* total_out) {
        std::map<std::string, double> out;
        double total = 0;
        if (const json::Value* stacks = doc.find("stacks");
            stacks != nullptr && stacks->is_array()) {
            for (const json::Value& entry : stacks->array()) {
                const json::Value* frames = entry.find("frames");
                const json::Value* samples = entry.find("samples");
                if (frames == nullptr || !frames->is_array() || samples == nullptr ||
                    !samples->is_number()) {
                    continue;
                }
                std::string stack;
                for (const json::Value& f : frames->array()) {
                    if (!stack.empty()) {
                        stack += ';';
                    }
                    stack += f.string();
                }
                out[stack] += samples->number();  // ranks merge
                total += samples->number();
            }
        }
        if (total > 0) {
            for (auto& [stack, count] : out) {
                count = 100.0 * count / total;
            }
        }
        *total_out = static_cast<std::uint64_t>(total);
        return out;
    };
    ProfDiff diff;
    const std::map<std::string, double> b = shares(before, &diff.before_samples);
    const std::map<std::string, double> a = shares(after, &diff.after_samples);
    std::map<std::string, ProfDiffEntry> merged;
    for (const auto& [stack, share] : b) {
        merged[stack].stack = stack;
        merged[stack].before_share = share;
    }
    for (const auto& [stack, share] : a) {
        merged[stack].stack = stack;
        merged[stack].after_share = share;
    }
    for (auto& [stack, entry] : merged) {
        entry.delta = entry.after_share - entry.before_share;
        diff.entries.push_back(entry);
    }
    std::sort(diff.entries.begin(), diff.entries.end(),
              [](const ProfDiffEntry& x, const ProfDiffEntry& y) {
                  return std::fabs(x.delta) > std::fabs(y.delta);
              });
    for (const ProfDiffEntry& e : diff.entries) {
        if (std::fabs(e.delta) >= threshold_pts) {
            diff.flagged.push_back(e);
        }
    }
    return diff;
}

}  // namespace bat::obs
