#pragma once
// Low-overhead per-rank span tracer (docs/OBSERVABILITY.md).
//
// Threads record fixed-size events into thread-local lock-free ring buffers;
// recording is a relaxed atomic flag check plus a steady_clock read and a
// struct store, so instrumented hot paths cost one predictable branch when
// tracing is disabled. Tracing is enabled via the BAT_TRACE environment
// variable or set_trace_enabled(); BAT_TRACE_FILE / BAT_METRICS_FILE request
// an automatic export at process exit.
//
// The export is Chrome trace-event JSON: each vmpi rank becomes a process
// track (pid), each thread a tid, vmpi messages carry flow ids so send/recv
// arrows render in chrome://tracing and Perfetto. The discrete-event
// performance model (simio) emits the same format onto virtual tracks, so
// modeled and measured timelines are directly comparable.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>

#include "obs/health.hpp"

namespace bat::obs {

namespace json {
struct Value;
}

// ---- runtime switch -------------------------------------------------------

/// True when span recording is on. Initialized from BAT_TRACE (any value
/// other than "0"/"off" enables); cheap enough to call per event.
bool trace_enabled();
void set_trace_enabled(bool on);

// ---- low-level recording --------------------------------------------------

/// Nanoseconds since the process trace epoch (first trace use).
std::uint64_t trace_now_ns();

/// Process-unique nonzero id tying a send event to its matching receive.
std::uint64_t next_flow_id();

/// `name` and `cat` must outlive the trace (string literals in practice):
/// events store the pointers, not copies.
void emit_begin(const char* name, const char* cat);
void emit_begin_arg(const char* name, const char* cat, const char* arg,
                    std::int64_t value);
/// Message-shaped span begin with tag/peer/bytes args, plus one optional
/// fourth arg: the post→match wait (wait_us >= 0, receive side) or the
/// sender's query trace id (qtrace != 0, send side — wait_us wins if both).
void emit_begin_msg(const char* name, const char* cat, int tag, int peer,
                    std::int64_t bytes, std::int64_t wait_us = -1,
                    std::uint64_t qtrace = 0);
void emit_end(const char* name, const char* cat);
void emit_instant(const char* name, const char* cat);
void emit_counter(const char* name, const char* cat, std::int64_t value);
/// Flow arrows: start is emitted inside the sending span, end inside the
/// receiving span; `flow_id` pairs them up.
void emit_flow_start(const char* cat, std::uint64_t flow_id);
void emit_flow_end(const char* cat, std::uint64_t flow_id);

// ---- virtual tracks (modeled timelines) -----------------------------------

/// Allocate a synthetic thread track (shown under the "model" process) for
/// spans with explicit timestamps, e.g. the simio discrete-event model.
std::uint32_t new_virtual_track(const std::string& name);
void emit_span_on_track(std::uint32_t track, const char* name, const char* cat,
                        std::uint64_t ts_ns, std::uint64_t dur_ns);

// ---- export ---------------------------------------------------------------

/// Serialize every thread's buffered events as Chrome trace-event JSON.
std::string chrome_trace_json();
void write_chrome_trace(const std::filesystem::path& path);

/// JSON array holding the newest `max_per_thread` events of each thread's
/// ring, for flight-recorder dumps. Same event objects as
/// chrome_trace_json(), unsorted across threads.
std::string trace_tail_json(std::size_t max_per_thread);

/// Events lost to ring-buffer overflow since the last reset.
std::uint64_t dropped_events();

/// Drop all buffered events (tests and repeated benchmark runs).
void reset_trace();

/// Ring capacity (events per thread) for buffers created after the call;
/// also settable via BAT_TRACE_BUFFER. Existing buffers are unchanged.
void set_ring_capacity(std::size_t events);

// ---- validation -----------------------------------------------------------

/// Structural check of a parsed Chrome trace: every begin has a matching
/// end on its (pid, tid) track, flow ends pair with flow starts, timestamps
/// are sane. Shared by tools/trace_summarize --validate and the tests.
struct TraceCheck {
    bool ok = false;
    std::string error;       // first structural problem found
    int num_events = 0;      // trace events excluding metadata
    int num_ranks = 0;       // distinct rank processes with at least one span
    int num_spans = 0;       // matched begin/end pairs
    int num_flows = 0;       // matched flow start/end pairs
};
TraceCheck validate_chrome_trace(const json::Value& root);

// ---- RAII helpers ---------------------------------------------------------

/// Span over a scope; no-op when tracing was disabled at entry.
class SpanScope {
public:
    SpanScope(const char* name, const char* cat) : name_(name), cat_(cat) {
        if (trace_enabled()) {
            active_ = true;
            emit_begin(name_, cat_);
        }
        if (span_tracking_enabled()) {
            tracked_ = true;
            health_detail::push_span(name_);
        }
    }
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;
    ~SpanScope() {
        if (active_) {
            emit_end(name_, cat_);
        }
        if (tracked_) {
            health_detail::pop_span();
        }
    }

private:
    const char* name_;
    const char* cat_;
    bool active_ = false;
    bool tracked_ = false;
};

/// Span that also accumulates its duration (seconds) into `*accum` — the
/// bridge between tracing and the WritePhaseTimings / ReadPhaseTimings
/// breakdown structs, which are populated from these spans alone.
class PhaseSpan {
public:
    PhaseSpan(const char* name, double* accum, const char* cat = "phase")
        : name_(name), cat_(cat), accum_(accum),
          t0_(std::chrono::steady_clock::now()), open_(true),
          traced_(trace_enabled()) {
        if (traced_) {
            emit_begin(name_, cat_);
        }
        if (span_tracking_enabled()) {
            tracked_ = true;
            health_detail::push_span(name_);
        }
    }
    PhaseSpan(const PhaseSpan&) = delete;
    PhaseSpan& operator=(const PhaseSpan&) = delete;
    ~PhaseSpan() { close(); }

    /// End the phase early; idempotent.
    void close() {
        if (!open_) {
            return;
        }
        open_ = false;
        const double seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0_)
                                   .count();
        if (accum_ != nullptr) {
            *accum_ += seconds;
        }
        // The run report accumulates the identical duration, so its phase
        // seconds match the timings structs exactly.
        health_detail::record_phase(name_, seconds);
        if (traced_) {
            emit_end(name_, cat_);
        }
        if (tracked_) {
            tracked_ = false;
            health_detail::pop_span();
        }
    }

private:
    const char* name_;
    const char* cat_;
    double* accum_;
    std::chrono::steady_clock::time_point t0_;
    bool open_;
    bool traced_;
    bool tracked_ = false;
};

}  // namespace bat::obs

#define BAT_OBS_CONCAT_IMPL(a, b) a##b
#define BAT_OBS_CONCAT(a, b) BAT_OBS_CONCAT_IMPL(a, b)

/// RAII span over the enclosing scope, e.g. BAT_TRACE_SCOPE("bat.build").
#define BAT_TRACE_SCOPE(name) BAT_TRACE_SCOPE_CAT(name, "app")
#define BAT_TRACE_SCOPE_CAT(name, cat) \
    ::bat::obs::SpanScope BAT_OBS_CONCAT(bat_trace_scope_, __LINE__)(name, cat)
