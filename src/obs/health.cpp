#include "obs/health.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/output_path.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace bat::obs {

namespace {

// All health state is heap-allocated once and deliberately leaked: progress
// notes arrive from pool workers and rank threads that may outlive any
// static destruction order, and the atexit report/flight hooks must never
// race a destructor.

constexpr int kMaxRanks = 1024;

struct RankSlot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<int> active{0};  // nesting count; >0 while a rank body runs
    // What the rank is blocked on, as structured fields (op is a string
    // literal; null = not blocked). Relaxed stores on the wait path; the
    // watchdog renders text only at diagnosis time. A torn read across the
    // three fields can at worst mislabel one diagnosis line.
    std::atomic<const char*> block_op{nullptr};
    std::atomic<int> block_peer{-1};
    std::atomic<int> block_tag{-1};
};

struct PhaseAcc {
    double seconds = 0;
    std::uint64_t calls = 0;
};

struct DiagProvider {
    std::uint64_t id = 0;
    std::string name;
    std::function<std::string()> fn;
};

struct SpanStack {
    static constexpr int kMaxDepth = 48;
    std::atomic<const char*> names[kMaxDepth] = {};
    std::atomic<int> depth{0};
    std::atomic<int> rank{-1};
};

struct Watchdog {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
    WatchdogOptions opts;
};

struct HealthState {
    // Progress table: per-rank slots plus one shared slot for rank-less
    // threads (pool workers, the main thread). Every per-slot bump also
    // bumps `total_epoch`, so the watchdog needs one load to detect global
    // progress.
    RankSlot ranks[kMaxRanks];
    RankSlot process;
    std::atomic<std::uint64_t> total_epoch{0};
    std::atomic<int> max_rank{-1};

    // Message/pool accounting for the report's traffic section.
    std::atomic<std::uint64_t> sends{0};
    std::atomic<std::uint64_t> send_bytes{0};
    std::atomic<std::uint64_t> recvs{0};
    std::atomic<std::uint64_t> recv_bytes{0};
    std::atomic<std::uint64_t> collectives{0};
    std::atomic<std::uint64_t> leaves_served{0};
    std::atomic<std::uint64_t> pool_tasks{0};

    // Report accumulators (coarse mutexes: phase closes and rank-value
    // records happen a handful of times per collective, not per particle).
    std::mutex phases_mutex;
    std::map<std::string, std::map<int, PhaseAcc>> phases;
    std::mutex values_mutex;
    std::map<std::string, std::map<int, std::uint64_t>> rank_values;

    // Subsystem diag providers.
    std::mutex providers_mutex;
    std::vector<DiagProvider> providers;
    std::uint64_t next_provider_id = 1;

    // Span-stack registry (entries are leaked with their threads).
    std::mutex stacks_mutex;
    std::vector<SpanStack*> stacks;

    // Watchdog.
    std::mutex watchdog_mutex;  // guards start/stop and the pointer below
    Watchdog* watchdog = nullptr;
    std::atomic<bool> watchdog_on{false};
    // Whether the watchdog ran at any point this run: the exit hook stops
    // the watchdog before writing the report, so the report uses this, not
    // watchdog_on, for its "armed" field.
    std::atomic<bool> watchdog_armed_ever{false};
    std::atomic<std::uint64_t> trips{0};

    std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
};

HealthState& state() {
    static HealthState* s = new HealthState;
    return *s;
}

std::atomic<bool> g_span_tracking{false};
std::atomic<bool> g_flight_armed{false};

RankSlot& slot_for(int rank) {
    HealthState& s = state();
    if (rank < 0 || rank >= kMaxRanks) {
        return s.process;
    }
    int seen = s.max_rank.load(std::memory_order_relaxed);
    while (rank > seen &&
           !s.max_rank.compare_exchange_weak(seen, rank, std::memory_order_relaxed)) {
    }
    return s.ranks[rank];
}

void bump(int rank) {
    HealthState& s = state();
    slot_for(rank).epoch.fetch_add(1, std::memory_order_relaxed);
    s.total_epoch.fetch_add(1, std::memory_order_relaxed);
}

// The calling thread's span stack, reachable two ways: thread_span_stack()
// creates it on first use (registry lock), while the raw pointer is
// constant-initialized TLS so the profiler's SIGPROF handler can read the
// current thread's stack without locking, allocating, or running a lazy
// initializer — an unregistered thread just reads null.
thread_local SpanStack* t_span_stack = nullptr;

SpanStack& thread_span_stack() {
    if (t_span_stack == nullptr) {
        auto* st = new SpanStack;
        HealthState& s = state();
        std::lock_guard<std::mutex> lock(s.stacks_mutex);
        s.stacks.push_back(st);
        t_span_stack = st;
    }
    return *t_span_stack;
}

// ---- JSON building --------------------------------------------------------

void json_escape(std::string& out, const std::string& in) {
    for (const char c : in) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char hex[8];
                    std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                    out += hex;
                } else {
                    out += c;
                }
        }
    }
}

void append_double(std::string& out, double v) {
    char num[64];
    std::snprintf(num, sizeof(num), "%.9g", v);
    out += num;
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

// ---- signal handlers ------------------------------------------------------

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
struct sigaction g_old_actions[std::size(kFatalSignals)];

const char* signal_name(int sig) {
    switch (sig) {
        case SIGSEGV: return "SIGSEGV";
        case SIGABRT: return "SIGABRT";
        case SIGBUS: return "SIGBUS";
        case SIGFPE: return "SIGFPE";
        case SIGILL: return "SIGILL";
    }
    return "signal";
}

void fatal_signal_handler(int sig) {
    // Best-effort: the dump takes locks and allocates, which is not
    // async-signal-safe, but on a crash path losing the dump is no worse
    // than never having one. The guard stops recursive faults.
    static std::atomic<bool> in_handler{false};
    if (!in_handler.exchange(true)) {
        dump_flight_record(std::string("signal:") + signal_name(sig));
    }
    // Restore the previous disposition (sanitizer handlers included) and
    // re-raise so the crash reports as it would have without us.
    for (std::size_t i = 0; i < std::size(kFatalSignals); ++i) {
        if (kFatalSignals[i] == sig) {
            sigaction(sig, &g_old_actions[i], nullptr);
        }
    }
    raise(sig);
}

void install_signal_handlers() {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = fatal_signal_handler;
    sigemptyset(&sa.sa_mask);
    for (std::size_t i = 0; i < std::size(kFatalSignals); ++i) {
        sigaction(kFatalSignals[i], &sa, &g_old_actions[i]);
    }
}

// ---- env arming -----------------------------------------------------------

/// start_watchdog minus the ensure_init() prologue, for use *inside* the
/// ensure_init call_once body: the public entry point re-enters
/// ensure_init, and std::call_once re-entered on its own flag from the
/// same thread deadlocks.
void start_watchdog_impl(WatchdogOptions opts);

/// One-time environment arming: BAT_WATCHDOG_SEC starts the monitor thread,
/// BAT_FLIGHT_RECORD_FILE installs crash handlers, BAT_REPORT_FILE
/// registers the exit-time report export. Called from every health entry
/// point; after the first call this is a single fenced load.
void ensure_init() {
    static std::once_flag once;
    std::call_once(once, [] {
        // Touch the statics the atexit hooks use so they are constructed
        // (and therefore destroyed) in a safe order relative to the hook.
        state();
        MetricsRegistry::global();
        const char* watchdog_env = std::getenv("BAT_WATCHDOG_SEC");
        const char* flight_env = std::getenv("BAT_FLIGHT_RECORD_FILE");
        const char* report_env = std::getenv("BAT_REPORT_FILE");
        if (flight_env != nullptr) {
            g_flight_armed.store(true, std::memory_order_relaxed);
            set_span_tracking(true);
            install_signal_handlers();
        }
        if (watchdog_env != nullptr) {
            const double sec = std::strtod(watchdog_env, nullptr);
            if (sec > 0) {
                WatchdogOptions opts;
                opts.interval = std::chrono::milliseconds(
                    static_cast<std::int64_t>(sec * 1000.0));
                start_watchdog_impl(std::move(opts));
            }
        }
        if (watchdog_env != nullptr || report_env != nullptr) {
            std::atexit([] {
                stop_watchdog();
                if (const char* path = std::getenv("BAT_REPORT_FILE")) {
                    write_run_report(path);
                }
            });
        }
    });
}

std::string flight_path_from_env() {
    if (const char* path = std::getenv("BAT_FLIGHT_RECORD_FILE")) {
        return path;
    }
    return {};
}

// ---- snapshots ------------------------------------------------------------

struct RankSnapshot {
    int rank;
    bool active;
    std::uint64_t epoch;
    std::string blocked_on;
};

/// Render a structured blocked-on record ("irecv", src, tag) to the text
/// shown in diagnoses. The op vocabulary is vmpi's; keeping the rendering
/// here means the wait path never touches strings.
std::string render_blocked(const char* op, int peer, int tag) {
    std::string out = op;
    if (std::strcmp(op, "ibarrier") == 0) {
        out += "(seq=" + std::to_string(tag) + ")";
        return out;
    }
    out += "(src=";
    out += peer < 0 ? std::string("ANY") : std::to_string(peer);
    out += ", tag=" + std::to_string(tag) + ")";
    return out;
}

std::vector<RankSnapshot> snapshot_ranks() {
    HealthState& s = state();
    std::vector<RankSnapshot> out;
    const int top = s.max_rank.load(std::memory_order_relaxed);
    for (int r = 0; r <= std::min(top, kMaxRanks - 1); ++r) {
        RankSnapshot snap;
        snap.rank = r;
        snap.active = s.ranks[r].active.load(std::memory_order_relaxed) > 0;
        snap.epoch = s.ranks[r].epoch.load(std::memory_order_relaxed);
        if (const char* op = s.ranks[r].block_op.load(std::memory_order_acquire)) {
            snap.blocked_on =
                render_blocked(op, s.ranks[r].block_peer.load(std::memory_order_relaxed),
                               s.ranks[r].block_tag.load(std::memory_order_relaxed));
        }
        out.push_back(std::move(snap));
    }
    return out;
}

/// Invoke every registered provider while holding the registry lock. The
/// lock is what makes unregister_diag_provider a synchronization point:
/// once it returns, the provider cannot be mid-call, so a subsystem may
/// unregister in its destructor and then tear down the state its provider
/// reads. Providers must therefore never block (try_lock only) and never
/// (un)register providers themselves.
template <typename Visit>
void for_each_provider(Visit visit) {
    HealthState& s = state();
    std::lock_guard<std::mutex> lock(s.providers_mutex);
    for (const DiagProvider& p : s.providers) {
        visit(p);
    }
}

// ---- stall diagnosis ------------------------------------------------------

StallReport build_stall_report(std::chrono::milliseconds stalled_for) {
    StallReport report;
    std::ostringstream os;
    const std::vector<RankSnapshot> ranks = snapshot_ranks();
    int active = 0;
    for (const RankSnapshot& r : ranks) {
        if (r.active) {
            ++active;
            report.stuck_ranks.push_back(r.rank);
        }
    }
    os << "bat watchdog: no progress for " << stalled_for.count() << " ms across "
       << active << " active rank(s)\n";
    for (const RankSnapshot& r : ranks) {
        if (!r.active) {
            continue;
        }
        os << "  rank " << r.rank << " stuck (epoch " << r.epoch << ")";
        if (!r.blocked_on.empty()) {
            os << ", blocked on " << r.blocked_on;
        }
        os << "\n";
    }
    const std::vector<ThreadSpanStack> stacks = snapshot_span_stacks();
    for (const ThreadSpanStack& st : stacks) {
        if (st.spans.empty()) {
            continue;
        }
        os << "  open spans (rank " << st.rank << "):";
        for (const std::string& span : st.spans) {
            os << " > " << span;
        }
        os << "\n";
    }
    for_each_provider([&os](const DiagProvider& p) {
        try {
            os << "  " << p.name << ": " << p.fn() << "\n";
        } catch (const std::exception& e) {
            os << "  " << p.name << ": <provider failed: " << e.what() << ">\n";
        }
    });
    report.text = os.str();
    return report;
}

void watchdog_loop(Watchdog* dog) {
    HealthState& s = state();
    std::uint64_t last_total = s.total_epoch.load(std::memory_order_relaxed);
    int stale = 0;
    bool tripped = false;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(dog->mutex);
            dog->cv.wait_for(lock, dog->opts.interval, [dog] { return dog->stop; });
            if (dog->stop) {
                return;
            }
        }
        const std::uint64_t total = s.total_epoch.load(std::memory_order_relaxed);
        int active = 0;
        const int top = s.max_rank.load(std::memory_order_relaxed);
        for (int r = 0; r <= std::min(top, kMaxRanks - 1); ++r) {
            if (s.ranks[r].active.load(std::memory_order_relaxed) > 0) {
                ++active;
            }
        }
        if (total != last_total || active == 0) {
            last_total = total;
            stale = 0;
            tripped = false;
            continue;
        }
        ++stale;
        if (stale < dog->opts.stale_intervals || tripped) {
            continue;
        }
        tripped = true;  // one diagnosis per stall; re-arm on progress
        s.trips.fetch_add(1, std::memory_order_relaxed);
        const auto stalled_for = dog->opts.interval * stale;
        const StallReport report = build_stall_report(
            std::chrono::duration_cast<std::chrono::milliseconds>(stalled_for));
        BAT_LOG_ERROR(report.text);
        std::filesystem::path path = dog->opts.flight_record_path;
        if (path.empty()) {
            path = flight_path_from_env();
        }
        if (!path.empty()) {
            dump_flight_record("watchdog", path);
        }
        if (dog->opts.on_stall) {
            dog->opts.on_stall(report);
        }
    }
}

void start_watchdog_impl(WatchdogOptions opts) {
    stop_watchdog();
    HealthState& s = state();
    std::lock_guard<std::mutex> lock(s.watchdog_mutex);
    auto* dog = new Watchdog;
    dog->opts = std::move(opts);
    s.trips.store(0, std::memory_order_relaxed);
    s.watchdog = dog;
    s.watchdog_on.store(true, std::memory_order_relaxed);
    s.watchdog_armed_ever.store(true, std::memory_order_relaxed);
    set_span_tracking(true);
    dog->thread = std::thread([dog] { watchdog_loop(dog); });
}

}  // namespace

// ---- progress epochs ------------------------------------------------------

void note_progress() { note_progress(thread_log_rank()); }

void note_progress(int rank) {
    ensure_init();
    bump(rank);
}

void note_send(int rank, std::uint64_t bytes) {
    ensure_init();
    HealthState& s = state();
    s.sends.fetch_add(1, std::memory_order_relaxed);
    s.send_bytes.fetch_add(bytes, std::memory_order_relaxed);
    bump(rank);
}

void note_recv(int rank, std::uint64_t bytes) {
    ensure_init();
    HealthState& s = state();
    s.recvs.fetch_add(1, std::memory_order_relaxed);
    s.recv_bytes.fetch_add(bytes, std::memory_order_relaxed);
    bump(rank);
}

void note_collective(int rank) {
    ensure_init();
    state().collectives.fetch_add(1, std::memory_order_relaxed);
    bump(rank);
}

void note_pool_task() {
    ensure_init();
    state().pool_tasks.fetch_add(1, std::memory_order_relaxed);
    bump(-1);
}

void note_leaves_served(int rank, std::uint64_t leaves) {
    ensure_init();
    state().leaves_served.fetch_add(leaves, std::memory_order_relaxed);
    bump(rank);
}

void rank_begin(int rank) {
    ensure_init();
    slot_for(rank).active.fetch_add(1, std::memory_order_relaxed);
    bump(rank);
}

void rank_end(int rank) {
    slot_for(rank).active.fetch_sub(1, std::memory_order_relaxed);
    clear_blocked_op(rank);
    bump(rank);
}

bool health_armed() {
    return g_flight_armed.load(std::memory_order_relaxed) ||
           state().watchdog_on.load(std::memory_order_relaxed);
}

void set_blocked_op(int rank, const char* op, int peer, int tag) {
    if (rank < 0 || rank >= kMaxRanks) {
        return;
    }
    RankSlot& slot = state().ranks[rank];
    slot.block_peer.store(peer, std::memory_order_relaxed);
    slot.block_tag.store(tag, std::memory_order_relaxed);
    slot.block_op.store(op, std::memory_order_release);
}

void clear_blocked_op(int rank) {
    if (rank < 0 || rank >= kMaxRanks) {
        return;
    }
    state().ranks[rank].block_op.store(nullptr, std::memory_order_relaxed);
}

// ---- run report -----------------------------------------------------------

void record_rank_value(const char* name, std::uint64_t value) {
    ensure_init();
    HealthState& s = state();
    const int rank = thread_log_rank();
    std::lock_guard<std::mutex> lock(s.values_mutex);
    s.rank_values[name][rank] += value;
}

std::string run_report_json() {
    ensure_init();
    HealthState& s = state();
    std::string out;
    out.reserve(1 << 14);
    out += "{\"schema\":\"bat-report-v1\",\n\"run\":{\"wall_seconds\":";
    append_double(out, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - s.start)
                           .count());
    out += ",\"ranks\":";
    out += std::to_string(s.max_rank.load(std::memory_order_relaxed) + 1);
    out += ",\"pid\":";
    out += std::to_string(static_cast<long>(::getpid()));
    out += ",\"watchdog\":{\"armed\":";
    out += s.watchdog_armed_ever.load(std::memory_order_relaxed) ? "true" : "false";
    out += ",\"trips\":";
    append_u64(out, s.trips.load(std::memory_order_relaxed));
    out += "}},\n";

    // Per-phase wall times with per-rank min/mean/max — the imbalance view.
    // Seconds come from the same PhaseSpan accumulation that fills
    // WritePhaseTimings / ReadPhaseTimings, so the two agree exactly.
    out += "\"phases\":{";
    {
        std::map<std::string, std::map<int, PhaseAcc>> phases;
        {
            std::lock_guard<std::mutex> lock(s.phases_mutex);
            phases = s.phases;
        }
        bool first = true;
        for (const auto& [name, per_rank] : phases) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "  \"";
            json_escape(out, name);
            out += "\":{";
            double sum = 0;
            double min = 1e300;
            double max = 0;
            std::uint64_t calls = 0;
            for (const auto& [rank, acc] : per_rank) {
                (void)rank;
                sum += acc.seconds;
                min = std::min(min, acc.seconds);
                max = std::max(max, acc.seconds);
                calls += acc.calls;
            }
            const auto nranks = static_cast<double>(per_rank.size());
            out += "\"calls\":";
            append_u64(out, calls);
            out += ",\"ranks\":";
            out += std::to_string(per_rank.size());
            out += ",\"seconds\":";
            append_double(out, sum);
            out += ",\"min_s\":";
            append_double(out, per_rank.empty() ? 0 : min);
            out += ",\"mean_s\":";
            append_double(out, per_rank.empty() ? 0 : sum / nranks);
            out += ",\"max_s\":";
            append_double(out, max);
            out += "}";
        }
        out += first ? "},\n" : "\n},\n";
    }

    // Per-rank I/O volumes (record_rank_value), same min/mean/max shape.
    out += "\"io\":{";
    {
        std::map<std::string, std::map<int, std::uint64_t>> values;
        {
            std::lock_guard<std::mutex> lock(s.values_mutex);
            values = s.rank_values;
        }
        bool first = true;
        for (const auto& [name, per_rank] : values) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "  \"";
            json_escape(out, name);
            out += "\":{";
            std::uint64_t sum = 0;
            std::uint64_t min = ~std::uint64_t{0};
            std::uint64_t max = 0;
            for (const auto& [rank, v] : per_rank) {
                (void)rank;
                sum += v;
                min = std::min(min, v);
                max = std::max(max, v);
            }
            out += "\"total\":";
            append_u64(out, sum);
            out += ",\"ranks\":";
            out += std::to_string(per_rank.size());
            out += ",\"min\":";
            append_u64(out, per_rank.empty() ? 0 : min);
            out += ",\"mean\":";
            append_double(out, per_rank.empty()
                                   ? 0
                                   : static_cast<double>(sum) /
                                         static_cast<double>(per_rank.size()));
            out += ",\"max\":";
            append_u64(out, max);
            out += "}";
        }
        out += first ? "},\n" : "\n},\n";
    }

    out += "\"messages\":{\"sends\":";
    append_u64(out, s.sends.load(std::memory_order_relaxed));
    out += ",\"send_bytes\":";
    append_u64(out, s.send_bytes.load(std::memory_order_relaxed));
    out += ",\"recvs\":";
    append_u64(out, s.recvs.load(std::memory_order_relaxed));
    out += ",\"recv_bytes\":";
    append_u64(out, s.recv_bytes.load(std::memory_order_relaxed));
    out += ",\"collectives\":";
    append_u64(out, s.collectives.load(std::memory_order_relaxed));
    out += ",\"leaves_served\":";
    append_u64(out, s.leaves_served.load(std::memory_order_relaxed));
    out += "},\n";

    out += "\"pool\":{\"tasks\":";
    append_u64(out, s.pool_tasks.load(std::memory_order_relaxed));
    out += "},\n";

    // Cache hit rate from the obs counters the leaf cache records.
    const auto counters = MetricsRegistry::global().counter_values();
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto& [name, v] : counters) {
        if (name == "read.leaf_cache_hit") {
            hits = v;
        } else if (name == "read.leaf_cache_miss") {
            misses = v;
        }
    }
    out += "\"cache\":{\"hits\":";
    append_u64(out, hits);
    out += ",\"misses\":";
    append_u64(out, misses);
    out += ",\"hit_rate\":";
    append_double(out, hits + misses == 0
                           ? 0
                           : static_cast<double>(hits) /
                                 static_cast<double>(hits + misses));
    out += "},\n";

    out += "\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : counters) {
        out += first ? "" : ",";
        first = false;
        out += "\"";
        json_escape(out, name);
        out += "\":";
        append_u64(out, v);
    }
    out += "},\n\"gauges\":{";
    first = true;
    for (const auto& [name, v] : MetricsRegistry::global().gauge_values()) {
        out += first ? "" : ",";
        first = false;
        out += "\"";
        json_escape(out, name);
        out += "\":";
        append_double(out, v);
    }
    out += "},\n\"histograms\":{";
    first = true;
    for (const auto& h : MetricsRegistry::global().histogram_snapshots()) {
        out += first ? "" : ",";
        first = false;
        out += "\"";
        json_escape(out, h.name);
        out += "\":{\"count\":";
        append_u64(out, h.count);
        out += ",\"mean\":";
        append_double(out, h.mean);
        out += ",\"min\":";
        append_double(out, h.min);
        out += ",\"max\":";
        append_double(out, h.max);
        out += ",\"p50\":";
        append_double(out, h.p50);
        out += ",\"p90\":";
        append_double(out, h.p90);
        out += ",\"p99\":";
        append_double(out, h.p99);
        out += "}";
    }
    out += "}\n}\n";
    return out;
}

bool write_run_report(const std::filesystem::path& path) {
    const std::string expanded = expand_output_path(path.string());
    std::ofstream f(expanded, std::ios::binary | std::ios::trunc);
    if (!f) {
        BAT_LOG_ERROR("run report: cannot open " << expanded);
        return false;
    }
    const std::string json = run_report_json();
    f.write(json.data(), static_cast<std::streamsize>(json.size()));
    BAT_LOG_INFO("run report written to " << expanded << " (" << json.size()
                                          << " bytes)");
    return true;
}

void reset_run_report() {
    HealthState& s = state();
    {
        std::lock_guard<std::mutex> lock(s.phases_mutex);
        s.phases.clear();
    }
    {
        std::lock_guard<std::mutex> lock(s.values_mutex);
        s.rank_values.clear();
    }
    s.sends.store(0, std::memory_order_relaxed);
    s.send_bytes.store(0, std::memory_order_relaxed);
    s.recvs.store(0, std::memory_order_relaxed);
    s.recv_bytes.store(0, std::memory_order_relaxed);
    s.collectives.store(0, std::memory_order_relaxed);
    s.leaves_served.store(0, std::memory_order_relaxed);
    s.pool_tasks.store(0, std::memory_order_relaxed);
    s.trips.store(0, std::memory_order_relaxed);
    s.watchdog_armed_ever.store(s.watchdog_on.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    s.start = std::chrono::steady_clock::now();
}

// ---- watchdog -------------------------------------------------------------

void start_watchdog(WatchdogOptions opts) {
    ensure_init();
    start_watchdog_impl(std::move(opts));
}

void stop_watchdog() {
    HealthState& s = state();
    Watchdog* dog = nullptr;
    {
        std::lock_guard<std::mutex> lock(s.watchdog_mutex);
        dog = s.watchdog;
        s.watchdog = nullptr;
        s.watchdog_on.store(false, std::memory_order_relaxed);
        // Span tracking is shared: the flight recorder and the sampling
        // profiler both depend on it staying on past watchdog shutdown.
        if (!g_flight_armed.load(std::memory_order_relaxed) && !profiler_running()) {
            set_span_tracking(false);
        }
    }
    if (dog == nullptr) {
        return;
    }
    {
        std::lock_guard<std::mutex> lock(dog->mutex);
        dog->stop = true;
    }
    dog->cv.notify_all();
    dog->thread.join();
    delete dog;
}

bool watchdog_running() {
    return state().watchdog_on.load(std::memory_order_relaxed);
}

std::uint64_t watchdog_trips() {
    return state().trips.load(std::memory_order_relaxed);
}

// ---- flight recorder ------------------------------------------------------

std::string flight_record_json(const std::string& reason) {
    ensure_init();
    HealthState& s = state();
    std::string out;
    out.reserve(1 << 14);
    out += "{\"schema\":\"bat-flight-v1\",\"reason\":\"";
    json_escape(out, reason);
    out += "\",\"pid\":";
    out += std::to_string(static_cast<long>(::getpid()));
    out += ",\"wall_seconds\":";
    append_double(out, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - s.start)
                           .count());
    out += ",\"watchdog_trips\":";
    append_u64(out, s.trips.load(std::memory_order_relaxed));
    out += ",\n\"stuck_ranks\":[";
    const std::vector<RankSnapshot> ranks = snapshot_ranks();
    bool first = true;
    for (const RankSnapshot& r : ranks) {
        if (!r.active) {
            continue;
        }
        out += first ? "" : ",";
        first = false;
        out += std::to_string(r.rank);
    }
    out += "],\n\"ranks\":[";
    first = true;
    for (const RankSnapshot& r : ranks) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  {\"rank\":";
        out += std::to_string(r.rank);
        out += ",\"active\":";
        out += r.active ? "true" : "false";
        out += ",\"epoch\":";
        append_u64(out, r.epoch);
        out += ",\"blocked_on\":\"";
        json_escape(out, r.blocked_on);
        out += "\"}";
    }
    out += first ? "],\n" : "\n],\n";

    out += "\"threads\":[";
    first = true;
    for (const ThreadSpanStack& st : snapshot_span_stacks()) {
        if (st.spans.empty()) {
            continue;
        }
        out += first ? "\n" : ",\n";
        first = false;
        out += "  {\"rank\":";
        out += std::to_string(st.rank);
        out += ",\"spans\":[";
        for (std::size_t i = 0; i < st.spans.size(); ++i) {
            out += i == 0 ? "\"" : ",\"";
            json_escape(out, st.spans[i]);
            out += "\"";
        }
        out += "]}";
    }
    out += first ? "],\n" : "\n],\n";

    out += "\"subsystems\":[";
    first = true;
    for_each_provider([&out, &first](const DiagProvider& p) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  {\"name\":\"";
        json_escape(out, p.name);
        out += "\",\"state\":";
        try {
            out += p.fn();
        } catch (const std::exception& e) {
            out += "{\"error\":\"";
            json_escape(out, e.what());
            out += "\"}";
        }
        out += "}";
    });
    out += first ? "],\n" : "\n],\n";

    // Tail of each thread's trace ring (empty array when tracing never ran).
    out += "\"trace_tail\":";
    out += trace_tail_json(256);
    out += ",\n\"metrics\":";
    out += MetricsRegistry::global().to_json();
    out += "}\n";
    return out;
}

bool dump_flight_record(const std::string& reason, const std::filesystem::path& path) {
    std::string target = path.string();
    if (target.empty()) {
        target = flight_path_from_env();
    }
    if (target.empty()) {
        return false;
    }
    const std::string expanded = expand_output_path(target);
    std::ofstream f(expanded, std::ios::binary | std::ios::trunc);
    if (!f) {
        BAT_LOG_ERROR("flight record: cannot open " << expanded);
        return false;
    }
    const std::string json = flight_record_json(reason);
    f.write(json.data(), static_cast<std::streamsize>(json.size()));
    f.flush();
    BAT_LOG_WARN("flight record (" << reason << ") written to " << expanded);
    return true;
}

// ---- diag providers -------------------------------------------------------

std::uint64_t register_diag_provider(std::string name, std::function<std::string()> fn) {
    HealthState& s = state();
    std::lock_guard<std::mutex> lock(s.providers_mutex);
    const std::uint64_t id = s.next_provider_id++;
    s.providers.push_back(DiagProvider{id, std::move(name), std::move(fn)});
    return id;
}

void unregister_diag_provider(std::uint64_t id) {
    HealthState& s = state();
    std::lock_guard<std::mutex> lock(s.providers_mutex);
    s.providers.erase(std::remove_if(s.providers.begin(), s.providers.end(),
                                     [id](const DiagProvider& p) { return p.id == id; }),
                      s.providers.end());
}

// ---- span stacks ----------------------------------------------------------

bool span_tracking_enabled() {
    return g_span_tracking.load(std::memory_order_relaxed);
}

void set_span_tracking(bool on) {
    g_span_tracking.store(on, std::memory_order_relaxed);
}

std::vector<ThreadSpanStack> snapshot_span_stacks() {
    HealthState& s = state();
    std::vector<SpanStack*> stacks;
    {
        std::lock_guard<std::mutex> lock(s.stacks_mutex);
        stacks = s.stacks;
    }
    std::vector<ThreadSpanStack> out;
    for (const SpanStack* st : stacks) {
        const int depth =
            std::min(st->depth.load(std::memory_order_acquire), SpanStack::kMaxDepth);
        if (depth <= 0) {
            continue;
        }
        ThreadSpanStack snap;
        snap.rank = st->rank.load(std::memory_order_relaxed);
        for (int i = 0; i < depth; ++i) {
            if (const char* name = st->names[i].load(std::memory_order_relaxed)) {
                snap.spans.emplace_back(name);
            }
        }
        out.push_back(std::move(snap));
    }
    return out;
}

namespace health_detail {

void push_span(const char* name) {
    SpanStack& st = thread_span_stack();
    const int d = st.depth.load(std::memory_order_relaxed);
    if (d < SpanStack::kMaxDepth) {
        st.names[d].store(name, std::memory_order_relaxed);
    }
    st.rank.store(thread_log_rank(), std::memory_order_relaxed);
    st.depth.store(d + 1, std::memory_order_release);
}

void pop_span() {
    SpanStack& st = thread_span_stack();
    const int d = st.depth.load(std::memory_order_relaxed);
    if (d > 0) {
        st.depth.store(d - 1, std::memory_order_release);
    }
}

void ensure_span_stack() { thread_span_stack(); }

int read_own_span_stack(const char** out, int max) {
    const SpanStack* st = t_span_stack;
    if (st == nullptr || max <= 0) {
        return 0;
    }
    int depth = st->depth.load(std::memory_order_acquire);
    depth = std::min({depth, SpanStack::kMaxDepth, max});
    int n = 0;
    for (int i = 0; i < depth; ++i) {
        if (const char* name = st->names[i].load(std::memory_order_relaxed)) {
            out[n++] = name;
        }
    }
    return n;
}

const char* innermost_span() {
    const SpanStack* st = t_span_stack;
    if (st == nullptr) {
        return nullptr;
    }
    const int depth =
        std::min(st->depth.load(std::memory_order_acquire), SpanStack::kMaxDepth);
    if (depth <= 0) {
        return nullptr;
    }
    return st->names[depth - 1].load(std::memory_order_relaxed);
}

void record_phase(const char* name, double seconds) {
    ensure_init();
    HealthState& s = state();
    const int rank = thread_log_rank();
    {
        std::lock_guard<std::mutex> lock(s.phases_mutex);
        PhaseAcc& acc = s.phases[name][rank];
        acc.seconds += seconds;
        acc.calls += 1;
    }
    // A phase completing is progress (covers compute-only phases that send
    // no messages, e.g. a long local tree build).
    bump(rank);
}

}  // namespace health_detail

}  // namespace bat::obs
