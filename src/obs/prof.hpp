#pragma once
// Always-on sampling CPU profiler (docs/OBSERVABILITY.md). Spans (trace.hpp)
// and the run report (health.hpp) say where wall time elapsed; this layer
// says where CPU burned, attributed through the same obs context: each
// sample captures the thread's rank, its open-span stack, and the active
// QueryContext, so samples roll up by phase, by query trace id, and — via
// the thread pool's origin-span propagation — by pool-task origin even
// under comm-thread work-helping.
//
// Mechanics: one POSIX per-thread CPU-clock timer per registered thread
// (pthread_getcpuclockid + timer_create(SIGEV_THREAD_ID)) delivers SIGPROF
// at BAT_PROF_HZ only while the thread consumes CPU — blocked threads cost
// and produce nothing. The handler is async-signal-safe: it copies the
// thread-local attribution context into a preallocated per-thread SPSC ring
// (no malloc, no locks). A drain thread folds rings into collapsed-stack
// aggregates, which export as one bat-prof-v1 JSON document and surface in
// flight records / watchdog stall diagnoses through a "prof" diag provider
// (a stuck-rank report includes the profile tail). tools/prof_report
// renders top-k attributions, per-rank imbalance, flamegraph-compatible
// collapsed output, and before/after regression diffs.
//
// Arming: BAT_PROF_HZ=N starts the profiler at process startup (first obs
// registration); BAT_PROF_FILE writes the profile at exit ("%p" expands to
// the pid); BAT_PROF_RING overrides per-thread ring capacity;
// BAT_PROF_NATIVE=1 additionally captures raw native frames via backtrace.
// Default off; overhead when armed at 97 Hz is gated <= 5% end to end by
// bench/obs_overhead + tools/bench_check.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace bat::obs {

struct ProfOptions {
    /// Samples per second of *CPU time* per thread; clamped to [1, 1000].
    double hz = 97.0;
    /// Per-thread ring capacity in samples; overflow increments a dropped
    /// counter instead of blocking or allocating in the handler.
    std::size_t ring_slots = 4096;
    /// Also capture raw native return addresses via backtrace(3) in the
    /// handler. glibc's backtrace is not formally async-signal-safe (the
    /// first call may allocate), so it is warmed at start and off by
    /// default; span-stack labels are the primary attribution.
    bool native_frames = false;
    /// How often the drain thread folds the per-thread rings.
    std::chrono::milliseconds drain_interval{100};
};

/// False on platforms without per-thread CPU-clock timers; start_profiler
/// then warns and returns false, everything else degrades to no-ops.
bool profiler_supported();
bool profiler_running();

/// Start sampling (idempotent: a running profiler is stopped first). Also
/// registers the calling thread and enables span-stack tracking. Returns
/// false when unsupported.
bool start_profiler(ProfOptions opts = {});

/// Disarm every timer, join the drain thread, and fold any remaining
/// samples. Aggregates survive for export; no-op when not running.
void stop_profiler();

/// Drop every aggregate and pending ring sample (tests, benchmark warmup).
/// The profiler keeps running if it was running.
void reset_profiler();

/// Register the calling thread for sampling under `kind` ("rank", "pool",
/// "main"); cheap when the profiler is off, arms a timer immediately when
/// running. Idempotent per thread (the first kind wins). The vmpi runtime
/// and thread pool register their threads; register manually only for
/// threads outside those.
void prof_register_thread(const char* kind);
/// Disarm + retire the calling thread's sampling state; pending samples are
/// folded by the next drain. Must be called on the registered thread.
void prof_unregister_thread();

struct ProfTotals {
    std::uint64_t samples = 0;     // folded samples
    std::uint64_t attributed = 0;  // samples with a non-empty span stack
    std::uint64_t dropped = 0;     // lost to ring overflow
    double hz = 0.0;
    double wall_seconds = 0.0;  // cumulative armed wall time
};
/// Totals after folding the current rings.
ProfTotals prof_totals();

struct ProfStackCount {
    int rank = -1;                    // thread_log_rank at sample time
    std::vector<std::string> frames;  // span labels, outermost first
    std::uint64_t samples = 0;
};
/// Collapsed-stack aggregate after folding the current rings.
std::vector<ProfStackCount> prof_stack_counts();

struct ProfQueryCount {
    std::uint64_t trace_id = 0;
    std::uint64_t samples = 0;
};
/// Per-query rollup (samples taken while a QueryContext was installed).
std::vector<ProfQueryCount> prof_query_counts();

/// Render the bat-prof-v1 JSON document (drains first; callable while
/// running or after stop).
std::string profile_json();

/// Write profile_json() to `path`, or to BAT_PROF_FILE when `path` is empty
/// ("%p" expands to the pid via expand_output_path). Returns false when no
/// destination is configured or the write failed.
bool write_profile(const std::filesystem::path& path = {});

// ---- profile diffing (tools/prof_report --diff) ----------------------------

struct ProfDiffEntry {
    std::string stack;        // frames joined with ';', ranks merged
    double before_share = 0;  // percent of attributed samples
    double after_share = 0;
    double delta = 0;  // after - before, percentage points
};

struct ProfDiff {
    std::uint64_t before_samples = 0;
    std::uint64_t after_samples = 0;
    std::vector<ProfDiffEntry> entries;  // sorted by |delta| descending
    std::vector<ProfDiffEntry> flagged;  // |delta| >= threshold_pts
};

/// Compare two parsed bat-prof-v1 documents by per-stack share of
/// attributed samples. Shares are rank-merged so a diff is stable across
/// rank-count changes; `threshold_pts` is in percentage points.
ProfDiff prof_diff(const json::Value& before, const json::Value& after,
                   double threshold_pts);

}  // namespace bat::obs
