#pragma once
// Shared expansion for observability output-path templates. Every BAT_*
// export knob (BAT_TRACE_FILE, BAT_METRICS_FILE, BAT_REPORT_FILE,
// BAT_QUERY_LOG, BAT_FLIGHT_RECORD_FILE, BAT_SCHED_TRACE_FILE,
// BAT_PROF_FILE) accepts the same template vocabulary, so concurrent test
// processes sharing one environment write to distinct files.

#include <string>

namespace bat::obs {

/// Expand "%p" in an output path template to the process id. Unknown "%x"
/// sequences (and a trailing lone '%') pass through unchanged.
std::string expand_output_path(const std::string& path_template);

}  // namespace bat::obs
