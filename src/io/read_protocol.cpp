#include "io/read_protocol.hpp"

#include <utility>

#include "core/particles.hpp"
#include "obs/trace.hpp"
#include "sched/sched.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"

namespace bat::io_detail {

namespace {

void write_query(BufferWriter& w, const BatQuery& query) {
    w.write(static_cast<std::uint8_t>(query.box.has_value()));
    if (query.box) {
        w.write(query.box->lower.x);
        w.write(query.box->lower.y);
        w.write(query.box->lower.z);
        w.write(query.box->upper.x);
        w.write(query.box->upper.y);
        w.write(query.box->upper.z);
    }
    w.write(static_cast<std::uint32_t>(query.attr_filters.size()));
    for (const AttrFilter& f : query.attr_filters) {
        w.write(f.attr);
        w.write(f.lo);
        w.write(f.hi);
    }
    w.write(query.quality_lo);
    w.write(query.quality_hi);
    w.write(static_cast<std::uint8_t>(query.inclusive_upper));
}

BatQuery read_query(BufferReader& r) {
    BatQuery query;
    if (r.read<std::uint8_t>() != 0) {
        Box box;
        box.lower.x = r.read<float>();
        box.lower.y = r.read<float>();
        box.lower.z = r.read<float>();
        box.upper.x = r.read<float>();
        box.upper.y = r.read<float>();
        box.upper.z = r.read<float>();
        query.box = box;
    }
    query.attr_filters.resize(r.read<std::uint32_t>());
    for (AttrFilter& f : query.attr_filters) {
        f.attr = r.read<std::uint32_t>();
        f.lo = r.read<double>();
        f.hi = r.read<double>();
    }
    query.quality_lo = r.read<float>();
    query.quality_hi = r.read<float>();
    query.inclusive_upper = r.read<std::uint8_t>() != 0;
    return query;
}

}  // namespace

vmpi::Bytes encode_request(const LeafRequest& req) {
    BufferWriter w;
    w.write(req.seq);
    w.write(req.ctx.trace_id);
    w.write(req.ctx.origin_rank);
    w.write(req.ctx.seq);
    w.write(static_cast<std::uint32_t>(req.leaves.size()));
    w.write_span(std::span<const std::int32_t>(req.leaves));
    write_query(w, req.query);
    return w.take();
}

LeafRequest decode_request(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    LeafRequest req;
    req.seq = r.read<std::uint32_t>();
    req.ctx.trace_id = r.read<std::uint64_t>();
    req.ctx.origin_rank = r.read<std::int32_t>();
    req.ctx.seq = r.read<std::uint32_t>();
    req.leaves.resize(r.read<std::uint32_t>());
    r.read_into(std::span<std::int32_t>(req.leaves));
    req.query = read_query(r);
    BAT_CHECK_MSG(r.remaining() == 0, "trailing bytes in leaf request");
    return req;
}

vmpi::Bytes encode_response(std::uint32_t seq, std::span<const vmpi::Bytes> parts) {
    std::size_t payload = 0;
    for (const vmpi::Bytes& part : parts) {
        payload += part.size();
    }
    BufferWriter w(sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) * parts.size() +
                   payload);
    w.write(seq);
    w.write(static_cast<std::uint32_t>(parts.size()));
    for (const vmpi::Bytes& part : parts) {
        w.write(static_cast<std::uint64_t>(part.size()));
    }
    for (const vmpi::Bytes& part : parts) {
        w.write_span(std::span<const std::byte>(part));
    }
    return w.take();
}

ResponseView decode_response(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    ResponseView view;
    view.seq = r.read<std::uint32_t>();
    const auto num_parts = r.read<std::uint32_t>();
    std::vector<std::uint64_t> lengths(num_parts);
    r.read_into(std::span<std::uint64_t>(lengths));
    view.parts.reserve(num_parts);
    std::size_t at = r.pos();
    for (const std::uint64_t len : lengths) {
        BAT_CHECK_MSG(at + len <= bytes.size(), "response part past the payload");
        view.parts.push_back(bytes.subspan(at, len));
        at += len;
    }
    BAT_CHECK_MSG(at == bytes.size(), "trailing bytes in leaf response");
    return view;
}

std::uint32_t peek_response_seq(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    return r.read<std::uint32_t>();
}

void merge_responses(ParticleSet& out, std::span<const vmpi::Bytes> payloads) {
    if (sched::maybe_active()) {
        // The merged result buffer is rank-local by design; the annotation
        // catches any future schedule where two threads merge into one set.
        sched::note_access(&out, "read.merged_particles", /*is_write=*/true);
    }
    std::vector<ResponseView> views;
    views.reserve(payloads.size());
    std::uint64_t total = 0;
    for (const vmpi::Bytes& payload : payloads) {
        views.push_back(decode_response(payload));
        for (const std::span<const std::byte> part : views.back().parts) {
            if (part.empty()) {
                continue;
            }
            // Each part leads with its u64 particle count (ParticleSet wire
            // format); summing them lets us size the result once.
            total += BufferReader(part).read<std::uint64_t>();
        }
    }
    std::size_t at = out.count();
    out.resize(at + total);
    for (const ResponseView& view : views) {
        for (const std::span<const std::byte> part : view.parts) {
            if (part.empty()) {
                continue;
            }
            at += out.deserialize_into(part, at);
        }
    }
}

LeafServer::LeafServer(vmpi::Comm& comm, int request_tag, int response_tag,
                       ThreadPool* pool, ServeLeafFn serve_leaf)
    : comm_(comm),
      request_tag_(request_tag),
      response_tag_(response_tag),
      pool_(pool != nullptr && pool->num_threads() > 0 ? pool : nullptr),
      serve_leaf_(std::move(serve_leaf)) {
    if (pool_ != nullptr) {
        group_.emplace(*pool_);
    }
}

void LeafServer::start_job(int src, const vmpi::Bytes& payload) {
    LeafRequest req = decode_request(payload);
    auto job = std::make_unique<Job>();
    job->src = src;
    job->seq = req.seq;
    job->leaves = std::move(req.leaves);
    job->query = std::move(req.query);
    job->ctx = req.ctx;
    const std::size_t n = job->leaves.size();
    job->parts.resize(n);
    job->remaining.store(n, std::memory_order_relaxed);
    ++requests_served_;
    leaves_served_ += n;
    // Accepting a request is progress even while the leaf jobs are still in
    // flight — a serving rank stuck behind a slow peer stays "live".
    obs::note_leaves_served(comm_.rank(), n);
    const int serve_rank = comm_.rank();
    Job* j = job.get();
    jobs_.push_back(std::move(job));
    // The serving rank adopts the originating query's identity for each leaf
    // evaluation: the scope here makes ThreadPool capture it at enqueue, and
    // the scope inside the task covers inline and work-helping execution.
    obs::QueryScope enqueue_scope(j->ctx);
    for (std::size_t i = 0; i < n; ++i) {
        auto task = [this, j, i, serve_rank] {
            obs::QueryScope qscope(j->ctx);
            const bool traced = obs::trace_enabled();
            if (traced) {
                if (j->ctx.valid()) {
                    obs::emit_begin_arg("read.serve_leaf", "read", "qtrace",
                                        static_cast<std::int64_t>(j->ctx.trace_id));
                } else {
                    obs::emit_begin("read.serve_leaf", "read");
                }
            }
            const bool tracked = obs::span_tracking_enabled();
            if (tracked) {
                obs::health_detail::push_span("read.serve_leaf");
            }
            std::uint64_t hits0 = 0;
            std::uint64_t misses0 = 0;
            obs::query_thread_cache_counts(&hits0, &misses0);
            const std::uint64_t t0 = obs::trace_now_ns();
            try {
                j->parts[i] = serve_leaf_(j->leaves[i], j->query);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mutex_);
                if (!first_error_) {
                    first_error_ = std::current_exception();
                }
            }
            const std::uint64_t t1 = obs::trace_now_ns();
            if (tracked) {
                obs::health_detail::pop_span();
            }
            if (traced) {
                obs::emit_end("read.serve_leaf", "read");
            }
            if (j->ctx.valid()) {
                std::uint64_t hits1 = 0;
                std::uint64_t misses1 = 0;
                obs::query_thread_cache_counts(&hits1, &misses1);
                obs::QueryServeSpan span;
                span.trace_id = j->ctx.trace_id;
                span.origin_rank = j->ctx.origin_rank;
                span.query_seq = j->ctx.seq;
                span.serve_rank = serve_rank;
                span.leaf = j->leaves[i];
                span.start_ns = t0;
                span.dur_ns = t1 - t0;
                span.bytes = j->parts[i].size();
                span.cache_hit = hits1 > hits0 && misses1 == misses0;
                // Recorded before the release decrement below: once the
                // origin has this job's response, the span is visible in the
                // process-wide ring — query_finalize never races it.
                obs::query_record_serve_span(span);
            }
            // Release pairs with the acquire load in send_ready(): the comm
            // thread must see the finished part bytes.
            j->remaining.fetch_sub(1, std::memory_order_release);
        };
        if (group_) {
            group_->run(std::move(task));
        } else {
            task();
        }
    }
}

bool LeafServer::send_ready() {
    bool sent = false;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
        Job& job = **it;
        if (job.remaining.load(std::memory_order_acquire) != 0) {
            ++it;
            continue;
        }
        vmpi::Bytes response = encode_response(job.seq, job.parts);
        bytes_shipped_ += response.size();
        comm_.isend(job.src, response_tag_, std::move(response));
        it = jobs_.erase(it);
        sent = true;
    }
    return sent;
}

bool LeafServer::progress() {
    bool progressed = false;
    int src = -1;
    while (comm_.iprobe(vmpi::kAnySource, request_tag_, &src)) {
        progressed = true;
        start_job(src, comm_.recv(src, request_tag_));
    }
    if (send_ready()) {
        progressed = true;
    }
    return progressed;
}

bool LeafServer::help() {
    return pool_ != nullptr && pool_->try_run_one();
}

void LeafServer::finish() {
    if (group_) {
        group_->wait();
    }
    send_ready();
    BAT_CHECK_MSG(jobs_.empty(), "LeafServer finished with unsent responses");
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(err_mutex_);
        std::swap(err, first_error_);
    }
    if (err) {
        std::rethrow_exception(err);
    }
}

}  // namespace bat::io_detail
