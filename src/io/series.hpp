#pragma once
// Time-series management. Simulations write one BAT data set per dump
// timestep (paper §VI evaluates whole time series); the SeriesWriter wraps
// the per-timestep pipeline and maintains a manifest file mapping timestep
// numbers to metadata files, which SeriesReader uses to open any timestep
// as a Dataset for postprocess analysis.

#include <filesystem>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "io/writer.hpp"

namespace bat {

/// Manifest of a written time series.
struct TimeSeries {
    /// (timestep, metadata file name relative to the manifest's directory),
    /// ascending by timestep.
    std::vector<std::pair<int, std::string>> timesteps;

    std::vector<std::byte> to_bytes() const;
    static TimeSeries from_bytes(std::span<const std::byte> bytes);
    void save(const std::filesystem::path& path) const;
    static TimeSeries load(const std::filesystem::path& path);

    /// Index of the entry with the given timestep; throws if absent.
    std::size_t index_of(int timestep) const;
};

/// Collective writer for a simulation's dump loop. Writes are incremental
/// by default (base.delta): the writer carries a WritePlan across steps so
/// slowly-evolving series reuse the aggregation tree and write unchanged
/// treelets as references into prior steps' files, with every
/// base.delta.keyframe_interval-th step forced to a full (all-inline)
/// write to bound delta chains.
class SeriesWriter {
public:
    /// `base.basename` becomes the series name; per-timestep outputs are
    /// named `<basename>_t<timestep>`.
    explicit SeriesWriter(WriterConfig base);

    /// Collective: write one timestep (same contract as write_particles).
    WriteResult write_timestep(vmpi::Comm& comm, int timestep, const ParticleSet& local,
                               const Box& local_bounds);

    /// Collective: write the series manifest (rank 0) and return its path.
    /// The manifest's size is accounted into the write.bytes_written and
    /// write.manifest_bytes metrics (everything the series puts on disk is
    /// measured).
    std::filesystem::path finalize(vmpi::Comm& comm) const;

    const TimeSeries& series() const { return series_; }
    const std::filesystem::path& manifest_path() const { return manifest_path_; }
    /// Bytes the manifest occupied when finalize last wrote it (rank 0).
    std::uint64_t manifest_bytes() const { return manifest_bytes_; }

private:
    WriterConfig base_;
    TimeSeries series_;
    std::filesystem::path manifest_path_;
    WritePlan plan_;
    std::size_t steps_written_ = 0;
    mutable std::uint64_t manifest_bytes_ = 0;
};

/// Postprocess-side access to a written series.
class SeriesReader {
public:
    explicit SeriesReader(const std::filesystem::path& manifest_path);

    const TimeSeries& series() const { return series_; }
    std::size_t num_timesteps() const { return series_.timesteps.size(); }
    int timestep_at(std::size_t index) const { return series_.timesteps[index].first; }

    /// Open the data set for the entry at `index`.
    Dataset open(std::size_t index) const;
    /// Open the data set for a specific timestep number.
    Dataset open_timestep(int timestep) const;

private:
    std::filesystem::path dir_;
    TimeSeries series_;
};

}  // namespace bat
