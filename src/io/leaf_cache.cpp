#include "io/leaf_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "sched/sched.hpp"
#include "util/check.hpp"

namespace bat {

LeafFileCache::LeafFileCache(std::size_t capacity) : capacity_(capacity) {
    BAT_CHECK_MSG(capacity >= 1, "LeafFileCache capacity must be at least 1");
}

std::shared_ptr<const BatFile> LeafFileCache::open(
    const std::filesystem::path& path, std::atomic<std::uint64_t>* bytes_read) {
    auto& metrics = obs::MetricsRegistry::global();
    const std::string key = path.string();
    {
        std::lock_guard<CheckedMutex> lock(mutex_);
        if (sched::maybe_active()) {
            // A hit still mutates the LRU tick, so every open is a write.
            sched::note_access(this, "io.leafcache", /*is_write=*/true);
        }
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            it->second.last_use = ++tick_;
            metrics.counter("read.leaf_cache_hit").add(1);
            obs::query_note_cache(/*hit=*/true);
            return it->second.file;
        }
    }
    // Miss: map the file outside the lock so concurrent misses on different
    // leaves overlap their I/O. Delta base files resolve through the cache
    // itself (re-entrancy is safe — construction runs outside the lock), so
    // each physical file is mapped, keyed, and byte-accounted exactly once
    // no matter how many delta files reference it.
    const BatFileOpener opener = [this, bytes_read](const std::filesystem::path& p) {
        return open(p, bytes_read);
    };
    auto file = std::make_shared<const BatFile>(path, opener);
    metrics.counter("read.leaf_cache_miss").add(1);
    obs::query_note_cache(/*hit=*/false);
    if (bytes_read != nullptr) {
        bytes_read->fetch_add(file->header().file_size, std::memory_order_relaxed);
    }
    std::lock_guard<CheckedMutex> lock(mutex_);
    if (sched::maybe_active()) {
        sched::note_access(this, "io.leafcache", /*is_write=*/true);
    }
    const auto [it, inserted] = entries_.try_emplace(key);
    if (!inserted) {
        // Another thread won the race; keep its mapping.
        it->second.last_use = ++tick_;
        return it->second.file;
    }
    it->second.file = file;
    it->second.last_use = ++tick_;
    while (entries_.size() > capacity_) {
        auto victim = entries_.begin();
        for (auto e = entries_.begin(); e != entries_.end(); ++e) {
            if (e->second.last_use < victim->second.last_use) {
                victim = e;
            }
        }
        // Shared ownership keeps an evicted mapping alive for in-flight
        // queries; only the cache's reference is dropped here.
        entries_.erase(victim);
    }
    return file;
}

std::size_t LeafFileCache::size() const {
    std::lock_guard<CheckedMutex> lock(mutex_);
    if (sched::maybe_active()) {
        sched::note_access(this, "io.leafcache", /*is_write=*/false);
    }
    return entries_.size();
}

void LeafFileCache::clear() {
    std::lock_guard<CheckedMutex> lock(mutex_);
    if (sched::maybe_active()) {
        sched::note_access(this, "io.leafcache", /*is_write=*/true);
    }
    entries_.clear();
}

LeafFileCache& LeafFileCache::global() {
    static LeafFileCache cache;
    return cache;
}

}  // namespace bat
