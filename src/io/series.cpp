#include "io/series.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/mmap_file.hpp"

namespace bat {

namespace {
constexpr std::uint32_t kSeriesMagic = 0x53544142;  // "BATS"
constexpr std::uint32_t kSeriesVersion = 1;
}  // namespace

std::vector<std::byte> TimeSeries::to_bytes() const {
    BufferWriter w;
    w.write(kSeriesMagic);
    w.write(kSeriesVersion);
    w.write(static_cast<std::uint32_t>(timesteps.size()));
    for (const auto& [timestep, file] : timesteps) {
        w.write(static_cast<std::int32_t>(timestep));
        w.write_string(file);
    }
    return w.take();
}

TimeSeries TimeSeries::from_bytes(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    BAT_CHECK_MSG(r.read<std::uint32_t>() == kSeriesMagic, "not a BAT series manifest");
    BAT_CHECK_MSG(r.read<std::uint32_t>() == kSeriesVersion,
                  "unsupported series manifest version");
    TimeSeries series;
    const auto count = r.read<std::uint32_t>();
    series.timesteps.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const auto timestep = r.read<std::int32_t>();
        series.timesteps.emplace_back(timestep, r.read_string());
    }
    return series;
}

void TimeSeries::save(const std::filesystem::path& path) const {
    write_file(path, to_bytes());
}

TimeSeries TimeSeries::load(const std::filesystem::path& path) {
    return from_bytes(read_file(path));
}

std::size_t TimeSeries::index_of(int timestep) const {
    for (std::size_t i = 0; i < timesteps.size(); ++i) {
        if (timesteps[i].first == timestep) {
            return i;
        }
    }
    BAT_FAIL("timestep " << timestep << " not in series");
}

SeriesWriter::SeriesWriter(WriterConfig base) : base_(std::move(base)) {
    manifest_path_ = base_.directory / (base_.basename + ".batseries");
}

WriteResult SeriesWriter::write_timestep(vmpi::Comm& comm, int timestep,
                                         const ParticleSet& local,
                                         const Box& local_bounds) {
    BAT_CHECK_MSG(series_.timesteps.empty() || series_.timesteps.back().first < timestep,
                  "timesteps must be written in increasing order");
    WriterConfig config = base_;
    config.basename = base_.basename + "_t" + std::to_string(timestep);
    // Periodic keyframes bound how far back delta chains can reach: every
    // keyframe_interval-th step writes full files (the first step is a
    // keyframe by construction — the plan starts empty).
    const int interval = std::max(1, base_.delta.keyframe_interval);
    if (steps_written_ % static_cast<std::size_t>(interval) == 0) {
        config.delta.force_keyframe = true;
    }
    const WriteResult result = write_particles(comm, local, local_bounds, config, &plan_);
    ++steps_written_;
    series_.timesteps.emplace_back(timestep, result.metadata_path.filename().string());
    return result;
}

std::filesystem::path SeriesWriter::finalize(vmpi::Comm& comm) const {
    if (comm.rank() == 0) {
        series_.save(manifest_path_);
        // The manifest hits disk like any leaf or .batmeta file; leaving it
        // out of the byte accounting inflates per-step byte gates.
        manifest_bytes_ = std::filesystem::file_size(manifest_path_);
        auto& metrics = obs::MetricsRegistry::global();
        metrics.counter("write.bytes_written")
            .add(static_cast<std::int64_t>(manifest_bytes_));
        metrics.counter("write.manifest_bytes")
            .add(static_cast<std::int64_t>(manifest_bytes_));
    }
    comm.barrier();
    return manifest_path_;
}

SeriesReader::SeriesReader(const std::filesystem::path& manifest_path)
    : dir_(manifest_path.parent_path()), series_(TimeSeries::load(manifest_path)) {}

Dataset SeriesReader::open(std::size_t index) const {
    BAT_CHECK(index < series_.timesteps.size());
    return Dataset(dir_ / series_.timesteps[index].second);
}

Dataset SeriesReader::open_timestep(int timestep) const {
    return open(series_.index_of(timestep));
}

}  // namespace bat
