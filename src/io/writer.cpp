#include "io/writer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "core/bat_file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace bat {

namespace {

constexpr int kTagData = 1;

std::string leaf_file_name(const std::string& basename, int leaf_id) {
    return basename + "_" + std::to_string(leaf_id) + ".bat";
}

/// Bucket edges for the transfer message-size histogram: powers of four
/// from 1 KiB to 1 GiB.
std::vector<double> transfer_size_bounds() {
    std::vector<double> bounds;
    for (double b = 1024.0; b <= 1024.0 * 1024.0 * 1024.0; b *= 4.0) {
        bounds.push_back(b);
    }
    return bounds;
}

/// Bucket edges for the delta-chain-length histogram (steps back the oldest
/// referenced treelet lives; bounded by the keyframe interval).
std::vector<double> chain_len_bounds() { return {1, 2, 4, 8, 16, 32}; }

/// Bytes an inline treelet block occupies on disk (including the 4 KB
/// alignment every block pays), for the write.delta_bytes_saved estimate.
std::uint64_t inline_treelet_bytes(const Treelet& tr, std::size_t nattrs) {
    std::uint64_t sz = 16;  // magic + counts header
    sz += tr.nodes.size() * sizeof(TreeletNode);
    sz += tr.nodes.size() * nattrs * 2;  // bitmap IDs
    sz = (sz + 3) & ~std::uint64_t{3};
    sz += 12ull * tr.num_particles;  // f32 xyz
    sz = (sz + 7) & ~std::uint64_t{7};
    sz += 8ull * tr.num_particles * nattrs;
    const std::uint64_t align = kTreeletAlignment;
    return (sz + align - 1) & ~(align - 1);
}

}  // namespace

// Transfer-plumbing types live in io_detail (not the anonymous namespace)
// because WritePlanState holds an Assignment across steps.
namespace io_detail {

/// Per-leaf aggregation duty sent to an aggregator rank.
struct LeafDuty {
    int leaf_id = -1;
    std::vector<std::pair<int, std::uint64_t>> senders;  // (rank, particle count)
    std::uint64_t total_particles = 0;
};

/// Assignment message scattered from rank 0 to each rank.
struct Assignment {
    int my_leaf = -1;          // leaf this rank's data belongs to (-1: none)
    int my_aggregator = -1;    // destination rank for this rank's data
    int num_leaves = 0;
    std::vector<LeafDuty> duties;  // leaves this rank aggregates

    std::vector<std::byte> to_bytes() const {
        BufferWriter w;
        w.write(std::int32_t{my_leaf});
        w.write(std::int32_t{my_aggregator});
        w.write(std::int32_t{num_leaves});
        w.write(static_cast<std::uint32_t>(duties.size()));
        for (const LeafDuty& duty : duties) {
            w.write(std::int32_t{duty.leaf_id});
            w.write(duty.total_particles);
            w.write(static_cast<std::uint32_t>(duty.senders.size()));
            for (const auto& [rank, count] : duty.senders) {
                w.write(std::int32_t{rank});
                w.write(count);
            }
        }
        return w.take();
    }

    static Assignment from_bytes(std::span<const std::byte> bytes) {
        BufferReader r(bytes);
        Assignment a;
        a.my_leaf = r.read<std::int32_t>();
        a.my_aggregator = r.read<std::int32_t>();
        a.num_leaves = r.read<std::int32_t>();
        a.duties.resize(r.read<std::uint32_t>());
        for (LeafDuty& duty : a.duties) {
            duty.leaf_id = r.read<std::int32_t>();
            duty.total_particles = r.read<std::uint64_t>();
            duty.senders.resize(r.read<std::uint32_t>());
            for (auto& [rank, count] : duty.senders) {
                rank = r.read<std::int32_t>();
                count = r.read<std::uint64_t>();
            }
        }
        return a;
    }
};

/// Carry-over of one leaf between steps: treelet content hashes plus the
/// physical location (file name + treelet index) of every treelet's bytes.
/// References are flattened — treelet_file[t] always names the file that
/// physically holds the block, never an intermediate delta file.
struct LeafDeltaState {
    std::vector<std::uint64_t> hashes;        // per treelet, FNV-1a 64
    std::vector<std::uint32_t> num_points;    // per treelet
    std::vector<std::string> treelet_file;    // per treelet, physical holder
    std::vector<std::uint32_t> treelet_index; // per treelet, index in holder
    std::vector<int> ages;  // steps since the treelet was written inline
    /// File recorded in the metadata for this leaf last step (its own file,
    /// or an older one when the whole leaf was unchanged) + its base table,
    /// and the non-treelet sections needed to prove a whole-file match.
    std::string last_file;
    std::vector<std::string> last_file_bases;
    std::vector<std::pair<double, double>> attr_ranges;
    std::vector<BinEdges> attr_edges;
    std::vector<ShallowNode> shallow_nodes;
    std::vector<std::uint32_t> shallow_bitmaps;
};

/// Everything write_particles carries from one step to the next.
struct WritePlanState {
    bool valid = false;
    int nranks = 0;
    AggStrategy strategy = AggStrategy::adaptive;
    RankInfo my_info;        // this rank's previous bounds + count
    Assignment assignment;   // this rank's previous assignment
    Aggregation agg;         // rank 0 only
    std::map<int, LeafDeltaState> leaves;  // keyed by leaf id (my duties)
};

}  // namespace io_detail

using io_detail::Assignment;
using io_detail::LeafDuty;

WritePlan::WritePlan() : state_(std::make_unique<io_detail::WritePlanState>()) {}
WritePlan::~WritePlan() = default;
WritePlan::WritePlan(WritePlan&&) noexcept = default;
WritePlan& WritePlan::operator=(WritePlan&&) noexcept = default;

bool WritePlan::valid() const { return state_->valid; }

void WritePlan::reset() { *state_ = io_detail::WritePlanState{}; }

const char* to_string(AggStrategy s) {
    switch (s) {
        case AggStrategy::adaptive: return "adaptive";
        case AggStrategy::aug: return "aug";
        case AggStrategy::file_per_process: return "file-per-process";
    }
    return "?";
}

WritePhaseTimings& WritePhaseTimings::operator+=(const WritePhaseTimings& o) {
    gather += o.gather;
    tree_build += o.tree_build;
    scatter += o.scatter;
    transfer += o.transfer;
    bat_build += o.bat_build;
    file_write += o.file_write;
    metadata += o.metadata;
    bat += o.bat;
    return *this;
}

WritePhaseTimings WritePhaseTimings::max(const WritePhaseTimings& a,
                                         const WritePhaseTimings& b) {
    WritePhaseTimings m;
    m.gather = std::max(a.gather, b.gather);
    m.tree_build = std::max(a.tree_build, b.tree_build);
    m.scatter = std::max(a.scatter, b.scatter);
    m.transfer = std::max(a.transfer, b.transfer);
    m.bat_build = std::max(a.bat_build, b.bat_build);
    m.file_write = std::max(a.file_write, b.file_write);
    m.metadata = std::max(a.metadata, b.metadata);
    m.bat = BatBuildTimings::max(a.bat, b.bat);
    return m;
}

Aggregation build_aggregation(std::span<const RankInfo> ranks, AggStrategy strategy,
                              const AggTreeConfig& tree_config, ThreadPool* pool) {
    switch (strategy) {
        case AggStrategy::adaptive:
            return build_agg_tree(ranks, tree_config, pool);
        case AggStrategy::aug: {
            AugConfig aug;
            aug.target_file_size = tree_config.target_file_size;
            aug.bytes_per_particle = tree_config.bytes_per_particle;
            return build_aug(ranks, aug);
        }
        case AggStrategy::file_per_process:
            return build_file_per_process(ranks);
    }
    BAT_FAIL("unknown aggregation strategy");
}

namespace {

/// Assign aggregators for a built aggregation: file-per-process writes from
/// the owning rank itself, the others spread aggregators over rank space.
void assign_strategy_aggregators(Aggregation& agg, AggStrategy strategy, int nranks) {
    if (strategy == AggStrategy::file_per_process) {
        for (AggLeaf& leaf : agg.leaves) {
            leaf.aggregator = leaf.ranks.front();
        }
    } else {
        agg.assign_aggregators(nranks);
    }
}

std::vector<vmpi::Bytes> make_assignments(const Aggregation& agg,
                                          std::span<const RankInfo> infos, int nranks) {
    std::vector<Assignment> assignments(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        Assignment& a = assignments[static_cast<std::size_t>(r)];
        a.num_leaves = static_cast<int>(agg.leaves.size());
        a.my_leaf = agg.rank_to_leaf[static_cast<std::size_t>(r)];
        a.my_aggregator =
            a.my_leaf >= 0 ? agg.leaves[static_cast<std::size_t>(a.my_leaf)].aggregator : -1;
    }
    for (std::size_t leaf_id = 0; leaf_id < agg.leaves.size(); ++leaf_id) {
        const AggLeaf& leaf = agg.leaves[leaf_id];
        LeafDuty duty;
        duty.leaf_id = static_cast<int>(leaf_id);
        duty.total_particles = leaf.num_particles;
        duty.senders.reserve(leaf.ranks.size());
        for (int r : leaf.ranks) {
            // Ranks without particles skip the transfer (paper §III-B).
            const std::uint64_t count = infos[static_cast<std::size_t>(r)].num_particles;
            if (count > 0) {
                duty.senders.emplace_back(r, count);
            }
        }
        assignments[static_cast<std::size_t>(leaf.aggregator)].duties.push_back(
            std::move(duty));
    }
    std::vector<vmpi::Bytes> blobs;
    blobs.reserve(assignments.size());
    for (const Assignment& a : assignments) {
        blobs.push_back(a.to_bytes());
    }
    return blobs;
}

}  // namespace

WriteResult write_particles(vmpi::Comm& comm, const ParticleSet& local,
                            const Box& local_bounds, const WriterConfig& config) {
    return write_particles(comm, local, local_bounds, config, nullptr);
}

WriteResult write_particles(vmpi::Comm& comm, const ParticleSet& local,
                            const Box& local_bounds, const WriterConfig& config,
                            WritePlan* plan) {
    WriteResult result;
    WritePhaseTimings& timings = result.timings;
    const int nranks = comm.size();
    const std::size_t nattrs = local.num_attrs();
    auto& metrics = obs::MetricsRegistry::global();
    io_detail::WritePlanState* state = plan != nullptr ? plan->state_.get() : nullptr;

    // Phase accounting: each obs::PhaseSpan both emits a trace span (when
    // BAT_TRACE is on) and accumulates wall seconds into the corresponding
    // WritePhaseTimings field — the only bookkeeping path for Fig 6/10/12.

    // ---- (a) gather counts + bounds; build the aggregation on rank 0 ------
    // With a valid plan, each rank first checks its own drift against the
    // previous step; a cheap all-ranks AND then decides collectively
    // whether the cached tree + assignment can be reused. The plan must be
    // passed on every rank or on none — validity transitions collectively.
    RankInfo my_info{local_bounds, local.count()};
    std::vector<RankInfo> infos;
    bool reuse = false;
    {
        obs::PhaseSpan span("write.gather", &timings.gather);
        if (state != nullptr && state->valid) {
            const RankInfo& prev = state->my_info;
            const std::uint64_t pn = prev.num_particles;
            const std::uint64_t n = local.count();
            const double drift =
                pn > 0 ? std::abs(static_cast<double>(n) - static_cast<double>(pn)) /
                             static_cast<double>(pn)
                       : 0.0;
            const bool local_ok = state->nranks == nranks &&
                                  state->strategy == config.strategy &&
                                  prev.bounds == local_bounds && (pn > 0) == (n > 0) &&
                                  drift <= config.delta.max_rank_drift;
            reuse = comm.allreduce(local_ok ? 1 : 0,
                                   [](int a, int b) { return a & b; }) != 0;
        }
        if (!reuse) {
            infos = comm.gather(my_info, 0);
        }
    }

    Aggregation agg_local;  // rank 0, planless path only
    Assignment assignment;
    if (reuse) {
        assignment = state->assignment;
        result.reused_plan = true;
        if (comm.rank() == 0) {
            metrics.counter("write.plan_reused").add(1);
        }
    } else {
        std::vector<vmpi::Bytes> assignment_blobs;
        {
            obs::PhaseSpan span("write.tree_build", &timings.tree_build);
            if (comm.rank() == 0) {
                AggTreeConfig tree_config = config.tree;
                tree_config.bytes_per_particle = local.bytes_per_particle();
                agg_local =
                    build_aggregation(infos, config.strategy, tree_config, config.pool);
                assign_strategy_aggregators(agg_local, config.strategy, nranks);
                assignment_blobs = make_assignments(agg_local, infos, nranks);
            }
        }

        // ---- (b) scatter assignments --------------------------------------
        {
            obs::PhaseSpan span("write.scatter", &timings.scatter);
            assignment =
                Assignment::from_bytes(comm.scatterv(std::move(assignment_blobs), 0));
        }
        if (state != nullptr) {
            // Replan: the leaf decomposition may have shifted, so the old
            // per-leaf hashes describe regions that no longer line up —
            // drop them and let this step repopulate from its full writes.
            state->leaves.clear();
            state->agg = std::move(agg_local);
            state->assignment = assignment;
            state->nranks = nranks;
            state->strategy = config.strategy;
            state->valid = true;
        }
    }
    if (state != nullptr) {
        state->my_info = my_info;
    }
    // Rank 0's aggregation lives in the plan when one is carried.
    const Aggregation& agg = state != nullptr ? state->agg : agg_local;
    result.num_leaves = assignment.num_leaves;
    result.my_leaf = assignment.my_leaf;

    // ---- (b') transfer particles to aggregators ---------------------------
    // Zero-copy path: each sender serializes once and the payload Bytes are
    // moved into the destination mailbox; aggregators pre-size one merged
    // set per leaf and deserialize every payload directly into its sender's
    // precomputed slot (no intermediate per-sender ParticleSet). Receives
    // are any-source so one slow sender cannot serialize the aggregator —
    // the fixed slot offsets keep the merged order (and thus the output
    // bytes) independent of arrival order. An aggregator's own particles
    // skip (de)serialization entirely and are copied in place.
    std::vector<std::pair<int, ParticleSet>> leaf_particles;  // (leaf_id, data)
    {
        obs::PhaseSpan span("write.transfer", &timings.transfer);
        const bool send_self =
            !local.empty() && assignment.my_aggregator == comm.rank();
        if (!local.empty()) {
            BAT_CHECK_MSG(assignment.my_aggregator >= 0,
                          "rank " << comm.rank() << " owns particles but has no aggregator");
            if (!send_self) {
                vmpi::Bytes payload = local.to_bytes();
                metrics.histogram("write.transfer_msg_bytes", transfer_size_bounds())
                    .record(static_cast<double>(payload.size()));
                comm.isend(assignment.my_aggregator, kTagData, std::move(payload));
            }
        }
        if (!reuse) {
            struct SenderSlot {
                std::size_t duty;    // index into leaf_particles
                std::size_t offset;  // particle slot within the merged set
                std::uint64_t count;
            };
            std::map<int, SenderSlot> slots;
            leaf_particles.reserve(assignment.duties.size());
            for (std::size_t d = 0; d < assignment.duties.size(); ++d) {
                const LeafDuty& duty = assignment.duties[d];
                ParticleSet merged(local.attr_names());
                merged.resize(duty.total_particles);
                std::size_t offset = 0;
                for (const auto& [sender, count] : duty.senders) {
                    if (send_self && sender == comm.rank()) {
                        merged.copy_from(local, offset);
                        metrics.counter("write.transfer_bytes").add(local.payload_bytes());
                    } else {
                        const bool inserted =
                            slots.emplace(sender, SenderSlot{d, offset, count}).second;
                        BAT_CHECK_MSG(inserted, "rank " << sender << " feeds two leaves");
                    }
                    offset += count;
                }
                BAT_CHECK(offset == duty.total_particles);
                leaf_particles.emplace_back(duty.leaf_id, std::move(merged));
            }
            const std::size_t expected = slots.size();
            for (std::size_t m = 0; m < expected; ++m) {
                int from = -1;
                const vmpi::Bytes payload = comm.recv(vmpi::kAnySource, kTagData, &from);
                const auto it = slots.find(from);
                BAT_CHECK_MSG(it != slots.end(),
                              "unexpected transfer payload from rank " << from);
                const SenderSlot slot = it->second;
                slots.erase(it);
                metrics.counter("write.transfer_bytes").add(payload.size());
                const std::size_t got =
                    leaf_particles[slot.duty].second.deserialize_into(payload, slot.offset);
                BAT_CHECK_MSG(got == slot.count, "sender " << from << " sent " << got
                                                           << " particles, " << slot.count
                                                           << " expected");
            }
        } else {
            // Reused assignment: the cached per-sender counts are stale
            // (ranks may have drifted under the threshold), so the merged
            // sets cannot be pre-sized with fixed slots. Instead receive
            // every expected payload first, then append per duty in the
            // fixed ascending-sender order — which is exactly the order the
            // fixed-slot path lays senders out in, so the merged sets (and
            // therefore the output bytes) match a full-pipeline write of
            // the same data bit for bit. The sender *sets* are still exact:
            // any empty/non-empty flip forces a replan.
            std::size_t expected = 0;
            for (const LeafDuty& duty : assignment.duties) {
                for (const auto& [sender, count] : duty.senders) {
                    if (sender != comm.rank()) {
                        ++expected;
                    }
                }
            }
            std::map<int, vmpi::Bytes> payloads;
            for (std::size_t m = 0; m < expected; ++m) {
                int from = -1;
                vmpi::Bytes payload = comm.recv(vmpi::kAnySource, kTagData, &from);
                metrics.counter("write.transfer_bytes").add(payload.size());
                const bool inserted = payloads.emplace(from, std::move(payload)).second;
                BAT_CHECK_MSG(inserted, "rank " << from << " feeds two leaves");
            }
            leaf_particles.reserve(assignment.duties.size());
            for (const LeafDuty& duty : assignment.duties) {
                ParticleSet merged(local.attr_names());
                for (const auto& [sender, count] : duty.senders) {
                    (void)count;  // stale; payloads carry the real counts
                    if (sender == comm.rank()) {
                        merged.append(local);
                        metrics.counter("write.transfer_bytes").add(local.payload_bytes());
                    } else {
                        const auto it = payloads.find(sender);
                        BAT_CHECK_MSG(it != payloads.end(),
                                      "no transfer payload from rank " << sender);
                        merged.append_from_bytes(it->second);
                    }
                }
                leaf_particles.emplace_back(duty.leaf_id, std::move(merged));
            }
        }
    }

    // ---- (c) build + write the BAT for each owned leaf --------------------
    // With a plan, the builder hashes every treelet; treelets whose hash,
    // point count, and physical location carry over from the previous step
    // are written as references into the prior step's file. A leaf whose
    // treelets are ALL clean (and whose attr table + shallow tree match)
    // skips its file entirely — the metadata points at the prior file.
    BatConfig bat_config = config.bat;
    const bool delta_enabled = state != nullptr && config.delta.enabled;
    bat_config.hash_treelets = delta_enabled;

    std::vector<LeafReport> my_reports;
    std::filesystem::create_directories(config.directory);
    for (auto& [leaf_id, particles] : leaf_particles) {
        BatData bat;
        {
            obs::PhaseSpan span("write.bat_build", &timings.bat_build);
            bat = build_bat(std::move(particles), bat_config, config.pool, &timings.bat);
        }

        LeafReport report;
        report.leaf_id = leaf_id;
        report.num_particles = bat.particles.count();
        report.ranges = bat.attr_ranges;
        report.edges = bat.attr_edges;
        report.root_bitmaps.resize(nattrs);
        for (std::size_t a = 0; a < nattrs; ++a) {
            report.root_bitmaps[a] = bat.root_bitmap(a);
        }

        obs::PhaseSpan span("write.file_write", &timings.file_write);
        const std::string own_file = leaf_file_name(config.basename, leaf_id);
        if (!delta_enabled) {
            const std::vector<std::byte> bytes = serialize_bat(bat);
            write_file(config.directory / own_file, bytes);
            result.bytes_written += bytes.size();
            my_reports.push_back(std::move(report));
            continue;
        }

        io_detail::LeafDeltaState& st = state->leaves[leaf_id];
        const std::size_t num_treelets = bat.treelets.size();
        const bool can_delta = !config.delta.force_keyframe && !st.last_file.empty() &&
                               st.hashes.size() == num_treelets;
        BatDeltaSpec spec;
        spec.refs.resize(num_treelets);
        std::map<std::string, std::int32_t> base_ids;
        std::size_t clean = 0;
        std::uint64_t saved = 0;
        int max_age = 0;
        for (std::size_t t = 0; t < num_treelets; ++t) {
            const Treelet& tr = bat.treelets[t];
            if (can_delta && st.hashes[t] == tr.hash &&
                st.num_points[t] == tr.num_particles && !st.treelet_file[t].empty()) {
                const auto [it, inserted] = base_ids.emplace(
                    st.treelet_file[t], static_cast<std::int32_t>(spec.base_files.size()));
                if (inserted) {
                    spec.base_files.push_back(st.treelet_file[t]);
                }
                spec.refs[t] = DeltaRef{it->second, st.treelet_index[t]};
                saved += inline_treelet_bytes(tr, nattrs);
                ++clean;
            }
        }

        const bool all_clean =
            can_delta && clean == num_treelets && st.attr_ranges == bat.attr_ranges &&
            st.attr_edges == bat.attr_edges && st.shallow_bitmaps == bat.shallow_bitmaps &&
            st.shallow_nodes.size() == bat.shallow_nodes.size() &&
            (st.shallow_nodes.empty() ||
             std::memcmp(st.shallow_nodes.data(), bat.shallow_nodes.data(),
                         st.shallow_nodes.size() * sizeof(ShallowNode)) == 0);
        if (all_clean) {
            // Nothing about the leaf changed: keep the prior step's file and
            // record it (plus its base table) in this step's metadata.
            report.file_override = st.last_file;
            report.delta_bases = st.last_file_bases;
            result.leaves_unchanged += 1;
            metrics.counter("write.leaves_unchanged").add(1);
            for (std::size_t t = 0; t < num_treelets; ++t) {
                max_age = std::max(max_age, ++st.ages[t]);
            }
        } else {
            const std::vector<std::byte> bytes =
                serialize_bat(bat, clean > 0 ? &spec : nullptr);
            write_file(config.directory / own_file, bytes);
            result.bytes_written += bytes.size();

            st.hashes.resize(num_treelets);
            st.num_points.resize(num_treelets);
            st.treelet_file.resize(num_treelets);
            st.treelet_index.resize(num_treelets);
            st.ages.resize(num_treelets, 0);
            for (std::size_t t = 0; t < num_treelets; ++t) {
                const Treelet& tr = bat.treelets[t];
                st.hashes[t] = tr.hash;
                st.num_points[t] = tr.num_particles;
                if (spec.refs[t].base_file >= 0) {
                    max_age = std::max(max_age, ++st.ages[t]);
                } else {
                    st.treelet_file[t] = own_file;
                    st.treelet_index[t] = static_cast<std::uint32_t>(t);
                    st.ages[t] = 0;
                }
            }
            st.last_file = own_file;
            st.last_file_bases = spec.base_files;
            st.attr_ranges = bat.attr_ranges;
            st.attr_edges = bat.attr_edges;
            st.shallow_nodes = bat.shallow_nodes;
            st.shallow_bitmaps = bat.shallow_bitmaps;
            report.delta_bases = spec.base_files;
        }

        result.delta_treelets_clean += clean;
        result.delta_treelets_written += num_treelets - clean;
        result.delta_bytes_saved += saved;
        metrics.counter("write.delta_treelets_clean")
            .add(static_cast<std::int64_t>(clean));
        metrics.counter("write.delta_treelets_written")
            .add(static_cast<std::int64_t>(num_treelets - clean));
        metrics.counter("write.delta_bytes_saved").add(static_cast<std::int64_t>(saved));
        metrics.histogram("write.delta_chain_len", chain_len_bounds())
            .record(static_cast<double>(max_age + 1));
        my_reports.push_back(std::move(report));
    }

    // ---- (d) metadata on rank 0 -------------------------------------------
    obs::PhaseSpan metadata_span("write.metadata", &timings.metadata);
    BufferWriter reports_blob;
    reports_blob.write(static_cast<std::uint32_t>(my_reports.size()));
    for (const LeafReport& report : my_reports) {
        const auto bytes = report.to_bytes();
        reports_blob.write(static_cast<std::uint32_t>(bytes.size()));
        reports_blob.write_span(std::span<const std::byte>(bytes));
    }
    std::vector<vmpi::Bytes> gathered = comm.gatherv(reports_blob.take(), 0);
    result.metadata_path = config.directory / (config.basename + ".batmeta");
    if (comm.rank() == 0) {
        std::vector<LeafReport> reports;
        for (const vmpi::Bytes& blob : gathered) {
            BufferReader r(blob);
            const auto count = r.read<std::uint32_t>();
            for (std::uint32_t i = 0; i < count; ++i) {
                const auto len = r.read<std::uint32_t>();
                std::vector<std::byte> piece(len);
                r.read_into(std::span<std::byte>(piece));
                reports.push_back(LeafReport::from_bytes(piece));
            }
        }
        // Order reports by leaf id for build_metadata.
        std::sort(reports.begin(), reports.end(),
                  [](const LeafReport& a, const LeafReport& b) { return a.leaf_id < b.leaf_id; });
        std::vector<std::string> files;
        files.reserve(agg.leaves.size());
        for (std::size_t i = 0; i < agg.leaves.size(); ++i) {
            files.push_back(leaf_file_name(config.basename, static_cast<int>(i)));
        }
        const Metadata meta = build_metadata(agg, local.attr_names(), reports, files);
        meta.save(result.metadata_path);
        // The metadata file is part of the written volume; leaving it out
        // inflates effective-bandwidth numbers (Fig 5).
        result.bytes_written += std::filesystem::file_size(result.metadata_path);
    }
    // Everyone learns the metadata path is ready.
    comm.barrier();
    metadata_span.close();

    metrics.counter("write.bytes_written").add(static_cast<std::int64_t>(result.bytes_written));
    metrics.counter("write.files").add(static_cast<std::int64_t>(my_reports.size()));
    obs::record_rank_value("write.bytes_written", result.bytes_written);
    obs::record_rank_value("write.files", my_reports.size());
    return result;
}

std::uint64_t recommend_target_size(std::uint64_t total_particles,
                                    std::uint64_t bytes_per_particle, int nranks) {
    BAT_CHECK(nranks > 0);
    BAT_CHECK(bytes_per_particle > 0);
    const double per_rank_bytes = static_cast<double>(total_particles) *
                                  static_cast<double>(bytes_per_particle) /
                                  static_cast<double>(nranks);
    // Aggregation factor by scale (paper: 1:1-4:1 at low core or particle
    // counts; 16:1 or higher at larger scales to avoid too many files).
    double factor = 2.0;
    if (nranks > 16384) {
        factor = 32.0;
    } else if (nranks > 4096) {
        factor = 16.0;
    } else if (nranks > 1024) {
        factor = 4.0;
    }
    const double want = std::max(1.0, per_rank_bytes * factor);
    // Round up to a power of two, clamped to a sane file-size window.
    std::uint64_t target = 1 << 20;
    while (target < want && target < (512ull << 20)) {
        target <<= 1;
    }
    return target;
}

WriteResult write_particles_serial(std::span<const ParticleSet> per_rank,
                                   std::span<const Box> rank_bounds,
                                   const WriterConfig& config) {
    BAT_CHECK(per_rank.size() == rank_bounds.size());
    BAT_CHECK(!per_rank.empty());
    WriteResult result;
    const int nranks = static_cast<int>(per_rank.size());
    const std::size_t nattrs = per_rank[0].num_attrs();

    std::vector<RankInfo> infos(per_rank.size());
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
        infos[r] = RankInfo{rank_bounds[r], per_rank[r].count()};
    }
    AggTreeConfig tree_config = config.tree;
    tree_config.bytes_per_particle = per_rank[0].bytes_per_particle();
    Aggregation agg = build_aggregation(infos, config.strategy, tree_config, config.pool);
    assign_strategy_aggregators(agg, config.strategy, nranks);
    result.num_leaves = static_cast<int>(agg.leaves.size());

    std::filesystem::create_directories(config.directory);
    std::vector<LeafReport> reports;
    std::vector<std::string> files;
    for (std::size_t leaf_id = 0; leaf_id < agg.leaves.size(); ++leaf_id) {
        const AggLeaf& leaf = agg.leaves[leaf_id];
        ParticleSet merged(per_rank[0].attr_names());
        merged.reserve(leaf.num_particles);
        for (int r : leaf.ranks) {
            merged.append(per_rank[static_cast<std::size_t>(r)]);
        }
        BatData bat = build_bat(std::move(merged), config.bat, config.pool);
        const std::vector<std::byte> bytes = serialize_bat(bat);
        const std::string file = leaf_file_name(config.basename, static_cast<int>(leaf_id));
        write_file(config.directory / file, bytes);
        result.bytes_written += bytes.size();
        files.push_back(file);

        LeafReport report;
        report.leaf_id = static_cast<int>(leaf_id);
        report.num_particles = bat.particles.count();
        report.ranges = bat.attr_ranges;
        report.edges = bat.attr_edges;
        report.root_bitmaps.resize(nattrs);
        for (std::size_t a = 0; a < nattrs; ++a) {
            report.root_bitmaps[a] = bat.root_bitmap(a);
        }
        reports.push_back(std::move(report));
    }
    const Metadata meta = build_metadata(agg, per_rank[0].attr_names(), reports, files);
    result.metadata_path = config.directory / (config.basename + ".batmeta");
    meta.save(result.metadata_path);
    result.bytes_written += std::filesystem::file_size(result.metadata_path);
    return result;
}

}  // namespace bat
