#include "io/data_service.hpp"

#include <atomic>
#include <map>
#include <thread>
#include <utility>

#include "io/leaf_cache.hpp"
#include "io/read_protocol.hpp"
#include "io/reader.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace bat {

namespace {

constexpr int kTagServiceRequest = 4;
constexpr int kTagServiceResponse = 5;

}  // namespace

DataService::DataService(vmpi::Comm& comm, const std::filesystem::path& metadata_path,
                         ThreadPool* pool, LeafFileCache* cache)
    : comm_(comm),
      dir_(metadata_path.parent_path()),
      meta_(Metadata::load(metadata_path)),
      pool_(pool),
      cache_(cache != nullptr ? cache : &LeafFileCache::global()) {
    leaf_aggregator_ =
        assign_read_aggregators(static_cast<int>(meta_.leaves.size()), comm.size());
    for (std::size_t leaf = 0; leaf < leaf_aggregator_.size(); ++leaf) {
        if (leaf_aggregator_[leaf] == comm.rank()) {
            my_leaves_.push_back(static_cast<int>(leaf));
        }
    }
}

ParticleSet DataService::query_round(const std::optional<BatQuery>& query) {
    BAT_TRACE_SCOPE_CAT("service.query_round", "service");
    // This round is one query: mint its identity, install it for the whole
    // round (local cache opens and request sends attribute to it), and ship
    // it inside every leaf request so remote serves attribute to it too.
    const obs::QueryContext qctx = obs::query_begin(comm_.rank());
    obs::QueryScope qscope(qctx);
    const std::uint64_t round_start_ns = obs::trace_now_ns();
    ParticleSet result(meta_.attr_names);

    // Coalesce: one request per distinct aggregator holding a matching
    // remote leaf; remember local ones for after the loop.
    std::vector<int> local_leaves;
    std::vector<std::pair<int, std::vector<std::int32_t>>> requests;
    std::map<int, std::size_t> request_of_aggregator;
    if (query) {
        for (int leaf : meta_.query_leaves(query->box, query->attr_filters)) {
            const int aggregator = leaf_aggregator_[static_cast<std::size_t>(leaf)];
            if (aggregator == comm_.rank()) {
                local_leaves.push_back(leaf);
                continue;
            }
            const auto [it, fresh] =
                request_of_aggregator.try_emplace(aggregator, requests.size());
            if (fresh) {
                requests.emplace_back(aggregator, std::vector<std::int32_t>{});
            }
            requests[it->second].second.push_back(leaf);
        }
        for (std::size_t i = 0; i < requests.size(); ++i) {
            io_detail::LeafRequest req;
            req.seq = static_cast<std::uint32_t>(i);
            req.leaves = requests[i].second;
            req.query = *query;
            req.ctx = qctx;
            comm_.isend(requests[i].first, kTagServiceRequest,
                        io_detail::encode_request(req));
        }
    }
    const std::uint64_t request_done_ns = obs::trace_now_ns();

    // Serve + collect until the round's barrier completes. Leaf evaluations
    // run on pool workers (when configured); the comm loop keeps probing.
    std::atomic<std::uint64_t> bytes_read{0};
    const auto serve_leaf = [&](std::int32_t leaf, const BatQuery& leaf_query) {
        BAT_CHECK_MSG(leaf >= 0 && static_cast<std::size_t>(leaf) < meta_.leaves.size(),
                      "leaf id out of range in service request");
        const auto file = cache_->open(
            dir_ / meta_.leaves[static_cast<std::size_t>(leaf)].file, &bytes_read);
        ParticleSet out(meta_.attr_names);
        query_bat(*file, leaf_query,
                  [&out](Vec3 p, std::span<const double> attrs) { out.push_back(p, attrs); });
        return out.to_bytes();
    };
    io_detail::LeafServer server(comm_, kTagServiceRequest, kTagServiceResponse, pool_,
                                 serve_leaf);
    std::vector<vmpi::Bytes> responses(requests.size());
    std::size_t pending = requests.size();
    vmpi::Request barrier;
    bool in_barrier = false;
    if (pending == 0) {
        barrier = comm_.ibarrier();
        in_barrier = true;
    }
    for (;;) {
        bool progressed = server.progress();
        int src = -1;
        if (pending > 0 && comm_.iprobe(vmpi::kAnySource, kTagServiceResponse, &src)) {
            progressed = true;
            vmpi::Bytes payload = comm_.recv(src, kTagServiceResponse);
            const std::uint32_t seq = io_detail::peek_response_seq(payload);
            BAT_CHECK_MSG(seq < responses.size() && responses[seq].empty(),
                          "unexpected service response seq " << seq);
            responses[seq] = std::move(payload);
            if (--pending == 0) {
                barrier = comm_.ibarrier();
                in_barrier = true;
            }
        }
        if (in_barrier && server.idle() && barrier.test()) {
            break;
        }
        if (!progressed && !server.help()) {
            std::this_thread::yield();
        }
    }
    server.finish();
    const std::uint64_t serve_done_ns = obs::trace_now_ns();

    // Zero-copy ingestion in request order, then local leaves after exiting
    // the server loop (paper §IV-B) — arrival order cannot change the
    // result.
    io_detail::merge_responses(result, responses);
    const std::uint64_t merge_done_ns = obs::trace_now_ns();
    for (int leaf : local_leaves) {
        const auto file = cache_->open(
            dir_ / meta_.leaves[static_cast<std::size_t>(leaf)].file, &bytes_read);
        query_bat(*file, *query, [&result](Vec3 p, std::span<const double> attrs) {
            result.push_back(p, attrs);
        });
    }
    const std::uint64_t round_end_ns = obs::trace_now_ns();

    obs::record_rank_value("service.particles_served", result.count());
    obs::record_rank_value("service.bytes_shipped", server.bytes_shipped());
    auto& metrics = obs::MetricsRegistry::global();
    metrics.counter("service.rounds").add(1);
    metrics.counter("service.particles_served").add(static_cast<std::int64_t>(result.count()));
    metrics.counter("service.bytes_shipped")
        .add(static_cast<std::int64_t>(server.bytes_shipped()));
    metrics.counter("service.request_msgs").add(static_cast<std::int64_t>(requests.size()));
    metrics.histogram("service.round_us")
        .record(static_cast<double>(round_end_ns - round_start_ns) / 1e3);

    obs::QueryRecord qrec;
    qrec.trace_id = qctx.trace_id;
    qrec.origin_rank = qctx.origin_rank;
    qrec.seq = qctx.seq;
    qrec.op = "service.query_round";
    qrec.start_ns = round_start_ns;
    qrec.wall_ns = round_end_ns - round_start_ns;
    qrec.request_ns = request_done_ns - round_start_ns;
    qrec.serve_ns = serve_done_ns - request_done_ns;
    qrec.merge_ns = merge_done_ns - serve_done_ns;
    qrec.local_ns = round_end_ns - merge_done_ns;
    qrec.leaves_local = static_cast<std::uint32_t>(local_leaves.size());
    for (const auto& [aggregator, leaves] : requests) {
        qrec.leaves_remote += static_cast<std::uint32_t>(leaves.size());
    }
    qrec.request_msgs = static_cast<std::uint32_t>(requests.size());
    for (const vmpi::Bytes& payload : responses) {
        qrec.bytes_moved += payload.size();
    }
    qrec.particles = result.count();
    obs::query_finalize(qrec);
    return result;
}

}  // namespace bat
