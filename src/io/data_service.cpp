#include "io/data_service.hpp"

#include <thread>

#include "io/reader.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"

namespace bat {

namespace {

constexpr int kTagServiceRequest = 4;
constexpr int kTagServiceResponse = 5;

/// Wire format of a leaf-scoped query.
void write_query(BufferWriter& w, int leaf_id, const BatQuery& query) {
    w.write(std::int32_t{leaf_id});
    w.write(static_cast<std::uint8_t>(query.box.has_value()));
    if (query.box) {
        w.write(query.box->lower.x);
        w.write(query.box->lower.y);
        w.write(query.box->lower.z);
        w.write(query.box->upper.x);
        w.write(query.box->upper.y);
        w.write(query.box->upper.z);
    }
    w.write(static_cast<std::uint32_t>(query.attr_filters.size()));
    for (const AttrFilter& f : query.attr_filters) {
        w.write(f.attr);
        w.write(f.lo);
        w.write(f.hi);
    }
    w.write(query.quality_lo);
    w.write(query.quality_hi);
    w.write(static_cast<std::uint8_t>(query.inclusive_upper));
}

std::pair<int, BatQuery> read_query(std::span<const std::byte> bytes) {
    BufferReader r(bytes);
    const auto leaf_id = r.read<std::int32_t>();
    BatQuery query;
    if (r.read<std::uint8_t>() != 0) {
        Box box;
        box.lower.x = r.read<float>();
        box.lower.y = r.read<float>();
        box.lower.z = r.read<float>();
        box.upper.x = r.read<float>();
        box.upper.y = r.read<float>();
        box.upper.z = r.read<float>();
        query.box = box;
    }
    query.attr_filters.resize(r.read<std::uint32_t>());
    for (AttrFilter& f : query.attr_filters) {
        f.attr = r.read<std::uint32_t>();
        f.lo = r.read<double>();
        f.hi = r.read<double>();
    }
    query.quality_lo = r.read<float>();
    query.quality_hi = r.read<float>();
    query.inclusive_upper = r.read<std::uint8_t>() != 0;
    return {leaf_id, query};
}

}  // namespace

DataService::DataService(vmpi::Comm& comm, const std::filesystem::path& metadata_path)
    : comm_(comm), dir_(metadata_path.parent_path()), meta_(Metadata::load(metadata_path)) {
    leaf_aggregator_ =
        assign_read_aggregators(static_cast<int>(meta_.leaves.size()), comm.size());
    for (std::size_t leaf = 0; leaf < leaf_aggregator_.size(); ++leaf) {
        if (leaf_aggregator_[leaf] == comm.rank()) {
            my_leaves_.push_back(static_cast<int>(leaf));
        }
    }
}

const BatFile& DataService::open_leaf(int leaf_id) {
    auto it = files_.find(leaf_id);
    if (it == files_.end()) {
        it = files_
                 .emplace(leaf_id,
                          std::make_unique<BatFile>(
                              dir_ / meta_.leaves[static_cast<std::size_t>(leaf_id)].file))
                 .first;
    }
    return *it->second;
}

ParticleSet DataService::query_round(const std::optional<BatQuery>& query) {
    BAT_TRACE_SCOPE_CAT("service.query_round", "service");
    const std::uint64_t round_start_ns = obs::trace_now_ns();
    std::uint64_t bytes_shipped = 0;  // response bytes this rank served out
    ParticleSet result(meta_.attr_names);

    // Send requests for every matching remote leaf; remember local ones.
    std::vector<int> local_leaves;
    int pending = 0;
    if (query) {
        for (int leaf : meta_.query_leaves(query->box, query->attr_filters)) {
            const int aggregator = leaf_aggregator_[static_cast<std::size_t>(leaf)];
            if (aggregator == comm_.rank()) {
                local_leaves.push_back(leaf);
                continue;
            }
            BufferWriter w;
            write_query(w, leaf, *query);
            comm_.isend(aggregator, kTagServiceRequest, w.take());
            ++pending;
        }
    }

    // Serve + collect until the round's barrier completes.
    vmpi::Request barrier;
    bool in_barrier = false;
    if (pending == 0) {
        barrier = comm_.ibarrier();
        in_barrier = true;
    }
    std::vector<ParticleSet> responses;
    for (;;) {
        bool progressed = false;
        int src = -1;
        if (comm_.iprobe(vmpi::kAnySource, kTagServiceRequest, &src)) {
            progressed = true;
            BAT_TRACE_SCOPE_CAT("service.serve_leaf", "service");
            const vmpi::Bytes payload = comm_.recv(src, kTagServiceRequest);
            const auto [leaf_id, leaf_query] = read_query(payload);
            ParticleSet out(meta_.attr_names);
            query_bat(open_leaf(leaf_id), leaf_query,
                      [&out](Vec3 p, std::span<const double> attrs) {
                          out.push_back(p, attrs);
                      });
            vmpi::Bytes response = out.to_bytes();
            bytes_shipped += response.size();
            comm_.isend(src, kTagServiceResponse, std::move(response));
        }
        if (pending > 0 && comm_.iprobe(vmpi::kAnySource, kTagServiceResponse, &src)) {
            progressed = true;
            responses.push_back(
                ParticleSet::from_bytes(comm_.recv(src, kTagServiceResponse)));
            if (--pending == 0) {
                barrier = comm_.ibarrier();
                in_barrier = true;
            }
        }
        if (in_barrier && barrier.test()) {
            break;
        }
        if (!progressed) {
            std::this_thread::yield();
        }
    }
    for (ParticleSet& piece : responses) {
        result.append(piece);
    }

    // Local leaves after exiting the server loop (paper §IV-B).
    for (int leaf : local_leaves) {
        query_bat(open_leaf(leaf), *query, [&result](Vec3 p, std::span<const double> attrs) {
            result.push_back(p, attrs);
        });
    }

    auto& metrics = obs::MetricsRegistry::global();
    metrics.counter("service.rounds").add(1);
    metrics.counter("service.particles_served").add(static_cast<std::int64_t>(result.count()));
    metrics.counter("service.bytes_shipped").add(static_cast<std::int64_t>(bytes_shipped));
    metrics.histogram("service.round_us")
        .record(static_cast<double>(obs::trace_now_ns() - round_start_ns) / 1e3);
    return result;
}

}  // namespace bat
