#pragma once
// Two-phase spatially aware adaptive write pipeline (paper §III, Fig 1).
//
// Every rank calls write_particles collectively with its local particles
// and domain bounds. The pipeline:
//   (a) gathers per-rank particle counts and bounds to rank 0, which builds
//       the Aggregation Tree (adaptive k-d, AUG baseline, or trivial
//       file-per-process) and assigns each leaf to an aggregator rank;
//   (b) scatters assignments; every rank sends its particles to its leaf's
//       aggregator with nonblocking sends;
//   (c) each aggregator builds the BAT over its leaf's particles and writes
//       it to an independent file;
//   (d) aggregators report per-attribute local ranges and root bitmaps to
//       rank 0, which populates and writes the top-level metadata file.

#include <filesystem>
#include <string>

#include "core/agg_tree.hpp"
#include "core/aug.hpp"
#include "core/bat_builder.hpp"
#include "core/metadata.hpp"
#include "core/particles.hpp"
#include "vmpi/comm.hpp"

namespace bat {

enum class AggStrategy {
    adaptive,          // this paper: k-d tree over rank bounds (§III-A)
    aug,               // Kumar et al. 2019 adjustable uniform grid baseline
    file_per_process,  // one file per particle-owning rank
};

const char* to_string(AggStrategy s);

struct WriterConfig {
    AggStrategy strategy = AggStrategy::adaptive;
    AggTreeConfig tree;  // target file size etc.; bytes_per_particle is
                         // overwritten from the particle schema
    BatConfig bat;
    std::filesystem::path directory;
    std::string basename = "particles";
    ThreadPool* pool = nullptr;  // parallelizes tree + BAT builds
};

/// Per-rank wall-clock seconds spent in each pipeline component (the
/// categories of the paper's Fig 6/10/12 breakdowns).
struct WritePhaseTimings {
    double gather = 0;      // counts/bounds gather
    double tree_build = 0;  // aggregation structure build (rank 0)
    double scatter = 0;     // assignment scatter
    double transfer = 0;    // particle transfer to aggregators
    double bat_build = 0;   // BAT construction on aggregators
    double file_write = 0;  // writing aggregator files
    double metadata = 0;    // top-level metadata population
    /// Sub-phase breakdown of bat_build (bat.* spans; not part of total()).
    BatBuildTimings bat;

    double total() const {
        return gather + tree_build + scatter + transfer + bat_build + file_write + metadata;
    }
    WritePhaseTimings& operator+=(const WritePhaseTimings& o);
    /// Component-wise max (for "slowest rank" reductions).
    static WritePhaseTimings max(const WritePhaseTimings& a, const WritePhaseTimings& b);
};

struct WriteResult {
    WritePhaseTimings timings;           // this rank's timings
    std::filesystem::path metadata_path; // valid on every rank
    std::uint64_t bytes_written = 0;     // bytes written by this rank: leaf
                                         // files + (on rank 0) the .batmeta
    int num_leaves = 0;                  // total output files
    int my_leaf = -1;                    // leaf this rank's data went to
};

/// Collective: write one timestep. `local_bounds` is this rank's domain
/// box (not the tight particle bounds; ranks may own empty regions).
WriteResult write_particles(vmpi::Comm& comm, const ParticleSet& local,
                            const Box& local_bounds, const WriterConfig& config);

/// Build the aggregation structure for a strategy (exposed for benchmarks
/// and the performance model, which run it over full-scale rank metadata).
Aggregation build_aggregation(std::span<const RankInfo> ranks, AggStrategy strategy,
                              const AggTreeConfig& tree_config, ThreadPool* pool = nullptr);

/// Recommend a target file size from the workload (paper §VI-A2 guidance
/// and §VII future work, "automatically selecting the target size based on
/// the particle count and size using the results of our evaluation"):
/// roughly 1:1-4:1 aggregation factors at low core/particle counts, 16:1 or
/// higher at larger scales, increased correspondingly when particles are
/// added over the run. Returns a power-of-two byte count.
std::uint64_t recommend_target_size(std::uint64_t total_particles,
                                    std::uint64_t bytes_per_particle, int nranks);

/// Serial (single-process) writer: runs the same aggregation + BAT-build +
/// metadata code path over a globally available particle set partitioned
/// into per-rank pieces. Used by visualization benchmarks and examples to
/// produce data sets "written at N ranks" without running N threads.
WriteResult write_particles_serial(std::span<const ParticleSet> per_rank,
                                   std::span<const Box> rank_bounds,
                                   const WriterConfig& config);

}  // namespace bat
