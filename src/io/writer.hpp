#pragma once
// Two-phase spatially aware adaptive write pipeline (paper §III, Fig 1).
//
// Every rank calls write_particles collectively with its local particles
// and domain bounds. The pipeline:
//   (a) gathers per-rank particle counts and bounds to rank 0, which builds
//       the Aggregation Tree (adaptive k-d, AUG baseline, or trivial
//       file-per-process) and assigns each leaf to an aggregator rank;
//   (b) scatters assignments; every rank sends its particles to its leaf's
//       aggregator with nonblocking sends;
//   (c) each aggregator builds the BAT over its leaf's particles and writes
//       it to an independent file;
//   (d) aggregators report per-attribute local ranges and root bitmaps to
//       rank 0, which populates and writes the top-level metadata file.

#include <filesystem>
#include <memory>
#include <string>

#include "core/agg_tree.hpp"
#include "core/aug.hpp"
#include "core/bat_builder.hpp"
#include "core/metadata.hpp"
#include "core/particles.hpp"
#include "vmpi/comm.hpp"

namespace bat {

enum class AggStrategy {
    adaptive,          // this paper: k-d tree over rank bounds (§III-A)
    aug,               // Kumar et al. 2019 adjustable uniform grid baseline
    file_per_process,  // one file per particle-owning rank
};

const char* to_string(AggStrategy s);

/// Knobs for incremental (delta) series writes. Only consulted when a
/// WritePlan is passed to write_particles; one-shot writes are unaffected.
struct DeltaWriteConfig {
    /// Master switch: when false the plan still caches the aggregation
    /// tree (phase reuse) but every BAT is written in full.
    bool enabled = true;
    /// Maximum per-rank particle-count drift, as a fraction of the rank's
    /// previous count, under which the cached aggregation tree and
    /// aggregator assignment are reused (skipping gather→tree_build→
    /// scatter). Any rank whose bounds changed, whose empty/non-empty
    /// status flipped, or whose count drifted more forces a full replan.
    double max_rank_drift = 0.3;
    /// Every keyframe_interval-th step a series writes full (all-inline)
    /// BAT files, bounding how far back a delta chain can reach. Enforced
    /// by SeriesWriter via force_keyframe.
    int keyframe_interval = 8;
    /// When set, this step writes full files regardless of hash matches
    /// (delta detection still runs so the next step has fresh hashes).
    bool force_keyframe = false;
};

struct WriterConfig {
    AggStrategy strategy = AggStrategy::adaptive;
    AggTreeConfig tree;  // target file size etc.; bytes_per_particle is
                         // overwritten from the particle schema
    BatConfig bat;
    std::filesystem::path directory;
    std::string basename = "particles";
    ThreadPool* pool = nullptr;  // parallelizes tree + BAT builds
    DeltaWriteConfig delta;  // incremental-series behavior (needs a WritePlan)
};

/// Per-rank wall-clock seconds spent in each pipeline component (the
/// categories of the paper's Fig 6/10/12 breakdowns).
struct WritePhaseTimings {
    double gather = 0;      // counts/bounds gather
    double tree_build = 0;  // aggregation structure build (rank 0)
    double scatter = 0;     // assignment scatter
    double transfer = 0;    // particle transfer to aggregators
    double bat_build = 0;   // BAT construction on aggregators
    double file_write = 0;  // writing aggregator files
    double metadata = 0;    // top-level metadata population
    /// Sub-phase breakdown of bat_build (bat.* spans; not part of total()).
    BatBuildTimings bat;

    double total() const {
        return gather + tree_build + scatter + transfer + bat_build + file_write + metadata;
    }
    WritePhaseTimings& operator+=(const WritePhaseTimings& o);
    /// Component-wise max (for "slowest rank" reductions).
    static WritePhaseTimings max(const WritePhaseTimings& a, const WritePhaseTimings& b);
};

struct WriteResult {
    WritePhaseTimings timings;           // this rank's timings
    std::filesystem::path metadata_path; // valid on every rank
    std::uint64_t bytes_written = 0;     // bytes written by this rank: leaf
                                         // files + (on rank 0) the .batmeta
    int num_leaves = 0;                  // total output files
    int my_leaf = -1;                    // leaf this rank's data went to
    // Incremental-write effectiveness for this step (zero without a plan):
    bool reused_plan = false;            // gather→tree→scatter skipped
    std::uint64_t delta_treelets_clean = 0;    // this rank, written by reference
    std::uint64_t delta_treelets_written = 0;  // this rank, written inline
    std::uint64_t delta_bytes_saved = 0;       // this rank, estimated
    int leaves_unchanged = 0;            // leaves whose file was not rewritten
};

namespace io_detail {
struct WritePlanState;
}

class WritePlan;

/// Collective: write one timestep. `local_bounds` is this rank's domain
/// box (not the tight particle bounds; ranks may own empty regions).
WriteResult write_particles(vmpi::Comm& comm, const ParticleSet& local,
                            const Box& local_bounds, const WriterConfig& config);

/// Collective, incremental: like write_particles, but carries state from
/// the previous step in `plan` (owned by the caller, one per rank, reused
/// across steps). When the per-rank drift stays under
/// DeltaWriteConfig::max_rank_drift the cached aggregation tree and
/// aggregator assignment are reused, and unchanged treelets are written as
/// references into the prior step's files (see bat_file.hpp). A null plan
/// degrades to the one-shot path.
WriteResult write_particles(vmpi::Comm& comm, const ParticleSet& local,
                            const Box& local_bounds, const WriterConfig& config,
                            WritePlan* plan);

/// Per-rank carry-over state of an incremental write series: the previous
/// step's rank info, aggregator assignment, and per-leaf treelet content
/// hashes + physical treelet locations. Opaque; create one per rank and
/// pass it to every step's write_particles.
class WritePlan {
public:
    WritePlan();
    ~WritePlan();
    WritePlan(WritePlan&&) noexcept;
    WritePlan& operator=(WritePlan&&) noexcept;

    /// True once a step has populated the plan (the next step may reuse it).
    bool valid() const;
    /// Drop all cached state; the next write runs the full pipeline.
    void reset();

private:
    friend WriteResult write_particles(vmpi::Comm&, const ParticleSet&, const Box&,
                                       const WriterConfig&, WritePlan*);
    std::unique_ptr<io_detail::WritePlanState> state_;
};

/// Build the aggregation structure for a strategy (exposed for benchmarks
/// and the performance model, which run it over full-scale rank metadata).
Aggregation build_aggregation(std::span<const RankInfo> ranks, AggStrategy strategy,
                              const AggTreeConfig& tree_config, ThreadPool* pool = nullptr);

/// Recommend a target file size from the workload (paper §VI-A2 guidance
/// and §VII future work, "automatically selecting the target size based on
/// the particle count and size using the results of our evaluation"):
/// roughly 1:1-4:1 aggregation factors at low core/particle counts, 16:1 or
/// higher at larger scales, increased correspondingly when particles are
/// added over the run. Returns a power-of-two byte count.
std::uint64_t recommend_target_size(std::uint64_t total_particles,
                                    std::uint64_t bytes_per_particle, int nranks);

/// Serial (single-process) writer: runs the same aggregation + BAT-build +
/// metadata code path over a globally available particle set partitioned
/// into per-rank pieces. Used by visualization benchmarks and examples to
/// produce data sets "written at N ranks" without running N threads.
WriteResult write_particles_serial(std::span<const ParticleSet> per_rank,
                                   std::span<const Box> rank_bounds,
                                   const WriterConfig& config);

}  // namespace bat
