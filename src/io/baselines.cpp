#include "io/baselines.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/mmap_file.hpp"

namespace bat {

namespace {

std::filesystem::path fpp_file(const std::filesystem::path& dir, const std::string& basename,
                               int rank) {
    return dir / (basename + "_rank" + std::to_string(rank) + ".part");
}

void pwrite_all(int fd, std::span<const std::byte> bytes, std::uint64_t offset) {
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n = ::pwrite(fd, bytes.data() + done, bytes.size() - done,
                                   static_cast<off_t>(offset + done));
        BAT_CHECK_MSG(n > 0, "pwrite failed: " << std::strerror(errno));
        done += static_cast<std::size_t>(n);
    }
}

void pread_all(int fd, std::span<std::byte> bytes, std::uint64_t offset) {
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n = ::pread(fd, bytes.data() + done, bytes.size() - done,
                                  static_cast<off_t>(offset + done));
        BAT_CHECK_MSG(n > 0, "pread failed: " << std::strerror(errno));
        done += static_cast<std::size_t>(n);
    }
}

}  // namespace

std::uint64_t fpp_write(vmpi::Comm& comm, const ParticleSet& local,
                        const std::filesystem::path& dir, const std::string& basename) {
    std::filesystem::create_directories(dir);
    comm.barrier();  // ensure the directory exists before anyone opens files
    const std::vector<std::byte> bytes = local.to_bytes();
    write_file(fpp_file(dir, basename, comm.rank()), bytes);
    // Manifest so readers know the writer count.
    const auto count = static_cast<std::uint64_t>(local.count());
    std::vector<std::uint64_t> counts = comm.gather(count, 0);
    if (comm.rank() == 0) {
        BufferWriter w;
        w.write(static_cast<std::uint32_t>(comm.size()));
        w.write_span(std::span<const std::uint64_t>(counts));
        write_file(dir / (basename + ".manifest"), w.bytes());
    }
    comm.barrier();
    return bytes.size();
}

ParticleSet fpp_read(vmpi::Comm& comm, const std::filesystem::path& dir,
                     const std::string& basename, int shift) {
    const std::vector<std::byte> manifest = read_file(dir / (basename + ".manifest"));
    BufferReader r(manifest);
    const auto nwriters = r.read<std::uint32_t>();
    BAT_CHECK_MSG(static_cast<int>(nwriters) == comm.size(),
                  "fpp_read requires the writer rank count (" << nwriters << ")");
    const int src = (comm.rank() + shift) % comm.size();
    return ParticleSet::from_bytes(read_file(fpp_file(dir, basename, src)));
}

std::uint64_t shared_write(vmpi::Comm& comm, const ParticleSet& local,
                           const std::filesystem::path& path) {
    const std::vector<std::byte> block = local.to_bytes();
    const auto my_size = static_cast<std::uint64_t>(block.size());
    // Exclusive scan of block sizes to find each rank's offset. The header
    // (rank directory) precedes the data region.
    std::vector<std::uint64_t> sizes = comm.gather(my_size, 0);
    const std::size_t header_bytes =
        8 + static_cast<std::size_t>(comm.size()) * 16;  // magic+count, (offset, size)*
    std::vector<vmpi::Bytes> offset_msgs;
    if (comm.rank() == 0) {
        std::vector<std::uint64_t> offsets(sizes.size());
        std::uint64_t pos = header_bytes;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            offsets[i] = pos;
            pos += sizes[i];
        }
        // Rank 0 creates the file and writes the directory.
        BufferWriter w;
        w.write(static_cast<std::uint32_t>(0x52414853));  // "SHAR"
        w.write(static_cast<std::uint32_t>(comm.size()));
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            w.write(offsets[i]);
            w.write(sizes[i]);
        }
        write_file(path, w.bytes());
        offset_msgs.resize(sizes.size());
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            BufferWriter ow;
            ow.write(offsets[i]);
            offset_msgs[i] = ow.take();
        }
    }
    const vmpi::Bytes offset_msg = comm.scatterv(std::move(offset_msgs), 0);
    BufferReader orr(offset_msg);
    const auto my_offset = orr.read<std::uint64_t>();

    const int fd = ::open(path.c_str(), O_WRONLY);
    BAT_CHECK_MSG(fd >= 0, "open(" << path << ") failed: " << std::strerror(errno));
    pwrite_all(fd, block, my_offset);
    ::close(fd);
    comm.barrier();
    return block.size();
}

ParticleSet shared_read(vmpi::Comm& comm, const std::filesystem::path& path, int shift) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    BAT_CHECK_MSG(fd >= 0, "open(" << path << ") failed: " << std::strerror(errno));
    std::vector<std::byte> head(8);
    pread_all(fd, head, 0);
    BufferReader hr(head);
    BAT_CHECK_MSG(hr.read<std::uint32_t>() == 0x52414853, "not a shared particle file");
    const auto nwriters = hr.read<std::uint32_t>();
    BAT_CHECK_MSG(static_cast<int>(nwriters) == comm.size(),
                  "shared_read requires the writer rank count (" << nwriters << ")");
    const int src = (comm.rank() + shift) % comm.size();
    std::vector<std::byte> entry(16);
    pread_all(fd, entry, 8 + static_cast<std::uint64_t>(src) * 16);
    BufferReader er(entry);
    const auto offset = er.read<std::uint64_t>();
    const auto size = er.read<std::uint64_t>();
    std::vector<std::byte> block(size);
    pread_all(fd, block, offset);
    ::close(fd);
    return ParticleSet::from_bytes(block);
}

}  // namespace bat
