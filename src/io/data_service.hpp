#pragma once
// Distributed in situ data access (paper §IV-B: "This query mechanism can
// also be leveraged to enable distributed data access for in situ
// analytics").
//
// A DataService wraps the client-server query machinery of the parallel
// read pipeline into a reusable collective: every rank acts as a data
// server for the leaf files assigned to it (read-aggregator assignment,
// §IV-A), and any rank can pose full BAT queries — spatial box, attribute
// filters, progressive quality windows — against the whole data set. Each
// query_round() is a collective in which every rank submits one query
// (possibly an empty one) and receives its matching particles; servers keep
// serving until a nonblocking barrier confirms that every rank got its
// responses.
//
// Requests are coalesced (one message per distinct aggregator per round)
// and, when a ThreadPool is supplied, leaf evaluations run on workers while
// the comm loop keeps progressing — results are byte-identical to the
// serial path because responses are keyed by request id and ingested in
// request order.

#include <filesystem>
#include <optional>

#include "core/bat_query.hpp"
#include "core/metadata.hpp"
#include "vmpi/comm.hpp"

namespace bat {

class LeafFileCache;
class ThreadPool;

class DataService {
public:
    /// Collective: every rank of `comm` constructs the service against the
    /// same metadata file. `pool` (optional) serves leaf queries on worker
    /// threads; `cache` (optional) overrides the process-global leaf-file
    /// cache.
    DataService(vmpi::Comm& comm, const std::filesystem::path& metadata_path,
                ThreadPool* pool = nullptr, LeafFileCache* cache = nullptr);

    const Metadata& metadata() const { return meta_; }

    /// Collective: run one query round. Ranks that want nothing this round
    /// pass std::nullopt. Returns this rank's matching particles (in file
    /// attribute order).
    ParticleSet query_round(const std::optional<BatQuery>& query);

    /// Leaves this rank serves.
    const std::vector<int>& served_leaves() const { return my_leaves_; }

private:
    vmpi::Comm& comm_;
    std::filesystem::path dir_;
    Metadata meta_;
    ThreadPool* pool_;
    LeafFileCache* cache_;
    std::vector<int> leaf_aggregator_;  // per leaf
    std::vector<int> my_leaves_;
};

}  // namespace bat
