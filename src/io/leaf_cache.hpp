#pragma once
// Shared, capped LRU cache of memory-mapped BAT leaf files.
//
// Both collective reads (read_particles) and the in situ DataService serve
// repeated queries against the same leaf files; reopening (and re-mmapping)
// a file per collective throws the page cache warmth away and re-parses the
// directory structures. One process-wide cache keeps the hottest mappings
// alive across collectives and services, bounded by an LRU capacity so a
// long-running viewer touching thousands of leaves cannot exhaust address
// space.
//
// open() returns shared ownership so an entry evicted while another thread
// still queries it stays mapped until that query finishes — BatFile itself
// is immutable after construction, so concurrent queries need no locking.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/bat_file.hpp"
#include "util/lock_order.hpp"

namespace bat {

class LeafFileCache {
public:
    static constexpr std::size_t kDefaultCapacity = 128;

    explicit LeafFileCache(std::size_t capacity = kDefaultCapacity);

    /// Open (or reuse) the BAT file at `path`. Thread-safe. On a miss the
    /// file's on-disk size is added to `*bytes_read` when non-null — cache
    /// hits touch no file metadata and add nothing. Records the
    /// `read.leaf_cache_hit` / `read.leaf_cache_miss` obs counters.
    std::shared_ptr<const BatFile> open(const std::filesystem::path& path,
                                        std::atomic<std::uint64_t>* bytes_read = nullptr);

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    void clear();

    /// Process-wide cache shared by read_particles and DataService.
    static LeafFileCache& global();

private:
    struct Entry {
        std::shared_ptr<const BatFile> file;
        std::uint64_t last_use = 0;
    };

    // CheckedMutex: participates in lock-order checking and, under schedule
    // exploration, gives the race checker the release→acquire edges that
    // order the note_access annotations on the entry map.
    mutable CheckedMutex mutex_{"io.leafcache"};
    std::map<std::string, Entry> entries_;
    std::uint64_t tick_ = 0;
    std::size_t capacity_;
};

}  // namespace bat
