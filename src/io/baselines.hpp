#pragma once
// Baseline I/O strategies the paper benchmarks against (via IOR): file per
// process and a single shared file (§VI-A1). These are real, functional
// implementations over the same virtual-MPI substrate, used both for
// correctness comparisons and to give the performance model concrete access
// patterns. Neither preserves spatial locality nor writes any query
// acceleration structure — the exact shortcomings the paper's layout fixes.

#include <filesystem>
#include <string>

#include "core/particles.hpp"
#include "vmpi/comm.hpp"

namespace bat {

// ---- file per process -------------------------------------------------------

/// Each rank writes its particles to `<dir>/<basename>_rank<r>.part`; rank 0
/// additionally writes a manifest with per-rank counts. Returns bytes
/// written by this rank.
std::uint64_t fpp_write(vmpi::Comm& comm, const ParticleSet& local,
                        const std::filesystem::path& dir, const std::string& basename);

/// Each rank reads the file written by rank `(rank + shift) % size` —
/// the paper's benchmarks read on a different rank than wrote to avoid OS
/// cache effects.
ParticleSet fpp_read(vmpi::Comm& comm, const std::filesystem::path& dir,
                     const std::string& basename, int shift = 0);

// ---- single shared file -----------------------------------------------------

/// All ranks write into one shared file at exclusive offsets (the MPI-IO
/// pattern: offsets from an exclusive scan of the per-rank block sizes,
/// then concurrent pwrite). Rank 0 writes a directory of rank offsets.
std::uint64_t shared_write(vmpi::Comm& comm, const ParticleSet& local,
                           const std::filesystem::path& path);

/// Each rank preads the block written by rank `(rank + shift) % size`.
ParticleSet shared_read(vmpi::Comm& comm, const std::filesystem::path& path, int shift = 0);

}  // namespace bat
