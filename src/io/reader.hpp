#pragma once
// Two-phase parallel read pipeline (paper §IV, Fig 3), mirroring the write:
//
//   (a) all ranks read the Aggregation Tree metadata and locally compute
//       the read-aggregator assignment: with more ranks than leaf files,
//       aggregators are spread evenly through the rank space (as in the
//       write phase); with fewer ranks than files, contiguous blocks of
//       leaves go to each rank (neighboring leaves share an aggregator,
//       preserving the spatial locality the write phase established) — so
//       data can be read at much larger or smaller core counts than it was
//       written with;
//   (b) each rank determines which leaves overlap its bounds and sends ONE
//       coalesced request per distinct read aggregator, carrying all the
//       leaf ids it needs from that rank (O(aggregators) messages instead
//       of O(leaves));
//   (c) read aggregators run a client–server loop on nonblocking MPI-style
//       calls: incoming requests are fanned out per leaf to a thread pool
//       (when one is configured) while the comm loop keeps progressing
//       probes, responses, and the round barrier; each multi-leaf response
//       is isent as soon as its last leaf finishes. Once a rank has
//       received all of its own responses it enters a nonblocking barrier,
//       continuing to serve until the barrier completes. Responses are
//       keyed by request id, so results are byte-identical regardless of
//       thread scheduling or arrival order. Self-queries run locally after
//       exiting the loop.

#include <filesystem>

#include "core/metadata.hpp"
#include "core/particles.hpp"
#include "vmpi/comm.hpp"

namespace bat {

class LeafFileCache;
class ThreadPool;

struct ReaderConfig {
    /// Half-open containment ([lo, hi) per axis) makes non-overlapping
    /// restart decompositions partition the particles exactly once.
    bool half_open = true;
    /// Pool that leaf queries are fanned out to while serving (and that the
    /// local self-queries bulk-append through). nullptr = serve serially on
    /// the comm thread; results are byte-identical either way.
    ThreadPool* pool = nullptr;
    /// Batch all leaves requested from one aggregator into a single
    /// request/response pair. Per-leaf mode (false) exists for benchmarks
    /// and A/B comparisons only.
    bool coalesce = true;
    /// Leaf-file cache reused across collective reads; nullptr = the
    /// process-global LeafFileCache.
    LeafFileCache* cache = nullptr;
};

struct ReadPhaseTimings {
    double metadata = 0;  // reading + parsing the metadata file
    double request = 0;   // overlap computation + coalesced query sends
    double serve = 0;     // server loop (incl. file reads + transfers)
    double merge = 0;     // zero-copy ingestion of buffered responses
    double local = 0;     // self-queries after the loop

    double total() const { return metadata + request + serve + merge + local; }

    /// Component-wise max (slowest rank per phase, for benchmark reports).
    static ReadPhaseTimings max(const ReadPhaseTimings& a, const ReadPhaseTimings& b);
};

struct ReadResult {
    ParticleSet particles;
    ReadPhaseTimings timings;
    std::uint64_t bytes_read = 0;  // file bytes this rank read as aggregator
};

/// Collective: every rank reads the particles overlapping `my_bounds`.
ReadResult read_particles(vmpi::Comm& comm, const std::filesystem::path& metadata_path,
                          const Box& my_bounds, const ReaderConfig& config = {});

/// The read-aggregator assignment rule (§IV-A), exposed for tests:
/// returns the rank assigned to each leaf file.
std::vector<int> assign_read_aggregators(int num_leaves, int nranks);

}  // namespace bat
