#pragma once
// Two-phase parallel read pipeline (paper §IV, Fig 3), mirroring the write:
//
//   (a) all ranks read the Aggregation Tree metadata and locally compute
//       the read-aggregator assignment: with more ranks than leaf files,
//       aggregators are spread evenly through the rank space (as in the
//       write phase); with fewer ranks than files, files are distributed
//       evenly among the ranks — so data can be read at much larger or
//       smaller core counts than it was written with;
//   (b) each rank determines which leaves overlap its bounds and sends its
//       query box to the read aggregator assigned to each leaf;
//   (c) read aggregators run a client–server loop on nonblocking MPI-style
//       calls: serve incoming spatial queries from their leaf files, and
//       once a rank has received all of its own responses it enters a
//       nonblocking barrier, continuing to serve until the barrier
//       completes. Self-queries run locally after exiting the loop.

#include <filesystem>

#include "core/metadata.hpp"
#include "core/particles.hpp"
#include "vmpi/comm.hpp"

namespace bat {

struct ReaderConfig {
    /// Half-open containment ([lo, hi) per axis) makes non-overlapping
    /// restart decompositions partition the particles exactly once.
    bool half_open = true;
};

struct ReadPhaseTimings {
    double metadata = 0;  // reading + parsing the metadata file
    double request = 0;   // overlap computation + query sends
    double serve = 0;     // server loop (incl. file reads + transfers)
    double local = 0;     // self-queries after the loop

    double total() const { return metadata + request + serve + local; }
};

struct ReadResult {
    ParticleSet particles;
    ReadPhaseTimings timings;
    std::uint64_t bytes_read = 0;  // file bytes this rank read as aggregator
};

/// Collective: every rank reads the particles overlapping `my_bounds`.
ReadResult read_particles(vmpi::Comm& comm, const std::filesystem::path& metadata_path,
                          const Box& my_bounds, const ReaderConfig& config = {});

/// The read-aggregator assignment rule (§IV-A), exposed for tests:
/// returns the rank assigned to each leaf file.
std::vector<int> assign_read_aggregators(int num_leaves, int nranks);

}  // namespace bat
