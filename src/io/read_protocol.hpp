#pragma once
// Internal wire protocol and serving engine shared by the parallel read
// path (io/reader) and the in situ DataService (io/data_service).
//
// Coalescing: a client groups every leaf it needs from the same aggregator
// into ONE request message carrying the leaf-id list plus the query, so the
// message count drops from O(overlapped leaves) to O(aggregators). The
// response packs one serialized ParticleSet payload per requested leaf, in
// request order, and echoes the client-chosen `seq` so clients can key
// responses to requests deterministically regardless of completion order.
//
// LeafServer fans the per-leaf query evaluations of incoming requests out
// to a ThreadPool while the owning rank's comm loop keeps progressing
// probes and the round barrier (the paper's overlap of serving with
// communication, §IV-B). Workers only fill byte buffers; every vmpi call
// stays on the comm thread, which vmpi requires.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/bat_query.hpp"
#include "obs/query_trace.hpp"
#include "util/thread_pool.hpp"
#include "vmpi/comm.hpp"

namespace bat::io_detail {

struct LeafRequest {
    /// Client-chosen id echoed by the response (index into the client's
    /// outstanding-request table).
    std::uint32_t seq = 0;
    std::vector<std::int32_t> leaves;
    BatQuery query;
    /// Originating query identity, carried on the wire so the serving rank
    /// attributes its leaf evaluations (spans, cache notes, pool time) to
    /// the query that asked, not to the rank doing the work.
    obs::QueryContext ctx;
};

vmpi::Bytes encode_request(const LeafRequest& req);
LeafRequest decode_request(std::span<const std::byte> bytes);

/// parts[i] is the serialized ParticleSet payload for the request's i-th
/// leaf. An empty part means the server failed on that leaf (the error is
/// rethrown server-side; clients skip empty parts).
vmpi::Bytes encode_response(std::uint32_t seq, std::span<const vmpi::Bytes> parts);

struct ResponseView {
    std::uint32_t seq = 0;
    std::vector<std::span<const std::byte>> parts;  // views into the payload
};
ResponseView decode_response(std::span<const std::byte> bytes);

/// The seq of a response payload without decoding the parts.
std::uint32_t peek_response_seq(std::span<const std::byte> bytes);

/// Merge response payloads into `out` in the given order with one resize
/// and ParticleSet::deserialize_into per part — no intermediate sets.
void merge_responses(ParticleSet& out, std::span<const vmpi::Bytes> payloads);

/// Serves coalesced leaf requests arriving on `request_tag`, answering on
/// `response_tag`. Each progress() call drains every iprobe-able request,
/// fans its leaf evaluations to `pool` (nullptr or zero workers = evaluate
/// inline, the serial path), and isends any response whose last part has
/// finished. Responses leave in per-destination request order only as a
/// side effect of job scan order; correctness rests on seq keying, not
/// ordering.
class LeafServer {
public:
    /// serve_leaf runs on pool workers: it must not touch the Comm and must
    /// be safe to call concurrently for different leaves.
    using ServeLeafFn = std::function<vmpi::Bytes(std::int32_t, const BatQuery&)>;

    LeafServer(vmpi::Comm& comm, int request_tag, int response_tag, ThreadPool* pool,
               ServeLeafFn serve_leaf);

    /// Drain requests, send finished responses. Returns true if any message
    /// moved (the caller's loop yields otherwise).
    bool progress();

    /// Run one queued pool task on the calling (comm) thread. Called by the
    /// serve loop when progress() moved nothing: instead of yielding its
    /// timeslice the comm thread helps compute leaf responses, which keeps
    /// the pooled path from losing to serial serving on starved machines.
    /// Returns false when serving inline or the pool queue was empty.
    bool help();

    /// No response is still being computed or waiting to be sent.
    bool idle() const { return jobs_.empty(); }

    /// Wait out remaining worker tasks, send the last responses, and
    /// rethrow the first serve_leaf error, if any. Call after the round
    /// barrier completes (at which point no new request can arrive).
    void finish();

    std::uint64_t requests_served() const { return requests_served_; }
    std::uint64_t leaves_served() const { return leaves_served_; }
    std::uint64_t bytes_shipped() const { return bytes_shipped_; }

private:
    struct Job {
        int src = -1;
        std::uint32_t seq = 0;
        std::vector<std::int32_t> leaves;
        BatQuery query;
        obs::QueryContext ctx;
        std::vector<vmpi::Bytes> parts;
        std::atomic<std::size_t> remaining{0};
    };

    void start_job(int src, const vmpi::Bytes& payload);
    bool send_ready();

    vmpi::Comm& comm_;
    int request_tag_;
    int response_tag_;
    ThreadPool* pool_;
    ServeLeafFn serve_leaf_;
    std::optional<TaskGroup> group_;
    std::vector<std::unique_ptr<Job>> jobs_;
    std::uint64_t requests_served_ = 0;
    std::uint64_t leaves_served_ = 0;
    std::uint64_t bytes_shipped_ = 0;
    std::mutex err_mutex_;
    std::exception_ptr first_error_;
};

}  // namespace bat::io_detail
