#include "io/reader.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <utility>

#include "core/bat_file.hpp"
#include "core/bat_query.hpp"
#include "io/leaf_cache.hpp"
#include "io/read_protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace bat {

namespace {

constexpr int kTagReadRequest = 2;
constexpr int kTagReadResponse = 3;

/// Sink appending query results to `out`, with the contiguous-range fast
/// path bulk-appending whole treelet windows.
QuerySink particle_sink(ParticleSet& out) {
    QuerySink sink;
    sink.point = [&out](Vec3 p, std::span<const double> attrs) { out.push_back(p, attrs); };
    sink.range = [&out](const BatTreeletView& view, std::uint32_t begin, std::uint32_t end) {
        obs::query_note_fastpath_window();
        const std::uint32_t n = end - begin;
        std::vector<std::span<const double>> cols;
        cols.reserve(view.attrs.size());
        for (const std::span<const double> a : view.attrs) {
            cols.push_back(a.subspan(begin, n));
        }
        out.append_block(view.positions.subspan(3 * std::size_t{begin}, 3 * std::size_t{n}),
                         cols);
    };
    return sink;
}

}  // namespace

ReadPhaseTimings ReadPhaseTimings::max(const ReadPhaseTimings& a,
                                       const ReadPhaseTimings& b) {
    ReadPhaseTimings m;
    m.metadata = std::max(a.metadata, b.metadata);
    m.request = std::max(a.request, b.request);
    m.serve = std::max(a.serve, b.serve);
    m.merge = std::max(a.merge, b.merge);
    m.local = std::max(a.local, b.local);
    return m;
}

std::vector<int> assign_read_aggregators(int num_leaves, int nranks) {
    BAT_CHECK(nranks > 0);
    std::vector<int> agg(static_cast<std::size_t>(num_leaves));
    if (num_leaves <= nranks) {
        // Spread the aggregators evenly through the rank space, as in the
        // write phase.
        for (int i = 0; i < num_leaves; ++i) {
            agg[static_cast<std::size_t>(i)] = static_cast<int>(
                (static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(nranks)) /
                static_cast<std::uint64_t>(num_leaves));
        }
    } else {
        // Fewer ranks than files: contiguous blocks of leaves per rank, so
        // spatially neighboring leaves (the write phase orders leaves along
        // the aggregation tree) share an aggregator and a client's requests
        // concentrate on few servers. The first `extra` ranks take one more
        // leaf each.
        const int base = num_leaves / nranks;
        const int extra = num_leaves % nranks;
        int leaf = 0;
        for (int r = 0; r < nranks; ++r) {
            const int take = base + (r < extra ? 1 : 0);
            for (int i = 0; i < take; ++i) {
                agg[static_cast<std::size_t>(leaf++)] = r;
            }
        }
    }
    return agg;
}

ReadResult read_particles(vmpi::Comm& comm, const std::filesystem::path& metadata_path,
                          const Box& my_bounds, const ReaderConfig& config) {
    ReadResult result;
    ReadPhaseTimings& timings = result.timings;
    auto& metrics = obs::MetricsRegistry::global();
    // One read_particles call is one query (see obs/query_trace.hpp): its
    // identity rides in every leaf request so remote serve work, cache
    // traffic, and pool time are attributed back to this call.
    const obs::QueryContext qctx = obs::query_begin(comm.rank());
    obs::QueryScope qscope(qctx);
    const std::uint64_t q_start_ns = obs::trace_now_ns();

    // Phase spans populate ReadPhaseTimings and, under BAT_TRACE, the
    // per-rank trace timeline (same pattern as write_particles).

    // ---- (a) metadata + local aggregator assignment ------------------------
    obs::PhaseSpan metadata_span("read.metadata", &timings.metadata);
    const Metadata meta = Metadata::load(metadata_path);
    const std::vector<int> leaf_aggregator =
        assign_read_aggregators(static_cast<int>(meta.leaves.size()), comm.size());
    metadata_span.close();

    result.particles = ParticleSet(meta.attr_names);

    BatQuery leaf_query;
    leaf_query.box = my_bounds;
    leaf_query.inclusive_upper = !config.half_open;

    // ---- (b) find overlapped leaves; send coalesced requests ---------------
    obs::PhaseSpan request_span("read.request", &timings.request);
    const std::vector<int> my_leaves = meta.query_leaves(my_bounds);
    std::vector<int> local_leaves;  // leaves this rank serves to itself
    // One request per distinct aggregator (in first-appearance order over
    // the ascending leaf list), or one per leaf when coalescing is off.
    std::vector<std::pair<int, std::vector<std::int32_t>>> requests;
    std::map<int, std::size_t> request_of_aggregator;
    for (int leaf : my_leaves) {
        const int aggregator = leaf_aggregator[static_cast<std::size_t>(leaf)];
        if (aggregator == comm.rank()) {
            local_leaves.push_back(leaf);
            continue;
        }
        if (!config.coalesce) {
            requests.emplace_back(aggregator, std::vector<std::int32_t>{leaf});
            continue;
        }
        const auto [it, fresh] = request_of_aggregator.try_emplace(aggregator, requests.size());
        if (fresh) {
            requests.emplace_back(aggregator, std::vector<std::int32_t>{});
        }
        requests[it->second].second.push_back(leaf);
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
        io_detail::LeafRequest req;
        req.seq = static_cast<std::uint32_t>(i);
        req.leaves = requests[i].second;
        req.query = leaf_query;
        req.ctx = qctx;
        comm.isend(requests[i].first, kTagReadRequest, io_detail::encode_request(req));
    }
    metrics.counter("read.request_msgs").add(static_cast<std::int64_t>(requests.size()));
    request_span.close();
    const std::uint64_t request_done_ns = obs::trace_now_ns();

    // ---- (c) client-server loop --------------------------------------------
    obs::PhaseSpan serve_span("read.serve", &timings.serve);
    LeafFileCache& cache = config.cache != nullptr ? *config.cache : LeafFileCache::global();
    const std::filesystem::path dir = metadata_path.parent_path();
    std::atomic<std::uint64_t> bytes_read{0};
    const auto serve_leaf = [&](std::int32_t leaf, const BatQuery& query) {
        BAT_CHECK_MSG(leaf >= 0 && static_cast<std::size_t>(leaf) < meta.leaves.size(),
                      "leaf id out of range in read request");
        const auto file = cache.open(dir / meta.leaves[static_cast<std::size_t>(leaf)].file,
                                     &bytes_read);
        ParticleSet out(meta.attr_names);
        query_bat(*file, query, particle_sink(out));
        return out.to_bytes();
    };
    io_detail::LeafServer server(comm, kTagReadRequest, kTagReadResponse, config.pool,
                                 serve_leaf);
    // Buffered raw responses, slotted by request seq: ingestion order below
    // is the request-issue order, independent of arrival order.
    std::vector<vmpi::Bytes> responses(requests.size());
    std::size_t pending = requests.size();
    vmpi::Request barrier;
    bool in_barrier = false;
    if (pending == 0) {
        barrier = comm.ibarrier();
        in_barrier = true;
    }
    for (;;) {
        bool progressed = server.progress();
        int src = -1;
        if (pending > 0 && comm.iprobe(vmpi::kAnySource, kTagReadResponse, &src)) {
            progressed = true;
            vmpi::Bytes payload = comm.recv(src, kTagReadResponse);
            const std::uint32_t seq = io_detail::peek_response_seq(payload);
            BAT_CHECK_MSG(seq < responses.size() && responses[seq].empty(),
                          "unexpected response seq " << seq);
            responses[seq] = std::move(payload);
            if (--pending == 0) {
                barrier = comm.ibarrier();
                in_barrier = true;
            }
        }
        if (in_barrier && server.idle() && barrier.test()) {
            break;
        }
        if (!progressed && !server.help()) {
            std::this_thread::yield();
        }
    }
    server.finish();
    metrics.counter("read.response_msgs")
        .add(static_cast<std::int64_t>(server.requests_served()));
    metrics.counter("read.leaves_served").add(static_cast<std::int64_t>(server.leaves_served()));
    serve_span.close();
    const std::uint64_t serve_done_ns = obs::trace_now_ns();

    // ---- zero-copy ingestion of the buffered responses ---------------------
    obs::PhaseSpan merge_span("read.merge", &timings.merge);
    io_detail::merge_responses(result.particles, responses);
    merge_span.close();
    const std::uint64_t merge_done_ns = obs::trace_now_ns();

    // ---- self-queries after exiting the server loop (§IV-B) ----------------
    obs::PhaseSpan local_span("read.local", &timings.local);
    const QuerySink sink = particle_sink(result.particles);
    for (int leaf : local_leaves) {
        const auto file =
            cache.open(dir / meta.leaves[static_cast<std::size_t>(leaf)].file, &bytes_read);
        query_bat(*file, leaf_query, sink);
    }
    local_span.close();
    const std::uint64_t q_end_ns = obs::trace_now_ns();

    result.bytes_read = bytes_read.load(std::memory_order_relaxed);
    obs::record_rank_value("read.bytes_read", result.bytes_read);
    obs::record_rank_value("read.leaves_served", server.leaves_served());

    obs::QueryRecord qrec;
    qrec.trace_id = qctx.trace_id;
    qrec.origin_rank = qctx.origin_rank;
    qrec.seq = qctx.seq;
    qrec.op = "read.read_particles";
    qrec.start_ns = q_start_ns;
    qrec.wall_ns = q_end_ns - q_start_ns;
    // Metadata load is folded into the request stage; the four stages tile
    // the wall time exactly.
    qrec.request_ns = request_done_ns - q_start_ns;
    qrec.serve_ns = serve_done_ns - request_done_ns;
    qrec.merge_ns = merge_done_ns - serve_done_ns;
    qrec.local_ns = q_end_ns - merge_done_ns;
    qrec.leaves_local = static_cast<std::uint32_t>(local_leaves.size());
    for (const auto& [aggregator, leaves] : requests) {
        qrec.leaves_remote += static_cast<std::uint32_t>(leaves.size());
    }
    qrec.request_msgs = static_cast<std::uint32_t>(requests.size());
    for (const vmpi::Bytes& payload : responses) {
        qrec.bytes_moved += payload.size();
    }
    qrec.particles = result.particles.count();
    obs::query_finalize(qrec);
    return result;
}

}  // namespace bat
