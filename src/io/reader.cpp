#include "io/reader.hpp"

#include <map>
#include <memory>
#include <thread>

#include "core/bat_file.hpp"
#include "core/bat_query.hpp"
#include "obs/trace.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"

namespace bat {

namespace {

constexpr int kTagReadRequest = 2;
constexpr int kTagReadResponse = 3;

struct ReadRequest {
    std::int32_t leaf_id = -1;
    Box box;
    std::uint8_t half_open = 0;

    vmpi::Bytes to_bytes() const {
        BufferWriter w;
        w.write(leaf_id);
        w.write(box.lower.x);
        w.write(box.lower.y);
        w.write(box.lower.z);
        w.write(box.upper.x);
        w.write(box.upper.y);
        w.write(box.upper.z);
        w.write(half_open);
        return w.take();
    }
    static ReadRequest from_bytes(std::span<const std::byte> bytes) {
        BufferReader r(bytes);
        ReadRequest req;
        req.leaf_id = r.read<std::int32_t>();
        req.box.lower.x = r.read<float>();
        req.box.lower.y = r.read<float>();
        req.box.lower.z = r.read<float>();
        req.box.upper.x = r.read<float>();
        req.box.upper.y = r.read<float>();
        req.box.upper.z = r.read<float>();
        req.half_open = r.read<std::uint8_t>();
        return req;
    }
};

/// Lazily opened leaf files held by a read aggregator for the duration of
/// one collective read.
class LeafFileCache {
public:
    LeafFileCache(const std::filesystem::path& dir, const Metadata& meta)
        : dir_(dir), meta_(meta) {}

    const BatFile& open(int leaf_id, std::uint64_t* bytes_read) {
        auto it = files_.find(leaf_id);
        if (it == files_.end()) {
            const auto& leaf = meta_.leaves[static_cast<std::size_t>(leaf_id)];
            auto file = std::make_unique<BatFile>(dir_ / leaf.file);
            if (bytes_read != nullptr) {
                *bytes_read += file->header().file_size;
            }
            it = files_.emplace(leaf_id, std::move(file)).first;
        }
        return *it->second;
    }

private:
    std::filesystem::path dir_;
    const Metadata& meta_;
    std::map<int, std::unique_ptr<BatFile>> files_;
};

/// Run a spatial query against one leaf file and pack the results.
vmpi::Bytes run_leaf_query(const BatFile& file, const ReadRequest& req,
                           const std::vector<std::string>& attr_names) {
    ParticleSet out(attr_names);
    BatQuery query;
    query.box = req.box;
    query.inclusive_upper = req.half_open == 0;
    query_bat(file, query,
              [&out](Vec3 p, std::span<const double> attrs) { out.push_back(p, attrs); });
    return out.to_bytes();
}

}  // namespace

std::vector<int> assign_read_aggregators(int num_leaves, int nranks) {
    BAT_CHECK(nranks > 0);
    std::vector<int> agg(static_cast<std::size_t>(num_leaves));
    if (num_leaves <= nranks) {
        // Spread the aggregators evenly through the rank space, as in the
        // write phase.
        for (int i = 0; i < num_leaves; ++i) {
            agg[static_cast<std::size_t>(i)] = static_cast<int>(
                (static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(nranks)) /
                static_cast<std::uint64_t>(num_leaves));
        }
    } else {
        // Fewer ranks than files: distribute the files evenly among ranks.
        for (int i = 0; i < num_leaves; ++i) {
            agg[static_cast<std::size_t>(i)] = i % nranks;
        }
    }
    return agg;
}

ReadResult read_particles(vmpi::Comm& comm, const std::filesystem::path& metadata_path,
                          const Box& my_bounds, const ReaderConfig& config) {
    ReadResult result;
    ReadPhaseTimings& timings = result.timings;

    // Phase spans populate ReadPhaseTimings and, under BAT_TRACE, the
    // per-rank trace timeline (same pattern as write_particles).

    // ---- (a) metadata + local aggregator assignment ------------------------
    obs::PhaseSpan metadata_span("read.metadata", &timings.metadata);
    const Metadata meta = Metadata::load(metadata_path);
    const std::vector<int> leaf_aggregator =
        assign_read_aggregators(static_cast<int>(meta.leaves.size()), comm.size());
    metadata_span.close();

    result.particles = ParticleSet(meta.attr_names);

    // ---- (b) find overlapped leaves; send requests -------------------------
    obs::PhaseSpan request_span("read.request", &timings.request);
    const std::vector<int> my_leaves = meta.query_leaves(my_bounds);
    std::vector<int> local_leaves;  // leaves this rank serves to itself
    int pending_responses = 0;
    for (int leaf : my_leaves) {
        const int aggregator = leaf_aggregator[static_cast<std::size_t>(leaf)];
        if (aggregator == comm.rank()) {
            local_leaves.push_back(leaf);
            continue;
        }
        ReadRequest req;
        req.leaf_id = leaf;
        req.box = my_bounds;
        req.half_open = config.half_open ? 1 : 0;
        comm.isend(aggregator, kTagReadRequest, req.to_bytes());
        ++pending_responses;
    }
    request_span.close();

    // ---- (c) client-server loop --------------------------------------------
    obs::PhaseSpan serve_span("read.serve", &timings.serve);
    LeafFileCache cache(metadata_path.parent_path(), meta);
    std::vector<ParticleSet> responses;
    vmpi::Request barrier;
    bool in_barrier = false;
    if (pending_responses == 0) {
        barrier = comm.ibarrier();
        in_barrier = true;
    }
    for (;;) {
        bool progressed = false;
        // Serve one incoming query, if any.
        int src = -1;
        if (comm.iprobe(vmpi::kAnySource, kTagReadRequest, &src)) {
            progressed = true;
            const vmpi::Bytes payload = comm.recv(src, kTagReadRequest);
            const ReadRequest req = ReadRequest::from_bytes(payload);
            const BatFile& file = cache.open(req.leaf_id, &result.bytes_read);
            comm.isend(src, kTagReadResponse, run_leaf_query(file, req, meta.attr_names));
        }
        // Collect any response addressed to us.
        if (pending_responses > 0 &&
            comm.iprobe(vmpi::kAnySource, kTagReadResponse, &src)) {
            progressed = true;
            const vmpi::Bytes payload = comm.recv(src, kTagReadResponse);
            responses.push_back(ParticleSet::from_bytes(payload));
            if (--pending_responses == 0) {
                barrier = comm.ibarrier();
                in_barrier = true;
            }
        }
        if (in_barrier && barrier.test()) {
            break;
        }
        if (!progressed) {
            std::this_thread::yield();
        }
    }
    for (ParticleSet& piece : responses) {
        result.particles.append(piece);
    }
    serve_span.close();

    // ---- self-queries after exiting the server loop (§IV-B) ----------------
    obs::PhaseSpan local_span("read.local", &timings.local);
    for (int leaf : local_leaves) {
        const BatFile& file = cache.open(leaf, &result.bytes_read);
        BatQuery query;
        query.box = my_bounds;
        query.inclusive_upper = !config.half_open;
        query_bat(file, query, [&result](Vec3 p, std::span<const double> attrs) {
            result.particles.push_back(p, attrs);
        });
    }
    local_span.close();
    return result;
}

}  // namespace bat
