#pragma once
// Synthetic Dam Break workload (paper §VI-A2, Fig 8b).
//
// The paper's Dam Break is an ExaMPM (Cabana) free-surface water column
// collapse: a *fixed* number of particles move through the domain over the
// time series, the domain is partitioned among ranks with a 2D grid along
// x and y (the floor), and the migrating column progressively imbalances
// the I/O workload. This generator reproduces those properties with a
// closed-form collapse model: a water column in one corner collapses, the
// front runs along the floor, reflects off the far wall, and sloshes back.
// Each particle carries 4 double attributes (velocity_x, velocity_z,
// pressure, density), matching the paper's schema.

#include <cstdint>
#include <vector>

#include "core/particles.hpp"
#include "util/vec3.hpp"

namespace bat {

struct DamBreakConfig {
    Box domain{{0.f, 0.f, 0.f}, {4.f, 1.f, 2.f}};
    /// Initial column: x in [0, column_width], full y, z in [0, column_height].
    float column_width = 0.8f;
    float column_height = 1.6f;
    std::uint64_t num_particles = 2'000'000;
    /// Timestep at which the collapse has fully run out (the paper's series
    /// spans timesteps 0..4001).
    int t_final = 4001;
    std::uint64_t seed = 0x44414d42;
};

std::vector<std::string> dambreak_attr_names();

/// Generate the full particle population at `timestep`.
ParticleSet make_dambreak_particles(const DamBreakConfig& config, int timestep);

/// Per-rank counts under the 2D x-y decomposition (full-scale modeling).
/// `max_sample` > 0 estimates from an evenly strided sample, scaled up.
std::vector<std::uint64_t> dambreak_rank_counts(const DamBreakConfig& config, int timestep,
                                                int nranks, std::uint64_t max_sample = 0);

}  // namespace bat
