#include "workloads/mixtures.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "workloads/uniform.hpp"

namespace bat {

ParticleSet make_mixture_particles(const Box& domain, std::span<const GaussianBlob> blobs,
                                   std::size_t n, std::size_t nattrs, std::uint64_t seed) {
    BAT_CHECK(!blobs.empty());
    BAT_CHECK(!domain.empty());
    double total_weight = 0.0;
    for (const GaussianBlob& b : blobs) {
        BAT_CHECK(b.weight >= 0.0);
        total_weight += b.weight;
    }
    BAT_CHECK(total_weight > 0.0);

    ParticleSet set(uniform_attr_names(nattrs));
    set.resize(n);
    Pcg32 rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        // Pick a blob by weight.
        double pick = rng.next_double() * total_weight;
        std::size_t blob = 0;
        for (; blob + 1 < blobs.size(); ++blob) {
            if (pick < blobs[blob].weight) {
                break;
            }
            pick -= blobs[blob].weight;
        }
        const GaussianBlob& b = blobs[blob];
        Vec3 p{b.center.x + b.sigma * rng.next_normal(),
               b.center.y + b.sigma * rng.next_normal(),
               b.center.z + b.sigma * rng.next_normal()};
        p.x = std::clamp(p.x, domain.lower.x, domain.upper.x);
        p.y = std::clamp(p.y, domain.lower.y, domain.upper.y);
        p.z = std::clamp(p.z, domain.lower.z, domain.upper.z);
        set.set_position(i, p);
    }
    assign_correlated_attrs(set, domain, seed);
    return set;
}

std::vector<GaussianBlob> make_random_blobs(const Box& domain, int k, std::uint64_t seed) {
    BAT_CHECK(k >= 1);
    Pcg32 rng(mix_seed(seed, 0xB10B));
    std::vector<GaussianBlob> blobs(static_cast<std::size_t>(k));
    const Vec3 ext = domain.extent();
    const float min_ext = std::min({ext.x, ext.y, ext.z});
    for (GaussianBlob& b : blobs) {
        b.center = {domain.lower.x + ext.x * rng.uniform(0.1f, 0.9f),
                    domain.lower.y + ext.y * rng.uniform(0.1f, 0.9f),
                    domain.lower.z + ext.z * rng.uniform(0.1f, 0.9f)};
        b.sigma = min_ext * rng.uniform(0.02f, 0.15f);
        b.weight = 0.2 + rng.next_double();
    }
    return blobs;
}

}  // namespace bat
