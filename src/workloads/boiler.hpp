#pragma once
// Synthetic Coal Boiler workload (paper §VI-A2, Fig 8a).
//
// The paper's Coal Boiler is a Uintah simulation injecting coal particles
// into a boiler: the particle count grows from 4.6M at timestep 501 to
// 41.5M at timestep 4501, the spatial distribution is strongly nonuniform
// (dense jets near the injectors, sparse elsewhere), and the 3D-grid rank
// decomposition is resized to the data bounds each timestep. This generator
// reproduces those I/O-relevant properties with a deterministic closed-form
// trajectory model: particles are injected at a constant rate from wall
// nozzles, advected toward the far wall with swirl and gravity droop, and
// accumulate near the outlet. Each particle carries 7 double attributes
// (temperature, velocity magnitude, mass, char fraction, O2, CO2,
// residence time), matching the paper's schema.

#include <cstdint>
#include <vector>

#include "core/particles.hpp"
#include "util/vec3.hpp"

namespace bat {

struct BoilerConfig {
    Box domain{{0.f, 0.f, 0.f}, {4.f, 4.f, 12.f}};
    int num_nozzles = 6;
    /// Timestep range of the paper's time series and the particle counts at
    /// its ends; counts scale linearly between them. Defaults are scaled
    /// down from the paper (4.6M -> 41.5M) to fit single-node benchmarking;
    /// the *ratio* (9x growth) is preserved.
    int t_start = 501;
    int t_end = 4501;
    std::uint64_t particles_at_start = 460'000;
    std::uint64_t particles_at_end = 4'150'000;
    std::uint64_t seed = 0x42'4f'49'4c;

    std::uint64_t particles_at(int timestep) const;
};

std::vector<std::string> boiler_attr_names();

/// Generate the full particle population at `timestep`.
ParticleSet make_boiler_particles(const BoilerConfig& config, int timestep);

/// Positions-only variant for full-scale performance modeling: returns the
/// tight data bounds and per-rank counts for a 3D decomposition of
/// `nranks` ranks resized to the data bounds (as the paper's Uintah runs
/// do), without materializing attributes.
struct BoilerCounts {
    Box data_bounds;
    std::vector<std::uint64_t> rank_counts;
};
/// `max_sample` > 0 estimates the counts from an evenly strided sample of
/// at most that many particles (scaled back up), so the paper's full-scale
/// populations (41.5M particles) can be modeled in seconds.
BoilerCounts boiler_rank_counts(const BoilerConfig& config, int timestep, int nranks,
                                std::uint64_t max_sample = 0);

}  // namespace bat
