#pragma once
// Uniform particle workload for the weak-scaling study (paper §VI-A1): each
// rank owns 32k particles uniformly distributed in its cell, with three f32
// coordinates and 14 f64 attributes (4.06 MB per rank).

#include <cstdint>
#include <string>
#include <vector>

#include "core/particles.hpp"
#include "util/vec3.hpp"

namespace bat {

/// The paper's weak-scaling schema: 14 double attributes.
std::vector<std::string> uniform_attr_names(std::size_t nattrs = 14);

/// `n` particles uniform in `box` with `nattrs` spatially correlated
/// attributes (smooth functions of position plus small noise, so bitmap
/// indexing has realistic structure).
ParticleSet make_uniform_particles(const Box& box, std::size_t n, std::size_t nattrs,
                                   std::uint64_t seed);

/// Assign spatially correlated attribute values to already-positioned
/// particles (shared by all workload generators).
void assign_correlated_attrs(ParticleSet& set, const Box& domain, std::uint64_t seed);

}  // namespace bat
