#include "workloads/uniform.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace bat {

std::vector<std::string> uniform_attr_names(std::size_t nattrs) {
    std::vector<std::string> names;
    names.reserve(nattrs);
    for (std::size_t a = 0; a < nattrs; ++a) {
        names.push_back("attr" + std::to_string(a));
    }
    return names;
}

void assign_correlated_attrs(ParticleSet& set, const Box& domain, std::uint64_t seed) {
    const std::size_t nattrs = set.num_attrs();
    const Vec3 ext = domain.extent();
    Pcg32 rng(mix_seed(seed, 0x41545452));
    for (std::size_t i = 0; i < set.count(); ++i) {
        const Vec3 p = set.position(i);
        // Normalized coordinates (degenerate axes map to 0).
        const double u = ext.x > 0 ? (p.x - domain.lower.x) / ext.x : 0.0;
        const double v = ext.y > 0 ? (p.y - domain.lower.y) / ext.y : 0.0;
        const double w = ext.z > 0 ? (p.z - domain.lower.z) / ext.z : 0.0;
        for (std::size_t a = 0; a < nattrs; ++a) {
            const double k = static_cast<double>(a + 1);
            // A smooth spatial field per attribute with 2% noise: attribute
            // values correlate with position, matching the assumption the
            // paper's bitmap filtering relies on (§III-C2).
            const double base = std::sin(k * 2.3 * u + 0.7 * k) +
                                std::cos(k * 1.7 * v - 0.3 * k) + (w - 0.5) * k;
            const double noise = 0.02 * (rng.next_double() - 0.5);
            set.attr_mut(a)[i] = base + noise;
        }
    }
}

ParticleSet make_uniform_particles(const Box& box, std::size_t n, std::size_t nattrs,
                                   std::uint64_t seed) {
    BAT_CHECK(!box.empty());
    ParticleSet set(uniform_attr_names(nattrs));
    set.resize(n);
    Pcg32 rng(seed);
    const Vec3 ext = box.extent();
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 p{box.lower.x + ext.x * rng.next_float(),
                     box.lower.y + ext.y * rng.next_float(),
                     box.lower.z + ext.z * rng.next_float()};
        set.set_position(i, p);
    }
    assign_correlated_attrs(set, box, seed);
    return set;
}

}  // namespace bat
