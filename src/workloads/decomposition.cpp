#include "workloads/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace bat {

Box GridDecomp::rank_box(int r) const {
    BAT_CHECK(r >= 0 && r < nranks());
    const int ix = r % nx;
    const int iy = (r / nx) % ny;
    const int iz = r / (nx * ny);
    const Vec3 ext = domain.extent();
    const Vec3 cell{ext.x / static_cast<float>(nx), ext.y / static_cast<float>(ny),
                    ext.z / static_cast<float>(nz)};
    const Vec3 lo{domain.lower.x + cell.x * static_cast<float>(ix),
                  domain.lower.y + cell.y * static_cast<float>(iy),
                  domain.lower.z + cell.z * static_cast<float>(iz)};
    return Box(lo, lo + cell);
}

Box GridDecomp::rank_read_box(int r) const {
    Box b = rank_box(r);
    for (int a = 0; a < 3; ++a) {
        if (b.upper[a] >= domain.upper[a]) {
            b.upper[a] = std::nextafter(domain.upper[a], std::numeric_limits<float>::max());
        }
    }
    return b;
}

int GridDecomp::owner(Vec3 p) const {
    const Vec3 ext = domain.extent();
    int idx[3];
    const int n[3] = {nx, ny, nz};
    for (int a = 0; a < 3; ++a) {
        const float e = ext[a];
        float t = e > 0.f ? (p[a] - domain.lower[a]) / e : 0.f;
        t = std::clamp(t, 0.f, 1.f);
        idx[a] = std::min(static_cast<int>(t * static_cast<float>(n[a])), n[a] - 1);
    }
    return (idx[2] * ny + idx[1]) * nx + idx[0];
}

namespace {

/// Enumerate factorizations n = a*b*c and pick the one whose per-cell
/// aspect ratio best matches the domain extents (minimizes the max ratio
/// of cell side lengths).
void best_factors(int n, const Vec3& ext, bool two_d, int out[3]) {
    double best_score = -1.0;
    for (int a = 1; a <= n; ++a) {
        if (n % a != 0) {
            continue;
        }
        const int rest = n / a;
        for (int b = 1; b <= rest; ++b) {
            if (rest % b != 0) {
                continue;
            }
            const int c = rest / b;
            if (two_d && c != 1) {
                continue;
            }
            const double sx = std::max(1e-30, static_cast<double>(ext.x)) / a;
            const double sy = std::max(1e-30, static_cast<double>(ext.y)) / b;
            const double sz = std::max(1e-30, static_cast<double>(ext.z)) / c;
            const double hi = std::max({sx, sy, sz});
            const double lo = std::min({sx, sy, sz});
            const double score = hi / lo;  // 1.0 = perfectly cubic cells
            if (best_score < 0.0 || score < best_score) {
                best_score = score;
                out[0] = a;
                out[1] = b;
                out[2] = c;
            }
        }
    }
}

}  // namespace

GridDecomp grid_decomp_3d(int nranks, const Box& domain) {
    BAT_CHECK(nranks >= 1);
    BAT_CHECK(!domain.empty());
    GridDecomp d;
    d.domain = domain;
    int dims[3] = {nranks, 1, 1};
    best_factors(nranks, domain.extent(), /*two_d=*/false, dims);
    d.nx = dims[0];
    d.ny = dims[1];
    d.nz = dims[2];
    return d;
}

GridDecomp grid_decomp_2d(int nranks, const Box& domain) {
    BAT_CHECK(nranks >= 1);
    BAT_CHECK(!domain.empty());
    GridDecomp d;
    d.domain = domain;
    int dims[3] = {nranks, 1, 1};
    best_factors(nranks, domain.extent(), /*two_d=*/true, dims);
    d.nx = dims[0];
    d.ny = dims[1];
    d.nz = 1;
    return d;
}

std::vector<ParticleSet> partition_particles(const ParticleSet& global,
                                             const GridDecomp& decomp) {
    std::vector<ParticleSet> out;
    out.reserve(static_cast<std::size_t>(decomp.nranks()));
    for (int r = 0; r < decomp.nranks(); ++r) {
        out.emplace_back(global.attr_names());
    }
    for (std::size_t i = 0; i < global.count(); ++i) {
        const int owner = decomp.owner(global.position(i));
        out[static_cast<std::size_t>(owner)].append_from(global, i);
    }
    return out;
}

std::vector<std::uint64_t> partition_counts(const ParticleSet& global,
                                            const GridDecomp& decomp) {
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(decomp.nranks()), 0);
    for (std::size_t i = 0; i < global.count(); ++i) {
        ++counts[static_cast<std::size_t>(decomp.owner(global.position(i)))];
    }
    return counts;
}

std::vector<RankInfo> make_rank_infos(const GridDecomp& decomp,
                                      std::span<const std::uint64_t> counts) {
    BAT_CHECK(counts.size() == static_cast<std::size_t>(decomp.nranks()));
    std::vector<RankInfo> infos(counts.size());
    for (int r = 0; r < decomp.nranks(); ++r) {
        infos[static_cast<std::size_t>(r)] =
            RankInfo{decomp.rank_box(r), counts[static_cast<std::size_t>(r)]};
    }
    return infos;
}

}  // namespace bat
