#include "workloads/boiler.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "workloads/decomposition.hpp"

namespace bat {

namespace {

/// Deterministic per-particle trajectory. Particle `i` is injected from
/// nozzle (i mod nozzles) at time tau(i); its position depends only on its
/// age, so any timestep can be generated independently (no state carried
/// between timesteps).
struct BoilerModel {
    const BoilerConfig& config;

    /// Injection rate in particles per timestep.
    double rate() const {
        const double dt = std::max(1, config.t_end - config.t_start);
        return static_cast<double>(config.particles_at_end - config.particles_at_start) / dt;
    }

    /// Injection timestep of particle i: the first particles_at_start
    /// particles predate t_start (spread uniformly before it).
    double injection_time(std::uint64_t i) const {
        const double r = std::max(1e-9, rate());
        const auto m0 = static_cast<double>(config.particles_at_start);
        return static_cast<double>(config.t_start) + (static_cast<double>(i) - m0) / r;
    }

    Vec3 nozzle_position(int nozzle) const {
        // Nozzles ring the lower side walls, injecting inward and upward.
        const Vec3 c = config.domain.center();
        const Vec3 ext = config.domain.extent();
        const double angle =
            2.0 * M_PI * static_cast<double>(nozzle) / config.num_nozzles;
        return {c.x + 0.48f * ext.x * static_cast<float>(std::cos(angle)),
                c.y + 0.48f * ext.y * static_cast<float>(std::sin(angle)),
                config.domain.lower.z + 0.12f * ext.z};
    }

    Vec3 position(std::uint64_t i, int timestep) const {
        const int nozzle = static_cast<int>(i % static_cast<std::uint64_t>(config.num_nozzles));
        const double age =
            std::max(0.0, static_cast<double>(timestep) - injection_time(i));
        // Normalized progress along the trajectory; particles decelerate as
        // they rise, so mass accumulates in the upper boiler over time.
        const double s = 1.0 - std::exp(-age / 900.0);

        Pcg32 rng(mix_seed(config.seed, i));
        const Vec3 start = nozzle_position(nozzle);
        const Vec3 c = config.domain.center();
        const Vec3 ext = config.domain.extent();

        // Inward motion with swirl around the vertical axis.
        const double angle0 = std::atan2(start.y - c.y, start.x - c.x);
        const double swirl = angle0 + 2.2 * s + 0.4 * rng.next_double();
        const double radius = (0.48 - 0.40 * s) * 0.5 * (ext.x + ext.y) * 0.5 *
                              (0.7 + 0.6 * rng.next_double());
        const double rise = 0.12 + 0.80 * s * (0.8 + 0.4 * rng.next_double());

        Vec3 p{c.x + static_cast<float>(radius * std::cos(swirl)),
               c.y + static_cast<float>(radius * std::sin(swirl)),
               config.domain.lower.z + static_cast<float>(rise) * ext.z};
        // Turbulent jitter grows with age (plumes spread).
        const float jitter = static_cast<float>(0.04 + 0.10 * s);
        p.x += jitter * ext.x * (rng.next_float() - 0.5f);
        p.y += jitter * ext.y * (rng.next_float() - 0.5f);
        p.z += jitter * ext.z * (rng.next_float() - 0.5f);
        p.x = std::clamp(p.x, config.domain.lower.x, config.domain.upper.x);
        p.y = std::clamp(p.y, config.domain.lower.y, config.domain.upper.y);
        p.z = std::clamp(p.z, config.domain.lower.z, config.domain.upper.z);
        return p;
    }

    void attributes(std::uint64_t i, int timestep, std::span<double> out) const {
        const double age =
            std::max(0.0, static_cast<double>(timestep) - injection_time(i));
        Pcg32 rng(mix_seed(config.seed ^ 0xA77B, i));
        const double s = 1.0 - std::exp(-age / 900.0);
        out[0] = 300.0 + 1400.0 * s + 30.0 * rng.next_double();        // temperature (K)
        out[1] = 12.0 * std::exp(-age / 1200.0) + rng.next_double();   // |velocity|
        out[2] = 1e-6 * (1.0 - 0.6 * s) * (0.8 + 0.4 * rng.next_double());  // mass
        out[3] = std::clamp(1.0 - s + 0.05 * rng.next_double(), 0.0, 1.0);  // char frac
        out[4] = 0.21 * (1.0 - s) + 0.01 * rng.next_double();          // O2
        out[5] = 0.19 * s + 0.01 * rng.next_double();                  // CO2
        out[6] = age;                                                  // residence time
    }
};

}  // namespace

std::uint64_t BoilerConfig::particles_at(int timestep) const {
    const double t = std::clamp(static_cast<double>(timestep),
                                static_cast<double>(t_start), static_cast<double>(t_end));
    const double frac = (t - t_start) / std::max(1, t_end - t_start);
    const auto n = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(particles_at_start) +
                     frac * static_cast<double>(particles_at_end - particles_at_start)));
    return n;
}

std::vector<std::string> boiler_attr_names() {
    return {"temperature", "velocity", "mass", "char_fraction", "o2", "co2",
            "residence_time"};
}

ParticleSet make_boiler_particles(const BoilerConfig& config, int timestep) {
    BAT_CHECK(config.num_nozzles >= 1);
    const std::uint64_t n = config.particles_at(timestep);
    const BoilerModel model{config};
    ParticleSet set(boiler_attr_names());
    set.resize(n);
    double attrs[7];
    for (std::uint64_t i = 0; i < n; ++i) {
        set.set_position(i, model.position(i, timestep));
        model.attributes(i, timestep, attrs);
        for (std::size_t a = 0; a < 7; ++a) {
            set.attr_mut(a)[i] = attrs[a];
        }
    }
    return set;
}

BoilerCounts boiler_rank_counts(const BoilerConfig& config, int timestep, int nranks,
                                std::uint64_t max_sample) {
    const std::uint64_t n = config.particles_at(timestep);
    const BoilerModel model{config};
    // Evenly strided sampling keeps every nozzle and injection-age stratum
    // represented; counts are scaled back to the full population.
    const std::uint64_t stride =
        (max_sample > 0 && n > max_sample) ? (n + max_sample - 1) / max_sample : 1;
    // First pass: data bounds (the Uintah decomposition is resized to fit
    // the data bounds as they change over time).
    std::vector<Vec3> positions;
    positions.reserve(static_cast<std::size_t>(n / stride + 1));
    Box bounds;
    for (std::uint64_t i = 0; i < n; i += stride) {
        positions.push_back(model.position(i, timestep));
        bounds.extend(positions.back());
    }
    BoilerCounts out;
    out.data_bounds = bounds;
    const GridDecomp decomp = grid_decomp_3d(nranks, bounds);
    out.rank_counts.assign(static_cast<std::size_t>(nranks), 0);
    for (const Vec3& p : positions) {
        out.rank_counts[static_cast<std::size_t>(decomp.owner(p))] += stride;
    }
    // Trim the overshoot from the last partial stride off the densest rank.
    std::uint64_t total = 0;
    for (std::uint64_t c : out.rank_counts) {
        total += c;
    }
    if (total > n) {
        auto& densest =
            *std::max_element(out.rank_counts.begin(), out.rank_counts.end());
        densest -= std::min(densest, total - n);
    }
    return out;
}

}  // namespace bat
