#pragma once
// Rank domain decompositions used by the evaluation workloads: the uniform
// weak-scaling study and the Coal Boiler partition their domain with a 3D
// grid of ranks; the Dam Break uses a 2D grid along x and y (the floor) as
// in the paper (§VI-A2). Cells are half-open so every particle has exactly
// one owner rank.

#include <cstdint>
#include <vector>

#include "core/agg_tree.hpp"
#include "core/particles.hpp"
#include "util/vec3.hpp"

namespace bat {

struct GridDecomp {
    int nx = 1;
    int ny = 1;
    int nz = 1;
    Box domain;

    int nranks() const { return nx * ny * nz; }
    /// Bounds of rank r (x-fastest ordering).
    Box rank_box(int r) const;
    /// Bounds of rank r for half-open restart reads: faces on the domain's
    /// upper boundary are nudged outward so particles sitting exactly on
    /// the boundary (e.g. clamped by a generator) keep exactly one owner.
    Box rank_read_box(int r) const;
    /// Rank owning position p (positions outside the domain are clamped).
    int owner(Vec3 p) const;
};

/// Factor `nranks` into a near-cubic (or near-square) grid over `domain`,
/// weighting the factors by the domain extents.
GridDecomp grid_decomp_3d(int nranks, const Box& domain);
/// 2D decomposition along x and y only (nz = 1).
GridDecomp grid_decomp_2d(int nranks, const Box& domain);

/// Split a global particle set into per-rank sets by cell ownership.
std::vector<ParticleSet> partition_particles(const ParticleSet& global,
                                             const GridDecomp& decomp);

/// Per-rank counts only (for full-scale performance modeling, where
/// materializing every rank's particles is unnecessary).
std::vector<std::uint64_t> partition_counts(const ParticleSet& global,
                                            const GridDecomp& decomp);

/// RankInfo records (decomposition bounds + counts) for the aggregation.
std::vector<RankInfo> make_rank_infos(const GridDecomp& decomp,
                                      std::span<const std::uint64_t> counts);

}  // namespace bat
