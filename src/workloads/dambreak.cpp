#include "workloads/dambreak.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "workloads/decomposition.hpp"

namespace bat {

namespace {

/// Fold x into [lo, hi] with mirror reflection (wave bouncing off walls).
float reflect(float x, float lo, float hi) {
    const float span = hi - lo;
    if (span <= 0.f) {
        return lo;
    }
    float t = std::fmod(x - lo, 2.f * span);
    if (t < 0.f) {
        t += 2.f * span;
    }
    return t <= span ? lo + t : hi - (t - span);
}

struct DamModel {
    const DamBreakConfig& config;

    Vec3 initial_position(std::uint64_t i) const {
        Pcg32 rng(mix_seed(config.seed, i));
        const Box& d = config.domain;
        return {d.lower.x + config.column_width * rng.next_float(),
                d.lower.y + d.extent().y * rng.next_float(),
                d.lower.z + config.column_height * rng.next_float()};
    }

    Vec3 position(std::uint64_t i, int timestep) const {
        const Vec3 p0 = initial_position(i);
        Pcg32 rng(mix_seed(config.seed ^ 0x5EED, i));
        const Box& d = config.domain;
        const float s = std::clamp(
            static_cast<float>(timestep) / static_cast<float>(config.t_final), 0.f, 1.f);
        // Column-relative coordinates.
        const float u = (p0.x - d.lower.x) / config.column_width;  // 0..1
        const float h = (p0.z - d.lower.z) / config.column_height; // 0..1

        // Lower water moves faster (hydrostatic head); the front runs the
        // length of the domain, reflects, and sloshes.
        const float speed = (1.3f - 0.8f * h) * (0.85f + 0.3f * rng.next_float());
        const float run = 2.6f * d.extent().x * s * speed * (0.35f + 0.65f * u);
        float x = p0.x + run;
        x = reflect(x, d.lower.x, d.upper.x);

        // Column height decays as the water spreads; a small splash bulge
        // travels with the front.
        const float collapse = 1.f - 0.80f * std::min(1.f, 1.6f * s);
        float z = d.lower.z + (p0.z - d.lower.z) * collapse;
        const float splash = 0.15f * s * (1.f - s) * rng.next_float();
        z += splash * d.extent().z;
        z = std::clamp(z, d.lower.z, d.upper.z);

        // Mild lateral spreading.
        float y = p0.y + 0.05f * s * d.extent().y * (rng.next_float() - 0.5f);
        y = std::clamp(y, d.lower.y, d.upper.y);
        return {x, y, z};
    }

    void attributes(std::uint64_t i, int timestep, std::span<double> out) const {
        Pcg32 rng(mix_seed(config.seed ^ 0xF10D, i));
        const Vec3 p0 = initial_position(i);
        const double s = std::clamp(
            static_cast<double>(timestep) / static_cast<double>(config.t_final), 0.0, 1.0);
        const double h = (p0.z - config.domain.lower.z) / config.column_height;
        out[0] = 3.0 * s * (1.3 - 0.8 * h) + 0.1 * rng.next_double();  // velocity_x
        out[1] = -1.5 * s * h + 0.1 * rng.next_double();               // velocity_z
        out[2] = 1000.0 * 9.81 * (1.0 - h) * (1.0 - 0.5 * s) +
                 5.0 * rng.next_double();                              // pressure
        out[3] = 1000.0 + 2.0 * rng.next_double();                     // density
    }
};

}  // namespace

std::vector<std::string> dambreak_attr_names() {
    return {"velocity_x", "velocity_z", "pressure", "density"};
}

ParticleSet make_dambreak_particles(const DamBreakConfig& config, int timestep) {
    const DamModel model{config};
    ParticleSet set(dambreak_attr_names());
    set.resize(config.num_particles);
    double attrs[4];
    for (std::uint64_t i = 0; i < config.num_particles; ++i) {
        set.set_position(i, model.position(i, timestep));
        model.attributes(i, timestep, attrs);
        for (std::size_t a = 0; a < 4; ++a) {
            set.attr_mut(a)[i] = attrs[a];
        }
    }
    return set;
}

std::vector<std::uint64_t> dambreak_rank_counts(const DamBreakConfig& config, int timestep,
                                                int nranks, std::uint64_t max_sample) {
    const DamModel model{config};
    // The Dam Break decomposition is fixed (2D grid over the full domain);
    // only the particles move.
    const GridDecomp decomp = grid_decomp_2d(nranks, config.domain);
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(nranks), 0);
    const std::uint64_t n = config.num_particles;
    const std::uint64_t stride =
        (max_sample > 0 && n > max_sample) ? (n + max_sample - 1) / max_sample : 1;
    for (std::uint64_t i = 0; i < n; i += stride) {
        counts[static_cast<std::size_t>(decomp.owner(model.position(i, timestep)))] +=
            stride;
    }
    std::uint64_t total = 0;
    for (std::uint64_t c : counts) {
        total += c;
    }
    if (total > n) {
        auto& densest = *std::max_element(counts.begin(), counts.end());
        densest -= std::min(densest, total - n);
    }
    return counts;
}

}  // namespace bat
