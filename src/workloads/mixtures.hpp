#pragma once
// Gaussian-mixture particle distributions: parameterizable nonuniform test
// data for unit tests and ablation benchmarks (clustered galaxies, droplet
// clouds, and other localized particle populations the paper motivates).

#include <cstdint>
#include <span>
#include <vector>

#include "core/particles.hpp"
#include "util/vec3.hpp"

namespace bat {

struct GaussianBlob {
    Vec3 center;
    float sigma = 0.1f;
    double weight = 1.0;  // relative particle share
};

/// `n` particles drawn from the blob mixture (clamped to `domain`), with
/// `nattrs` spatially correlated attributes.
ParticleSet make_mixture_particles(const Box& domain, std::span<const GaussianBlob> blobs,
                                   std::size_t n, std::size_t nattrs, std::uint64_t seed);

/// A deterministic set of `k` blobs with varied sigmas/weights inside
/// `domain` (convenience for tests).
std::vector<GaussianBlob> make_random_blobs(const Box& domain, int k, std::uint64_t seed);

}  // namespace bat
