#include "sched/sched.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "obs/health.hpp"
#include "obs/output_path.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace bat::sched {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
    }
    return h;
}

std::uint64_t fnv_mix_str(std::uint64_t h, const char* s) {
    for (; *s != '\0'; ++s) {
        h = (h ^ static_cast<unsigned char>(*s)) * kFnvPrime;
    }
    return h;
}

struct ThreadState {
    std::string name;
    int slot = -1;
    enum class St { runnable, blocked_native, finished } st = St::runnable;
    bool arrived = false;
    ClockToken vc;
    const char* last_op = "";
};

/// One annotated-state cell: the last write epoch plus every read since it
/// (the FastTrack read set, kept as a full list — thread counts here are
/// tiny).
struct ShadowCell {
    int w_slot = -1;
    std::uint64_t w_clk = 0;
    std::uint64_t w_step = 0;
    struct Read {
        int slot;
        std::uint64_t clk;
        std::uint64_t step;
    };
    std::vector<Read> reads;
};

struct Core {
    std::mutex m;
    std::condition_variable cv;
    bool active = false;
    bool deadlocked = false;
    bool deadlock_logged = false;
    Options opts;
    Pcg32 rng;
    std::vector<std::unique_ptr<ThreadState>> threads;
    int current = -1;
    int live = 0;  // arrived, not yet finished
    std::uint64_t decisions = 0;
    std::uint64_t last_progress_decision = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t trace_hash = kFnvOffset;
    RunResult result;
    std::unordered_map<const void*, ClockToken> lock_clocks;
    std::unordered_map<const void*, ShadowCell> shadow;
};

Core& core() {
    static Core c;
    return c;
}

// Run id; a thread participates when its thread-local epoch matches.
std::atomic<std::uint64_t> g_epoch{0};

struct SelfRef {
    std::uint64_t epoch = 0;
    int slot = -1;
};
thread_local SelfRef t_self;

constexpr std::uint64_t kHandleSlotBits = 20;  // handle = (epoch << bits) | (slot + 1)

void join_clock(ClockToken& into, const ClockToken& from) {
    if (from.size() > into.size()) {
        into.resize(from.size(), 0);
    }
    for (std::size_t i = 0; i < from.size(); ++i) {
        into[i] = std::max(into[i], from[i]);
    }
}

std::uint64_t clock_at(const ClockToken& vc, int slot) {
    const auto i = static_cast<std::size_t>(slot);
    return i < vc.size() ? vc[i] : 0;
}

ThreadState* self_locked(Core& c) {
    if (t_self.epoch != g_epoch.load(std::memory_order_relaxed) || t_self.slot < 0) {
        return nullptr;
    }
    return c.threads[static_cast<std::size_t>(t_self.slot)].get();
}

void release_self_locked(Core& c, ThreadState* me) {
    if (me == nullptr || me->st == ThreadState::St::finished) {
        t_self.slot = -1;
        return;
    }
    const bool was_arrived = me->arrived;
    me->st = ThreadState::St::finished;
    t_self.slot = -1;
    if (was_arrived) {
        --c.live;
    }
    // A finishing thread unblocks joiners.
    c.last_progress_decision = c.decisions;
    c.cv.notify_all();
}

/// Pick the next thread to run. `me` is the yielding thread (may be null
/// for release-time decisions); `blocked` means me cannot progress, so the
/// switch is mandatory and free. Returns true when `me` keeps running.
/// Caller holds c.m. May set c.deadlocked.
bool schedule_locked(Core& c, ThreadState* me, const char* op, bool blocked) {
    ++c.decisions;
    if (c.decisions - c.last_progress_decision > c.opts.deadlock_decisions && !c.deadlocked) {
        c.deadlocked = true;
        c.result.deadlock = true;
        std::ostringstream os;
        os << "scheduler deadlock: no progress event in "
           << (c.decisions - c.last_progress_decision) << " decisions (seed "
           << c.opts.seed << ", decision " << c.decisions << ");";
        for (const auto& t : c.threads) {
            if (t->st == ThreadState::St::finished) {
                continue;
            }
            os << "\n  " << t->name << ": "
               << (t->st == ThreadState::St::blocked_native ? "native-blocked"
                   : t->arrived                             ? "scheduled"
                                                            : "announced")
               << ", last yield at '" << t->last_op << "'";
        }
        c.result.deadlock_report = os.str();
        c.cv.notify_all();
        return me != nullptr;  // caller handles the declared deadlock
    }

    std::vector<int> candidates;
    candidates.reserve(c.threads.size());
    for (const auto& t : c.threads) {
        if (t->st == ThreadState::St::runnable) {
            candidates.push_back(t->slot);
        }
    }
    int chosen = -1;
    const int me_slot = me != nullptr ? me->slot : -1;
    if (candidates.empty()) {
        chosen = -1;
    } else if (blocked || me == nullptr || me->st != ThreadState::St::runnable) {
        // Mandatory switch: pick among the others; fall back to me when the
        // yielder is the only runnable thread (it keeps spinning).
        std::vector<int> others;
        for (const int s : candidates) {
            if (s != me_slot) {
                others.push_back(s);
            }
        }
        if (others.empty()) {
            chosen = me_slot;
        } else {
            chosen = others[c.rng.next_u32() % others.size()];
        }
    } else if (c.preemptions >= static_cast<std::uint64_t>(
                                    std::max(0, c.opts.preemption_bound))) {
        chosen = me_slot;  // budget exhausted: run the current thread on
    } else {
        chosen = candidates[c.rng.next_u32() % candidates.size()];
        if (chosen != me_slot) {
            ++c.preemptions;
        }
    }

    c.trace_hash = fnv_mix(c.trace_hash, static_cast<std::uint64_t>(me_slot + 1));
    c.trace_hash = fnv_mix(c.trace_hash, static_cast<std::uint64_t>(chosen + 1));
    c.trace_hash = fnv_mix_str(c.trace_hash, op);
    if (c.opts.record_trace) {
        if (c.result.trace.size() < kMaxTraceEntries) {
            c.result.trace.push_back(TraceEntry{c.decisions, me_slot, chosen, op});
        } else {
            c.result.trace_truncated = true;
        }
    }

    c.current = chosen;
    if (chosen != me_slot) {
        c.cv.notify_all();
    }
    return chosen == me_slot && me_slot >= 0;
}

enum class Wake { granted, inactive, deadlocked };

Wake wait_for_turn_locked(Core& c, std::unique_lock<std::mutex>& lock, ThreadState* me) {
    for (;;) {
        if (!c.active) {
            return Wake::inactive;
        }
        if (c.deadlocked) {
            return Wake::deadlocked;
        }
        if (c.current == me->slot) {
            return Wake::granted;
        }
        if (c.current == -1 && me->st == ThreadState::St::runnable) {
            // No candidate existed when the last decision was made; claim.
            c.current = me->slot;
            return Wake::granted;
        }
        c.cv.wait(lock);
    }
}

/// Shared yield implementation. Returns normally when the thread may
/// continue; on run end it silently deregisters; on a declared deadlock it
/// behaves per `on_deadlock`.
enum class OnDeadlock { throw_error, leave_silently };

void do_yield(const char* op, bool blocked, OnDeadlock on_deadlock) {
    Core& c = core();
    std::string deadlock_report;
    {
        std::unique_lock<std::mutex> lock(c.m);
        ThreadState* me = self_locked(c);
        if (me == nullptr) {
            return;
        }
        me->last_op = op;
        if (c.active && !c.deadlocked && c.current != me->slot) {
            // Defensive: only the current thread should be executing; wait
            // for our turn instead of corrupting the decision order.
            const Wake w = wait_for_turn_locked(c, lock, me);
            if (w == Wake::granted) {
                return;
            }
        }
        if (c.active && !c.deadlocked) {
            const bool cont = schedule_locked(c, me, op, blocked);
            if (!c.deadlocked) {
                if (cont) {
                    return;
                }
                const Wake w = wait_for_turn_locked(c, lock, me);
                if (w == Wake::granted) {
                    return;
                }
                if (w == Wake::inactive) {
                    release_self_locked(c, me);
                    return;
                }
                // fall through: deadlock declared while waiting
            }
        }
        if (!c.active) {
            release_self_locked(c, me);
            return;
        }
        // Declared deadlock.
        deadlock_report = c.result.deadlock_report;
        const bool first = !c.deadlock_logged;
        c.deadlock_logged = true;
        const std::uint64_t seed = c.opts.seed;
        release_self_locked(c, me);
        if (first) {
            lock.unlock();
            BAT_LOG_ERROR("sched: " << deadlock_report);
            obs::dump_flight_record("sched deadlock (seed " + std::to_string(seed) + ")");
        }
    }
    if (on_deadlock == OnDeadlock::throw_error) {
        throw DeadlockError(deadlock_report.empty() ? "scheduler deadlock" : deadlock_report);
    }
}

std::string thread_name_locked(const Core& c, int slot) {
    if (slot < 0 || static_cast<std::size_t>(slot) >= c.threads.size()) {
        return "thread" + std::to_string(slot);
    }
    return c.threads[static_cast<std::size_t>(slot)]->name;
}

bool report_race_locked(Core& c, ThreadState* me, const ShadowCell& cell, const char* what,
                        bool is_write, int other_slot, std::uint64_t other_step,
                        bool other_was_write, std::string* out) {
    std::ostringstream os;
    os << "race on '" << what << "': " << (other_was_write ? "write" : "read") << " by "
       << thread_name_locked(c, other_slot) << " (decision " << other_step << ") and "
       << (is_write ? "write" : "read") << " by " << me->name << " (decision "
       << c.decisions << ") have no happens-before edge (seed " << c.opts.seed << ")";
    (void)cell;
    *out = os.str();
    c.result.races.push_back(*out);
    return true;
}

}  // namespace

std::string RunResult::summary() const {
    std::ostringstream os;
    os << "seed " << seed << ": ";
    if (deadlock) {
        os << "DEADLOCK";
    } else if (!races.empty()) {
        os << races.size() << " RACE(S)";
    } else if (error != nullptr) {
        os << "ERROR";
    } else {
        os << "ok";
    }
    os << " (" << decisions << " decisions, " << preemptions << " preemptions, trace "
       << std::hex << trace_hash << std::dec << ")";
    if (error != nullptr) {
        try {
            std::rethrow_exception(error);
        } catch (const std::exception& e) {
            os << " — " << e.what();
        } catch (...) {
            os << " — unknown exception";
        }
    }
    return os.str();
}

bool active() { return detail::g_armed.load(std::memory_order_acquire); }

bool this_thread_scheduled() {
    return detail::g_armed.load(std::memory_order_relaxed) &&
           t_self.epoch == g_epoch.load(std::memory_order_relaxed) && t_self.slot >= 0;
}

RunResult run_scheduled(const Options& opts, const std::function<void()>& fn) {
    Core& c = core();
    {
        std::lock_guard<std::mutex> lock(c.m);
        BAT_CHECK_MSG(!c.active, "run_scheduled is not reentrant");
        c.opts = opts;
        c.rng = Pcg32(opts.seed, 0x9e3779b97f4a7c15ULL);
        c.threads.clear();
        c.current = 0;
        c.live = 1;
        c.decisions = 0;
        c.last_progress_decision = 0;
        c.preemptions = 0;
        c.trace_hash = kFnvOffset;
        c.result = RunResult{};
        c.result.seed = opts.seed;
        c.lock_clocks.clear();
        c.shadow.clear();
        c.deadlocked = false;
        c.deadlock_logged = false;

        auto main_state = std::make_unique<ThreadState>();
        main_state->name = "main";
        main_state->slot = 0;
        main_state->arrived = true;
        main_state->vc.assign(1, 1);
        c.threads.push_back(std::move(main_state));
        t_self.epoch = g_epoch.load(std::memory_order_relaxed) + 1;
        g_epoch.store(t_self.epoch, std::memory_order_relaxed);
        t_self.slot = 0;
        c.active = true;
        detail::g_armed.store(true, std::memory_order_release);
    }

    std::exception_ptr error;
    try {
        fn();
    } catch (...) {
        error = std::current_exception();
    }

    RunResult result;
    {
        std::unique_lock<std::mutex> lock(c.m);
        c.active = false;
        detail::g_armed.store(false, std::memory_order_release);
        ThreadState* me = self_locked(c);
        release_self_locked(c, me);
        c.cv.notify_all();
        // Wait for stragglers (workers of pools that outlive the run) to
        // observe the shutdown and deregister.
        c.cv.wait(lock, [&c] { return c.live == 0; });
        c.result.decisions = c.decisions;
        c.result.preemptions = c.preemptions;
        c.result.trace_hash = c.trace_hash;
        c.result.error = error;
        result = std::move(c.result);
        c.result = RunResult{};
        c.lock_clocks.clear();
        c.shadow.clear();
        c.threads.clear();
    }
    return result;
}

std::optional<Options> env_options() {
    const char* seed_env = std::getenv("BAT_SCHED_SEED");
    if (seed_env == nullptr || *seed_env == '\0') {
        return std::nullopt;
    }
    Options o;
    o.seed = std::strtoull(seed_env, nullptr, 10);
    if (const char* p = std::getenv("BAT_SCHED_PREEMPTIONS")) {
        o.preemption_bound = std::atoi(p);
    }
    if (const char* d = std::getenv("BAT_SCHED_DEADLOCK_DECISIONS")) {
        o.deadlock_decisions = std::strtoull(d, nullptr, 10);
    }
    if (const char* t = std::getenv("BAT_SCHED_TRACE")) {
        o.record_trace = std::strcmp(t, "full") == 0;
    }
    return o;
}

void write_env_report(const RunResult& r) {
    const char* path_env = std::getenv("BAT_SCHED_TRACE_FILE");
    if (path_env == nullptr || *path_env == '\0') {
        return;
    }
    const std::string path = obs::expand_output_path(path_env);
    std::ofstream out(path, std::ios::app);
    if (!out) {
        BAT_LOG_WARN("sched: cannot open BAT_SCHED_TRACE_FILE " << path);
        return;
    }
    out << "{\"bat_sched\":\"v1\",\"seed\":" << r.seed << ",\"decisions\":" << r.decisions
        << ",\"preemptions\":" << r.preemptions << ",\"trace_hash\":\"" << std::hex
        << r.trace_hash << std::dec << "\",\"deadlock\":" << (r.deadlock ? "true" : "false")
        << ",\"races\":" << r.races.size()
        << ",\"error\":" << (r.error != nullptr ? "true" : "false");
    if (!r.trace.empty()) {
        out << ",\"trace\":[";
        for (std::size_t i = 0; i < r.trace.size(); ++i) {
            const TraceEntry& e = r.trace[i];
            out << (i == 0 ? "" : ",") << "[" << e.step << "," << e.from << "," << e.to
                << ",\"" << e.op << "\"]";
        }
        out << "]";
        if (r.trace_truncated) {
            out << ",\"trace_truncated\":true";
        }
    }
    out << "}\n";
}

std::uint64_t announce_thread(const std::string& name) {
    if (!maybe_active()) {
        return 0;
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    if (!c.active) {
        return 0;
    }
    const int slot = static_cast<int>(c.threads.size());
    BAT_CHECK_MSG(slot + 1 < (1 << kHandleSlotBits), "too many scheduled threads");
    auto st = std::make_unique<ThreadState>();
    st->name = name;
    st->slot = slot;
    // Thread creation is a happens-before edge: the child inherits the
    // creator's clock.
    if (ThreadState* creator = self_locked(c)) {
        st->vc = creator->vc;
        ++creator->vc[static_cast<std::size_t>(creator->slot)];
    }
    if (st->vc.size() <= static_cast<std::size_t>(slot)) {
        st->vc.resize(static_cast<std::size_t>(slot) + 1, 0);
    }
    st->vc[static_cast<std::size_t>(slot)] = 1;
    c.threads.push_back(std::move(st));
    return (g_epoch.load(std::memory_order_relaxed) << kHandleSlotBits) |
           static_cast<std::uint64_t>(slot + 1);
}

void adopt_thread(std::uint64_t handle) {
    if (handle == 0) {
        return;
    }
    const std::uint64_t epoch = handle >> kHandleSlotBits;
    const int slot = static_cast<int>(handle & ((1ULL << kHandleSlotBits) - 1)) - 1;
    Core& c = core();
    std::unique_lock<std::mutex> lock(c.m);
    if (!c.active || epoch != g_epoch.load(std::memory_order_relaxed) || slot < 0 ||
        static_cast<std::size_t>(slot) >= c.threads.size()) {
        return;
    }
    ThreadState* me = c.threads[static_cast<std::size_t>(slot)].get();
    me->arrived = true;
    ++c.live;
    t_self.epoch = epoch;
    t_self.slot = slot;
    if (c.current == me->slot || c.deadlocked) {
        return;
    }
    const Wake w = wait_for_turn_locked(c, lock, me);
    if (w == Wake::inactive) {
        release_self_locked(c, me);
    }
}

void release_thread() {
    if (t_self.slot < 0) {
        return;
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    ThreadState* me = self_locked(c);
    if (me == nullptr) {
        t_self.slot = -1;
        return;
    }
    const bool was_current = c.current == me->slot;
    release_self_locked(c, me);
    if (c.active && !c.deadlocked && was_current) {
        schedule_locked(c, nullptr, "thread.exit", true);
        c.cv.notify_all();
    }
}

bool thread_finished(std::uint64_t handle) {
    if (handle == 0) {
        return true;
    }
    const std::uint64_t epoch = handle >> kHandleSlotBits;
    const int slot = static_cast<int>(handle & ((1ULL << kHandleSlotBits) - 1)) - 1;
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    if (!c.active || epoch != g_epoch.load(std::memory_order_relaxed) || slot < 0 ||
        static_cast<std::size_t>(slot) >= c.threads.size()) {
        return true;
    }
    return c.threads[static_cast<std::size_t>(slot)]->st == ThreadState::St::finished;
}

AdoptScope::AdoptScope(std::uint64_t handle) {
    if (handle != 0) {
        adopt_thread(handle);
        adopted_ = t_self.slot >= 0;
    }
}

AdoptScope::~AdoptScope() {
    if (adopted_) {
        release_thread();
    }
}

BlockingScope::BlockingScope(const char* why) {
    if (!maybe_active() || !this_thread_scheduled()) {
        return;
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    ThreadState* me = self_locked(c);
    if (me == nullptr || !c.active) {
        return;
    }
    me->last_op = why;
    me->st = ThreadState::St::blocked_native;
    engaged_ = true;
    if (c.current == me->slot && !c.deadlocked) {
        schedule_locked(c, me, why, /*blocked=*/true);
        c.cv.notify_all();
    }
}

BlockingScope::~BlockingScope() {
    if (!engaged_) {
        return;
    }
    Core& c = core();
    std::unique_lock<std::mutex> lock(c.m);
    ThreadState* me = self_locked(c);
    if (me == nullptr) {
        return;
    }
    me->st = ThreadState::St::runnable;
    if (!c.active || c.deadlocked) {
        return;  // run over; carry on natively (dtor must not throw)
    }
    const Wake w = wait_for_turn_locked(c, lock, me);
    if (w == Wake::inactive) {
        release_self_locked(c, me);
    }
}

void yield_point(const char* op) {
    if (!maybe_active() || !this_thread_scheduled()) {
        return;
    }
    do_yield(op, /*blocked=*/false, OnDeadlock::throw_error);
}

void yield_blocked(const char* op) {
    if (!maybe_active() || !this_thread_scheduled()) {
        std::this_thread::yield();
        return;
    }
    do_yield(op, /*blocked=*/true, OnDeadlock::throw_error);
}

void yield_idle(const char* op) {
    if (!maybe_active() || !this_thread_scheduled()) {
        std::this_thread::yield();
        return;
    }
    do_yield(op, /*blocked=*/true, OnDeadlock::leave_silently);
}

void scheduled_lock(std::mutex& m, const void* id, const char* name) {
    yield_point(name);
    while (!m.try_lock()) {
        yield_blocked(name);
    }
    lock_acquired(id);
}

void lock_acquired(const void* id) {
    if (!maybe_active() || !this_thread_scheduled()) {
        return;
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    ThreadState* me = self_locked(c);
    if (me == nullptr) {
        return;
    }
    auto it = c.lock_clocks.find(id);
    if (it != c.lock_clocks.end()) {
        join_clock(me->vc, it->second);
    }
}

void lock_released(const void* id) {
    if (!maybe_active() || !this_thread_scheduled()) {
        return;
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    ThreadState* me = self_locked(c);
    if (me == nullptr) {
        return;
    }
    ClockToken& lc = c.lock_clocks[id];
    join_clock(lc, me->vc);
    ++me->vc[static_cast<std::size_t>(me->slot)];
}

ClockToken fork_token() {
    if (!maybe_active() || !this_thread_scheduled()) {
        return {};
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    ThreadState* me = self_locked(c);
    if (me == nullptr) {
        return {};
    }
    ClockToken token = me->vc;
    ++me->vc[static_cast<std::size_t>(me->slot)];
    return token;
}

void join_token(const ClockToken& token) {
    if (token.empty() || !maybe_active() || !this_thread_scheduled()) {
        return;
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    ThreadState* me = self_locked(c);
    if (me != nullptr) {
        join_clock(me->vc, token);
    }
}

void merge_token(ClockToken& dst) {
    if (!maybe_active() || !this_thread_scheduled()) {
        return;
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    ThreadState* me = self_locked(c);
    if (me == nullptr) {
        return;
    }
    join_clock(dst, me->vc);
    ++me->vc[static_cast<std::size_t>(me->slot)];
}

void acquire_token(const ClockToken& token) { join_token(token); }

void note_progress() {
    if (!maybe_active()) {
        return;
    }
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.m);
    c.last_progress_decision = c.decisions;
}

void note_access(const void* obj, const char* what, bool is_write) {
    if (!maybe_active() || !this_thread_scheduled()) {
        return;
    }
    Core& c = core();
    std::string race;
    bool throw_race = false;
    {
        std::lock_guard<std::mutex> lock(c.m);
        ThreadState* me = self_locked(c);
        if (me == nullptr) {
            return;
        }
        ShadowCell& cell = c.shadow[obj];
        const std::uint64_t my_clk = me->vc[static_cast<std::size_t>(me->slot)];
        auto ordered_before_me = [&](int slot, std::uint64_t clk) {
            return clk <= clock_at(me->vc, slot);
        };
        if (cell.w_slot >= 0 && cell.w_slot != me->slot &&
            !ordered_before_me(cell.w_slot, cell.w_clk)) {
            report_race_locked(c, me, cell, what, is_write, cell.w_slot, cell.w_step,
                               /*other_was_write=*/true, &race);
        } else if (is_write) {
            for (const ShadowCell::Read& r : cell.reads) {
                if (r.slot != me->slot && !ordered_before_me(r.slot, r.clk)) {
                    report_race_locked(c, me, cell, what, is_write, r.slot, r.step,
                                       /*other_was_write=*/false, &race);
                    break;
                }
            }
        }
        if (is_write) {
            cell.w_slot = me->slot;
            cell.w_clk = my_clk;
            cell.w_step = c.decisions;
            cell.reads.clear();
        } else {
            bool found = false;
            for (ShadowCell::Read& r : cell.reads) {
                if (r.slot == me->slot) {
                    r.clk = my_clk;
                    r.step = c.decisions;
                    found = true;
                    break;
                }
            }
            if (!found) {
                cell.reads.push_back(ShadowCell::Read{me->slot, my_clk, c.decisions});
            }
        }
        throw_race = !race.empty() && c.opts.throw_on_race;
    }
    if (!race.empty()) {
        BAT_LOG_ERROR("sched race checker: " << race);
        obs::dump_flight_record("sched race: " + race);
        if (throw_race) {
            throw RaceError(race);
        }
    }
}

}  // namespace bat::sched
