#pragma once
// Deterministic schedule exploration + vector-clock race checking
// (docs/CORRECTNESS.md §5).
//
// When a run is armed (BAT_SCHED_SEED=<n>, or run_scheduled() from code),
// every participating thread — vmpi rank threads, ThreadPool workers, and
// the arming caller — is serialized through instrumented *yield points*:
// vmpi send/receive/collective matching, pool task dequeue, and every
// CheckedMutex acquisition. At each yield point a seeded PRNG chooses the
// next thread to run, under a preemption bound in the CHESS tradition, so
// the whole interleaving is a pure function of the seed: any failure found
// by a seed sweep replays bit-exactly from its seed.
//
// On the same serialized event stream the module maintains one vector clock
// per participating thread. Happens-before edges come from message
// send→match, ibarrier arrival→completion, task enqueue→dequeue and
// completion→TaskGroup::wait, and CheckedMutex release→acquire. Shared
// state annotated with note_access() (vmpi mailboxes, LeafFileCache,
// MetricsRegistry, merged read buffers) is checked FastTrack-style: a
// conflicting access pair with no happens-before path is reported as a race
// — including on schedules where the accesses never physically overlapped,
// which is exactly the class TSan cannot see.
//
// The scheduler never runs two participating threads at once, so detected
// races cannot corrupt state before being reported; unregistered threads
// (pre-existing pools, the watchdog) pass through the hooks untouched.
// Cost when disarmed: one relaxed atomic load per hook.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace bat::sched {

/// Thrown from blocking yield points (vmpi waits, mutex acquisition) once
/// the scheduler has declared the run deadlocked: every participating
/// thread is blocked and no decision can create progress.
class DeadlockError : public Error {
public:
    explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Thrown at the accessing site when note_access() finds a conflicting
/// access pair with no happens-before edge (Options::throw_on_race).
class RaceError : public Error {
public:
    explicit RaceError(const std::string& what) : Error(what) {}
};

struct Options {
    std::uint64_t seed = 0;
    /// Preemptive context switches (switching away from a thread that could
    /// have continued) allowed per run; forced switches at blocked yield
    /// points are free. Small bounds find most bugs (CHESS).
    int preemption_bound = 8;
    /// Consecutive scheduling decisions without a progress event (message
    /// delivered/matched, task executed, barrier completed, thread finished)
    /// before the run is declared deadlocked.
    std::uint64_t deadlock_decisions = 20'000;
    /// Keep the full decision trace in RunResult::trace (the FNV hash and
    /// count are always maintained). Memory-capped at kMaxTraceEntries.
    bool record_trace = false;
    /// Throw RaceError at the access site of a detected race (the report is
    /// recorded in RunResult::races either way).
    bool throw_on_race = true;
};

/// One scheduling decision: at step `step`, thread `from` yielded at `op`
/// and thread `to` was chosen to run next.
struct TraceEntry {
    std::uint64_t step;
    int from;
    int to;
    const char* op;
};

inline constexpr std::size_t kMaxTraceEntries = 1u << 20;

struct RunResult {
    std::uint64_t seed = 0;
    bool deadlock = false;
    std::string deadlock_report;
    std::vector<std::string> races;
    std::uint64_t decisions = 0;
    std::uint64_t preemptions = 0;
    /// FNV-1a over (from, to, op) of every decision; two runs of the same
    /// seed over the same binary produce the same hash.
    std::uint64_t trace_hash = 0;
    std::vector<TraceEntry> trace;  // populated when Options::record_trace
    bool trace_truncated = false;
    /// First exception that escaped fn (rank errors resurface here).
    std::exception_ptr error;

    bool failed() const { return deadlock || !races.empty() || error != nullptr; }
    /// One-line human summary ("seed 7: deadlock after 812 decisions ...").
    std::string summary() const;
};

/// Run `fn` with the scheduler armed. All threads announced during fn
/// (vmpi ranks, pools constructed inside fn) participate; the calling
/// thread is registered as slot 0 ("main"). Exceptions escaping fn are
/// captured in RunResult::error, not rethrown. Not reentrant.
RunResult run_scheduled(const Options& opts, const std::function<void()>& fn);

namespace detail {
extern std::atomic<bool> g_armed;
}

/// Fast gate for instrumentation sites: one relaxed load when disarmed.
inline bool maybe_active() { return detail::g_armed.load(std::memory_order_relaxed); }

/// A scheduled run is currently in progress.
bool active();

/// The calling thread participates in the active run.
bool this_thread_scheduled();

/// Options from the environment: BAT_SCHED_SEED (arms), BAT_SCHED_PREEMPTIONS,
/// BAT_SCHED_DEADLOCK_DECISIONS, BAT_SCHED_TRACE=full (record full trace).
/// nullopt when BAT_SCHED_SEED is unset.
std::optional<Options> env_options();

/// Append a bat-sched-v1 JSON line for `r` to BAT_SCHED_TRACE_FILE ("%p"
/// expands to the pid); no-op when the variable is unset. Used by the
/// env-armed vmpi runtime so tools/vmpi_explore can compare replays.
void write_env_report(const RunResult& r);

// ---- thread lifecycle ------------------------------------------------------
//
// The creating thread announces BEFORE spawning (the announcement order
// fixes the new thread's slot and inherits the creator's clock — thread
// creation is a happens-before edge); the new thread adopts the handle as
// its first action and releases on exit. All no-ops when disarmed
// (announce returns 0, adopt/release ignore it).

std::uint64_t announce_thread(const std::string& name);
void adopt_thread(std::uint64_t handle);
void release_thread();

/// True once the announced thread has released itself (or the handle is
/// from a finished run / the scheduler is disarmed). Joiners spin on this
/// with yield_blocked and only then call thread::join natively: the join
/// target has already left the schedule, so no decisions happen while the
/// OS reaps it and the decision stream stays deterministic. (A native join
/// under BlockingScope re-enters the schedule at a real-time-dependent
/// point — nondeterministic whenever other threads, e.g. idle pool
/// workers, are still taking decisions.)
bool thread_finished(std::uint64_t handle);

struct AdoptScope {
    explicit AdoptScope(std::uint64_t handle);
    ~AdoptScope();
    AdoptScope(const AdoptScope&) = delete;
    AdoptScope& operator=(const AdoptScope&) = delete;

private:
    bool adopted_ = false;
};

/// Marks the calling thread natively blocked for the scope: the scheduler
/// excludes it from decisions instead of waiting for it to yield. Re-enters
/// the schedule on destruction. No-op when the thread is not scheduled.
/// CAUTION: re-entry lands in the decision stream at a real-time-dependent
/// point, which breaks replay determinism whenever other threads are still
/// taking decisions — for joining a scheduled thread, spin on
/// thread_finished() with yield_blocked instead (see Runtime's join loop).
struct BlockingScope {
    explicit BlockingScope(const char* why);
    ~BlockingScope();
    BlockingScope(const BlockingScope&) = delete;
    BlockingScope& operator=(const BlockingScope&) = delete;

private:
    bool engaged_ = false;
};

// ---- yield points ----------------------------------------------------------

/// Preemptible yield: the thread could continue; switching away costs one
/// unit of the preemption bound. Throws DeadlockError if the run has been
/// declared deadlocked.
void yield_point(const char* op);

/// The thread cannot progress right now (failed poll, contended mutex):
/// the scheduler switches to another runnable thread for free. Throws
/// DeadlockError when the run deadlocks.
void yield_blocked(const char* op);

/// Like yield_blocked but never throws: on a declared deadlock the calling
/// thread silently leaves the schedule (pool workers, which have no task
/// context to unwind).
void yield_idle(const char* op);

// ---- mutex integration (CheckedMutex) --------------------------------------

/// Deterministic acquisition: yield, then try_lock+yield_blocked until the
/// lock is held, then record the release→acquire clock edge. `id` keys the
/// per-instance lock clock; `name` labels trace entries.
void scheduled_lock(std::mutex& m, const void* id, const char* name);
/// Clock bookkeeping for a lock acquired outside scheduled_lock (try_lock).
void lock_acquired(const void* id);
/// Record the release edge; call before unlocking.
void lock_released(const void* id);

// ---- happens-before tokens -------------------------------------------------
//
// Generic clock-carrying channel for message- and task-shaped edges. A
// token is empty when created outside a scheduled run; joins of empty
// tokens are no-ops, so carriers can store them unconditionally.

using ClockToken = std::vector<std::uint64_t>;

/// Capture the calling thread's clock (send / enqueue side); advances the
/// local epoch so later work is not ordered into the token.
ClockToken fork_token();
/// Join a token into the calling thread's clock (receive / dequeue side).
void join_token(const ClockToken& token);
/// Accumulate the calling thread's clock into `dst` (barrier arrivals,
/// task-completion clocks); caller must serialize access to `dst`.
void merge_token(ClockToken& dst);
/// Join an accumulated clock (barrier completion, TaskGroup::wait return).
void acquire_token(const ClockToken& token);

// ---- progress + race checking ----------------------------------------------

/// Report a forward-progress event to the deadlock detector (message
/// delivered or matched, task executed, barrier completed).
void note_progress();

/// Record an access to annotated shared state and check it FastTrack-style
/// against the previous conflicting accesses. Call at the access site,
/// under whatever synchronization the site believes protects it; `what`
/// names the state in reports ("vmpi.mailbox", "io.leafcache", ...). The
/// protecting synchronization must itself be tracked (CheckedMutex, vmpi
/// messages, pool tasks) or the checker will report false races.
void note_access(const void* obj, const char* what, bool is_write);

}  // namespace bat::sched
