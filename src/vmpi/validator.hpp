#pragma once
// vmpi protocol validator (docs/CORRECTNESS.md).
//
// A per-Runtime checker that observes every isend/irecv/iprobe/collective
// and reports the protocol bugs functional round-trip tests miss:
//
//   - unmatched sends still sitting in a mailbox when the runtime finalizes;
//   - requests destroyed before test()/wait() observed completion;
//   - user point-to-point traffic using reserved tags (>= kMaxUserTag);
//   - typed receives whose matched payload size differs from the expected
//     element size (recv_value / recv_vector);
//   - messages starved in a mailbox while consuming receives repeatedly
//     match around them (the ANY_SOURCE starvation pattern);
//   - deadlock: every live rank blocked in wait()/barrier() with no
//     deliverable message — detected from the wait-for state and reported
//     instead of hanging (each blocked rank throws DeadlockError).
//
// The validator is always compiled in. It is enabled per run either
// explicitly (Runtime::run_validated) or for ordinary Runtime::run via
// BAT_VMPI_VALIDATE=1 in the environment, in which case diagnostics are
// logged as warnings at finalize. Disabled, every hook is a null-pointer
// check on the hot path.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace bat::vmpi {

enum class DiagKind {
    unmatched_send,         ///< message never received; pending at finalize
    leaked_request,         ///< request destroyed before completing
    tag_violation,          ///< user p2p op with tag outside [0, kMaxUserTag)
    size_mismatch,          ///< typed receive matched a wrongly sized payload
    any_source_starvation,  ///< message passed over too many times
    deadlock,               ///< all live ranks blocked with no progress
};

const char* to_string(DiagKind kind);

struct Diagnostic {
    DiagKind kind;
    int rank;  ///< rank that observed the problem, or -1 for runtime-wide
    std::string message;
};

/// Thrown out of wait() on every live rank once the deadlock detector
/// concludes no event can unblock the runtime.
class DeadlockError : public Error {
public:
    explicit DeadlockError(const std::string& what) : Error(what) {}
};

struct ValidatorOptions {
    bool enabled = true;
    /// A pending message passed over by more than this many consuming
    /// receives at the same rank is reported as starved (once).
    int starvation_threshold = 1024;
    /// Consecutive all-ranks-blocked observations with no runtime progress
    /// required before declaring deadlock. Guards against declaring while a
    /// rank is between unblocking and updating its state.
    int deadlock_stable_rounds = 256;
};

struct ValidationReport {
    std::vector<Diagnostic> diagnostics;
    bool deadlock = false;
    /// what()s of non-deadlock exceptions thrown by rank bodies.
    /// run_validated records these instead of rethrowing, so deliberately
    /// buggy programs can be post-mortemed.
    std::vector<std::string> rank_errors;
    // Traffic observed (user + collective-internal).
    std::uint64_t sends = 0;
    std::uint64_t receives = 0;  ///< completed (matched+consumed) receives
    std::uint64_t probes = 0;
    std::uint64_t collectives = 0;

    bool has(DiagKind kind) const;
    std::size_t count(DiagKind kind) const;
    /// Human-readable dump of all diagnostics, one per line.
    std::string summary() const;
};

class Validator {
public:
    Validator(int nranks, ValidatorOptions opts);

    bool enabled() const { return opts_.enabled; }
    const ValidatorOptions& options() const { return opts_; }

    // ---- rank lifecycle (Runtime) --------------------------------------
    void on_rank_start(int rank);
    void on_rank_finish(int rank);

    // ---- traffic (Comm / Runtime) --------------------------------------
    void on_send(int src, int dst, int tag, std::size_t bytes, bool internal);
    void on_recv_posted(int rank, int src, int tag, bool internal);
    void on_probe(int rank, int src, int tag, bool internal);
    void on_collective(int rank);
    /// Any event that can unblock a waiter: delivery, consumption,
    /// barrier arrival. Resets the deadlock detector's stability count.
    void on_progress();
    /// A consuming receive completed at `rank`.
    void on_consumed(int rank);

    void report(DiagKind kind, int rank, std::string message);

    // ---- blocking / deadlock (Request::wait) ---------------------------
    void on_wait_begin(int rank, const std::string& what);
    void on_wait_end(int rank);
    /// Called after each failed poll inside wait(). Returns true once
    /// deadlock has been declared; the caller throws DeadlockError.
    bool poll_deadlock(int rank);
    std::string deadlock_message() const;

    // ---- finalize ------------------------------------------------------
    ValidationReport take_report();

private:
    ValidatorOptions opts_;

    struct RankState {
        // 0 = running, 1 = blocked in wait(), 2 = finished.
        std::atomic<int> phase{0};
        std::mutex desc_mutex;
        std::string wait_desc;
    };
    std::vector<std::unique_ptr<RankState>> ranks_;

    std::atomic<std::uint64_t> progress_{0};
    std::atomic<bool> deadlock_{false};

    std::atomic<std::uint64_t> sends_{0};
    std::atomic<std::uint64_t> receives_{0};
    std::atomic<std::uint64_t> probes_{0};
    std::atomic<std::uint64_t> collectives_{0};

    mutable std::mutex mutex_;  // guards diagnostics_ and detector state
    std::vector<Diagnostic> diagnostics_;
    std::uint64_t last_progress_ = 0;
    int stable_rounds_ = 0;
    std::string deadlock_msg_;

    void check_user_tag(int rank, const char* op, int tag, bool internal);
};

namespace detail {
/// RAII marker: point-to-point calls made while a CollectiveScope is alive
/// belong to a collective and may use reserved tags (>= kMaxUserTag).
struct CollectiveScope {
    CollectiveScope();
    ~CollectiveScope();
    CollectiveScope(const CollectiveScope&) = delete;
    CollectiveScope& operator=(const CollectiveScope&) = delete;
};
bool in_collective();
}  // namespace detail

}  // namespace bat::vmpi
