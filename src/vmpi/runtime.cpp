#include <atomic>
#include <exception>
#include <thread>

#include "vmpi/comm.hpp"

namespace bat::vmpi {

Runtime::Runtime(int nranks) : nranks_(nranks) {
    BAT_CHECK_MSG(nranks > 0, "Runtime requires at least one rank");
    mailboxes_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        mailboxes_.push_back(std::make_unique<Mailbox>());
    }
}

void Runtime::deliver(int dst, Message msg) {
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
    {
        std::lock_guard<std::mutex> lock(box.mutex);
        box.messages.push_back(std::move(msg));
    }
    box.cv.notify_all();
}

bool Runtime::try_match(int rank, int src, int tag, Bytes* out, int* from, bool consume,
                        std::size_t* bytes) {
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
    std::lock_guard<std::mutex> lock(box.mutex);
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
        if (it->tag != tag) {
            continue;
        }
        if (src != kAnySource && it->src != src) {
            continue;
        }
        if (from != nullptr) {
            *from = it->src;
        }
        if (bytes != nullptr) {
            *bytes = it->payload.size();
        }
        if (consume) {
            if (out != nullptr) {
                *out = std::move(it->payload);
            }
            box.messages.erase(it);
        }
        return true;
    }
    return false;
}

Runtime::IbarrierState& Runtime::ibarrier_state(std::uint64_t seq) {
    std::lock_guard<std::mutex> lock(ibarrier_mutex_);
    while (ibarrier_states_.size() <= seq) {
        ibarrier_states_.push_back(std::make_unique<IbarrierState>());
    }
    return *ibarrier_states_[seq];
}

void Runtime::run(int nranks, const std::function<void(Comm&)>& fn) {
    Runtime rt(nranks);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
    std::atomic<bool> failed{false};

    for (int r = 0; r < nranks; ++r) {
        threads.emplace_back([&rt, &fn, &errors, &failed, r] {
            Comm comm(&rt, r);
            try {
                fn(comm);
            } catch (...) {
                errors[static_cast<std::size_t>(r)] = std::current_exception();
                failed.store(true, std::memory_order_release);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    if (failed.load(std::memory_order_acquire)) {
        for (auto& e : errors) {
            if (e) {
                std::rethrow_exception(e);
            }
        }
    }
}

}  // namespace bat::vmpi
