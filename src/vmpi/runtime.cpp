#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>
#include <thread>

#include "obs/health.hpp"
#include "obs/prof.hpp"
#include "util/log.hpp"
#include "vmpi/comm.hpp"

namespace bat::vmpi {

namespace {

bool env_validation_enabled() {
    const char* env = std::getenv("BAT_VMPI_VALIDATE");
    return env != nullptr && std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}

}  // namespace

Runtime::Runtime(int nranks, ValidatorOptions opts) : nranks_(nranks) {
    BAT_CHECK_MSG(nranks > 0, "Runtime requires at least one rank");
    mailboxes_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        mailboxes_.push_back(std::make_unique<Mailbox>());
    }
    validator_ = std::make_shared<Validator>(nranks, opts);
    // In-flight message introspection for stall diagnoses: per-mailbox
    // pending counts with the src/tag/bytes of the oldest few. try_lock so
    // the watchdog never blocks behind (or deadlocks with) a rank thread.
    diag_provider_ = obs::register_diag_provider("vmpi", [this] {
        std::string out = "{\"pending\":[";
        bool first = true;
        for (std::size_t dst = 0; dst < mailboxes_.size(); ++dst) {
            Mailbox& box = *mailboxes_[dst];
            if (!box.mutex.try_lock()) {
                out += first ? "" : ",";
                first = false;
                out += "{\"rank\":" + std::to_string(dst) + ",\"state\":\"busy\"}";
                continue;
            }
            if (!box.messages.empty()) {
                out += first ? "" : ",";
                first = false;
                out += "{\"rank\":" + std::to_string(dst) + ",\"count\":" +
                       std::to_string(box.messages.size()) + ",\"messages\":[";
                std::size_t shown = 0;
                for (const Message& msg : box.messages) {
                    if (shown == 8) {
                        break;
                    }
                    out += shown == 0 ? "" : ",";
                    ++shown;
                    out += "{\"src\":" + std::to_string(msg.src) +
                           ",\"tag\":" + std::to_string(msg.tag) +
                           ",\"bytes\":" + std::to_string(msg.payload.size()) + "}";
                }
                out += "]}";
            }
            box.mutex.unlock();
        }
        out += "]}";
        return out;
    });
}

Runtime::~Runtime() {
    obs::unregister_diag_provider(diag_provider_);
}

void Runtime::deliver(int dst, Message msg) {
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
    {
        std::lock_guard<CheckedMutex> lock(box.mutex);
        if (sched::maybe_active()) {
            sched::note_access(&box, "vmpi.mailbox", /*is_write=*/true);
        }
        box.messages.push_back(std::move(msg));
    }
    box.cv.notify_all();
    if (sched::maybe_active()) {
        sched::note_progress();  // a delivery can complete someone's receive
    }
    if (validator_->enabled()) {
        validator_->on_progress();
    }
}

bool Runtime::try_match(int rank, int src, int tag, Bytes* out, int* from, bool consume,
                        std::size_t* bytes, std::uint64_t* flow) {
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
    const bool validate = validator_->enabled();
    std::lock_guard<CheckedMutex> lock(box.mutex);
    if (sched::maybe_active()) {
        sched::note_access(&box, "vmpi.mailbox", /*is_write=*/consume);
    }
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
        if (it->tag != tag) {
            continue;
        }
        if (src != kAnySource && it->src != src) {
            continue;
        }
        if (from != nullptr) {
            *from = it->src;
        }
        if (bytes != nullptr) {
            *bytes = it->payload.size();
        }
        if (flow != nullptr) {
            *flow = it->flow;
        }
        if (consume) {
            if (validate) {
                // Every message older than the match was passed over by
                // this consuming receive; long-starved ones indicate the
                // ANY_SOURCE starvation / stale-tag pattern.
                for (auto skipped = box.messages.begin(); skipped != it; ++skipped) {
                    ++skipped->passed_over;
                    if (skipped->passed_over > validator_->options().starvation_threshold &&
                        !skipped->starvation_reported) {
                        skipped->starvation_reported = true;
                        std::ostringstream os;
                        os << "message from rank " << skipped->src << " with tag "
                           << skipped->tag << " (" << skipped->payload.size()
                           << " bytes) has been passed over " << skipped->passed_over
                           << " times by consuming receives at rank " << rank
                           << " — ANY_SOURCE starvation or a receive with a stale tag";
                        validator_->report(DiagKind::any_source_starvation, rank, os.str());
                    }
                }
            }
            if (out != nullptr) {
                *out = std::move(it->payload);
            }
            if (sched::maybe_active()) {
                sched::join_token(it->vc);  // match side of the send→match edge
                sched::note_progress();
            }
            box.messages.erase(it);
            if (validate) {
                validator_->on_consumed(rank);
            }
        }
        return true;
    }
    return false;
}

Runtime::IbarrierState& Runtime::ibarrier_state(std::uint64_t seq) {
    std::lock_guard<CheckedMutex> lock(ibarrier_mutex_);
    while (ibarrier_states_.size() <= seq) {
        ibarrier_states_.push_back(std::make_unique<IbarrierState>());
    }
    return *ibarrier_states_[seq];
}

ValidationReport Runtime::run_impl(int nranks, const std::function<void(Comm&)>& fn,
                                   ValidatorOptions opts, bool rethrow) {
    if (!sched::active()) {
        if (const auto sched_opts = sched::env_options()) {
            // BAT_SCHED_SEED armed in the environment: serialize this run
            // under the deterministic scheduler, append the bat-sched-v1
            // report line (BAT_SCHED_TRACE_FILE) for tools/vmpi_explore,
            // and surface any schedule-level failure to the caller.
            ValidationReport report;
            const sched::RunResult rr = sched::run_scheduled(
                *sched_opts, [&] { report = run_impl_inner(nranks, fn, opts, rethrow); });
            sched::write_env_report(rr);
            BAT_LOG_INFO("sched: " << rr.summary());
            if (rr.error != nullptr) {
                std::rethrow_exception(rr.error);
            }
            if (rr.deadlock) {
                throw sched::DeadlockError(rr.deadlock_report);
            }
            if (rethrow && !rr.races.empty()) {
                throw sched::RaceError(rr.races.front());
            }
            return report;
        }
    }
    return run_impl_inner(nranks, fn, opts, rethrow);
}

ValidationReport Runtime::run_impl_inner(int nranks, const std::function<void(Comm&)>& fn,
                                         ValidatorOptions opts, bool rethrow) {
    Runtime rt(nranks, opts);
    Validator& validator = *rt.validator_;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
    std::atomic<bool> failed{false};

    // Under schedule exploration, announce every rank thread before any is
    // spawned: the creating thread fixes slot assignment deterministically.
    std::vector<std::uint64_t> sched_handles(static_cast<std::size_t>(nranks), 0);
    if (sched::maybe_active()) {
        for (int r = 0; r < nranks; ++r) {
            sched_handles[static_cast<std::size_t>(r)] =
                sched::announce_thread("rank" + std::to_string(r));
        }
    }
    for (int r = 0; r < nranks; ++r) {
        const std::uint64_t sched_handle = sched_handles[static_cast<std::size_t>(r)];
        threads.emplace_back([&rt, &fn, &errors, &failed, &validator, r, sched_handle] {
            const sched::AdoptScope sched_adopt(sched_handle);
            // Tag this thread with its rank so log lines carry an "rN"
            // prefix and trace events land on the rank's timeline track.
            set_thread_log_rank(r);
            // Rank threads carry most of the CPU; sample them for their
            // whole body (cheap no-op when the profiler is off).
            obs::prof_register_thread("rank");
            Comm comm(&rt, r);
            if (validator.enabled()) {
                validator.on_rank_start(r);
            }
            obs::rank_begin(r);
            try {
                fn(comm);
            } catch (...) {
                errors[static_cast<std::size_t>(r)] = std::current_exception();
                failed.store(true, std::memory_order_release);
            }
            obs::rank_end(r);
            if (validator.enabled()) {
                validator.on_rank_finish(r);
            }
            obs::prof_unregister_thread();
            set_thread_log_rank(-1);
        });
    }
    for (std::size_t i = 0; i < threads.size(); ++i) {
        // Scheduled join: spin until the rank has left the schedule, then
        // reap it natively with the token held — no decisions happen during
        // the OS join, so the decision stream stays deterministic even with
        // idle pool workers still spinning.
        if (sched::maybe_active() && sched::this_thread_scheduled()) {
            try {
                while (!sched::thread_finished(sched_handles[i])) {
                    sched::yield_blocked("vmpi.join");
                }
            } catch (const sched::DeadlockError&) {
                // Every rank unwinds with its own DeadlockError and exits;
                // fall through to the native join.
            }
        }
        threads[i].join();
    }

    ValidationReport report;
    if (validator.enabled()) {
        // Finalize checks: any message still sitting in a mailbox was sent
        // but never received.
        for (int dst = 0; dst < nranks; ++dst) {
            Mailbox& box = *rt.mailboxes_[static_cast<std::size_t>(dst)];
            std::lock_guard<CheckedMutex> lock(box.mutex);
            for (const Message& msg : box.messages) {
                std::ostringstream os;
                os << "send from rank " << msg.src << " to rank " << dst << " with tag "
                   << msg.tag << " (" << msg.payload.size()
                   << " bytes) was never received (pending at finalize)";
                validator.report(DiagKind::unmatched_send, msg.src, os.str());
            }
        }
        report = validator.take_report();
    }

    if (failed.load(std::memory_order_acquire)) {
        for (auto& e : errors) {
            if (!e) {
                continue;
            }
            if (rethrow) {
                std::rethrow_exception(e);
            }
            try {
                std::rethrow_exception(e);
            } catch (const DeadlockError&) {
                // Already captured as a deadlock diagnostic.
            } catch (const std::exception& ex) {
                report.rank_errors.emplace_back(ex.what());
            } catch (...) {
                report.rank_errors.emplace_back("unknown exception");
            }
        }
    }

    if (validator.enabled() && rethrow && !report.diagnostics.empty()) {
        // Env-enabled validation on a plain run(): surface findings loudly
        // but do not change control flow.
        BAT_LOG_WARN("vmpi validator found " << report.diagnostics.size()
                                             << " issue(s):\n"
                                             << report.summary());
    }
    return report;
}

void Runtime::run(int nranks, const std::function<void(Comm&)>& fn) {
    ValidatorOptions opts;
    opts.enabled = env_validation_enabled();
    run_impl(nranks, fn, opts, /*rethrow=*/true);
}

ValidationReport Runtime::run_validated(int nranks, const std::function<void(Comm&)>& fn,
                                        ValidatorOptions opts) {
    opts.enabled = true;
    return run_impl(nranks, fn, opts, /*rethrow=*/false);
}

}  // namespace bat::vmpi
