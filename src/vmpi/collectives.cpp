// Composite collectives built on the point-to-point layer. Separated from
// comm.cpp to keep the core matching logic readable.

#include "vmpi/comm.hpp"

#include "obs/trace.hpp"

namespace bat::vmpi {

std::vector<Bytes> Comm::allgatherv(Bytes payload) {
    BAT_TRACE_SCOPE_CAT("vmpi.allgatherv", "vmpi");
    const detail::CollectiveScope collective_scope;
    // gatherv to rank 0, then rank 0 rebroadcasts the concatenated set.
    std::vector<Bytes> gathered = gatherv(std::move(payload), 0);
    const int tag = next_collective_tag();
    if (rank() == 0) {
        // Serialize as [count][len, bytes]*.
        std::size_t total = sizeof(std::uint64_t);
        for (const auto& b : gathered) {
            total += sizeof(std::uint64_t) + b.size();
        }
        Bytes packed;
        packed.reserve(total);
        auto append = [&packed](const void* p, std::size_t n) {
            const auto* bp = static_cast<const std::byte*>(p);
            packed.insert(packed.end(), bp, bp + n);
        };
        const std::uint64_t count = gathered.size();
        append(&count, sizeof(count));
        for (const auto& b : gathered) {
            const std::uint64_t len = b.size();
            append(&len, sizeof(len));
            append(b.data(), b.size());
        }
        for (int r = 1; r < size(); ++r) {
            isend(r, tag, packed);
        }
        return gathered;
    }
    const Bytes packed = recv(0, tag);
    std::size_t pos = 0;
    auto take = [&packed, &pos](void* p, std::size_t n) {
        BAT_CHECK(pos + n <= packed.size());
        std::memcpy(p, packed.data() + pos, n);
        pos += n;
    };
    std::uint64_t count = 0;
    take(&count, sizeof(count));
    std::vector<Bytes> out(count);
    for (auto& b : out) {
        std::uint64_t len = 0;
        take(&len, sizeof(len));
        b.resize(len);
        if (len > 0) {
            take(b.data(), len);
        }
    }
    return out;
}

std::vector<Bytes> Comm::alltoallv(std::vector<Bytes> payloads) {
    BAT_TRACE_SCOPE_CAT("vmpi.alltoallv", "vmpi");
    const detail::CollectiveScope collective_scope;
    BAT_CHECK_MSG(static_cast<int>(payloads.size()) == size(),
                  "alltoallv requires one payload per rank");
    const int tag = next_collective_tag();
    for (int r = 0; r < size(); ++r) {
        if (r == rank()) {
            continue;
        }
        isend(r, tag, std::move(payloads[static_cast<std::size_t>(r)]));
    }
    std::vector<Bytes> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank())] = std::move(payloads[static_cast<std::size_t>(rank())]);
    for (int r = 0; r < size(); ++r) {
        if (r == rank()) {
            continue;
        }
        out[static_cast<std::size_t>(r)] = recv(r, tag);
    }
    return out;
}

}  // namespace bat::vmpi
