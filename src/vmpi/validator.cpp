#include "vmpi/validator.hpp"

#include <sstream>
#include <thread>

#include "vmpi/comm.hpp"

namespace bat::vmpi {

const char* to_string(DiagKind kind) {
    switch (kind) {
        case DiagKind::unmatched_send: return "unmatched-send";
        case DiagKind::leaked_request: return "leaked-request";
        case DiagKind::tag_violation: return "tag-violation";
        case DiagKind::size_mismatch: return "size-mismatch";
        case DiagKind::any_source_starvation: return "any-source-starvation";
        case DiagKind::deadlock: return "deadlock";
    }
    return "unknown";
}

bool ValidationReport::has(DiagKind kind) const { return count(kind) > 0; }

std::size_t ValidationReport::count(DiagKind kind) const {
    std::size_t n = 0;
    for (const auto& d : diagnostics) {
        if (d.kind == kind) {
            ++n;
        }
    }
    return n;
}

std::string ValidationReport::summary() const {
    std::ostringstream os;
    for (const auto& d : diagnostics) {
        os << "[" << to_string(d.kind) << "]";
        if (d.rank >= 0) {
            os << " rank " << d.rank;
        }
        os << ": " << d.message << "\n";
    }
    return os.str();
}

Validator::Validator(int nranks, ValidatorOptions opts) : opts_(opts) {
    ranks_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        ranks_.push_back(std::make_unique<RankState>());
    }
}

void Validator::on_rank_start(int rank) {
    ranks_[static_cast<std::size_t>(rank)]->phase.store(0, std::memory_order_release);
}

void Validator::on_rank_finish(int rank) {
    ranks_[static_cast<std::size_t>(rank)]->phase.store(2, std::memory_order_release);
    // A rank exiting can be what makes the remaining ranks undeliverable
    // (e.g. it never entered a barrier); let the detector reassess from a
    // clean stability count rather than miscounting this as progress.
}

void Validator::check_user_tag(int rank, const char* op, int tag, bool internal) {
    if (internal) {
        return;
    }
    if (tag < 0 || tag >= kMaxUserTag) {
        std::ostringstream os;
        os << op << " with tag " << tag << " outside the user range [0, " << kMaxUserTag
           << "); tags >= kMaxUserTag are reserved for collectives";
        report(DiagKind::tag_violation, rank, os.str());
    }
}

void Validator::on_send(int src, int dst, int tag, std::size_t bytes, bool internal) {
    sends_.fetch_add(1, std::memory_order_relaxed);
    check_user_tag(src, "isend", tag, internal);
    (void)dst;
    (void)bytes;
}

void Validator::on_recv_posted(int rank, int src, int tag, bool internal) {
    check_user_tag(rank, "irecv", tag, internal);
    (void)src;
}

void Validator::on_probe(int rank, int src, int tag, bool internal) {
    probes_.fetch_add(1, std::memory_order_relaxed);
    check_user_tag(rank, "iprobe", tag, internal);
    (void)src;
}

void Validator::on_collective(int rank) {
    collectives_.fetch_add(1, std::memory_order_relaxed);
    (void)rank;
}

void Validator::on_progress() { progress_.fetch_add(1, std::memory_order_acq_rel); }

void Validator::on_consumed(int rank) {
    receives_.fetch_add(1, std::memory_order_relaxed);
    on_progress();
    (void)rank;
}

void Validator::report(DiagKind kind, int rank, std::string message) {
    std::lock_guard<std::mutex> lock(mutex_);
    diagnostics_.push_back(Diagnostic{kind, rank, std::move(message)});
}

void Validator::on_wait_begin(int rank, const std::string& what) {
    RankState& rs = *ranks_[static_cast<std::size_t>(rank)];
    {
        std::lock_guard<std::mutex> lock(rs.desc_mutex);
        rs.wait_desc = what;
    }
    rs.phase.store(1, std::memory_order_release);
}

void Validator::on_wait_end(int rank) {
    ranks_[static_cast<std::size_t>(rank)]->phase.store(0, std::memory_order_release);
}

bool Validator::poll_deadlock(int rank) {
    if (deadlock_.load(std::memory_order_acquire)) {
        return true;
    }
    // Fast path: anybody still running means no deadlock yet.
    int blocked = 0;
    for (const auto& rs : ranks_) {
        const int phase = rs->phase.load(std::memory_order_acquire);
        if (phase == 0) {
            return false;
        }
        if (phase == 1) {
            ++blocked;
        }
    }
    if (blocked == 0) {
        return false;  // everyone finished; `rank` is about to observe that
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (deadlock_.load(std::memory_order_acquire)) {
        return true;
    }
    const std::uint64_t progress = progress_.load(std::memory_order_acquire);
    if (progress != last_progress_) {
        last_progress_ = progress;
        stable_rounds_ = 0;
        return false;
    }
    if (++stable_rounds_ < opts_.deadlock_stable_rounds) {
        return false;
    }

    // Declare: every live rank is blocked and nothing has moved for many
    // consecutive observations. Build the wait-for report.
    std::ostringstream os;
    os << "vmpi deadlock: all live ranks blocked with no deliverable message;"
       << " wait-for state:";
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        RankState& rs = *ranks_[r];
        const int phase = rs.phase.load(std::memory_order_acquire);
        os << "\n  rank " << r << ": ";
        if (phase == 2) {
            os << "finished";
        } else {
            std::lock_guard<std::mutex> desc_lock(rs.desc_mutex);
            os << "blocked in " << rs.wait_desc;
        }
    }
    deadlock_msg_ = os.str();
    diagnostics_.push_back(Diagnostic{DiagKind::deadlock, -1, deadlock_msg_});
    deadlock_.store(true, std::memory_order_release);
    (void)rank;
    return true;
}

std::string Validator::deadlock_message() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return deadlock_msg_;
}

ValidationReport Validator::take_report() {
    ValidationReport report;
    report.sends = sends_.load(std::memory_order_relaxed);
    report.receives = receives_.load(std::memory_order_relaxed);
    report.probes = probes_.load(std::memory_order_relaxed);
    report.collectives = collectives_.load(std::memory_order_relaxed);
    report.deadlock = deadlock_.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(mutex_);
    report.diagnostics = diagnostics_;
    return report;
}

namespace detail {

namespace {
thread_local int t_collective_depth = 0;
}

CollectiveScope::CollectiveScope() { ++t_collective_depth; }
CollectiveScope::~CollectiveScope() { --t_collective_depth; }
bool in_collective() { return t_collective_depth > 0; }

}  // namespace detail

}  // namespace bat::vmpi
