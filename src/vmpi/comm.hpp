#pragma once
// Virtual MPI: an in-process message-passing runtime.
//
// The paper's I/O library is built on MPI nonblocking point-to-point calls,
// collectives, and MPI_Ibarrier (used by the client–server read loop,
// paper §IV-B). This module provides the same semantics with ranks running
// as threads of one process and messages passed through per-rank mailboxes:
//
//   - isend / irecv with (source, tag) matching, MPI-like FIFO ordering per
//     (source, destination, tag) channel, and ANY_SOURCE receives;
//   - iprobe, for server loops that poll for incoming queries;
//   - barrier and a true nonblocking ibarrier;
//   - gather(v) / scatter(v) / bcast / allreduce built over point-to-point.
//
// Sends are buffered (the payload is moved/copied into the destination
// mailbox immediately), so send requests complete instantly — the same
// guarantee simulations rely on for small-to-moderate MPI_Isend payloads,
// and a semantics under which no paper algorithm here can deadlock.
//
// Protocol misuse (leaked requests, reserved tags, size-mismatched typed
// receives, starved mailbox messages, genuine wait deadlocks) is caught by
// the opt-in validator — see vmpi/validator.hpp and docs/CORRECTNESS.md.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sched/sched.hpp"
#include "util/check.hpp"
#include "util/lock_order.hpp"
#include "vmpi/validator.hpp"

namespace bat::vmpi {

using Bytes = std::vector<std::byte>;

/// Wildcard source for irecv/iprobe.
inline constexpr int kAnySource = -1;

/// User point-to-point tags must be below this; tags at or above it are
/// reserved for collectives.
inline constexpr int kMaxUserTag = 1 << 20;

class Runtime;
class Comm;

/// Completion handle for a nonblocking operation. Requests are cheap,
/// movable handles; test() polls, wait() blocks (yield-spinning).
class Request {
public:
    Request() = default;

    /// True once the operation has completed. Idempotent.
    bool test();
    /// Block until complete. Under an enabled validator, throws
    /// DeadlockError once the deadlock detector declares no event can
    /// complete this request (instead of spinning forever).
    void wait();
    bool valid() const { return impl_ != nullptr; }

private:
    friend class Comm;
    struct Impl {
        // Returns true when the operation is complete; called under no lock.
        std::function<bool()> poll;
        bool done = false;
        // Validator bookkeeping; null when validation is disabled.
        std::shared_ptr<Validator> validator;
        int rank = -1;
        std::string desc;
        // Structured blocked-on fields for the stall watchdog: set on every
        // request (three plain stores, unlike `desc` which allocates and is
        // only built for the validator). op is a string literal or null.
        const char* block_op = nullptr;
        int block_peer = -1;
        int block_tag = -1;

        Impl() = default;
        Impl(const Impl&) = delete;
        Impl& operator=(const Impl&) = delete;
        ~Impl() {
            if (validator != nullptr && !done) {
                validator->report(DiagKind::leaked_request, rank,
                                  "request destroyed before completing: " + desc);
            }
        }
    };
    explicit Request(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
    std::shared_ptr<Impl> impl_;
};

/// Wait for every request in `reqs` to complete.
void wait_all(std::span<Request> reqs);

/// One rank's endpoint. Obtained from Runtime; all methods are called from
/// the rank's own thread.
class Comm {
public:
    int rank() const { return rank_; }
    int size() const;

    // ---- point-to-point -------------------------------------------------
    /// Buffered nonblocking send; the returned request is already complete.
    Request isend(int dst, int tag, Bytes payload);
    Request isend(int dst, int tag, std::span<const std::byte> payload);

    /// Nonblocking receive into `out` (resized to the message length on
    /// completion). `src` may be kAnySource. If `from` is non-null it
    /// receives the actual source rank on completion.
    Request irecv(int src, int tag, Bytes& out, int* from = nullptr);

    /// Blocking convenience wrappers.
    void send(int dst, int tag, std::span<const std::byte> payload);
    Bytes recv(int src, int tag, int* from = nullptr);

    /// Nonblocking probe: true if a matching message is waiting; fills
    /// `from`/`bytes` if provided. Does not consume the message.
    bool iprobe(int src, int tag, int* from = nullptr, std::size_t* bytes = nullptr);

    // ---- typed helpers --------------------------------------------------
    template <typename T>
    Request isend_value(int dst, int tag, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        Bytes b(sizeof(T));
        std::memcpy(b.data(), &v, sizeof(T));
        return isend(dst, tag, std::move(b));
    }

    template <typename T>
    T recv_value(int src, int tag, int* from = nullptr) {
        static_assert(std::is_trivially_copyable_v<T>);
        const Bytes b = recv(src, tag, from);
        if (b.size() != sizeof(T)) {
            report_size_mismatch("recv_value", src, tag, b.size(), sizeof(T));
        }
        BAT_CHECK(b.size() == sizeof(T));
        T v;
        std::memcpy(&v, b.data(), sizeof(T));
        return v;
    }

    template <typename T>
    Request isend_vector(int dst, int tag, std::span<const T> v) {
        static_assert(std::is_trivially_copyable_v<T>);
        Bytes b(v.size_bytes());
        if (!v.empty()) {
            std::memcpy(b.data(), v.data(), v.size_bytes());
        }
        return isend(dst, tag, std::move(b));
    }

    template <typename T>
    std::vector<T> recv_vector(int src, int tag, int* from = nullptr) {
        static_assert(std::is_trivially_copyable_v<T>);
        const Bytes b = recv(src, tag, from);
        if (b.size() % sizeof(T) != 0) {
            report_size_mismatch("recv_vector", src, tag, b.size(), sizeof(T));
        }
        BAT_CHECK(b.size() % sizeof(T) == 0);
        std::vector<T> v(b.size() / sizeof(T));
        if (!v.empty()) {
            std::memcpy(v.data(), b.data(), b.size());
        }
        return v;
    }

    // ---- collectives (must be called by all ranks, in the same order) ---
    void barrier();
    /// Nonblocking barrier: the request completes once every rank has
    /// entered the same ibarrier invocation.
    Request ibarrier();

    /// Gather fixed-size values to root; returns size() values on root,
    /// empty elsewhere.
    template <typename T>
    std::vector<T> gather(const T& v, int root);

    /// Gather variable-length byte payloads to root.
    std::vector<Bytes> gatherv(Bytes payload, int root);

    /// Scatter one payload per rank from root; returns this rank's payload.
    Bytes scatterv(std::vector<Bytes> payloads, int root);

    /// Broadcast root's payload to all ranks.
    Bytes bcast(Bytes payload, int root);

    /// All-reduce with a binary op over fixed-size values.
    template <typename T, typename Op>
    T allreduce(const T& v, Op op);

    /// All ranks receive every rank's payload (gatherv + bcast semantics).
    std::vector<Bytes> allgatherv(Bytes payload);

    /// Personalized all-to-all: send payloads[r] to rank r, receive one
    /// payload from every rank.
    std::vector<Bytes> alltoallv(std::vector<Bytes> payloads);

private:
    friend class Runtime;
    Comm(Runtime* rt, int rank) : rt_(rt), rank_(rank) {}

    int next_collective_tag();
    /// The runtime's validator, or null when validation is disabled.
    Validator* validator() const;
    void report_size_mismatch(const char* op, int src, int tag, std::size_t got,
                              std::size_t expected);

    Runtime* rt_ = nullptr;
    int rank_ = 0;
    std::uint32_t collective_seq_ = 0;
    std::uint64_t ibarrier_seq_ = 0;
};

/// Owns the mailboxes and launches rank threads.
class Runtime {
public:
    /// Run `fn(comm)` on `nranks` ranks, each on its own thread. Rethrows
    /// the first exception raised by any rank (after all ranks joined or
    /// the failure is fatal). Protocol validation is off unless
    /// BAT_VMPI_VALIDATE is set in the environment, in which case
    /// diagnostics are logged as warnings at finalize.
    static void run(int nranks, const std::function<void(Comm&)>& fn);

    /// Run with the protocol validator enabled and return its report.
    /// Unlike run(), rank exceptions are recorded in the report
    /// (rank_errors / deadlock) rather than rethrown, so deliberately buggy
    /// programs can be post-mortemed without hanging or aborting the
    /// caller.
    static ValidationReport run_validated(int nranks, const std::function<void(Comm&)>& fn,
                                          ValidatorOptions opts = {});

    int size() const { return nranks_; }

    ~Runtime();

private:
    friend class Comm;
    friend class Request;

    Runtime(int nranks, ValidatorOptions opts);

    static ValidationReport run_impl(int nranks, const std::function<void(Comm&)>& fn,
                                     ValidatorOptions opts, bool rethrow);
    /// run_impl minus the env-armed schedule-exploration wrapper.
    static ValidationReport run_impl_inner(int nranks, const std::function<void(Comm&)>& fn,
                                           ValidatorOptions opts, bool rethrow);

    struct Message {
        int src;
        int tag;
        Bytes payload;
        // Trace flow id tying the send event to the matching receive
        // (obs/trace.hpp); 0 when tracing was off at send time.
        std::uint64_t flow = 0;
        // Query trace id of the sender's current QueryContext
        // (obs/query_trace.hpp); 0 when the send was not query-scoped. Lets
        // message-level tooling attribute traffic to the originating query.
        std::uint64_t qtrace = 0;
        // Starvation tracking (validator only): number of consuming
        // receives that matched a younger or unrelated message while this
        // one sat in the mailbox.
        int passed_over = 0;
        bool starvation_reported = false;
        // Sender's vector clock under schedule exploration (empty
        // otherwise): the send→match happens-before edge for the race
        // checker. Because collectives are built over point-to-point, this
        // one edge also orders gather/scatter/bcast traffic.
        sched::ClockToken vc;
    };

    struct Mailbox {
        CheckedMutex mutex{"vmpi.mailbox"};
        std::condition_variable_any cv;
        std::deque<Message> messages;
    };

    struct IbarrierState {
        std::atomic<int> arrived{0};
        // Schedule exploration: every arrival merges its clock here, every
        // completion acquires the merged clock (arrival→completion edges).
        // Plain mutex: the critical section never yields.
        std::mutex clock_mutex;
        sched::ClockToken clock;
    };

    // Deliver a message to dst's mailbox.
    void deliver(int dst, Message msg);
    // Try to remove a matching message from `rank`'s mailbox. `flow`
    // (optional) receives the matched message's trace flow id.
    bool try_match(int rank, int src, int tag, Bytes* out, int* from, bool consume,
                   std::size_t* bytes, std::uint64_t* flow = nullptr);

    IbarrierState& ibarrier_state(std::uint64_t seq);

    int nranks_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;

    CheckedMutex ibarrier_mutex_{"vmpi.ibarrier"};
    // Keyed by per-rank ibarrier sequence number; all ranks call ibarrier in
    // the same order so sequence numbers align across ranks.
    std::vector<std::unique_ptr<IbarrierState>> ibarrier_states_;

    // Shared with Request impls, which may outlive the runtime.
    std::shared_ptr<Validator> validator_;

    // Health diag provider (obs/health.hpp) exposing pending mailbox
    // messages to stall diagnoses; unregistered in the destructor.
    std::uint64_t diag_provider_ = 0;
};

// ---- template implementations -------------------------------------------

template <typename T>
std::vector<T> Comm::gather(const T& v, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const detail::CollectiveScope collective_scope;
    const int tag = next_collective_tag();
    std::vector<T> out;
    if (rank() == root) {
        out.resize(static_cast<std::size_t>(size()));
        out[static_cast<std::size_t>(root)] = v;
        for (int r = 0; r < size(); ++r) {
            if (r == root) {
                continue;
            }
            out[static_cast<std::size_t>(r)] = recv_value<T>(r, tag);
        }
    } else {
        isend_value(root, tag, v);
    }
    return out;
}

template <typename T, typename Op>
T Comm::allreduce(const T& v, Op op) {
    // Gather-to-0 then broadcast: O(P) but simple and deterministic
    // (reduction order is rank order, independent of arrival order).
    std::vector<T> all = gather(v, 0);
    T result{};
    if (rank() == 0) {
        result = all[0];
        for (int r = 1; r < size(); ++r) {
            result = op(result, all[static_cast<std::size_t>(r)]);
        }
    }
    Bytes b(sizeof(T));
    if (rank() == 0) {
        std::memcpy(b.data(), &result, sizeof(T));
    }
    b = bcast(std::move(b), 0);
    std::memcpy(&result, b.data(), sizeof(T));
    return result;
}

}  // namespace bat::vmpi
