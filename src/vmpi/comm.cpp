#include "vmpi/comm.hpp"

#include <sstream>
#include <thread>

#include "obs/health.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"

namespace bat::vmpi {

// ---- Request --------------------------------------------------------------

bool Request::test() {
    BAT_CHECK_MSG(impl_ != nullptr, "test() on an empty Request");
    if (impl_->done) {
        return true;
    }
    if (impl_->poll()) {
        impl_->done = true;
    }
    return impl_->done;
}

namespace {

/// Publishes what a rank is blocked on for the stall watchdog while a
/// wait() spins; cleared on every exit path (completion or DeadlockError).
struct BlockedScope {
    int rank = -1;
    BlockedScope(int r, const char* op, int peer, int tag) {
        if (r >= 0 && op != nullptr && obs::health_armed()) {
            rank = r;
            obs::set_blocked_op(rank, op, peer, tag);
        }
    }
    ~BlockedScope() {
        if (rank >= 0) {
            obs::clear_blocked_op(rank);
        }
    }
};

}  // namespace

void Request::wait() {
    BAT_CHECK_MSG(impl_ != nullptr, "wait() on an empty Request");
    Validator* validator = impl_->validator.get();
    if (validator == nullptr) {
        if (test()) {
            return;
        }
        const BlockedScope blocked(impl_->rank, impl_->block_op, impl_->block_peer,
                                   impl_->block_tag);
        while (!test()) {
            // Under schedule exploration: a free switch to another runnable
            // thread (throws sched::DeadlockError once the run is declared
            // stuck); a plain OS yield otherwise.
            sched::yield_blocked("vmpi.wait");
        }
        return;
    }
    if (test()) {
        return;
    }
    const BlockedScope blocked(impl_->rank, impl_->block_op, impl_->block_peer,
                               impl_->block_tag);
    // Mark this rank blocked for the deadlock detector, and unmark on every
    // exit path (completion or DeadlockError).
    struct WaitGuard {
        Validator* validator;
        int rank;
        ~WaitGuard() { validator->on_wait_end(rank); }
    };
    validator->on_wait_begin(impl_->rank, impl_->desc);
    WaitGuard guard{validator, impl_->rank};
    while (!test()) {
        if (validator->poll_deadlock(impl_->rank)) {
            throw DeadlockError(validator->deadlock_message());
        }
        sched::yield_blocked("vmpi.wait");
    }
}

void wait_all(std::span<Request> reqs) {
    for (auto& r : reqs) {
        r.wait();
    }
}

// ---- Comm point-to-point ----------------------------------------------------

int Comm::size() const { return rt_->size(); }

Validator* Comm::validator() const {
    Validator* v = rt_->validator_.get();
    return (v != nullptr && v->enabled()) ? v : nullptr;
}

void Comm::report_size_mismatch(const char* op, int src, int tag, std::size_t got,
                                std::size_t expected) {
    if (Validator* val = validator()) {
        std::ostringstream os;
        os << op << "(src=" << src << ", tag=" << tag << ") matched a " << got
           << "-byte message, expected a multiple of " << expected
           << " bytes — sender and receiver disagree on the element type";
        val->report(DiagKind::size_mismatch, rank_, os.str());
    }
}

Request Comm::isend(int dst, int tag, Bytes payload) {
    BAT_CHECK_MSG(dst >= 0 && dst < size(), "isend to invalid rank " << dst);
    sched::yield_point("vmpi.isend");
    if (Validator* val = validator()) {
        val->on_send(rank_, dst, tag, payload.size(), detail::in_collective());
    }
    std::uint64_t flow = 0;
    const std::uint64_t bytes = payload.size();
    const bool traced = obs::trace_enabled();
    const std::uint64_t qtrace = obs::current_query().trace_id;
    if (traced) {
        // The flow id rides inside the message and is closed by the
        // matching receive, drawing a send→recv arrow in the trace viewer.
        flow = obs::next_flow_id();
        obs::emit_begin_msg("vmpi.send", "vmpi", tag, dst,
                            static_cast<std::int64_t>(bytes), /*wait_us=*/-1,
                            qtrace);
        obs::emit_flow_start("vmpi", flow);
    }
    Runtime::Message msg{rank_, tag, std::move(payload), flow};
    msg.qtrace = qtrace;
    if (sched::maybe_active()) {
        msg.vc = sched::fork_token();  // send side of the send→match edge
    }
    rt_->deliver(dst, std::move(msg));
    if (traced) {
        obs::emit_end("vmpi.send", "vmpi");
    }
    obs::note_send(rank_, bytes);
    auto impl = std::make_shared<Request::Impl>();
    impl->done = true;  // buffered send: complete on return
    impl->poll = [] { return true; };
    return Request(std::move(impl));
}

Request Comm::isend(int dst, int tag, std::span<const std::byte> payload) {
    return isend(dst, tag, Bytes(payload.begin(), payload.end()));
}

Request Comm::irecv(int src, int tag, Bytes& out, int* from) {
    Runtime* rt = rt_;
    const int me = rank_;
    auto impl = std::make_shared<Request::Impl>();
    impl->rank = me;
    if (Validator* val = validator()) {
        val->on_recv_posted(me, src, tag, detail::in_collective());
        impl->validator = rt_->validator_;
    }
    // Structured fields for the stall watchdog's "blocked on" line: three
    // plain stores, cheap enough to record unconditionally. The validator's
    // deadlock detector additionally needs the rendered string.
    impl->block_op = "irecv";
    impl->block_peer = src == kAnySource ? -1 : src;
    impl->block_tag = tag;
    if (impl->validator != nullptr) {
        std::ostringstream os;
        os << "irecv(src=" << (src == kAnySource ? std::string("ANY") : std::to_string(src))
           << ", tag=" << tag << ")";
        impl->desc = os.str();
    }
    Bytes* out_ptr = &out;
    const bool traced = obs::trace_enabled();
    const std::uint64_t post_ns = traced ? obs::trace_now_ns() : 0;
    impl->poll = [rt, me, src, tag, out_ptr, from, traced, post_ns] {
        int actual = -1;
        std::uint64_t flow = 0;
        if (!rt->try_match(me, src, tag, out_ptr, &actual, /*consume=*/true, nullptr,
                           &flow)) {
            return false;
        }
        if (from != nullptr) {
            *from = actual;
        }
        obs::note_recv(me, out_ptr->size());
        if (traced && obs::trace_enabled()) {
            // The whole recv span is emitted at completion (a tiny span with
            // the post→match wait as an arg) so spans opened between post
            // and completion cannot cross it.
            const std::uint64_t wait_us = (obs::trace_now_ns() - post_ns) / 1000;
            obs::emit_begin_msg("vmpi.recv", "vmpi", tag, actual,
                                static_cast<std::int64_t>(out_ptr->size()),
                                static_cast<std::int64_t>(wait_us));
            if (flow != 0) {
                obs::emit_flow_end("vmpi", flow);
            }
            obs::emit_end("vmpi.recv", "vmpi");
        }
        return true;
    };
    return Request(std::move(impl));
}

void Comm::send(int dst, int tag, std::span<const std::byte> payload) {
    isend(dst, tag, payload);
}

Bytes Comm::recv(int src, int tag, int* from) {
    Bytes out;
    Request r = irecv(src, tag, out, from);
    r.wait();
    return out;
}

bool Comm::iprobe(int src, int tag, int* from, std::size_t* bytes) {
    sched::yield_point("vmpi.iprobe");
    if (Validator* val = validator()) {
        val->on_probe(rank_, src, tag, detail::in_collective());
    }
    const bool hit = rt_->try_match(rank_, src, tag, nullptr, from, /*consume=*/false, bytes);
    if (!hit && sched::maybe_active() && sched::this_thread_scheduled()) {
        // Probe miss in a server poll loop: let someone else run (free
        // switch), else the prober would spin its preemption budget away.
        sched::yield_blocked("vmpi.iprobe.miss");
    }
    return hit;
}

int Comm::next_collective_tag() {
    // Collective tags cycle through a large reserved space; p2p traffic in
    // flight concurrently with collectives uses tags < kMaxUserTag so the
    // spaces never collide.
    if (Validator* val = validator()) {
        val->on_collective(rank_);
    }
    const int tag = kMaxUserTag + static_cast<int>(collective_seq_ % (1u << 10));
    ++collective_seq_;
    return tag;
}

// ---- Comm collectives -------------------------------------------------------

void Comm::barrier() {
    BAT_TRACE_SCOPE_CAT("vmpi.barrier", "vmpi");
    ibarrier().wait();
}

Request Comm::ibarrier() {
    const detail::CollectiveScope collective_scope;
    // All ranks call collectives in the same order, so this rank's sequence
    // number identifies the same ibarrier instance on every rank.
    const std::uint64_t seq = ibarrier_seq_++;
    sched::yield_point("vmpi.ibarrier");
    Runtime::IbarrierState& st = rt_->ibarrier_state(seq);
    if (sched::maybe_active() && sched::this_thread_scheduled()) {
        // Arrival side of the arrival→completion happens-before edges.
        std::lock_guard<std::mutex> clock_lock(st.clock_mutex);
        sched::merge_token(st.clock);
    }
    st.arrived.fetch_add(1, std::memory_order_acq_rel);
    obs::note_collective(rank_);
    Runtime* rt = rt_;
    auto impl = std::make_shared<Request::Impl>();
    impl->rank = rank_;
    if (Validator* val = validator()) {
        val->on_collective(rank_);
        val->on_progress();  // our arrival may complete other ranks' barriers
        impl->validator = rt_->validator_;
        impl->done = false;
    }
    impl->block_op = "ibarrier";
    impl->block_tag = static_cast<int>(seq);
    if (impl->validator != nullptr) {
        impl->desc = "ibarrier(seq=" + std::to_string(seq) + ")";
    }
    impl->poll = [rt, &st] {
        if (st.arrived.load(std::memory_order_acquire) < rt->size()) {
            return false;
        }
        if (sched::maybe_active() && sched::this_thread_scheduled()) {
            // Completion: acquire every arrival's clock, and report the
            // barrier resolving as forward progress.
            {
                std::lock_guard<std::mutex> clock_lock(st.clock_mutex);
                sched::acquire_token(st.clock);
            }
            sched::note_progress();
        }
        return true;
    };
    return Request(std::move(impl));
}

std::vector<Bytes> Comm::gatherv(Bytes payload, int root) {
    BAT_TRACE_SCOPE_CAT("vmpi.gatherv", "vmpi");
    const detail::CollectiveScope collective_scope;
    const int tag = next_collective_tag();
    std::vector<Bytes> out;
    if (rank() == root) {
        out.resize(static_cast<std::size_t>(size()));
        out[static_cast<std::size_t>(root)] = std::move(payload);
        for (int r = 0; r < size(); ++r) {
            if (r == root) {
                continue;
            }
            out[static_cast<std::size_t>(r)] = recv(r, tag);
        }
    } else {
        isend(root, tag, std::move(payload));
    }
    return out;
}

Bytes Comm::scatterv(std::vector<Bytes> payloads, int root) {
    BAT_TRACE_SCOPE_CAT("vmpi.scatterv", "vmpi");
    const detail::CollectiveScope collective_scope;
    const int tag = next_collective_tag();
    if (rank() == root) {
        BAT_CHECK_MSG(static_cast<int>(payloads.size()) == size(),
                      "scatterv requires one payload per rank on root");
        for (int r = 0; r < size(); ++r) {
            if (r == root) {
                continue;
            }
            isend(r, tag, std::move(payloads[static_cast<std::size_t>(r)]));
        }
        return std::move(payloads[static_cast<std::size_t>(root)]);
    }
    return recv(root, tag);
}

Bytes Comm::bcast(Bytes payload, int root) {
    BAT_TRACE_SCOPE_CAT("vmpi.bcast", "vmpi");
    const detail::CollectiveScope collective_scope;
    const int tag = next_collective_tag();
    if (rank() == root) {
        for (int r = 0; r < size(); ++r) {
            if (r == root) {
                continue;
            }
            isend(r, tag, payload);
        }
        return payload;
    }
    return recv(root, tag);
}

}  // namespace bat::vmpi
