file(REMOVE_RECURSE
  "CMakeFiles/bat_core.dir/core/agg_tree.cpp.o"
  "CMakeFiles/bat_core.dir/core/agg_tree.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/aug.cpp.o"
  "CMakeFiles/bat_core.dir/core/aug.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/bat_builder.cpp.o"
  "CMakeFiles/bat_core.dir/core/bat_builder.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/bat_compress.cpp.o"
  "CMakeFiles/bat_core.dir/core/bat_compress.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/bat_file.cpp.o"
  "CMakeFiles/bat_core.dir/core/bat_file.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/bat_query.cpp.o"
  "CMakeFiles/bat_core.dir/core/bat_query.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/dataset.cpp.o"
  "CMakeFiles/bat_core.dir/core/dataset.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/karras.cpp.o"
  "CMakeFiles/bat_core.dir/core/karras.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/metadata.cpp.o"
  "CMakeFiles/bat_core.dir/core/metadata.cpp.o.d"
  "CMakeFiles/bat_core.dir/core/particles.cpp.o"
  "CMakeFiles/bat_core.dir/core/particles.cpp.o.d"
  "libbat_core.a"
  "libbat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
