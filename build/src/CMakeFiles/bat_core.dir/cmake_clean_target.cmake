file(REMOVE_RECURSE
  "libbat_core.a"
)
