
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agg_tree.cpp" "src/CMakeFiles/bat_core.dir/core/agg_tree.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/agg_tree.cpp.o.d"
  "/root/repo/src/core/aug.cpp" "src/CMakeFiles/bat_core.dir/core/aug.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/aug.cpp.o.d"
  "/root/repo/src/core/bat_builder.cpp" "src/CMakeFiles/bat_core.dir/core/bat_builder.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/bat_builder.cpp.o.d"
  "/root/repo/src/core/bat_compress.cpp" "src/CMakeFiles/bat_core.dir/core/bat_compress.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/bat_compress.cpp.o.d"
  "/root/repo/src/core/bat_file.cpp" "src/CMakeFiles/bat_core.dir/core/bat_file.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/bat_file.cpp.o.d"
  "/root/repo/src/core/bat_query.cpp" "src/CMakeFiles/bat_core.dir/core/bat_query.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/bat_query.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/CMakeFiles/bat_core.dir/core/dataset.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/dataset.cpp.o.d"
  "/root/repo/src/core/karras.cpp" "src/CMakeFiles/bat_core.dir/core/karras.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/karras.cpp.o.d"
  "/root/repo/src/core/metadata.cpp" "src/CMakeFiles/bat_core.dir/core/metadata.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/metadata.cpp.o.d"
  "/root/repo/src/core/particles.cpp" "src/CMakeFiles/bat_core.dir/core/particles.cpp.o" "gcc" "src/CMakeFiles/bat_core.dir/core/particles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
