# Empty dependencies file for bat_core.
# This may be replaced when dependencies are built.
