
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/boiler.cpp" "src/CMakeFiles/bat_workloads.dir/workloads/boiler.cpp.o" "gcc" "src/CMakeFiles/bat_workloads.dir/workloads/boiler.cpp.o.d"
  "/root/repo/src/workloads/dambreak.cpp" "src/CMakeFiles/bat_workloads.dir/workloads/dambreak.cpp.o" "gcc" "src/CMakeFiles/bat_workloads.dir/workloads/dambreak.cpp.o.d"
  "/root/repo/src/workloads/decomposition.cpp" "src/CMakeFiles/bat_workloads.dir/workloads/decomposition.cpp.o" "gcc" "src/CMakeFiles/bat_workloads.dir/workloads/decomposition.cpp.o.d"
  "/root/repo/src/workloads/mixtures.cpp" "src/CMakeFiles/bat_workloads.dir/workloads/mixtures.cpp.o" "gcc" "src/CMakeFiles/bat_workloads.dir/workloads/mixtures.cpp.o.d"
  "/root/repo/src/workloads/uniform.cpp" "src/CMakeFiles/bat_workloads.dir/workloads/uniform.cpp.o" "gcc" "src/CMakeFiles/bat_workloads.dir/workloads/uniform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
