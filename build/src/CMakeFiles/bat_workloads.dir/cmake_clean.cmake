file(REMOVE_RECURSE
  "CMakeFiles/bat_workloads.dir/workloads/boiler.cpp.o"
  "CMakeFiles/bat_workloads.dir/workloads/boiler.cpp.o.d"
  "CMakeFiles/bat_workloads.dir/workloads/dambreak.cpp.o"
  "CMakeFiles/bat_workloads.dir/workloads/dambreak.cpp.o.d"
  "CMakeFiles/bat_workloads.dir/workloads/decomposition.cpp.o"
  "CMakeFiles/bat_workloads.dir/workloads/decomposition.cpp.o.d"
  "CMakeFiles/bat_workloads.dir/workloads/mixtures.cpp.o"
  "CMakeFiles/bat_workloads.dir/workloads/mixtures.cpp.o.d"
  "CMakeFiles/bat_workloads.dir/workloads/uniform.cpp.o"
  "CMakeFiles/bat_workloads.dir/workloads/uniform.cpp.o.d"
  "libbat_workloads.a"
  "libbat_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bat_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
