# Empty dependencies file for bat_workloads.
# This may be replaced when dependencies are built.
