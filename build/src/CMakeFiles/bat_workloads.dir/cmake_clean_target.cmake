file(REMOVE_RECURSE
  "libbat_workloads.a"
)
