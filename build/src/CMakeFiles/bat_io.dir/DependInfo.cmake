
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/baselines.cpp" "src/CMakeFiles/bat_io.dir/io/baselines.cpp.o" "gcc" "src/CMakeFiles/bat_io.dir/io/baselines.cpp.o.d"
  "/root/repo/src/io/data_service.cpp" "src/CMakeFiles/bat_io.dir/io/data_service.cpp.o" "gcc" "src/CMakeFiles/bat_io.dir/io/data_service.cpp.o.d"
  "/root/repo/src/io/reader.cpp" "src/CMakeFiles/bat_io.dir/io/reader.cpp.o" "gcc" "src/CMakeFiles/bat_io.dir/io/reader.cpp.o.d"
  "/root/repo/src/io/series.cpp" "src/CMakeFiles/bat_io.dir/io/series.cpp.o" "gcc" "src/CMakeFiles/bat_io.dir/io/series.cpp.o.d"
  "/root/repo/src/io/writer.cpp" "src/CMakeFiles/bat_io.dir/io/writer.cpp.o" "gcc" "src/CMakeFiles/bat_io.dir/io/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bat_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
