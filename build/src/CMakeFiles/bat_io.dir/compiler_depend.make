# Empty compiler generated dependencies file for bat_io.
# This may be replaced when dependencies are built.
