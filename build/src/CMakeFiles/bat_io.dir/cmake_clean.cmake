file(REMOVE_RECURSE
  "CMakeFiles/bat_io.dir/io/baselines.cpp.o"
  "CMakeFiles/bat_io.dir/io/baselines.cpp.o.d"
  "CMakeFiles/bat_io.dir/io/data_service.cpp.o"
  "CMakeFiles/bat_io.dir/io/data_service.cpp.o.d"
  "CMakeFiles/bat_io.dir/io/reader.cpp.o"
  "CMakeFiles/bat_io.dir/io/reader.cpp.o.d"
  "CMakeFiles/bat_io.dir/io/series.cpp.o"
  "CMakeFiles/bat_io.dir/io/series.cpp.o.d"
  "CMakeFiles/bat_io.dir/io/writer.cpp.o"
  "CMakeFiles/bat_io.dir/io/writer.cpp.o.d"
  "libbat_io.a"
  "libbat_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bat_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
