file(REMOVE_RECURSE
  "libbat_io.a"
)
