file(REMOVE_RECURSE
  "CMakeFiles/bat_simio.dir/simio/calibrate.cpp.o"
  "CMakeFiles/bat_simio.dir/simio/calibrate.cpp.o.d"
  "CMakeFiles/bat_simio.dir/simio/filesystem.cpp.o"
  "CMakeFiles/bat_simio.dir/simio/filesystem.cpp.o.d"
  "CMakeFiles/bat_simio.dir/simio/machine.cpp.o"
  "CMakeFiles/bat_simio.dir/simio/machine.cpp.o.d"
  "CMakeFiles/bat_simio.dir/simio/network.cpp.o"
  "CMakeFiles/bat_simio.dir/simio/network.cpp.o.d"
  "CMakeFiles/bat_simio.dir/simio/pipeline_model.cpp.o"
  "CMakeFiles/bat_simio.dir/simio/pipeline_model.cpp.o.d"
  "libbat_simio.a"
  "libbat_simio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bat_simio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
