file(REMOVE_RECURSE
  "libbat_simio.a"
)
