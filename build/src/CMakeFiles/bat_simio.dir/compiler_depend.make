# Empty compiler generated dependencies file for bat_simio.
# This may be replaced when dependencies are built.
