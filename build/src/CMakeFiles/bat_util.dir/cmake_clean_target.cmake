file(REMOVE_RECURSE
  "libbat_util.a"
)
