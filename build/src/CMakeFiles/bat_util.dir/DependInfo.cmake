
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/bat_util.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/bat_util.dir/util/log.cpp.o.d"
  "/root/repo/src/util/mmap_file.cpp" "src/CMakeFiles/bat_util.dir/util/mmap_file.cpp.o" "gcc" "src/CMakeFiles/bat_util.dir/util/mmap_file.cpp.o.d"
  "/root/repo/src/util/morton.cpp" "src/CMakeFiles/bat_util.dir/util/morton.cpp.o" "gcc" "src/CMakeFiles/bat_util.dir/util/morton.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/bat_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/bat_util.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/bat_util.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/bat_util.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
