# Empty dependencies file for bat_util.
# This may be replaced when dependencies are built.
