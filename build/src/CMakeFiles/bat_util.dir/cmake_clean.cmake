file(REMOVE_RECURSE
  "CMakeFiles/bat_util.dir/util/log.cpp.o"
  "CMakeFiles/bat_util.dir/util/log.cpp.o.d"
  "CMakeFiles/bat_util.dir/util/mmap_file.cpp.o"
  "CMakeFiles/bat_util.dir/util/mmap_file.cpp.o.d"
  "CMakeFiles/bat_util.dir/util/morton.cpp.o"
  "CMakeFiles/bat_util.dir/util/morton.cpp.o.d"
  "CMakeFiles/bat_util.dir/util/stats.cpp.o"
  "CMakeFiles/bat_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/bat_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/bat_util.dir/util/thread_pool.cpp.o.d"
  "libbat_util.a"
  "libbat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
