
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmpi/collectives.cpp" "src/CMakeFiles/bat_vmpi.dir/vmpi/collectives.cpp.o" "gcc" "src/CMakeFiles/bat_vmpi.dir/vmpi/collectives.cpp.o.d"
  "/root/repo/src/vmpi/comm.cpp" "src/CMakeFiles/bat_vmpi.dir/vmpi/comm.cpp.o" "gcc" "src/CMakeFiles/bat_vmpi.dir/vmpi/comm.cpp.o.d"
  "/root/repo/src/vmpi/runtime.cpp" "src/CMakeFiles/bat_vmpi.dir/vmpi/runtime.cpp.o" "gcc" "src/CMakeFiles/bat_vmpi.dir/vmpi/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
