# Empty compiler generated dependencies file for bat_vmpi.
# This may be replaced when dependencies are built.
