file(REMOVE_RECURSE
  "CMakeFiles/bat_vmpi.dir/vmpi/collectives.cpp.o"
  "CMakeFiles/bat_vmpi.dir/vmpi/collectives.cpp.o.d"
  "CMakeFiles/bat_vmpi.dir/vmpi/comm.cpp.o"
  "CMakeFiles/bat_vmpi.dir/vmpi/comm.cpp.o.d"
  "CMakeFiles/bat_vmpi.dir/vmpi/runtime.cpp.o"
  "CMakeFiles/bat_vmpi.dir/vmpi/runtime.cpp.o.d"
  "libbat_vmpi.a"
  "libbat_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bat_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
