file(REMOVE_RECURSE
  "libbat_vmpi.a"
)
