# Empty compiler generated dependencies file for bat_analytics.
# This may be replaced when dependencies are built.
