file(REMOVE_RECURSE
  "CMakeFiles/bat_analytics.dir/analytics/analytics.cpp.o"
  "CMakeFiles/bat_analytics.dir/analytics/analytics.cpp.o.d"
  "libbat_analytics.a"
  "libbat_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bat_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
