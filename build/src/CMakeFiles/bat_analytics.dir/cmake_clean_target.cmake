file(REMOVE_RECURSE
  "libbat_analytics.a"
)
