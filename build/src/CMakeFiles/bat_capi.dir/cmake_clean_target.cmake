file(REMOVE_RECURSE
  "libbat_capi.a"
)
