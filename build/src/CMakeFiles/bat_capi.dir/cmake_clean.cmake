file(REMOVE_RECURSE
  "CMakeFiles/bat_capi.dir/capi/bat_c.cpp.o"
  "CMakeFiles/bat_capi.dir/capi/bat_c.cpp.o.d"
  "libbat_capi.a"
  "libbat_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bat_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
