# Empty dependencies file for bat_capi.
# This may be replaced when dependencies are built.
