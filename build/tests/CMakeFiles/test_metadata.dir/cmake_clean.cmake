file(REMOVE_RECURSE
  "CMakeFiles/test_metadata.dir/test_metadata.cpp.o"
  "CMakeFiles/test_metadata.dir/test_metadata.cpp.o.d"
  "test_metadata"
  "test_metadata.pdb"
  "test_metadata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
