file(REMOVE_RECURSE
  "CMakeFiles/test_simio.dir/test_simio.cpp.o"
  "CMakeFiles/test_simio.dir/test_simio.cpp.o.d"
  "test_simio"
  "test_simio.pdb"
  "test_simio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
