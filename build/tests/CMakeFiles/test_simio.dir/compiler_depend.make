# Empty compiler generated dependencies file for test_simio.
# This may be replaced when dependencies are built.
