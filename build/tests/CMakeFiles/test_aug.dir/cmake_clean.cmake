file(REMOVE_RECURSE
  "CMakeFiles/test_aug.dir/test_aug.cpp.o"
  "CMakeFiles/test_aug.dir/test_aug.cpp.o.d"
  "test_aug"
  "test_aug.pdb"
  "test_aug[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
