# Empty compiler generated dependencies file for test_aug.
# This may be replaced when dependencies are built.
