file(REMOVE_RECURSE
  "CMakeFiles/test_dataset.dir/test_dataset.cpp.o"
  "CMakeFiles/test_dataset.dir/test_dataset.cpp.o.d"
  "test_dataset"
  "test_dataset.pdb"
  "test_dataset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
