# Empty compiler generated dependencies file for test_dataset.
# This may be replaced when dependencies are built.
