# Empty compiler generated dependencies file for test_bat_query.
# This may be replaced when dependencies are built.
