file(REMOVE_RECURSE
  "CMakeFiles/test_bat_query.dir/test_bat_query.cpp.o"
  "CMakeFiles/test_bat_query.dir/test_bat_query.cpp.o.d"
  "test_bat_query"
  "test_bat_query.pdb"
  "test_bat_query[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bat_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
