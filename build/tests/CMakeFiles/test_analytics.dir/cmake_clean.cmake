file(REMOVE_RECURSE
  "CMakeFiles/test_analytics.dir/test_analytics.cpp.o"
  "CMakeFiles/test_analytics.dir/test_analytics.cpp.o.d"
  "test_analytics"
  "test_analytics.pdb"
  "test_analytics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
