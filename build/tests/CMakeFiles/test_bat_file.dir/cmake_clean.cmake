file(REMOVE_RECURSE
  "CMakeFiles/test_bat_file.dir/test_bat_file.cpp.o"
  "CMakeFiles/test_bat_file.dir/test_bat_file.cpp.o.d"
  "test_bat_file"
  "test_bat_file.pdb"
  "test_bat_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bat_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
