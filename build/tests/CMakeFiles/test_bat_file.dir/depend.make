# Empty dependencies file for test_bat_file.
# This may be replaced when dependencies are built.
