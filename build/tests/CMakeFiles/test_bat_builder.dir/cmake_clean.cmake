file(REMOVE_RECURSE
  "CMakeFiles/test_bat_builder.dir/test_bat_builder.cpp.o"
  "CMakeFiles/test_bat_builder.dir/test_bat_builder.cpp.o.d"
  "test_bat_builder"
  "test_bat_builder.pdb"
  "test_bat_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bat_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
