file(REMOVE_RECURSE
  "CMakeFiles/test_bat_compress.dir/test_bat_compress.cpp.o"
  "CMakeFiles/test_bat_compress.dir/test_bat_compress.cpp.o.d"
  "test_bat_compress"
  "test_bat_compress.pdb"
  "test_bat_compress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bat_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
