# Empty compiler generated dependencies file for test_bat_compress.
# This may be replaced when dependencies are built.
