# Empty dependencies file for test_karras.
# This may be replaced when dependencies are built.
