file(REMOVE_RECURSE
  "CMakeFiles/test_karras.dir/test_karras.cpp.o"
  "CMakeFiles/test_karras.dir/test_karras.cpp.o.d"
  "test_karras"
  "test_karras.pdb"
  "test_karras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_karras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
