# Empty compiler generated dependencies file for test_agg_tree.
# This may be replaced when dependencies are built.
