file(REMOVE_RECURSE
  "CMakeFiles/test_agg_tree.dir/test_agg_tree.cpp.o"
  "CMakeFiles/test_agg_tree.dir/test_agg_tree.cpp.o.d"
  "test_agg_tree"
  "test_agg_tree.pdb"
  "test_agg_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agg_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
