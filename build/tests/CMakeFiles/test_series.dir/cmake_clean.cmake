file(REMOVE_RECURSE
  "CMakeFiles/test_series.dir/test_series.cpp.o"
  "CMakeFiles/test_series.dir/test_series.cpp.o.d"
  "test_series"
  "test_series.pdb"
  "test_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
