# Empty compiler generated dependencies file for test_series.
# This may be replaced when dependencies are built.
