file(REMOVE_RECURSE
  "CMakeFiles/test_capi.dir/test_capi.cpp.o"
  "CMakeFiles/test_capi.dir/test_capi.cpp.o.d"
  "test_capi"
  "test_capi.pdb"
  "test_capi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
