file(REMOVE_RECURSE
  "CMakeFiles/test_writer_reader.dir/test_writer_reader.cpp.o"
  "CMakeFiles/test_writer_reader.dir/test_writer_reader.cpp.o.d"
  "test_writer_reader"
  "test_writer_reader.pdb"
  "test_writer_reader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_writer_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
