# Empty dependencies file for test_writer_reader.
# This may be replaced when dependencies are built.
