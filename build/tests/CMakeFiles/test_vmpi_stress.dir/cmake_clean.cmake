file(REMOVE_RECURSE
  "CMakeFiles/test_vmpi_stress.dir/test_vmpi_stress.cpp.o"
  "CMakeFiles/test_vmpi_stress.dir/test_vmpi_stress.cpp.o.d"
  "test_vmpi_stress"
  "test_vmpi_stress.pdb"
  "test_vmpi_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmpi_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
