# Empty dependencies file for test_vmpi_stress.
# This may be replaced when dependencies are built.
