file(REMOVE_RECURSE
  "CMakeFiles/test_data_service.dir/test_data_service.cpp.o"
  "CMakeFiles/test_data_service.dir/test_data_service.cpp.o.d"
  "test_data_service"
  "test_data_service.pdb"
  "test_data_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
