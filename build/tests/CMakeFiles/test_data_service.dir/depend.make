# Empty dependencies file for test_data_service.
# This may be replaced when dependencies are built.
