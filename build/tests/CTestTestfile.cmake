# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_vmpi[1]_include.cmake")
include("/root/repo/build/tests/test_vmpi_stress[1]_include.cmake")
include("/root/repo/build/tests/test_agg_tree[1]_include.cmake")
include("/root/repo/build/tests/test_aug[1]_include.cmake")
include("/root/repo/build/tests/test_karras[1]_include.cmake")
include("/root/repo/build/tests/test_bat_builder[1]_include.cmake")
include("/root/repo/build/tests/test_bat_compress[1]_include.cmake")
include("/root/repo/build/tests/test_bat_file[1]_include.cmake")
include("/root/repo/build/tests/test_bat_query[1]_include.cmake")
include("/root/repo/build/tests/test_metadata[1]_include.cmake")
include("/root/repo/build/tests/test_writer_reader[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_series[1]_include.cmake")
include("/root/repo/build/tests/test_data_service[1]_include.cmake")
include("/root/repo/build/tests/test_analytics[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_simio[1]_include.cmake")
include("/root/repo/build/tests/test_capi[1]_include.cmake")
