# Empty dependencies file for capi_demo.
# This may be replaced when dependencies are built.
