file(REMOVE_RECURSE
  "CMakeFiles/capi_demo.dir/capi_demo.c.o"
  "CMakeFiles/capi_demo.dir/capi_demo.c.o.d"
  "capi_demo"
  "capi_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C)
  include(CMakeFiles/capi_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
