# Empty compiler generated dependencies file for lod_viewer.
# This may be replaced when dependencies are built.
