file(REMOVE_RECURSE
  "CMakeFiles/lod_viewer.dir/lod_viewer.cpp.o"
  "CMakeFiles/lod_viewer.dir/lod_viewer.cpp.o.d"
  "lod_viewer"
  "lod_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
