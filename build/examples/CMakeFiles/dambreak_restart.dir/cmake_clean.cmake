file(REMOVE_RECURSE
  "CMakeFiles/dambreak_restart.dir/dambreak_restart.cpp.o"
  "CMakeFiles/dambreak_restart.dir/dambreak_restart.cpp.o.d"
  "dambreak_restart"
  "dambreak_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dambreak_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
