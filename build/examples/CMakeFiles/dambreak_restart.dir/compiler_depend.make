# Empty compiler generated dependencies file for dambreak_restart.
# This may be replaced when dependencies are built.
