file(REMOVE_RECURSE
  "CMakeFiles/streaming_viewer.dir/streaming_viewer.cpp.o"
  "CMakeFiles/streaming_viewer.dir/streaming_viewer.cpp.o.d"
  "streaming_viewer"
  "streaming_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
