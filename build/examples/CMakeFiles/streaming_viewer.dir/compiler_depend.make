# Empty compiler generated dependencies file for streaming_viewer.
# This may be replaced when dependencies are built.
