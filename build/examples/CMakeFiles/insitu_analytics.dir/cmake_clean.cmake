file(REMOVE_RECURSE
  "CMakeFiles/insitu_analytics.dir/insitu_analytics.cpp.o"
  "CMakeFiles/insitu_analytics.dir/insitu_analytics.cpp.o.d"
  "insitu_analytics"
  "insitu_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
