# Empty compiler generated dependencies file for insitu_analytics.
# This may be replaced when dependencies are built.
