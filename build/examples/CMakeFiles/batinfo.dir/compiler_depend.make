# Empty compiler generated dependencies file for batinfo.
# This may be replaced when dependencies are built.
