file(REMOVE_RECURSE
  "CMakeFiles/batinfo.dir/batinfo.cpp.o"
  "CMakeFiles/batinfo.dir/batinfo.cpp.o.d"
  "batinfo"
  "batinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
