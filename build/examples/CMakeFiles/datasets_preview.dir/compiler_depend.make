# Empty compiler generated dependencies file for datasets_preview.
# This may be replaced when dependencies are built.
