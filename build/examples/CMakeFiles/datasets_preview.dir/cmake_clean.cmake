file(REMOVE_RECURSE
  "CMakeFiles/datasets_preview.dir/datasets_preview.cpp.o"
  "CMakeFiles/datasets_preview.dir/datasets_preview.cpp.o.d"
  "datasets_preview"
  "datasets_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasets_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
