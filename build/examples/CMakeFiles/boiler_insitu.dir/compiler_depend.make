# Empty compiler generated dependencies file for boiler_insitu.
# This may be replaced when dependencies are built.
