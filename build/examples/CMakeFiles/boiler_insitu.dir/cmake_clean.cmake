file(REMOVE_RECURSE
  "CMakeFiles/boiler_insitu.dir/boiler_insitu.cpp.o"
  "CMakeFiles/boiler_insitu.dir/boiler_insitu.cpp.o.d"
  "boiler_insitu"
  "boiler_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boiler_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
