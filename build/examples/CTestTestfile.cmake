# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "/root/repo/build/examples/smoke_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capi_demo "/root/repo/build/examples/capi_demo" "/root/repo/build/examples/smoke_capi")
set_tests_properties(example_capi_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_boiler_insitu "/root/repo/build/examples/boiler_insitu" "/root/repo/build/examples/smoke_boiler" "16" "30000")
set_tests_properties(example_boiler_insitu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dambreak_restart "/root/repo/build/examples/dambreak_restart" "/root/repo/build/examples/smoke_dambreak" "16" "30000")
set_tests_properties(example_dambreak_restart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lod_viewer "/root/repo/build/examples/lod_viewer" "/root/repo/build/examples/smoke_lod" "50000")
set_tests_properties(example_lod_viewer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datasets_preview "/root/repo/build/examples/datasets_preview" "/root/repo/build/examples/smoke_preview" "30000")
set_tests_properties(example_datasets_preview PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_viewer "/root/repo/build/examples/streaming_viewer" "/root/repo/build/examples/smoke_stream" "50000")
set_tests_properties(example_streaming_viewer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_insitu_analytics "/root/repo/build/examples/insitu_analytics" "/root/repo/build/examples/smoke_insitu" "8" "30000")
set_tests_properties(example_insitu_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_batinfo "/root/repo/build/examples/batinfo" "/root/repo/build/examples/smoke_quickstart/quickstart.batmeta")
set_tests_properties(example_batinfo PROPERTIES  DEPENDS "example_quickstart" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
