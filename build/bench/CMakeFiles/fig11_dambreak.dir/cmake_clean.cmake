file(REMOVE_RECURSE
  "CMakeFiles/fig11_dambreak.dir/fig11_dambreak.cpp.o"
  "CMakeFiles/fig11_dambreak.dir/fig11_dambreak.cpp.o.d"
  "fig11_dambreak"
  "fig11_dambreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_dambreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
