# Empty compiler generated dependencies file for fig11_dambreak.
# This may be replaced when dependencies are built.
