file(REMOVE_RECURSE
  "CMakeFiles/table2_progressive_dambreak.dir/table2_progressive_dambreak.cpp.o"
  "CMakeFiles/table2_progressive_dambreak.dir/table2_progressive_dambreak.cpp.o.d"
  "table2_progressive_dambreak"
  "table2_progressive_dambreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_progressive_dambreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
