# Empty compiler generated dependencies file for table2_progressive_dambreak.
# This may be replaced when dependencies are built.
