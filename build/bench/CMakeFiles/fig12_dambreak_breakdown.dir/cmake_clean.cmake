file(REMOVE_RECURSE
  "CMakeFiles/fig12_dambreak_breakdown.dir/fig12_dambreak_breakdown.cpp.o"
  "CMakeFiles/fig12_dambreak_breakdown.dir/fig12_dambreak_breakdown.cpp.o.d"
  "fig12_dambreak_breakdown"
  "fig12_dambreak_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dambreak_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
