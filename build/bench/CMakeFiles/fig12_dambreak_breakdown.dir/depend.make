# Empty dependencies file for fig12_dambreak_breakdown.
# This may be replaced when dependencies are built.
