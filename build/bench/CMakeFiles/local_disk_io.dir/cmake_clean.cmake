file(REMOVE_RECURSE
  "CMakeFiles/local_disk_io.dir/local_disk_io.cpp.o"
  "CMakeFiles/local_disk_io.dir/local_disk_io.cpp.o.d"
  "local_disk_io"
  "local_disk_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_disk_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
