# Empty compiler generated dependencies file for local_disk_io.
# This may be replaced when dependencies are built.
