# Empty compiler generated dependencies file for fig5_write_scaling.
# This may be replaced when dependencies are built.
