file(REMOVE_RECURSE
  "CMakeFiles/fig5_write_scaling.dir/fig5_write_scaling.cpp.o"
  "CMakeFiles/fig5_write_scaling.dir/fig5_write_scaling.cpp.o.d"
  "fig5_write_scaling"
  "fig5_write_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_write_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
