# Empty dependencies file for ablation_bitmap.
# This may be replaced when dependencies are built.
