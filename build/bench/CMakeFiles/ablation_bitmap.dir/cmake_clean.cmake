file(REMOVE_RECURSE
  "CMakeFiles/ablation_bitmap.dir/ablation_bitmap.cpp.o"
  "CMakeFiles/ablation_bitmap.dir/ablation_bitmap.cpp.o.d"
  "ablation_bitmap"
  "ablation_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
