file(REMOVE_RECURSE
  "CMakeFiles/overhead_stats.dir/overhead_stats.cpp.o"
  "CMakeFiles/overhead_stats.dir/overhead_stats.cpp.o.d"
  "overhead_stats"
  "overhead_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
