# Empty compiler generated dependencies file for overhead_stats.
# This may be replaced when dependencies are built.
