file(REMOVE_RECURSE
  "CMakeFiles/ablation_subprefix.dir/ablation_subprefix.cpp.o"
  "CMakeFiles/ablation_subprefix.dir/ablation_subprefix.cpp.o.d"
  "ablation_subprefix"
  "ablation_subprefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subprefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
