# Empty compiler generated dependencies file for ablation_subprefix.
# This may be replaced when dependencies are built.
