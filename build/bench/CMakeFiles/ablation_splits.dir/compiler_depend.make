# Empty compiler generated dependencies file for ablation_splits.
# This may be replaced when dependencies are built.
