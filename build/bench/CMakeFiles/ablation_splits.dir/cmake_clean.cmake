file(REMOVE_RECURSE
  "CMakeFiles/ablation_splits.dir/ablation_splits.cpp.o"
  "CMakeFiles/ablation_splits.dir/ablation_splits.cpp.o.d"
  "ablation_splits"
  "ablation_splits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
