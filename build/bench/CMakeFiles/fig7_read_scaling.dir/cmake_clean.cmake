file(REMOVE_RECURSE
  "CMakeFiles/fig7_read_scaling.dir/fig7_read_scaling.cpp.o"
  "CMakeFiles/fig7_read_scaling.dir/fig7_read_scaling.cpp.o.d"
  "fig7_read_scaling"
  "fig7_read_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_read_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
