# Empty compiler generated dependencies file for fig7_read_scaling.
# This may be replaced when dependencies are built.
