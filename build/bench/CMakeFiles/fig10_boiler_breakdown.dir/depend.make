# Empty dependencies file for fig10_boiler_breakdown.
# This may be replaced when dependencies are built.
