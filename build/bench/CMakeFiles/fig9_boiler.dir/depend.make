# Empty dependencies file for fig9_boiler.
# This may be replaced when dependencies are built.
