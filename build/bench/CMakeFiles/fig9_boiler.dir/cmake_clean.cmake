file(REMOVE_RECURSE
  "CMakeFiles/fig9_boiler.dir/fig9_boiler.cpp.o"
  "CMakeFiles/fig9_boiler.dir/fig9_boiler.cpp.o.d"
  "fig9_boiler"
  "fig9_boiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_boiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
