file(REMOVE_RECURSE
  "CMakeFiles/micro_kernels.dir/micro_kernels.cpp.o"
  "CMakeFiles/micro_kernels.dir/micro_kernels.cpp.o.d"
  "micro_kernels"
  "micro_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
