# Empty compiler generated dependencies file for fig6_breakdown.
# This may be replaced when dependencies are built.
