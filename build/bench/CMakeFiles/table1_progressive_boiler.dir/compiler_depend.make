# Empty compiler generated dependencies file for table1_progressive_boiler.
# This may be replaced when dependencies are built.
