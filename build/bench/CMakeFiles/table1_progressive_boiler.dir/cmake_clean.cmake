file(REMOVE_RECURSE
  "CMakeFiles/table1_progressive_boiler.dir/table1_progressive_boiler.cpp.o"
  "CMakeFiles/table1_progressive_boiler.dir/table1_progressive_boiler.cpp.o.d"
  "table1_progressive_boiler"
  "table1_progressive_boiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_progressive_boiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
