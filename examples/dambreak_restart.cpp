// Dam-Break checkpoint/restart (paper §IV): write a timestep with N ranks,
// then restart-read it at a different rank count — fewer ranks than files
// and more ranks than files both work, because read aggregators are
// assigned at read time from the metadata (paper §IV-A).
//
// Run:  ./dambreak_restart [output_dir] [write_ranks] [particles]

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "io/reader.hpp"
#include "io/writer.hpp"
#include "vmpi/comm.hpp"
#include "workloads/dambreak.hpp"
#include "workloads/decomposition.hpp"

using namespace bat;

int main(int argc, char** argv) {
    const std::filesystem::path out_dir = argc > 1 ? argv[1] : "/tmp/bat_dambreak";
    const int write_ranks = argc > 2 ? std::atoi(argv[2]) : 16;
    DamBreakConfig config;
    config.num_particles = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 200'000;

    // Mid-collapse timestep: the column is on the move, ranks imbalanced.
    const int timestep = 1500;
    const ParticleSet global = make_dambreak_particles(config, timestep);
    const GridDecomp decomp = grid_decomp_2d(write_ranks, config.domain);
    const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);

    std::filesystem::path meta_path;
    vmpi::Runtime::run(write_ranks, [&](vmpi::Comm& comm) {
        WriterConfig wc;
        wc.strategy = AggStrategy::adaptive;
        wc.tree.target_file_size = 1 << 20;
        wc.directory = out_dir;
        wc.basename = "dambreak_t" + std::to_string(timestep);
        const WriteResult result =
            write_particles(comm, per_rank[static_cast<std::size_t>(comm.rank())],
                            decomp.rank_box(comm.rank()), wc);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
            std::printf("checkpoint: %llu particles over %d ranks -> %d files\n",
                        static_cast<unsigned long long>(global.count()), write_ranks,
                        result.num_leaves);
        }
    });

    // Restart at several rank counts, including fewer ranks than files.
    for (const int read_ranks : {write_ranks, write_ranks / 4, write_ranks * 4, 1}) {
        if (read_ranks < 1) {
            continue;
        }
        const GridDecomp read_decomp = grid_decomp_2d(read_ranks, config.domain);
        std::atomic<std::uint64_t> total{0};
        std::atomic<std::uint64_t> max_rank{0};
        vmpi::Runtime::run(read_ranks, [&](vmpi::Comm& comm) {
            const ReadResult result =
                read_particles(comm, meta_path, read_decomp.rank_read_box(comm.rank()));
            total.fetch_add(result.particles.count());
            std::uint64_t seen = max_rank.load();
            while (seen < result.particles.count() &&
                   !max_rank.compare_exchange_weak(seen, result.particles.count())) {
            }
        });
        std::printf("restart at %3d ranks: %llu particles read (%s), busiest rank got "
                    "%llu\n",
                    read_ranks, static_cast<unsigned long long>(total.load()),
                    total.load() == global.count() ? "complete" : "INCOMPLETE",
                    static_cast<unsigned long long>(max_rank.load()));
    }
    return 0;
}
