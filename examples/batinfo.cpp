// batinfo: inspect and validate BAT files and metadata — the fsck/h5dump
// equivalent for this library's format. Prints the header, attribute
// table, shallow-tree and treelet structure summaries, dictionary usage,
// and runs structural validation (alignment, ranges, bitmap containment).
//
// Run:  ./batinfo <file.bat | file.batmeta | file.batseries>

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/bat_file.hpp"
#include "core/metadata.hpp"
#include "io/series.hpp"
#include "util/stats.hpp"

using namespace bat;

namespace {

int inspect_bat(const std::filesystem::path& path) {
    const BatFile file(path);
    const FileHeader& h = file.header();
    std::printf("BAT file: %s\n", path.c_str());
    std::printf("  particles: %" PRIu64 "  attrs: %u  file size: %" PRIu64 " bytes\n",
                h.num_particles, h.num_attrs, h.file_size);
    std::printf("  build: subprefix %u bits, %u LOD/inner, leaf <= %u\n",
                h.subprefix_bits, h.lod_per_inner, h.max_leaf_size);
    std::printf("  bounds: [%g %g %g] - [%g %g %g]\n", h.bounds[0], h.bounds[1],
                h.bounds[2], h.bounds[3], h.bounds[4], h.bounds[5]);
    std::printf("  attributes:\n");
    for (std::size_t a = 0; a < file.num_attrs(); ++a) {
        const auto [lo, hi] = file.attr_range(a);
        std::printf("    [%zu] %-20s range [%g, %g]\n", a, file.attr_names()[a].c_str(),
                    lo, hi);
    }
    std::printf("  shallow tree: %u nodes; dictionary: %u bitmaps; treelets: %u\n",
                h.num_shallow_nodes, h.dict_size, h.num_treelets);

    // Treelet summary + validation.
    RunningStats points;
    RunningStats depth;
    std::uint64_t total_points = 0;
    std::uint64_t total_nodes = 0;
    for (std::size_t t = 0; t < file.num_treelets(); ++t) {
        const BatFile::TreeletView view = file.treelet(t);  // validates magic/alignment
        points.add(view.num_points);
        depth.add(view.max_depth);
        total_points += view.num_points;
        total_nodes += view.nodes.size();
        // Structural checks: node ranges within the treelet, children in
        // order, bitmap IDs within the dictionary.
        for (std::size_t n = 0; n < view.nodes.size(); ++n) {
            const TreeletNode& node = view.nodes[n];
            if (node.start + node.count > view.num_points ||
                node.own_count > node.count ||
                (!node.is_leaf() &&
                 (node.right_child <= static_cast<std::int32_t>(n) ||
                  node.right_child >= static_cast<std::int32_t>(view.nodes.size())))) {
                std::printf("  CORRUPT: treelet %zu node %zu out of range\n", t, n);
                return 1;
            }
        }
    }
    if (total_points != h.num_particles) {
        std::printf("  CORRUPT: treelet points (%" PRIu64 ") != header particles\n",
                    total_points);
        return 1;
    }
    std::printf("  treelet points: min %.0f / mean %.0f / max %.0f;  depth: mean %.1f "
                "max %.0f;  nodes: %" PRIu64 "\n",
                points.min(), points.mean(), points.max(), depth.mean(), depth.max(),
                total_nodes);
    const double raw =
        static_cast<double>(h.num_particles) * (12.0 + 8.0 * h.num_attrs);
    std::printf("  layout overhead: %.2f%%\n",
                100.0 * (static_cast<double>(h.file_size) - raw) / raw);
    std::printf("  OK\n");
    return 0;
}

int inspect_metadata(const std::filesystem::path& path) {
    const Metadata meta = Metadata::load(path);
    std::printf("BAT metadata: %s\n", path.c_str());
    std::printf("  particles: %" PRIu64 "  attrs: %zu  leaves: %zu  tree nodes: %zu\n",
                meta.total_particles(), meta.num_attrs(), meta.leaves.size(),
                meta.nodes.size());
    for (std::size_t a = 0; a < meta.num_attrs(); ++a) {
        std::printf("    [%zu] %-20s global range [%g, %g]\n", a,
                    meta.attr_names[a].c_str(), meta.global_ranges[a].first,
                    meta.global_ranges[a].second);
    }
    RunningStats sizes;
    for (const MetaLeaf& leaf : meta.leaves) {
        sizes.add(static_cast<double>(leaf.num_particles));
    }
    std::printf("  leaf particles: min %.0f / mean %.0f (std %.0f) / max %.0f\n",
                sizes.min(), sizes.mean(), sizes.stddev(), sizes.max());
    std::printf("  OK\n");
    return 0;
}

int inspect_series(const std::filesystem::path& path) {
    const TimeSeries series = TimeSeries::load(path);
    std::printf("BAT series: %s (%zu timesteps)\n", path.c_str(),
                series.timesteps.size());
    for (const auto& [timestep, file] : series.timesteps) {
        std::printf("  t=%-6d %s\n", timestep, file.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <file.bat|file.batmeta|file.batseries>\n",
                     argv[0]);
        return 2;
    }
    const std::filesystem::path path = argv[1];
    try {
        const std::string ext = path.extension().string();
        if (ext == ".bat") {
            return inspect_bat(path);
        }
        if (ext == ".batmeta") {
            return inspect_metadata(path);
        }
        if (ext == ".batseries") {
            return inspect_series(path);
        }
        std::fprintf(stderr, "unknown extension '%s'\n", ext.c_str());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
