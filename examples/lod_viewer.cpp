// LOD quality progression (paper Fig 13): render the Coal Boiler at
// qualities 0.2 / 0.4 / 0.8 from one BAT-written data set. Following the
// paper's example representation, coarser quality levels are drawn with
// larger particle radii to fill holes and preserve the overall shape.
// Writes lod_q20.ppm / lod_q40.ppm / lod_q80.ppm into the output dir.
//
// Run:  ./lod_viewer [output_dir] [particles]

#include <cstdio>
#include <cstdlib>

#include "core/bat_query.hpp"
#include "io/writer.hpp"
#include "render_ppm.hpp"
#include "workloads/boiler.hpp"
#include "workloads/decomposition.hpp"

using namespace bat;

int main(int argc, char** argv) {
    const std::filesystem::path out_dir = argc > 1 ? argv[1] : "/tmp/bat_lod";
    BoilerConfig boiler;
    boiler.particles_at_end = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 600'000;
    boiler.particles_at_start = boiler.particles_at_end / 9;

    // Write a mid-series boiler snapshot through the adaptive pipeline.
    const int timestep = 2501;
    const ParticleSet global = make_boiler_particles(boiler, timestep);
    const GridDecomp decomp = grid_decomp_3d(64, global.bounds());
    const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);
    std::vector<Box> bounds;
    for (int r = 0; r < decomp.nranks(); ++r) {
        bounds.push_back(decomp.rank_box(r));
    }
    WriterConfig config;
    config.tree.target_file_size = 4 << 20;
    config.directory = out_dir;
    config.basename = "lod_boiler";
    const WriteResult written = write_particles_serial(per_rank, bounds, config);
    const Metadata meta = Metadata::load(written.metadata_path);
    const auto [tlo, thi] = meta.global_ranges[0];  // temperature for coloring

    Box data_bounds;
    for (const MetaLeaf& leaf : meta.leaves) {
        data_bounds.extend(leaf.bounds);
    }

    for (const float quality : {0.2f, 0.4f, 0.8f}) {
        examples::SplatRenderer renderer(900, 900, data_bounds, /*depth_axis=*/1);
        // Coarser representations use larger radii (paper Fig 13).
        const float radius = 1.f + 4.f * (1.f - quality);
        std::uint64_t points = 0;
        for (std::size_t leaf = 0; leaf < meta.leaves.size(); ++leaf) {
            const BatFile file(out_dir / meta.leaves[leaf].file);
            BatQuery query;
            query.quality_hi = quality;
            points += query_bat(file, query,
                                [&](Vec3 p, std::span<const double> attrs) {
                                    const float t = static_cast<float>(
                                        (attrs[0] - tlo) / std::max(1e-9, thi - tlo));
                                    renderer.splat(p, t, radius);
                                });
        }
        const std::string name =
            "lod_q" + std::to_string(static_cast<int>(quality * 100)) + ".ppm";
        renderer.write_ppm(out_dir / name);
        std::printf("quality %.1f: %8llu of %llu points -> %s\n", quality,
                    static_cast<unsigned long long>(points),
                    static_cast<unsigned long long>(meta.total_particles()),
                    (out_dir / name).c_str());
    }
    return 0;
}
