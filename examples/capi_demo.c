/* Pure-C demonstration of the C API (paper §III: a C API eases integration
 * into simulations in a range of languages): stage positions + attributes,
 * commit a BAT timestep, then run spatial / attribute / progressive queries
 * through the dataset handle.
 *
 * Run:  ./capi_demo [output_dir]
 */

#include <math.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

#include "capi/bat_c.h"

#define N 50000

static void count_cb(const float position[3], const double* attributes, void* user) {
    (void)position;
    (void)attributes;
    ++*(uint64_t*)user;
}

int main(int argc, char** argv) {
    const char* out_dir = argc > 1 ? argv[1] : "/tmp/bat_capi_demo";

    /* A swirl of particles with a radius attribute. */
    static float xyz[3 * N];
    static double radius[N];
    static double angle[N];
    for (int i = 0; i < N; ++i) {
        const double t = (double)i / N;
        const double a = 40.0 * t;
        const double r = 0.05 + 0.9 * t;
        xyz[3 * i] = (float)(0.5 + 0.5 * r * cos(a));
        xyz[3 * i + 1] = (float)(0.5 + 0.5 * r * sin(a));
        xyz[3 * i + 2] = (float)t;
        radius[i] = r;
        angle[i] = a;
    }

    bat_io* io = bat_io_create();
    if (bat_io_set_output(io, out_dir, "swirl") != BAT_OK ||
        bat_io_set_strategy(io, "adaptive") != BAT_OK ||
        bat_io_set_target_size(io, 1 << 20) != BAT_OK ||
        bat_io_set_positions(io, xyz, N) != BAT_OK ||
        bat_io_add_attribute(io, "radius", radius) != BAT_OK ||
        bat_io_add_attribute(io, "angle", angle) != BAT_OK ||
        bat_io_commit(io) != BAT_OK) {
        fprintf(stderr, "write failed: %s\n", bat_io_last_error(io));
        return 1;
    }
    printf("wrote %s\n", bat_io_metadata_path(io));

    bat_dataset* ds = bat_dataset_open(bat_io_metadata_path(io));
    bat_io_destroy(io);
    if (!ds) {
        fprintf(stderr, "open failed\n");
        return 1;
    }
    printf("dataset: %llu particles, %u attributes\n",
           (unsigned long long)bat_dataset_num_particles(ds),
           bat_dataset_num_attributes(ds));

    /* Spatial query: one octant. */
    const float lo[3] = {0.0f, 0.0f, 0.0f};
    const float hi[3] = {0.5f, 0.5f, 0.5f};
    uint64_t in_box = 0;
    bat_dataset_query(ds, lo, hi, -1, 0, 0, 0.f, 1.f, count_cb, &in_box);
    printf("octant query: %llu particles\n", (unsigned long long)in_box);

    /* Attribute query: outer ring (radius > 0.8). */
    uint64_t outer = 0;
    bat_dataset_query(ds, NULL, NULL, 0, 0.8, 10.0, 0.f, 1.f, count_cb, &outer);
    printf("outer-ring query: %llu particles\n", (unsigned long long)outer);

    /* Progressive read: 10%%, then the rest. */
    uint64_t coarse = 0, rest = 0;
    bat_dataset_query(ds, NULL, NULL, -1, 0, 0, 0.0f, 0.1f, count_cb, &coarse);
    bat_dataset_query(ds, NULL, NULL, -1, 0, 0, 0.1f, 1.0f, count_cb, &rest);
    printf("progressive: %llu coarse + %llu rest = %llu total\n",
           (unsigned long long)coarse, (unsigned long long)rest,
           (unsigned long long)(coarse + rest));

    bat_dataset_close(ds);
    return 0;
}
