#pragma once
// Minimal splat renderer shared by the visual examples: orthographic
// projection of particles onto an image plane with z-buffered, radius-
// scaled splats and a viridis-like color map. Writes binary PPM files —
// enough to reproduce the paper's Fig 8 dataset previews and Fig 13 LOD
// quality progression without a GUI.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/vec3.hpp"

namespace bat::examples {

struct Image {
    int width = 0;
    int height = 0;
    std::vector<float> rgb;    // 3 * width * height
    std::vector<float> depth;  // z-buffer

    Image(int w, int h) : width(w), height(h) {
        rgb.assign(static_cast<std::size_t>(3 * w * h), 0.06f);  // dark background
        depth.assign(static_cast<std::size_t>(w * h),
                     std::numeric_limits<float>::max());
    }
};

/// Map t in [0, 1] to a viridis-like gradient.
inline void colormap(float t, float rgb[3]) {
    t = std::clamp(t, 0.f, 1.f);
    rgb[0] = std::clamp(0.267f + t * (0.993f - 0.267f) * t, 0.f, 1.f);
    rgb[1] = std::clamp(0.005f + 0.90f * t, 0.f, 1.f);
    rgb[2] = std::clamp(0.329f + 0.45f * std::sin(3.1415926f * t), 0.f, 1.f);
}

/// Axis-aligned orthographic projection: drop `depth_axis`, map the other
/// two onto the image.
class SplatRenderer {
public:
    SplatRenderer(int width, int height, const Box& bounds, int depth_axis = 1)
        : image_(width, height), bounds_(bounds), depth_axis_(depth_axis) {
        axis_u_ = depth_axis == 0 ? 1 : 0;
        axis_v_ = depth_axis == 2 ? 1 : 2;
    }

    /// Splat one particle; `value` in [0, 1] picks the color, `radius` is
    /// in pixels (the paper's LOD example grows radii at coarser quality).
    void splat(Vec3 p, float value, float radius) {
        const Vec3 ext = bounds_.extent();
        const float u = ext[axis_u_] > 0
                            ? (p[axis_u_] - bounds_.lower[axis_u_]) / ext[axis_u_]
                            : 0.5f;
        const float v = ext[axis_v_] > 0
                            ? (p[axis_v_] - bounds_.lower[axis_v_]) / ext[axis_v_]
                            : 0.5f;
        const float z = p[depth_axis_];
        const int cx = static_cast<int>(u * static_cast<float>(image_.width - 1));
        const int cy = static_cast<int>((1.f - v) * static_cast<float>(image_.height - 1));
        float color[3];
        colormap(value, color);
        const int r = std::max(1, static_cast<int>(radius));
        for (int dy = -r; dy <= r; ++dy) {
            for (int dx = -r; dx <= r; ++dx) {
                if (dx * dx + dy * dy > r * r) {
                    continue;
                }
                const int x = cx + dx;
                const int y = cy + dy;
                if (x < 0 || x >= image_.width || y < 0 || y >= image_.height) {
                    continue;
                }
                const auto idx = static_cast<std::size_t>(y * image_.width + x);
                if (z < image_.depth[idx]) {
                    image_.depth[idx] = z;
                    image_.rgb[3 * idx] = color[0];
                    image_.rgb[3 * idx + 1] = color[1];
                    image_.rgb[3 * idx + 2] = color[2];
                }
            }
        }
    }

    void write_ppm(const std::filesystem::path& path) const {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        BAT_CHECK_MSG(f != nullptr, "cannot open " << path);
        std::fprintf(f, "P6\n%d %d\n255\n", image_.width, image_.height);
        for (std::size_t i = 0; i < image_.rgb.size(); ++i) {
            const auto byte = static_cast<unsigned char>(
                std::clamp(image_.rgb[i], 0.f, 1.f) * 255.f);
            std::fputc(byte, f);
        }
        std::fclose(f);
    }

private:
    Image image_;
    Box bounds_;
    int depth_axis_;
    int axis_u_;
    int axis_v_;
};

}  // namespace bat::examples
