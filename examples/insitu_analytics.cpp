// In situ analytics over the DataService (paper §IV-B): after each dump,
// the simulation's own ranks run analysis queries against the freshly
// written layout — no postprocess conversion, no second data copy. Here a
// boiler run dumps three timesteps into a series; after each dump, rank 0
// computes a temperature histogram of the hottest region while every rank
// serves its leaves, then the series curve is printed at the end.
//
// Run:  ./insitu_analytics [output_dir] [nranks] [particles]

#include <cstdio>
#include <cstdlib>

#include "analytics/analytics.hpp"
#include "io/data_service.hpp"
#include "io/series.hpp"
#include "vmpi/comm.hpp"
#include "workloads/boiler.hpp"
#include "workloads/decomposition.hpp"

using namespace bat;

int main(int argc, char** argv) {
    const std::filesystem::path out_dir = argc > 1 ? argv[1] : "/tmp/bat_insitu";
    const int nranks = argc > 2 ? std::atoi(argv[2]) : 8;
    BoilerConfig boiler;
    boiler.particles_at_end = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 200'000;
    boiler.particles_at_start = boiler.particles_at_end / 9;

    std::filesystem::path manifest;
    std::atomic<double> shared_threshold{-1.0};
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        double hot_threshold = -1.0;
        double hot_max = 0.0;
        WriterConfig base;
        base.strategy = AggStrategy::adaptive;
        base.tree.target_file_size = 1 << 20;
        base.directory = out_dir;
        base.basename = "insitu";
        SeriesWriter writer(base);

        for (int t : {1001, 2501, 4001}) {
            // "Simulation": regenerate the population and redistribute.
            const ParticleSet global = make_boiler_particles(boiler, t);
            const GridDecomp decomp = grid_decomp_3d(nranks, global.bounds());
            const auto per_rank = partition_particles(global, decomp);
            const WriteResult written = writer.write_timestep(
                comm, t, per_rank[static_cast<std::size_t>(comm.rank())],
                decomp.rank_box(comm.rank()));

            // In situ analysis round on the just-written layout. The "hot"
            // threshold is fixed at the first dump so the in situ counts and
            // the postprocess curve below measure the same region.
            DataService service(comm, written.metadata_path);
            std::optional<BatQuery> request;
            if (comm.rank() == 0) {
                if (hot_threshold < 0) {
                    Dataset ds(written.metadata_path);
                    const auto [lo, hi] = ds.attr_range(0);
                    hot_threshold = lo + 0.8 * (hi - lo);
                    hot_max = hi * 10;
                }
                BatQuery q;
                q.attr_filters.push_back({0, hot_threshold, hot_max});
                request = q;
            }
            const ParticleSet hot = service.query_round(request);
            if (comm.rank() == 0) {
                double mean_rt = 0;  // residence time of the hot particles
                const std::size_t rt = 6;
                for (std::size_t i = 0; i < hot.count(); ++i) {
                    mean_rt += hot.attr(rt)[i];
                }
                if (hot.count() > 0) {
                    mean_rt /= static_cast<double>(hot.count());
                }
                std::printf("t=%4d: %8llu hot particles, mean residence %.0f steps\n", t,
                            static_cast<unsigned long long>(hot.count()), mean_rt);
            }
        }
        const auto path = writer.finalize(comm);
        if (comm.rank() == 0) {
            manifest = path;
            shared_threshold.store(hot_threshold);
        }
    });

    // Postprocess: curve of the same hot-region population over the series.
    const SeriesReader reader(manifest);
    Dataset last = reader.open(reader.num_timesteps() - 1);
    const auto [lo, hi] = last.attr_range(0);
    BatQuery hot_query;
    hot_query.attr_filters.push_back({0, shared_threshold.load(), hi});
    std::printf("\nhot-region curve (postprocess over the series):\n");
    for (const SeriesPoint& p : series_curve(reader, 6, hot_query)) {
        std::printf("  t=%-6d count=%-8llu mean_residence=%.0f\n", p.timestep,
                    static_cast<unsigned long long>(p.count), p.mean);
    }
    return 0;
}
