// Dataset previews (paper Fig 8): render the Coal Boiler at timesteps
// 501 / 2501 / 4501 and the Dam Break at timesteps 0 / 1001 / 4001 —
// the same snapshots the paper shows — to PPM images.
//
// Run:  ./datasets_preview [output_dir] [particles]

#include <cstdio>
#include <cstdlib>

#include "render_ppm.hpp"
#include "workloads/boiler.hpp"
#include "workloads/dambreak.hpp"

using namespace bat;

int main(int argc, char** argv) {
    const std::filesystem::path out_dir = argc > 1 ? argv[1] : "/tmp/bat_preview";
    const std::uint64_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300'000;
    std::filesystem::create_directories(out_dir);

    BoilerConfig boiler;
    boiler.particles_at_end = n;
    boiler.particles_at_start = n / 9;
    for (const int t : {501, 2501, 4501}) {  // paper Fig 8a timesteps
        const ParticleSet set = make_boiler_particles(boiler, t);
        const auto [lo, hi] = set.attr_range(0);  // temperature
        examples::SplatRenderer renderer(800, 800, boiler.domain, /*depth_axis=*/1);
        for (std::size_t i = 0; i < set.count(); ++i) {
            const float v = static_cast<float>((set.attr(0)[i] - lo) /
                                               std::max(1e-9, hi - lo));
            renderer.splat(set.position(i), v, 1.f);
        }
        const auto path = out_dir / ("boiler_t" + std::to_string(t) + ".ppm");
        renderer.write_ppm(path);
        std::printf("boiler   t=%4d  %8llu particles -> %s\n", t,
                    static_cast<unsigned long long>(set.count()), path.c_str());
    }

    DamBreakConfig dam;
    dam.num_particles = n;
    for (const int t : {0, 1001, 4001}) {  // paper Fig 8b timesteps
        const ParticleSet set = make_dambreak_particles(dam, t);
        const auto [lo, hi] = set.attr_range(2);  // pressure
        examples::SplatRenderer renderer(1000, 500, dam.domain, /*depth_axis=*/1);
        for (std::size_t i = 0; i < set.count(); ++i) {
            const float v = static_cast<float>((set.attr(2)[i] - lo) /
                                               std::max(1e-9, hi - lo));
            renderer.splat(set.position(i), v, 1.f);
        }
        const auto path = out_dir / ("dambreak_t" + std::to_string(t) + ".ppm");
        renderer.write_ppm(path);
        std::printf("dambreak t=%4d  %8llu particles -> %s\n", t,
                    static_cast<unsigned long long>(set.count()), path.c_str());
    }
    return 0;
}
