// Progressive streaming viewer (paper Fig 4): "A prototype web viewer
// client that progressively streams data from a server. The server uses
// our BAT layout to progressively load and send data back to clients and
// apply spatial- and attribute-based filtering."
//
// Two virtual-MPI ranks play server and client. The server rank owns the
// BAT files through a DataService; the client requests successively higher
// quality levels (each request returns only the increment), applies an
// attribute filter, and renders a frame per increment — emulating the
// paper's web-viewer interaction loop. Frames are written as PPM images.
//
// Run:  ./streaming_viewer [output_dir] [particles]

#include <cstdio>
#include <cstdlib>

#include "io/data_service.hpp"
#include "io/writer.hpp"
#include "render_ppm.hpp"
#include "vmpi/comm.hpp"
#include "workloads/boiler.hpp"
#include "workloads/decomposition.hpp"

using namespace bat;

int main(int argc, char** argv) {
    const std::filesystem::path out_dir = argc > 1 ? argv[1] : "/tmp/bat_stream";
    BoilerConfig boiler;
    boiler.particles_at_end = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400'000;
    boiler.particles_at_start = boiler.particles_at_end / 9;

    // Stage: write one boiler snapshot.
    const ParticleSet global = make_boiler_particles(boiler, 3001);
    const GridDecomp decomp = grid_decomp_3d(32, global.bounds());
    const auto per_rank = partition_particles(global, decomp);
    std::vector<Box> bounds;
    for (int r = 0; r < decomp.nranks(); ++r) {
        bounds.push_back(decomp.rank_box(r));
    }
    WriterConfig config;
    config.tree.target_file_size = 2 << 20;
    config.directory = out_dir;
    config.basename = "stream";
    const WriteResult written = write_particles_serial(per_rank, bounds, config);
    const Metadata meta = Metadata::load(written.metadata_path);
    const auto [tlo, thi] = meta.global_ranges[0];

    Box data_bounds;
    for (const MetaLeaf& leaf : meta.leaves) {
        data_bounds.extend(leaf.bounds);
    }

    // Interactive session: rank 1 = server (read aggregator for every leaf
    // when nranks < nleaves this falls out of the assignment), rank 0 =
    // viewer client accumulating increments.
    vmpi::Runtime::run(2, [&](vmpi::Comm& comm) {
        DataService service(comm, written.metadata_path);
        const int increments = 5;
        examples::SplatRenderer renderer(700, 700, data_bounds, /*depth_axis=*/1);
        std::uint64_t streamed = 0;
        for (int step = 0; step < increments; ++step) {
            std::optional<BatQuery> request;
            if (comm.rank() == 0) {
                BatQuery q;
                q.quality_lo = static_cast<float>(step) / increments;
                q.quality_hi = static_cast<float>(step + 1) / increments;
                // The viewer filters to the hotter half of the temperature
                // range, server side.
                q.attr_filters.push_back({0, tlo + 0.5 * (thi - tlo), thi});
                request = q;
            }
            const ParticleSet increment = service.query_round(request);
            if (comm.rank() == 0) {
                streamed += increment.count();
                const float radius = 1.f + 3.f * (1.f - static_cast<float>(step + 1) /
                                                            increments);
                for (std::size_t i = 0; i < increment.count(); ++i) {
                    const float t = static_cast<float>(
                        (increment.attr(0)[i] - tlo) / std::max(1e-9, thi - tlo));
                    renderer.splat(increment.position(i), t, radius);
                }
                const auto frame =
                    out_dir / ("frame_" + std::to_string(step) + ".ppm");
                renderer.write_ppm(frame);
                std::printf("increment %d: +%llu points (total %llu) -> %s\n", step,
                            static_cast<unsigned long long>(increment.count()),
                            static_cast<unsigned long long>(streamed), frame.c_str());
            }
        }
    });
    return 0;
}
