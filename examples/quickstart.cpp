// Quickstart: the complete life of a timestep through the library.
//
//   1. Eight (virtual MPI) ranks each own a slab of a uniform particle
//      distribution and collectively write it with the adaptive two-phase
//      pipeline — producing spatially coherent BAT files + metadata.
//   2. The same ranks perform a parallel restart read.
//   3. A single "visualization" process then runs spatial, attribute, and
//      progressive multiresolution queries against the written layout.
//
// Run:  ./quickstart [output_dir]

#include <cstdio>

#include "core/bat_query.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "vmpi/comm.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

using namespace bat;

int main(int argc, char** argv) {
    const std::filesystem::path out_dir = argc > 1 ? argv[1] : "/tmp/bat_quickstart";
    const int nranks = 8;
    const Box domain({0, 0, 0}, {4, 4, 4});
    const GridDecomp decomp = grid_decomp_3d(nranks, domain);

    // Generate 16k particles per rank with 4 attributes.
    std::vector<ParticleSet> per_rank;
    for (int r = 0; r < nranks; ++r) {
        per_rank.push_back(make_uniform_particles(decomp.rank_box(r), 16'384, 4,
                                                  static_cast<std::uint64_t>(r) + 1));
    }

    // ---- 1. collective adaptive write --------------------------------------
    std::filesystem::path meta_path;
    WritePhaseTimings timings;
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        WriterConfig config;
        config.strategy = AggStrategy::adaptive;
        config.tree.target_file_size = 4 << 20;  // 4 MB leaf files
        config.directory = out_dir;
        config.basename = "quickstart";
        const WriteResult result =
            write_particles(comm, per_rank[static_cast<std::size_t>(comm.rank())],
                            decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
            timings = result.timings;
            std::printf("wrote %d leaf files, metadata at %s\n", result.num_leaves,
                        result.metadata_path.c_str());
        }
    });
    std::printf("rank 0 write breakdown: gather %.1fms  tree %.1fms  transfer %.1fms  "
                "build %.1fms  write %.1fms  metadata %.1fms\n",
                1e3 * timings.gather, 1e3 * timings.tree_build, 1e3 * timings.transfer,
                1e3 * timings.bat_build, 1e3 * timings.file_write, 1e3 * timings.metadata);

    // ---- 2. parallel restart read -------------------------------------------
    std::atomic<std::uint64_t> read_total{0};
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        const ReadResult result =
            read_particles(comm, meta_path, decomp.rank_read_box(comm.rank()));
        read_total.fetch_add(result.particles.count());
    });
    std::printf("restart read returned %llu particles (expected %d)\n",
                static_cast<unsigned long long>(read_total.load()), nranks * 16'384);

    // ---- 3. visualization-style queries -------------------------------------
    const Metadata meta = Metadata::load(meta_path);
    std::printf("dataset: %llu particles, %zu attributes, %zu leaf files\n",
                static_cast<unsigned long long>(meta.total_particles()),
                meta.num_attrs(), meta.leaves.size());

    // Spatial + attribute query: attr0 in its upper quartile, inside a box.
    const auto [lo, hi] = meta.global_ranges[0];
    BatQuery query;
    query.box = Box({1, 1, 1}, {3, 3, 3});
    query.attr_filters.push_back({0, lo + 0.75 * (hi - lo), hi});
    std::uint64_t matches = 0;
    for (int leaf : meta.query_leaves(query.box, query.attr_filters)) {
        const BatFile file(out_dir / meta.leaves[static_cast<std::size_t>(leaf)].file);
        QueryStats stats;
        matches += query_bat(file, query, [](Vec3, std::span<const double>) {}, &stats);
    }
    std::printf("spatial+attribute query matched %llu particles\n",
                static_cast<unsigned long long>(matches));

    // Progressive multiresolution read of the first leaf: 10%% then the rest.
    const BatFile file(out_dir / meta.leaves[0].file);
    BatQuery coarse;
    coarse.quality_hi = 0.1f;
    const std::uint64_t coarse_n =
        query_bat(file, coarse, [](Vec3, std::span<const double>) {});
    BatQuery rest;
    rest.quality_lo = 0.1f;
    rest.quality_hi = 1.0f;
    const std::uint64_t rest_n =
        query_bat(file, rest, [](Vec3, std::span<const double>) {});
    std::printf("progressive read of leaf 0: %llu points at quality 0.1, +%llu to full "
                "(leaf holds %llu)\n",
                static_cast<unsigned long long>(coarse_n),
                static_cast<unsigned long long>(rest_n),
                static_cast<unsigned long long>(meta.leaves[0].num_particles));
    return 0;
}
