// Coal-Boiler-style in situ I/O loop (paper §VI-A2): a time-varying,
// strongly nonuniform particle population is written every "dump" timestep
// with the adaptive aggregation strategy; the rank decomposition is resized
// to the data bounds each step, as the paper's Uintah runs do. After the
// run, an analysis pass filters the final timestep for the hottest
// particles via the bitmap-indexed attribute query.
//
// Run:  ./boiler_insitu [output_dir] [nranks] [particles_at_end]

#include <cstdio>
#include <cstdlib>

#include "core/bat_query.hpp"
#include "io/writer.hpp"
#include "workloads/boiler.hpp"
#include "workloads/decomposition.hpp"

using namespace bat;

int main(int argc, char** argv) {
    const std::filesystem::path out_dir = argc > 1 ? argv[1] : "/tmp/bat_boiler";
    const int nranks = argc > 2 ? std::atoi(argv[2]) : 64;
    BoilerConfig boiler;
    boiler.particles_at_end = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 400'000;
    boiler.particles_at_start = boiler.particles_at_end / 9;  // paper's 9x growth

    std::filesystem::path last_meta;
    for (int t = boiler.t_start; t <= boiler.t_end; t += 1000) {
        const ParticleSet global = make_boiler_particles(boiler, t);
        // Resize the decomposition to the current data bounds.
        const GridDecomp decomp = grid_decomp_3d(nranks, global.bounds());
        const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);
        std::vector<Box> bounds;
        for (int r = 0; r < nranks; ++r) {
            bounds.push_back(decomp.rank_box(r));
        }

        WriterConfig config;
        config.strategy = AggStrategy::adaptive;
        config.tree.target_file_size = 2 << 20;
        config.directory = out_dir;
        config.basename = "boiler_t" + std::to_string(t);
        const WriteResult result = write_particles_serial(per_rank, bounds, config);
        last_meta = result.metadata_path;

        // Report the load balance the aggregation achieved.
        std::uint64_t max_count = 0;
        for (const auto& set : per_rank) {
            max_count = std::max<std::uint64_t>(max_count, set.count());
        }
        std::printf("t=%4d  %8llu particles  %3d files  max rank load %llu (%.1fx mean)\n",
                    t, static_cast<unsigned long long>(global.count()), result.num_leaves,
                    static_cast<unsigned long long>(max_count),
                    static_cast<double>(max_count) * nranks /
                        static_cast<double>(global.count()));
    }

    // ---- analysis on the final dump: hottest 10% of the temperature range --
    const Metadata meta = Metadata::load(last_meta);
    const std::size_t temp = 0;  // attribute 0 is temperature
    const auto [lo, hi] = meta.global_ranges[temp];
    BatQuery query;
    query.attr_filters.push_back({static_cast<std::uint32_t>(temp),
                                  lo + 0.9 * (hi - lo), hi});
    std::uint64_t hot = 0;
    std::uint64_t tested = 0;
    for (int leaf : meta.query_leaves(std::nullopt, query.attr_filters)) {
        const BatFile file(last_meta.parent_path() /
                           meta.leaves[static_cast<std::size_t>(leaf)].file);
        QueryStats stats;
        hot += query_bat(file, query, [](Vec3, std::span<const double>) {}, &stats);
        tested += stats.points_tested;
    }
    std::printf("hot-particle query: %llu matches; %llu points tested of %llu total "
                "(bitmap pruning skipped %.1f%%)\n",
                static_cast<unsigned long long>(hot),
                static_cast<unsigned long long>(tested),
                static_cast<unsigned long long>(meta.total_particles()),
                100.0 * (1.0 - static_cast<double>(tested) /
                                   static_cast<double>(meta.total_particles())));
    return 0;
}
