// prof_report: render a bat-prof-v1 CPU profile (obs/prof.hpp, written by
// BAT_PROF_FILE or obs::write_profile).
//
//   prof_report PROFILE.json                 totals + top-k hot attributions
//   prof_report --top K PROFILE.json         change the top-k cutoff (default 20)
//   prof_report --per-rank PROFILE.json      per-rank sample imbalance view
//   prof_report --collapsed PROFILE.json     flamegraph-compatible collapsed
//                                            stacks ("a;b;c count") on stdout
//   prof_report --min-attributed F PROFILE.json
//                                            exit 1 when attributed/samples < F
//                                            (or no samples at all) — CI gate
//   prof_report --diff OLD.json NEW.json     share-shift regression view
//       [--fail-above PTS]                   exit 1 when any stack's share of
//                                            attributed samples moved by >= PTS
//                                            percentage points (default 5)
//
// Exits non-zero on missing files, malformed JSON, a schema other than
// bat-prof-v1, or a failed --min-attributed / --fail-above gate.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace {

using bat::obs::ProfDiff;
using bat::obs::ProfDiffEntry;
using bat::obs::json::Value;

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        throw std::runtime_error("cannot open " + path);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

Value load_profile(const std::string& path) {
    Value root = bat::obs::json::parse(read_file(path));
    const Value* schema = root.find("schema");
    if (schema == nullptr || !schema->is_string() || schema->string() != "bat-prof-v1") {
        throw std::runtime_error(path + ": not a bat-prof-v1 profile");
    }
    return root;
}

double num_or(const Value& obj, const char* key, double fallback) {
    const Value* v = obj.find(key);
    return v != nullptr && v->is_number() ? v->number() : fallback;
}

struct Stack {
    int rank = -1;
    std::string joined;  // frames joined with ';'
    std::uint64_t samples = 0;
};

std::vector<Stack> load_stacks(const Value& root) {
    std::vector<Stack> out;
    const Value* stacks = root.find("stacks");
    if (stacks == nullptr || !stacks->is_array()) {
        return out;
    }
    for (const Value& entry : stacks->array()) {
        const Value* frames = entry.find("frames");
        if (frames == nullptr || !frames->is_array()) {
            continue;
        }
        Stack s;
        s.rank = static_cast<int>(num_or(entry, "rank", -1));
        s.samples = static_cast<std::uint64_t>(num_or(entry, "samples", 0));
        for (const Value& f : frames->array()) {
            if (!s.joined.empty()) {
                s.joined += ';';
            }
            s.joined += f.string();
        }
        out.push_back(std::move(s));
    }
    return out;
}

void print_totals(const Value& root) {
    const double samples = num_or(root, "samples", 0);
    const double attributed = num_or(root, "attributed", 0);
    std::printf("profile: %.0f samples @ %.0f Hz over %.2f s wall (pid %.0f)\n",
                samples, num_or(root, "hz", 0), num_or(root, "wall_seconds", 0),
                num_or(root, "pid", 0));
    std::printf("attributed: %.0f (%.1f%%), dropped: %.0f\n", attributed,
                samples > 0 ? 100.0 * attributed / samples : 0.0,
                num_or(root, "dropped", 0));
    if (const Value* kinds = root.find("kinds"); kinds != nullptr && kinds->is_object()) {
        for (const auto& [kind, v] : kinds->object()) {
            std::printf("  %-8s %4.0f thread(s), %8.0f sample(s)\n", kind.c_str(),
                        num_or(v, "threads", 0), num_or(v, "samples", 0));
        }
    }
}

void print_top(const Value& root, int top_k) {
    // Merge ranks: the hot-spot view asks "which code", not "which rank".
    std::map<std::string, std::uint64_t> merged;
    std::uint64_t total = 0;
    for (const Stack& s : load_stacks(root)) {
        merged[s.joined] += s.samples;
        total += s.samples;
    }
    std::vector<std::pair<std::string, std::uint64_t>> sorted(merged.begin(),
                                                              merged.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("\n%-10s %7s  %s\n", "samples", "share", "stack");
    int shown = 0;
    for (const auto& [stack, samples] : sorted) {
        if (shown++ >= top_k) {
            break;
        }
        std::printf("%-10llu %6.1f%%  %s\n",
                    static_cast<unsigned long long>(samples),
                    total > 0 ? 100.0 * static_cast<double>(samples) /
                                    static_cast<double>(total)
                              : 0.0,
                    stack.c_str());
    }
    if (sorted.empty()) {
        std::printf("(no attributed stacks)\n");
    }
}

void print_per_rank(const Value& root) {
    std::map<int, std::uint64_t> by_rank;
    std::uint64_t total = 0;
    for (const Stack& s : load_stacks(root)) {
        by_rank[s.rank] += s.samples;
        total += s.samples;
    }
    if (by_rank.empty()) {
        std::printf("\nper-rank: (no attributed samples)\n");
        return;
    }
    std::uint64_t max_s = 0;
    for (const auto& [rank, samples] : by_rank) {
        max_s = std::max(max_s, samples);
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(by_rank.size());
    std::printf("\n%-6s %10s %7s\n", "rank", "samples", "share");
    for (const auto& [rank, samples] : by_rank) {
        std::printf("%-6d %10llu %6.1f%%\n", rank,
                    static_cast<unsigned long long>(samples),
                    total > 0 ? 100.0 * static_cast<double>(samples) /
                                    static_cast<double>(total)
                              : 0.0);
    }
    std::printf("imbalance (max/mean): %.2f\n",
                mean > 0 ? static_cast<double>(max_s) / mean : 0.0);
}

void print_collapsed(const Value& root) {
    std::map<std::string, std::uint64_t> merged;
    for (const Stack& s : load_stacks(root)) {
        merged[s.joined] += s.samples;
    }
    for (const auto& [stack, samples] : merged) {
        std::printf("%s %llu\n", stack.c_str(),
                    static_cast<unsigned long long>(samples));
    }
}

int run_diff(const std::string& before_path, const std::string& after_path,
             double fail_above, bool gate) {
    const Value before = load_profile(before_path);
    const Value after = load_profile(after_path);
    const ProfDiff diff = bat::obs::prof_diff(before, after, fail_above);
    std::printf("before: %llu attributed sample(s), after: %llu\n",
                static_cast<unsigned long long>(diff.before_samples),
                static_cast<unsigned long long>(diff.after_samples));
    std::printf("%-8s %7s %7s  %s\n", "delta", "before", "after", "stack");
    int shown = 0;
    for (const ProfDiffEntry& e : diff.entries) {
        if (shown++ >= 20) {
            break;
        }
        std::printf("%+7.1f%% %6.1f%% %6.1f%%  %s\n", e.delta, e.before_share,
                    e.after_share, e.stack.c_str());
    }
    if (!diff.flagged.empty()) {
        std::printf("\n%zu stack(s) moved by >= %.1f points:\n", diff.flagged.size(),
                    fail_above);
        for (const ProfDiffEntry& e : diff.flagged) {
            std::printf("  %+7.1f%%  %s\n", e.delta, e.stack.c_str());
        }
        if (gate) {
            std::printf("FAIL: profile shares shifted beyond --fail-above %.1f\n",
                        fail_above);
            return 1;
        }
    } else {
        std::printf("\nno stack moved by >= %.1f points\n", fail_above);
    }
    return 0;
}

void usage() {
    std::fprintf(stderr,
                 "usage: prof_report [--top K] [--per-rank] [--collapsed]\n"
                 "                   [--min-attributed F] PROFILE.json\n"
                 "       prof_report --diff OLD.json NEW.json [--fail-above PTS]\n");
}

}  // namespace

int main(int argc, char** argv) {
    int top_k = 20;
    bool per_rank = false;
    bool collapsed = false;
    bool diff = false;
    bool gate = false;
    double min_attributed = -1.0;
    double fail_above = 5.0;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            top_k = std::atoi(argv[++i]);
        } else if (arg == "--per-rank") {
            per_rank = true;
        } else if (arg == "--collapsed") {
            collapsed = true;
        } else if (arg == "--diff") {
            diff = true;
        } else if (arg == "--min-attributed" && i + 1 < argc) {
            min_attributed = std::atof(argv[++i]);
        } else if (arg == "--fail-above" && i + 1 < argc) {
            fail_above = std::atof(argv[++i]);
            gate = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    try {
        if (diff) {
            if (paths.size() != 2) {
                usage();
                return 2;
            }
            return run_diff(paths[0], paths[1], fail_above, gate);
        }
        if (paths.size() != 1) {
            usage();
            return 2;
        }
        const Value root = load_profile(paths[0]);
        if (collapsed) {
            print_collapsed(root);
            return 0;
        }
        print_totals(root);
        print_top(root, top_k);
        if (per_rank) {
            print_per_rank(root);
        }
        if (min_attributed >= 0) {
            const double samples = num_or(root, "samples", 0);
            const double attributed = num_or(root, "attributed", 0);
            const double frac = samples > 0 ? attributed / samples : 0.0;
            if (samples <= 0 || frac < min_attributed) {
                std::printf("FAIL: attribution %.3f below --min-attributed %.3f "
                            "(%.0f samples)\n",
                            frac, min_attributed, samples);
                return 1;
            }
            std::printf("attribution gate ok: %.3f >= %.3f\n", frac, min_attributed);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "prof_report: %s\n", e.what());
        return 1;
    }
}
