// bat_report: pretty-print a bat-report-v1 run report (obs/health.hpp,
// written by BAT_REPORT_FILE or obs::write_run_report).
//
//   bat_report REPORT.json            full report: run, phases, io, delta, traffic
//   bat_report --phases REPORT.json   phase table only
//
// The phase table shows per-rank min/mean/max wall seconds and the
// max/mean imbalance factor — the per-rank skew view Darshan-style I/O
// characterization exists for. Exits non-zero on a missing file, malformed
// JSON, or a schema other than bat-report-v1.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using bat::obs::json::Value;

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        throw std::runtime_error("cannot open " + path);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

double num_or(const Value* obj, const char* key, double fallback) {
    if (obj == nullptr) {
        return fallback;
    }
    const Value* v = obj->find(key);
    return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string human_bytes(double b) {
    const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int u = 0;
    while (b >= 1024.0 && u < 4) {
        b /= 1024.0;
        ++u;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), u == 0 ? "%.0f %s" : "%.2f %s", b, units[u]);
    return buf;
}

void print_run(const Value& root) {
    const Value* run = root.find("run");
    std::printf("run: %.3f s wall, %d rank(s)\n", num_or(run, "wall_seconds", 0),
                static_cast<int>(num_or(run, "ranks", 0)));
    if (run != nullptr) {
        if (const Value* dog = run->find("watchdog"); dog != nullptr) {
            const Value* armed = dog->find("armed");
            const double trips = num_or(dog, "trips", 0);
            std::printf("watchdog: %s, %d trip(s)\n",
                        armed != nullptr && armed->is_bool() && armed->boolean()
                            ? "armed"
                            : "off",
                        static_cast<int>(trips));
        }
    }
}

void print_phases(const Value& root) {
    const Value* phases = root.find("phases");
    if (phases == nullptr || !phases->is_object() || phases->object().empty()) {
        std::printf("\nphases: (none recorded)\n");
        return;
    }
    std::printf("\n%-24s %8s %6s %10s %10s %10s %9s\n", "phase", "calls", "ranks",
                "min_s", "mean_s", "max_s", "imbalance");
    // Sort by mean seconds, largest first: the expensive phases lead.
    std::vector<std::pair<std::string, const Value*>> rows;
    for (const auto& [name, v] : phases->object()) {
        rows.emplace_back(name, &v);
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return num_or(a.second, "mean_s", 0) > num_or(b.second, "mean_s", 0);
    });
    for (const auto& [name, v] : rows) {
        const double mean = num_or(v, "mean_s", 0);
        const double max = num_or(v, "max_s", 0);
        std::printf("%-24s %8ld %6d %10.6f %10.6f %10.6f %8.2fx\n", name.c_str(),
                    static_cast<long>(num_or(v, "calls", 0)),
                    static_cast<int>(num_or(v, "ranks", 0)), num_or(v, "min_s", 0),
                    mean, max, mean > 0 ? max / mean : 0.0);
    }
}

void print_io(const Value& root) {
    const Value* io = root.find("io");
    if (io == nullptr || !io->is_object() || io->object().empty()) {
        return;
    }
    std::printf("\n%-26s %12s %6s %12s %12s\n", "io", "total", "ranks", "min", "max");
    for (const auto& [name, v] : io->object()) {
        std::printf("%-26s %12.0f %6d %12.0f %12.0f\n", name.c_str(),
                    num_or(&v, "total", 0), static_cast<int>(num_or(&v, "ranks", 0)),
                    num_or(&v, "min", 0), num_or(&v, "max", 0));
    }
}

void print_delta(const Value& root) {
    // Incremental-write effectiveness: the write.delta_* counters the
    // writer records when a WritePlan is carried across steps. Absent
    // counters mean the run never wrote incrementally; print nothing.
    const Value* counters = root.find("counters");
    if (counters == nullptr || !counters->is_object()) {
        return;
    }
    const double clean = num_or(counters, "write.delta_treelets_clean", 0);
    const double written = num_or(counters, "write.delta_treelets_written", 0);
    const double reused = num_or(counters, "write.plan_reused", 0);
    if (clean + written + reused == 0) {
        return;
    }
    const double judged = clean + written;
    std::printf("\ndelta writes: %ld plan reuse(s), treelets %ld clean / %ld written "
                "(%.1f%% hit rate), %s saved, %ld leaf file(s) unchanged\n",
                static_cast<long>(reused), static_cast<long>(clean),
                static_cast<long>(written),
                judged > 0 ? 100.0 * clean / judged : 0.0,
                human_bytes(num_or(counters, "write.delta_bytes_saved", 0)).c_str(),
                static_cast<long>(num_or(counters, "write.leaves_unchanged", 0)));
    if (const Value* histograms = root.find("histograms"); histograms != nullptr) {
        if (const Value* chain = histograms->find("write.delta_chain_len");
            chain != nullptr && num_or(chain, "count", 0) > 0) {
            std::printf("delta chains: mean %.2f, p50 %.0f, p99 %.0f, max %.0f "
                        "(%ld delta file(s))\n",
                        num_or(chain, "mean", 0), num_or(chain, "p50", 0),
                        num_or(chain, "p99", 0), num_or(chain, "max", 0),
                        static_cast<long>(num_or(chain, "count", 0)));
        }
    }
}

void print_traffic(const Value& root) {
    if (const Value* msgs = root.find("messages"); msgs != nullptr) {
        std::printf("\nmessages: %ld sends (%s), %ld recvs (%s), %ld collectives, "
                    "%ld leaves served\n",
                    static_cast<long>(num_or(msgs, "sends", 0)),
                    human_bytes(num_or(msgs, "send_bytes", 0)).c_str(),
                    static_cast<long>(num_or(msgs, "recvs", 0)),
                    human_bytes(num_or(msgs, "recv_bytes", 0)).c_str(),
                    static_cast<long>(num_or(msgs, "collectives", 0)),
                    static_cast<long>(num_or(msgs, "leaves_served", 0)));
    }
    if (const Value* pool = root.find("pool"); pool != nullptr) {
        std::printf("pool: %ld task(s)\n", static_cast<long>(num_or(pool, "tasks", 0)));
    }
    if (const Value* cache = root.find("cache"); cache != nullptr) {
        const double hits = num_or(cache, "hits", 0);
        const double misses = num_or(cache, "misses", 0);
        if (hits + misses > 0) {
            std::printf("leaf cache: %.0f hits / %.0f misses (%.1f%% hit rate)\n",
                        hits, misses, 100.0 * num_or(cache, "hit_rate", 0));
        }
    }
}

void usage() { std::fprintf(stderr, "usage: bat_report [--phases] REPORT.json\n"); }

}  // namespace

int main(int argc, char** argv) {
    bool phases_only = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--phases") == 0) {
            phases_only = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage();
            return 0;
        } else if (argv[i][0] == '-') {
            usage();
            return 2;
        } else {
            path = argv[i];
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }
    try {
        const Value root = bat::obs::json::parse(read_file(path));
        const Value* schema = root.find("schema");
        if (schema == nullptr || !schema->is_string() ||
            schema->string() != "bat-report-v1") {
            std::fprintf(stderr, "error: %s is not a bat-report-v1 document\n",
                         path.c_str());
            return 1;
        }
        if (!phases_only) {
            print_run(root);
        }
        print_phases(root);
        if (!phases_only) {
            print_io(root);
            print_delta(root);
            print_traffic(root);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
