// Deterministic schedule explorer for vmpi pipelines (docs/CORRECTNESS.md
// §5): sweep N seeds of the cooperative scheduler over a built-in scenario
// (or an arbitrary child command armed via BAT_SCHED_SEED), report the
// failing seeds, and replay any seed with its full decision trace.
//
// Usage:
//   vmpi_explore [--scenario NAME] [--seeds N] [--seed-base B]
//                [--preemptions N] [--deadlock-decisions N] [--timeout SEC]
//                [--flight-dir DIR] [--expect-fail] [--list]
//   vmpi_explore --replay SEED [--scenario NAME] [...]
//   vmpi_explore [--seeds N] --exec CMD [ARG...]
//
// Each seed runs in a forked child, so a wedged or crashed schedule cannot
// take the sweep down; the parent enforces --timeout per seed. Exit status:
// 0 sweep clean (or --expect-fail satisfied), 1 failures found (or
// --expect-fail found none), 2 usage/environment error.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/data_service.hpp"
#include "io/leaf_cache.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "sched/sched.hpp"
#include "util/thread_pool.hpp"
#include "vmpi/comm.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace {

using bat::sched::RunResult;

// ---- built-in scenarios ----------------------------------------------------

const bat::Box kDomain({0, 0, 0}, {4, 4, 4});

/// Writer → reader → DataService round: the pipeline the CI sweep guards.
/// Small sizes keep one seed in the tens of milliseconds; the schedule
/// freedom comes from 2 ranks + 2 pool workers, not from data volume.
void scenario_round() {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("vmpi_explore_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    struct DirCleanup {
        std::filesystem::path dir;
        ~DirCleanup() {
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
    } cleanup{dir};

    const int nranks = 2;
    const bat::GridDecomp decomp = bat::grid_decomp_3d(nranks, kDomain);
    const bat::ParticleSet global = bat::make_uniform_particles(kDomain, 2'000, 2, 7);
    std::vector<bat::ParticleSet> per_rank = bat::partition_particles(global, decomp);

    bat::ThreadPool pool(2);
    bat::LeafFileCache cache(16);

    std::filesystem::path meta_path;
    bat::vmpi::Runtime::run(nranks, [&](bat::vmpi::Comm& comm) {
        bat::WriterConfig config;
        config.strategy = bat::AggStrategy::adaptive;
        config.tree.target_file_size = 64 << 10;
        config.directory = dir;
        config.basename = "ts";
        config.pool = &pool;
        const bat::WriteResult result = bat::write_particles(
            comm, per_rank[static_cast<std::size_t>(comm.rank())],
            decomp.rank_box(comm.rank()), config);
        meta_path = result.metadata_path;
    });

    bat::vmpi::Runtime::run(nranks, [&](bat::vmpi::Comm& comm) {
        bat::ReaderConfig rc;
        rc.pool = &pool;
        rc.cache = &cache;
        (void)bat::read_particles(comm, meta_path, decomp.rank_read_box(comm.rank()), rc);
    });

    bat::vmpi::Runtime::run(nranks, [&](bat::vmpi::Comm& comm) {
        bat::DataService service(comm, meta_path, &pool, &cache);
        bat::BatQuery query;
        query.box = decomp.rank_read_box(comm.rank());
        (void)service.query_round(query);
        (void)service.query_round(std::nullopt);
    });
}

/// The PR 5 diag-provider race class, reduced to a fixture: one thread
/// publishes state while another samples it, with no synchronization at
/// all between them. Every schedule has the conflicting pair, so the
/// checker must flag every seed.
void scenario_diag_race() {
    int fixture_state = 0;
    bat::vmpi::Runtime::run(2, [&fixture_state](bat::vmpi::Comm& comm) {
        if (comm.rank() == 0) {
            bat::sched::note_access(&fixture_state, "fixture.diag_state",
                                    /*is_write=*/true);
            fixture_state = 1;
        } else {
            bat::sched::note_access(&fixture_state, "fixture.diag_state",
                                    /*is_write=*/false);
            static_cast<void>(fixture_state);
        }
    });
}

/// The fixed version of the same fixture: the sample happens only after a
/// message from the publisher, so the send→match edge orders the pair and
/// no seed may report a race (false-positive regression guard).
void scenario_diag_race_fixed() {
    int fixture_state = 0;
    bat::vmpi::Runtime::run(2, [&fixture_state](bat::vmpi::Comm& comm) {
        if (comm.rank() == 0) {
            bat::sched::note_access(&fixture_state, "fixture.diag_state",
                                    /*is_write=*/true);
            fixture_state = 1;
            comm.isend(1, 3, bat::vmpi::Bytes{});
        } else {
            (void)comm.recv(0, 3);
            bat::sched::note_access(&fixture_state, "fixture.diag_state",
                                    /*is_write=*/false);
            static_cast<void>(fixture_state);
        }
    });
}

/// The PR 5 watchdog arming deadlock class: rank 0 checks for the "arm"
/// message with a single stale probe instead of a blocking receive. On
/// schedules where the probe runs before rank 1's send, rank 0 never acks
/// and rank 1 waits forever — a deadlock only *some* seeds reach.
void scenario_stale_arm_deadlock() {
    bat::vmpi::Runtime::run(2, [](bat::vmpi::Comm& comm) {
        constexpr int kArmTag = 7;
        constexpr int kAckTag = 8;
        if (comm.rank() == 0) {
            if (comm.iprobe(1, kArmTag)) {
                (void)comm.recv(1, kArmTag);
                comm.isend(1, kAckTag, bat::vmpi::Bytes{});
            }
            // else: the stale check missed the arm request — the bug.
        } else {
            comm.isend(0, kArmTag, bat::vmpi::Bytes{});
            (void)comm.recv(0, kAckTag);
        }
    });
}

struct ScenarioEntry {
    const char* name;
    void (*fn)();
    const char* what;
};

constexpr ScenarioEntry kScenarios[] = {
    {"round", scenario_round, "writer -> reader -> DataService round (CI default)"},
    {"diag-race", scenario_diag_race, "unsynchronized state fixture; every seed must report a race"},
    {"diag-race-fixed", scenario_diag_race_fixed, "message-synchronized fixture; no seed may report a race"},
    {"stale-arm-deadlock", scenario_stale_arm_deadlock, "stale probe fixture; some seeds deadlock"},
};

const ScenarioEntry* find_scenario(const std::string& name) {
    for (const ScenarioEntry& s : kScenarios) {
        if (name == s.name) {
            return &s;
        }
    }
    return nullptr;
}

// ---- per-seed execution ----------------------------------------------------

enum class Status : std::uint32_t {
    ok = 0,
    race = 2,
    deadlock = 3,
    error = 4,
    timeout = 5,
};

const char* status_name(Status s) {
    switch (s) {
        case Status::ok: return "ok";
        case Status::race: return "RACE";
        case Status::deadlock: return "DEADLOCK";
        case Status::error: return "ERROR";
        case Status::timeout: return "TIMEOUT";
    }
    return "?";
}

struct SeedResult {
    std::uint64_t seed = 0;
    Status status = Status::error;
    std::uint64_t trace_hash = 0;
    std::uint64_t decisions = 0;
    bool failed() const { return status != Status::ok; }
};

struct WireRecord {
    std::uint64_t hash;
    std::uint64_t decisions;
    std::uint32_t status;
    std::uint32_t pad;
};

struct SweepConfig {
    const ScenarioEntry* scenario = &kScenarios[0];
    std::vector<std::string> exec_argv;  // non-empty: run a child command instead
    std::uint64_t seeds = 64;
    std::uint64_t seed_base = 0;
    int preemptions = -1;          // <0: library default
    std::uint64_t deadlock_decisions = 10'000;
    int timeout_sec = 120;
    std::string flight_dir;
    bool expect_fail = false;
    bool replay_trace = false;  // record + print the decision trace (child)
};

/// Child body for a built-in scenario: run under the scheduler, ship the
/// result through `fd`, exit with the Status code.
[[noreturn]] void child_run_scenario(const SweepConfig& cfg, std::uint64_t seed, int fd) {
    bat::sched::Options opts;
    opts.seed = seed;
    if (cfg.preemptions >= 0) {
        opts.preemption_bound = cfg.preemptions;
    }
    opts.deadlock_decisions = cfg.deadlock_decisions;
    opts.record_trace = cfg.replay_trace;
    if (!cfg.flight_dir.empty()) {
        const std::string path =
            cfg.flight_dir + "/flight_seed" + std::to_string(seed) + "_%p.json";
        ::setenv("BAT_FLIGHT_RECORD_FILE", path.c_str(), 1);
    }

    const RunResult rr = bat::sched::run_scheduled(opts, [&] { cfg.scenario->fn(); });

    // Race outranks deadlock: a throw_on_race abort tears a rank out of a
    // collective, so the *same* run often wedges afterwards — the race is
    // the root cause worth reporting.
    Status status = Status::ok;
    if (!rr.races.empty()) {
        status = Status::race;
    } else if (rr.deadlock) {
        status = Status::deadlock;
    } else if (rr.error != nullptr) {
        status = Status::error;
    }
    if (status != Status::ok || cfg.replay_trace) {
        std::cerr << "  " << rr.summary() << "\n";
    }
    if (cfg.replay_trace) {
        std::cout << "decision trace (seed " << seed << ", " << rr.trace.size()
                  << " entries" << (rr.trace_truncated ? ", truncated" : "") << "):\n";
        for (const bat::sched::TraceEntry& e : rr.trace) {
            std::cout << "  [" << e.step << "] t" << e.from << " -> t" << e.to << "  "
                      << e.op << "\n";
        }
        std::cout.flush();
    }
    const WireRecord rec{rr.trace_hash, rr.decisions, static_cast<std::uint32_t>(status),
                         0};
    (void)::write(fd, &rec, sizeof(rec));
    ::close(fd);
    std::cerr.flush();
    ::_exit(static_cast<int>(status));
}

/// Child body for --exec: arm the environment and exec the command.
[[noreturn]] void child_run_exec(const SweepConfig& cfg, std::uint64_t seed) {
    ::setenv("BAT_SCHED_SEED", std::to_string(seed).c_str(), 1);
    if (cfg.preemptions >= 0) {
        ::setenv("BAT_SCHED_PREEMPTIONS", std::to_string(cfg.preemptions).c_str(), 1);
    }
    ::setenv("BAT_SCHED_DEADLOCK_DECISIONS",
             std::to_string(cfg.deadlock_decisions).c_str(), 1);
    if (!cfg.flight_dir.empty()) {
        const std::string path =
            cfg.flight_dir + "/flight_seed" + std::to_string(seed) + "_%p.json";
        ::setenv("BAT_FLIGHT_RECORD_FILE", path.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.reserve(cfg.exec_argv.size() + 1);
    for (const std::string& a : cfg.exec_argv) {
        argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::cerr << "vmpi_explore: execvp(" << cfg.exec_argv[0] << "): " << std::strerror(errno)
              << "\n";
    ::_exit(127);
}

SeedResult run_seed(const SweepConfig& cfg, std::uint64_t seed) {
    SeedResult result;
    result.seed = seed;

    // Children inherit stdio buffers; flush so a child's exit cannot replay
    // the parent's pending sweep lines.
    std::cout.flush();
    std::cerr.flush();

    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
        std::cerr << "vmpi_explore: pipe: " << std::strerror(errno) << "\n";
        return result;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        std::cerr << "vmpi_explore: fork: " << std::strerror(errno) << "\n";
        ::close(fds[0]);
        ::close(fds[1]);
        return result;
    }
    if (pid == 0) {
        ::close(fds[0]);
        if (!cfg.exec_argv.empty()) {
            ::close(fds[1]);
            child_run_exec(cfg, seed);
        }
        child_run_scenario(cfg, seed, fds[1]);
    }
    ::close(fds[1]);

    // Reap with a deadline: a wedged schedule must not stall the sweep.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(cfg.timeout_sec);
    int wstatus = 0;
    bool reaped = false;
    bool killed = false;
    for (;;) {
        const pid_t w = ::waitpid(pid, &wstatus, WNOHANG);
        if (w == pid) {
            reaped = true;
            break;
        }
        if (w < 0) {
            break;
        }
        if (!killed && std::chrono::steady_clock::now() > deadline) {
            ::kill(pid, SIGKILL);
            killed = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    WireRecord rec{};
    const ssize_t got = ::read(fds[0], &rec, sizeof(rec));
    ::close(fds[0]);

    if (killed) {
        result.status = Status::timeout;
        return result;
    }
    if (got == static_cast<ssize_t>(sizeof(rec))) {
        result.status = static_cast<Status>(rec.status);
        result.trace_hash = rec.hash;
        result.decisions = rec.decisions;
        return result;
    }
    // --exec mode (no wire record) or a crashed child: go by exit status.
    if (reaped && WIFEXITED(wstatus)) {
        result.status = WEXITSTATUS(wstatus) == 0 ? Status::ok : Status::error;
    } else {
        result.status = Status::error;
    }
    return result;
}

int usage(int code) {
    std::ostream& os = code == 0 ? std::cout : std::cerr;
    os << "usage: vmpi_explore [--scenario NAME] [--seeds N] [--seed-base B]\n"
          "                    [--preemptions N] [--deadlock-decisions N]\n"
          "                    [--timeout SEC] [--flight-dir DIR] [--expect-fail]\n"
          "       vmpi_explore --replay SEED [--scenario NAME] [...]\n"
          "       vmpi_explore [--seeds N] --exec CMD [ARG...]\n"
          "       vmpi_explore --list\n";
    return code;
}

}  // namespace

int run_cli(int argc, char** argv) {
    SweepConfig cfg;
    std::optional<std::uint64_t> replay_seed;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "vmpi_explore: " << flag << " needs a value\n";
                std::exit(usage(2));
            }
            return argv[++i];
        };
        if (arg == "--scenario") {
            const char* name = next_value("--scenario");
            cfg.scenario = find_scenario(name);
            if (cfg.scenario == nullptr) {
                std::cerr << "vmpi_explore: unknown scenario '" << name << "'\n";
                return usage(2);
            }
        } else if (arg == "--seeds") {
            cfg.seeds = std::strtoull(next_value("--seeds"), nullptr, 10);
        } else if (arg == "--seed-base") {
            cfg.seed_base = std::strtoull(next_value("--seed-base"), nullptr, 10);
        } else if (arg == "--replay") {
            replay_seed = std::strtoull(next_value("--replay"), nullptr, 10);
        } else if (arg == "--preemptions") {
            cfg.preemptions = std::atoi(next_value("--preemptions"));
        } else if (arg == "--deadlock-decisions") {
            cfg.deadlock_decisions =
                std::strtoull(next_value("--deadlock-decisions"), nullptr, 10);
        } else if (arg == "--timeout") {
            cfg.timeout_sec = std::atoi(next_value("--timeout"));
        } else if (arg == "--flight-dir") {
            cfg.flight_dir = next_value("--flight-dir");
            std::filesystem::create_directories(cfg.flight_dir);
        } else if (arg == "--expect-fail") {
            cfg.expect_fail = true;
        } else if (arg == "--exec") {
            for (++i; i < argc; ++i) {
                cfg.exec_argv.emplace_back(argv[i]);
            }
            if (cfg.exec_argv.empty()) {
                std::cerr << "vmpi_explore: --exec needs a command\n";
                return usage(2);
            }
        } else if (arg == "--list") {
            for (const ScenarioEntry& s : kScenarios) {
                std::cout << s.name << "\n    " << s.what << "\n";
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(0);
        } else {
            std::cerr << "vmpi_explore: unknown argument '" << arg << "'\n";
            return usage(2);
        }
    }

    if (replay_seed) {
        // Replay: run the seed twice with full tracing; determinism means
        // the two runs produce the identical decision stream.
        cfg.replay_trace = true;
        std::cout << "replaying seed " << *replay_seed << " (scenario "
                  << (cfg.exec_argv.empty() ? cfg.scenario->name : "--exec") << ")\n";
        const SeedResult first = run_seed(cfg, *replay_seed);
        cfg.replay_trace = false;  // second run: hash only, no trace spam
        const SeedResult second = run_seed(cfg, *replay_seed);
        std::cout << "seed " << *replay_seed << ": " << status_name(first.status) << ", "
                  << first.decisions << " decisions, trace hash " << std::hex
                  << first.trace_hash << std::dec << "\n";
        if (cfg.exec_argv.empty()) {
            if (first.trace_hash == second.trace_hash && first.status == second.status) {
                std::cout << "replay: deterministic (second run identical)\n";
            } else {
                std::cout << "replay: MISMATCH (second run " << status_name(second.status)
                          << ", hash " << std::hex << second.trace_hash << std::dec
                          << ") — nondeterminism outside the scheduler\n";
                return 1;
            }
        }
        return first.failed() ? 1 : 0;
    }

    std::cout << "vmpi_explore: " << cfg.seeds << " seeds of "
              << (cfg.exec_argv.empty() ? std::string("scenario '") + cfg.scenario->name + "'"
                                        : "command '" + cfg.exec_argv[0] + "'")
              << " starting at seed " << cfg.seed_base << "\n";

    std::vector<SeedResult> failures;
    std::uint64_t replay_mismatches = 0;
    for (std::uint64_t s = 0; s < cfg.seeds; ++s) {
        const std::uint64_t seed = cfg.seed_base + s;
        const SeedResult r = run_seed(cfg, seed);
        std::cout << "  seed " << seed << ": " << status_name(r.status);
        if (r.decisions != 0) {
            std::cout << " (" << r.decisions << " decisions, trace " << std::hex
                      << r.trace_hash << std::dec << ")";
        }
        std::cout << "\n";
        if (r.failed()) {
            failures.push_back(r);
            // Prove the failure replays: same seed again, same trace hash.
            if (cfg.exec_argv.empty() && r.status != Status::timeout) {
                const SeedResult again = run_seed(cfg, seed);
                if (again.status != r.status || again.trace_hash != r.trace_hash) {
                    ++replay_mismatches;
                    std::cout << "    replay MISMATCH: " << status_name(again.status)
                              << ", trace " << std::hex << again.trace_hash << std::dec
                              << "\n";
                } else {
                    std::cout << "    replay confirmed (identical trace)\n";
                }
            }
        }
    }

    std::cout << "vmpi_explore: " << (cfg.seeds - failures.size()) << "/" << cfg.seeds
              << " seeds clean";
    if (!failures.empty()) {
        std::cout << "; failing seeds:";
        for (const SeedResult& f : failures) {
            std::cout << " " << f.seed << "(" << status_name(f.status) << ")";
        }
    }
    std::cout << "\n";
    if (replay_mismatches != 0) {
        std::cout << "vmpi_explore: " << replay_mismatches
                  << " failing seed(s) did NOT replay deterministically\n";
        return 1;
    }
    if (cfg.expect_fail) {
        if (failures.empty()) {
            std::cout << "vmpi_explore: --expect-fail but every seed was clean\n";
            return 1;
        }
        std::cout << "vmpi_explore: --expect-fail satisfied\n";
        return 0;
    }
    return failures.empty() ? 0 : 1;
}

int main(int argc, char** argv) {
    try {
        return run_cli(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << "vmpi_explore: " << e.what() << "\n";
        return 2;
    }
}
