// bench_history: merge bat-bench-v1 result files into one
// bat-bench-trajectory-v1 document — the cross-run bench trajectory the
// perf-smoke CI leg accumulates (one row per gate metric per run).
//
//   bench_history --label L [--out TRAJ.json] BENCH.json...
//       merge the given bench files into a single run labeled L and write
//       (or print, without --out) a one-run trajectory
//   bench_history --label L --append TRAJ.json [--out OUT.json] BENCH.json...
//       load an existing trajectory, add the new run, and write it back
//       (--out defaults to the --append path; a missing file starts empty)
//   bench_history --print TRAJ.json
//       render the trajectory as a metric x run table
//
// Rows keep (name, n, ns_op, unit) — exactly the identity tools/bench_check
// gates on — so a trajectory diff answers "which gated metric moved, when".
// Exits non-zero on malformed input or a schema mismatch.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using bat::obs::json::Value;

struct Row {
    std::string name;
    double n = 0;
    double ns_op = 0;
    std::string unit;
};

struct Run {
    std::string label;
    std::vector<std::string> sources;
    std::vector<Row> rows;
};

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        throw std::runtime_error("cannot open " + path);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool file_exists(const std::string& path) {
    return std::ifstream(path).good();
}

const std::string& schema_of(const Value& root, const std::string& path) {
    const Value* schema = root.find("schema");
    if (schema == nullptr || !schema->is_string()) {
        throw std::runtime_error(path + ": missing schema field");
    }
    return schema->string();
}

double num_or(const Value& obj, const char* key, double fallback) {
    const Value* v = obj.find(key);
    return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string str_or(const Value& obj, const char* key, const char* fallback) {
    const Value* v = obj.find(key);
    return v != nullptr && v->is_string() ? v->string() : fallback;
}

std::vector<Row> load_bench_rows(const std::string& path) {
    const Value root = bat::obs::json::parse(read_file(path));
    if (schema_of(root, path) != "bat-bench-v1") {
        throw std::runtime_error(path + ": not a bat-bench-v1 file");
    }
    std::vector<Row> rows;
    const Value* benchmarks = root.find("benchmarks");
    if (benchmarks == nullptr || !benchmarks->is_array()) {
        return rows;
    }
    for (const Value& b : benchmarks->array()) {
        Row row;
        row.name = str_or(b, "name", "");
        row.n = num_or(b, "n", 0);
        row.ns_op = num_or(b, "ns_op", 0);
        row.unit = str_or(b, "unit", "ns/op");
        if (!row.name.empty()) {
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

std::vector<Run> load_trajectory(const std::string& path) {
    const Value root = bat::obs::json::parse(read_file(path));
    if (schema_of(root, path) != "bat-bench-trajectory-v1") {
        throw std::runtime_error(path + ": not a bat-bench-trajectory-v1 file");
    }
    std::vector<Run> runs;
    const Value* runs_v = root.find("runs");
    if (runs_v == nullptr || !runs_v->is_array()) {
        return runs;
    }
    for (const Value& r : runs_v->array()) {
        Run run;
        run.label = str_or(r, "label", "");
        if (const Value* sources = r.find("sources");
            sources != nullptr && sources->is_array()) {
            for (const Value& s : sources->array()) {
                run.sources.push_back(s.string());
            }
        }
        if (const Value* rows = r.find("rows"); rows != nullptr && rows->is_array()) {
            for (const Value& row_v : rows->array()) {
                Row row;
                row.name = str_or(row_v, "name", "");
                row.n = num_or(row_v, "n", 0);
                row.ns_op = num_or(row_v, "ns_op", 0);
                row.unit = str_or(row_v, "unit", "ns/op");
                run.rows.push_back(std::move(row));
            }
        }
        runs.push_back(std::move(run));
    }
    return runs;
}

void json_escape(std::string& out, const std::string& in) {
    for (const char c : in) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
}

std::string render_trajectory(const std::vector<Run>& runs) {
    std::string out = "{\n  \"schema\": \"bat-bench-trajectory-v1\",\n  \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run& run = runs[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"label\": \"";
        json_escape(out, run.label);
        out += "\", \"sources\": [";
        for (std::size_t s = 0; s < run.sources.size(); ++s) {
            out += s == 0 ? "\"" : ", \"";
            json_escape(out, run.sources[s]);
            out += "\"";
        }
        out += "], \"rows\": [";
        for (std::size_t r = 0; r < run.rows.size(); ++r) {
            const Row& row = run.rows[r];
            out += r == 0 ? "\n      " : ",\n      ";
            char buf[256];
            std::string name;
            json_escape(name, row.name);
            std::string unit;
            json_escape(unit, row.unit);
            std::snprintf(buf, sizeof(buf),
                          "{\"name\": \"%s\", \"n\": %.0f, \"ns_op\": %.3f, "
                          "\"unit\": \"%s\"}",
                          name.c_str(), row.n, row.ns_op, unit.c_str());
            out += buf;
        }
        out += run.rows.empty() ? "]}" : "\n    ]}";
    }
    out += runs.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

void print_table(const std::vector<Run>& runs) {
    // metric identity = name @ n (the bench_check gate key); unit rides along
    std::map<std::string, std::map<std::string, double>> by_metric;
    std::vector<std::string> labels;
    for (const Run& run : runs) {
        labels.push_back(run.label);
        for (const Row& row : run.rows) {
            by_metric[row.name + " @ " + std::to_string(static_cast<long long>(row.n)) +
                      " [" + row.unit + "]"][run.label] = row.ns_op;
        }
    }
    std::printf("%-52s", "metric");
    for (const std::string& label : labels) {
        std::printf(" %14s", label.c_str());
    }
    std::printf("\n");
    for (const auto& [metric, values] : by_metric) {
        std::printf("%-52s", metric.c_str());
        for (const std::string& label : labels) {
            const auto it = values.find(label);
            if (it != values.end()) {
                std::printf(" %14.3f", it->second);
            } else {
                std::printf(" %14s", "-");
            }
        }
        std::printf("\n");
    }
    std::printf("%zu run(s), %zu metric(s)\n", runs.size(), by_metric.size());
}

void usage() {
    std::fprintf(stderr,
                 "usage: bench_history --label L [--append TRAJ.json] [--out OUT.json] "
                 "BENCH.json...\n"
                 "       bench_history --print TRAJ.json\n");
}

}  // namespace

int main(int argc, char** argv) {
    std::string label;
    std::string append_path;
    std::string out_path;
    std::string print_path;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--label" && i + 1 < argc) {
            label = argv[++i];
        } else if (arg == "--append" && i + 1 < argc) {
            append_path = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--print" && i + 1 < argc) {
            print_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }
    try {
        if (!print_path.empty()) {
            print_table(load_trajectory(print_path));
            return 0;
        }
        if (label.empty() || inputs.empty()) {
            usage();
            return 2;
        }
        std::vector<Run> runs;
        if (!append_path.empty() && file_exists(append_path)) {
            runs = load_trajectory(append_path);
        }
        Run run;
        run.label = label;
        for (const std::string& input : inputs) {
            // Strip directories so CI paths do not leak into the artifact.
            const std::size_t slash = input.find_last_of('/');
            run.sources.push_back(slash == std::string::npos
                                      ? input
                                      : input.substr(slash + 1));
            for (Row& row : load_bench_rows(input)) {
                run.rows.push_back(std::move(row));
            }
        }
        // Re-running under the same label replaces the old run (CI retries).
        runs.erase(std::remove_if(runs.begin(), runs.end(),
                                  [&label](const Run& r) { return r.label == label; }),
                   runs.end());
        runs.push_back(std::move(run));
        const std::string rendered = render_trajectory(runs);
        if (out_path.empty()) {
            out_path = append_path;
        }
        if (out_path.empty()) {
            std::fputs(rendered.c_str(), stdout);
        } else {
            std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
            if (!out) {
                throw std::runtime_error("cannot open " + out_path + " for writing");
            }
            out.write(rendered.data(), static_cast<std::streamsize>(rendered.size()));
            std::printf("bench_history: %zu run(s) -> %s\n", runs.size(),
                        out_path.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_history: %s\n", e.what());
        return 1;
    }
}
