// Perf-regression gate for CI: validates a bat-bench-v1 JSON document
// (from `bench/micro_kernels --json` or `bench/read_pipeline --json`) and
// applies every gate family whose rows are present:
//
//   radix — the builder's sort must never regress past std::sort: both
//     sort_radix_serial and sort_radix_pool must beat sort_std at every
//     n >= 1M;
//   simd — the vector kernel tiers must pay for their dispatch:
//     morton_encode_simd >= 1.5x over morton_encode_scalar and
//     bitmap_bin_simd >= 1.0x over bitmap_bin_scalar at n >= 1M (rows are
//     only emitted when a vector tier is active, so scalar-only hosts skip
//     this family);
//   bat_build — ceiling on the write pipeline's BAT build phase. When a
//     seed document (--seed FILE or BAT_BENCH_SEED_FILE) carries a
//     write.bat_build row, the gate is the same-host before/after ratio:
//     new <= 1.25x seed ns/op (BAT_BENCH_MAX_BAT_BUILD_RATIO). Without a
//     seed row it falls back to the absolute 140 ns/op ceiling at n >= 1M
//     (BAT_BENCH_MAX_BAT_BUILD_NS) — absolute ceilings are calibrated for
//     the reference host and trip spuriously on slower machines, so prefer
//     seeding with the same host's previous run;
//   series — incremental series writes (bench/series_pipeline --json) must
//     pay off on slowly-evolving data: for every series.<workload> row
//     group, steady-state delta steps must write <= 0.40x the bytes of the
//     full-rewrite baseline (BAT_BENCH_MAX_SERIES_BYTES_RATIO), the
//     per-step write total must not exceed the baseline's
//     (BAT_BENCH_MAX_SERIES_TOTAL_RATIO, default 1.0), and at least one
//     treelet must actually have been written by reference
//     (series.<w>.treelets_clean >= 1 — a zero delta-hit count means the
//     incremental path silently degraded to full rewrites);
//   serve — threaded leaf serving must not lose to the serial comm-thread
//     path: read.serve_pool <= read.serve_serial ns/op at n >= 1M;
//   msgs — request coalescing must cut traffic: the read.msgs_coalesced
//     message count (`n`) must be below read.msgs_per_leaf;
//   querytrace — armed per-query tracing must stay cheap: the
//     read.total_querytrace ns/op (bench/obs_overhead --json) must be within
//     5% of read.total_off;
//   prof — profiler-armed runs (obs/prof.hpp) must stay honest three ways:
//     read.total_prof within 5% of read.total_off
//     (BAT_BENCH_MAX_PROF_RATIO), prof.attributed_pct >= 90% of samples
//     carrying a span-stack attribution (BAT_BENCH_MIN_PROF_ATTRIB_PCT),
//     and every prof.share.bat.* stage sample share within 15 points of the
//     matching bat.* wall share for stages with >= 10% wall share
//     (BAT_BENCH_MAX_PROF_SHARE_DELTA).
//
// Rows carry a `unit` (default "ns/op"); rows whose unit is a plain count
// (e.g. "msgs") are exempt from the positive-ns_op requirement, since their
// payload is `n` and a fabricated rate would gate nothing real.
//
// A bat-report-v1 document (obs/health.hpp run report, BAT_REPORT_FILE)
// instead goes through the `report` gate family: schema-validates the run /
// phases / messages sections, requires at least one write.* or read.* phase
// with calls >= 1, checks min <= mean <= max for every phase, and checks
// min <= p50 <= p90 <= p99 <= max for every histogram carrying percentiles.
//
// A file that matches no family fails (exit 1): a gate silently skipping is
// indistinguishable from a gate passing.
// Usage: bench_check [--seed FILE] <BENCH.json>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace {

using bat::obs::json::Value;

int fail(const std::string& msg) {
    std::fprintf(stderr, "bench_check: FAIL: %s\n", msg.c_str());
    return 1;
}

using NsByKey = std::map<std::pair<std::string, std::uint64_t>, double>;

/// ns/op of the single entry named `name`, or -1 when absent. Fails the
/// process via the returned flag when the name appears at several n.
bool find_unique(const NsByKey& ns_op, const std::string& name, std::uint64_t* n,
                 double* ns) {
    bool found = false;
    for (const auto& [key, value] : ns_op) {
        if (key.first != name) {
            continue;
        }
        if (found) {
            return false;  // ambiguous: same row name at two sizes
        }
        found = true;
        *n = key.second;
        *ns = value;
    }
    return found;
}

// ---- gate families --------------------------------------------------------
// Each returns the number of comparisons it checked (0 = rows absent, so
// the family does not apply), or -1 on failure after printing the reason.

int gate_radix(const NsByKey& ns_op) {
    constexpr std::uint64_t kGateMin = 1u << 20;
    int gated = 0;
    for (const auto& [key, std_ns] : ns_op) {
        const auto& [kernel, n] = key;
        if (kernel != "sort_std" || n < kGateMin) {
            continue;
        }
        for (const char* radix : {"sort_radix_serial", "sort_radix_pool"}) {
            const auto it = ns_op.find({radix, n});
            if (it == ns_op.end()) {
                fail(std::string(radix) + " missing at n=" + std::to_string(n));
                return -1;
            }
            const double speedup = std_ns / it->second;
            std::printf("bench_check: n=%-9llu %-18s %8.2f ns/op vs sort_std %8.2f "
                        "(%.2fx)\n",
                        static_cast<unsigned long long>(n), radix, it->second, std_ns,
                        speedup);
            if (speedup < 1.0) {
                fail(std::string(radix) + " slower than sort_std at n=" +
                     std::to_string(n));
                return -1;
            }
            ++gated;
        }
    }
    return gated;
}

int gate_serve(const NsByKey& ns_op) {
    constexpr std::uint64_t kGateMin = 1u << 20;
    std::uint64_t n_serial = 0;
    std::uint64_t n_pool = 0;
    double serial_ns = 0;
    double pool_ns = 0;
    const bool has_serial = find_unique(ns_op, "read.serve_serial", &n_serial, &serial_ns);
    const bool has_pool = find_unique(ns_op, "read.serve_pool", &n_pool, &pool_ns);
    if (!has_serial && !has_pool) {
        return 0;
    }
    if (!has_serial || !has_pool) {
        fail("read.serve_serial/read.serve_pool must appear together (once each)");
        return -1;
    }
    if (n_serial != n_pool) {
        fail("read.serve_serial and read.serve_pool ran at different n");
        return -1;
    }
    if (n_serial < kGateMin) {
        fail("read.serve comparison below the 1M-particle gate size");
        return -1;
    }
    const double speedup = serial_ns / pool_ns;
    std::printf("bench_check: n=%-9llu read.serve_pool  %8.2f ns/op vs serial %8.2f "
                "(%.2fx)\n",
                static_cast<unsigned long long>(n_serial), pool_ns, serial_ns, speedup);
    if (speedup < 1.0) {
        fail("threaded leaf serving slower than serial at n=" + std::to_string(n_serial));
        return -1;
    }
    return 1;
}

int gate_msgs(const NsByKey& ns_op) {
    std::uint64_t coalesced = 0;
    std::uint64_t per_leaf = 0;
    double ignored = 0;
    const bool has_coalesced = find_unique(ns_op, "read.msgs_coalesced", &coalesced,
                                           &ignored);
    const bool has_per_leaf = find_unique(ns_op, "read.msgs_per_leaf", &per_leaf,
                                          &ignored);
    if (!has_coalesced && !has_per_leaf) {
        return 0;
    }
    if (!has_coalesced || !has_per_leaf) {
        fail("read.msgs_coalesced/read.msgs_per_leaf must appear together (once each)");
        return -1;
    }
    std::printf("bench_check: request msgs: coalesced %llu vs per-leaf %llu\n",
                static_cast<unsigned long long>(coalesced),
                static_cast<unsigned long long>(per_leaf));
    if (coalesced >= per_leaf) {
        fail("coalescing did not reduce the request message count");
        return -1;
    }
    return 1;
}

int gate_simd(const NsByKey& ns_op) {
    // The vectorized kernels must actually pay for their dispatch: the BMI2
    // Morton batch encode has to beat forced-scalar by 1.5x at >= 1M, the
    // AVX2 binning kernel must at least not lose. micro_kernels emits these
    // rows only when a vector tier is active, so a scalar-only host simply
    // reports this family inapplicable.
    struct Pair {
        const char* scalar;
        const char* simd;
        double min_speedup;
    };
    constexpr std::uint64_t kGateMin = 1u << 20;
    int gated = 0;
    for (const Pair& p : {Pair{"morton_encode_scalar", "morton_encode_simd", 1.5},
                          Pair{"bitmap_bin_scalar", "bitmap_bin_simd", 1.0}}) {
        std::uint64_t n_scalar = 0;
        std::uint64_t n_simd = 0;
        double scalar_ns = 0;
        double simd_ns = 0;
        const bool has_scalar = find_unique(ns_op, p.scalar, &n_scalar, &scalar_ns);
        const bool has_simd = find_unique(ns_op, p.simd, &n_simd, &simd_ns);
        if (!has_scalar && !has_simd) {
            continue;
        }
        if (!has_scalar || !has_simd) {
            fail(std::string(p.scalar) + "/" + p.simd +
                 " must appear together (once each)");
            return -1;
        }
        if (n_scalar != n_simd) {
            fail(std::string(p.simd) + " ran at a different n than its scalar row");
            return -1;
        }
        if (n_scalar < kGateMin) {
            fail(std::string(p.simd) + " comparison below the 1M gate size");
            return -1;
        }
        const double speedup = scalar_ns / simd_ns;
        std::printf("bench_check: n=%-9llu %-20s %8.2f ns/op vs scalar %8.2f (%.2fx, "
                    "need %.1fx)\n",
                    static_cast<unsigned long long>(n_simd), p.simd, simd_ns, scalar_ns,
                    speedup, p.min_speedup);
        if (speedup < p.min_speedup) {
            fail(std::string(p.simd) + " speedup below " +
                 std::to_string(p.min_speedup) + "x over scalar");
            return -1;
        }
        ++gated;
    }
    return gated;
}

/// Positive ratio/ceiling override from the environment, or `fallback`.
/// Returns false (after printing) when the variable is set but not positive.
bool env_positive(const char* var, double fallback, double* out) {
    *out = fallback;
    if (const char* env = std::getenv(var); env != nullptr && *env != '\0') {
        *out = std::atof(env);
        if (*out <= 0) {
            fail(std::string(var) + " is not a positive number");
            return false;
        }
    }
    return true;
}

int gate_bat_build(const NsByKey& ns_op, const NsByKey* seed) {
    constexpr std::uint64_t kGateMin = 1u << 20;
    std::uint64_t n = 0;
    double ns = 0;
    if (!find_unique(ns_op, "write.bat_build", &n, &ns)) {
        return 0;
    }
    if (n < kGateMin) {
        fail("write.bat_build below the 1M-particle gate size");
        return -1;
    }
    // Same-host before/after ratio against the seed document when it has a
    // row; absolute ceilings are calibrated for the reference host, so they
    // only apply when there is nothing honest to compare against.
    std::uint64_t seed_n = 0;
    double seed_ns = 0;
    if (seed != nullptr && find_unique(*seed, "write.bat_build", &seed_n, &seed_ns) &&
        seed_ns > 0) {
        double max_ratio = 0;
        if (!env_positive("BAT_BENCH_MAX_BAT_BUILD_RATIO", 1.25, &max_ratio)) {
            return -1;
        }
        const double ratio = ns / seed_ns;
        std::printf("bench_check: n=%-9llu write.bat_build  %8.2f ns/op vs seed %8.2f "
                    "(%.3fx, max %.2fx)\n",
                    static_cast<unsigned long long>(n), ns, seed_ns, ratio, max_ratio);
        if (ratio > max_ratio) {
            fail("write.bat_build regressed more than " + std::to_string(max_ratio) +
                 "x over the seed run");
            return -1;
        }
        return 1;
    }
    double ceiling = 0;
    if (!env_positive("BAT_BENCH_MAX_BAT_BUILD_NS", 140.0, &ceiling)) {
        return -1;
    }
    std::printf("bench_check: n=%-9llu write.bat_build  %8.2f ns/op (ceiling %.1f)\n",
                static_cast<unsigned long long>(n), ns, ceiling);
    if (ns > ceiling) {
        fail("write.bat_build above the " + std::to_string(ceiling) + " ns/op ceiling");
        return -1;
    }
    return 1;
}

int gate_series(const NsByKey& ns_op) {
    // Incremental series writes (bench/series_pipeline): per workload row
    // group, steady-state delta steps must write well under the full-rewrite
    // baseline's bytes, must not be slower end to end, and must have
    // actually referenced prior-step treelets (non-vacuity).
    double max_bytes_ratio = 0;
    double max_total_ratio = 0;
    if (!env_positive("BAT_BENCH_MAX_SERIES_BYTES_RATIO", 0.40, &max_bytes_ratio) ||
        !env_positive("BAT_BENCH_MAX_SERIES_TOTAL_RATIO", 1.0, &max_total_ratio)) {
        return -1;
    }
    int gated = 0;
    const std::string kBytesFull = ".steady_bytes_full";
    for (const auto& [key, unused] : ns_op) {
        const std::string& name = key.first;
        if (name.rfind("series.", 0) != 0 || name.size() <= kBytesFull.size() ||
            name.compare(name.size() - kBytesFull.size(), kBytesFull.size(),
                         kBytesFull) != 0) {
            continue;
        }
        const std::string prefix = name.substr(0, name.size() - kBytesFull.size());
        auto need = [&](const char* suffix, std::uint64_t* n, double* ns) {
            if (!find_unique(ns_op, prefix + suffix, n, ns)) {
                fail(prefix + suffix + " missing (series rows must appear together)");
                return false;
            }
            return true;
        };
        std::uint64_t bytes_full = 0;
        std::uint64_t bytes_delta = 0;
        std::uint64_t n_full = 0;
        std::uint64_t n_delta = 0;
        std::uint64_t clean = 0;
        std::uint64_t written = 0;
        double ignored = 0;
        double total_full_ns = 0;
        double total_delta_ns = 0;
        if (!need(".steady_bytes_full", &bytes_full, &ignored) ||
            !need(".steady_bytes_delta", &bytes_delta, &ignored) ||
            !need(".write_total_full", &n_full, &total_full_ns) ||
            !need(".write_total_delta", &n_delta, &total_delta_ns) ||
            !need(".treelets_clean", &clean, &ignored) ||
            !need(".treelets_written", &written, &ignored)) {
            return -1;
        }
        if (bytes_full == 0 || total_full_ns <= 0) {
            fail(prefix + ": full-rewrite baseline rows are zero");
            return -1;
        }
        if (n_full != n_delta) {
            fail(prefix + ": full and delta passes ran at different n");
            return -1;
        }
        const double bytes_ratio =
            static_cast<double>(bytes_delta) / static_cast<double>(bytes_full);
        const double total_ratio = total_delta_ns / total_full_ns;
        const double hit_rate =
            clean + written > 0
                ? static_cast<double>(clean) / static_cast<double>(clean + written)
                : 0.0;
        std::printf("bench_check: %-24s steady bytes %.3fx (max %.2fx), write total "
                    "%.3fx (max %.2fx), delta hits %.1f%%\n",
                    prefix.c_str(), bytes_ratio, max_bytes_ratio, total_ratio,
                    max_total_ratio, 100.0 * hit_rate);
        if (clean == 0) {
            fail(prefix + ": no treelets written by reference — the incremental "
                          "path degraded to full rewrites");
            return -1;
        }
        if (bytes_ratio > max_bytes_ratio) {
            fail(prefix + ": steady-state delta steps write more than " +
                 std::to_string(max_bytes_ratio) + "x the full-rewrite bytes");
            return -1;
        }
        if (total_ratio > max_total_ratio) {
            fail(prefix + ": steady-state delta write total exceeds " +
                 std::to_string(max_total_ratio) + "x the full-rewrite total");
            return -1;
        }
        ++gated;
    }
    return gated;
}

int gate_querytrace(const NsByKey& ns_op) {
    constexpr double kMaxOverhead = 1.05;  // armed tracing within 5% of off
    std::uint64_t n_off = 0;
    std::uint64_t n_on = 0;
    double off_ns = 0;
    double on_ns = 0;
    const bool has_off = find_unique(ns_op, "read.total_off", &n_off, &off_ns);
    const bool has_on = find_unique(ns_op, "read.total_querytrace", &n_on, &on_ns);
    if (!has_off && !has_on) {
        return 0;
    }
    if (!has_off || !has_on) {
        fail("read.total_off/read.total_querytrace must appear together (once each)");
        return -1;
    }
    if (n_off != n_on) {
        fail("read.total_off and read.total_querytrace ran at different n");
        return -1;
    }
    const double ratio = on_ns / off_ns;
    std::printf("bench_check: n=%-9llu read.total_querytrace %8.2f ns/op vs off %8.2f "
                "(%.3fx)\n",
                static_cast<unsigned long long>(n_on), on_ns, off_ns, ratio);
    if (ratio > kMaxOverhead) {
        fail("query tracing overhead above 5% on read.total");
        return -1;
    }
    return 1;
}

// ---- prof gate family -----------------------------------------------------
// Gates profiler-armed runs three ways: end-to-end overhead vs the unarmed
// pipeline (bench/obs_overhead rows), sample-attribution coverage, and
// per-stage sample shares vs the builder's wall-time shares
// (bench/write_pipeline rows).

int gate_prof_overhead(const NsByKey& ns_op) {
    std::uint64_t n_off = 0;
    std::uint64_t n_prof = 0;
    double off_ns = 0;
    double prof_ns = 0;
    const bool has_off = find_unique(ns_op, "read.total_off", &n_off, &off_ns);
    const bool has_prof = find_unique(ns_op, "read.total_prof", &n_prof, &prof_ns);
    if (!has_prof) {
        return 0;  // not a profiler-armed obs_overhead run
    }
    if (!has_off) {
        fail("read.total_prof present without its read.total_off baseline");
        return -1;
    }
    if (n_off != n_prof) {
        fail("read.total_off and read.total_prof ran at different n");
        return -1;
    }
    double max_ratio = 0;
    if (!env_positive("BAT_BENCH_MAX_PROF_RATIO", 1.05, &max_ratio)) {
        return -1;
    }
    const double ratio = prof_ns / off_ns;
    std::printf("bench_check: n=%-9llu read.total_prof       %8.2f ns/op vs off %8.2f "
                "(%.3fx)\n",
                static_cast<unsigned long long>(n_prof), prof_ns, off_ns, ratio);
    if (ratio > max_ratio) {
        fail("profiler-armed overhead above " + std::to_string(max_ratio) +
             "x on read.total");
        return -1;
    }
    return 1;
}

int gate_prof_attrib(const NsByKey& ns_op) {
    std::uint64_t samples_n = 0;
    std::uint64_t attrib_n = 0;
    double samples_ns = 0;
    double attrib_pct = 0;
    const bool has_samples = find_unique(ns_op, "prof.samples", &samples_n, &samples_ns);
    const bool has_attrib =
        find_unique(ns_op, "prof.attributed_pct", &attrib_n, &attrib_pct);
    if (!has_samples && !has_attrib) {
        return 0;
    }
    if (!has_samples || !has_attrib) {
        fail("prof.samples/prof.attributed_pct must appear together (once each)");
        return -1;
    }
    double min_pct = 0;
    if (!env_positive("BAT_BENCH_MIN_PROF_ATTRIB_PCT", 90.0, &min_pct)) {
        return -1;
    }
    std::printf("bench_check: %llu profiler samples, %.1f%% span-attributed\n",
                static_cast<unsigned long long>(samples_n), attrib_pct);
    if (attrib_pct < min_pct) {
        fail("profiler span attribution below " + std::to_string(min_pct) + "%");
        return -1;
    }
    return 1;
}

int gate_prof_shares(const NsByKey& ns_op) {
    // The builder's internal stages: wall shares come from the bat.* ns/op
    // rows, sample shares from the prof.share.bat.* rows, both normalized
    // over this set. A stage with no prof.share row has 0 sampled share
    // (zero-n rows are not representable in the schema). Only stages with a
    // meaningful wall share (>= 10%) are gated: at ~100 ms of bat_build per
    // run, a 5%-wall stage collects too few 97 Hz samples to bound tightly.
    static const char* kStages[] = {"bat.edges",    "bat.encode",  "bat.sort",
                                    "bat.treelets", "bat.reorder", "bat.bitmaps"};
    double wall_total = 0;
    std::map<std::string, double> wall;
    std::map<std::string, double> sampled;
    bool any_share_row = false;
    for (const char* stage : kStages) {
        std::uint64_t n = 0;
        double ns = 0;
        if (find_unique(ns_op, stage, &n, &ns)) {
            wall[stage] = ns;
            wall_total += ns;
        }
        if (find_unique(ns_op, std::string("prof.share.") + stage, &n, &ns)) {
            sampled[stage] = ns;  // ns_op carries the share in percent
            any_share_row = true;
        }
    }
    if (!any_share_row) {
        return 0;  // not a profiler-armed write_pipeline run
    }
    if (wall_total <= 0) {
        fail("prof.share.bat.* rows present without bat.* wall-time rows");
        return -1;
    }
    double max_delta = 0;
    if (!env_positive("BAT_BENCH_MAX_PROF_SHARE_DELTA", 15.0, &max_delta)) {
        return -1;
    }
    int gated = 0;
    for (const char* stage : kStages) {
        const double wall_share =
            wall.count(stage) != 0 ? 100.0 * wall[stage] / wall_total : 0.0;
        const double sample_share = sampled.count(stage) != 0 ? sampled[stage] : 0.0;
        const double delta = sample_share - wall_share;
        std::printf("bench_check: %-14s wall %5.1f%% sampled %5.1f%% (delta %+5.1f)%s\n",
                    stage, wall_share, sample_share, delta,
                    wall_share >= 10.0 ? "" : "  [not gated]");
        if (wall_share < 10.0) {
            continue;
        }
        if (delta > max_delta || delta < -max_delta) {
            fail(std::string(stage) + " sample share deviates from wall share by more "
                                      "than " +
                 std::to_string(max_delta) + " points");
            return -1;
        }
        ++gated;
    }
    return gated;
}

// ---- report gate family ---------------------------------------------------
// Validates a bat-report-v1 document end to end; returns 0 on success after
// printing a summary line, 1 on failure.

int gate_report(const Value& doc, const char* path) {
    const Value* run = doc.find("run");
    if (run == nullptr || !run->is_object()) {
        return fail("report missing \"run\" object");
    }
    const Value* wall = run->find("wall_seconds");
    if (wall == nullptr || !wall->is_number() || wall->number() <= 0) {
        return fail("report \"run.wall_seconds\" missing or not positive");
    }
    const Value* ranks = run->find("ranks");
    if (ranks == nullptr || !ranks->is_number() || ranks->number() < 1) {
        return fail("report \"run.ranks\" missing or < 1");
    }
    const Value* phases = doc.find("phases");
    if (phases == nullptr || !phases->is_object()) {
        return fail("report missing \"phases\" object");
    }
    int io_phases = 0;
    for (const auto& [name, phase] : phases->object()) {
        if (!phase.is_object()) {
            return fail("phase \"" + name + "\" is not an object");
        }
        const Value* calls = phase.find("calls");
        const Value* min_s = phase.find("min_s");
        const Value* mean_s = phase.find("mean_s");
        const Value* max_s = phase.find("max_s");
        if (calls == nullptr || !calls->is_number() || calls->number() < 1) {
            return fail("phase \"" + name + "\" missing \"calls\" >= 1");
        }
        if (min_s == nullptr || !min_s->is_number() || mean_s == nullptr ||
            !mean_s->is_number() || max_s == nullptr || !max_s->is_number()) {
            return fail("phase \"" + name + "\" missing min_s/mean_s/max_s");
        }
        if (!(min_s->number() <= mean_s->number() &&
              mean_s->number() <= max_s->number())) {
            return fail("phase \"" + name + "\" violates min <= mean <= max");
        }
        if (name.rfind("write.", 0) == 0 || name.rfind("read.", 0) == 0) {
            ++io_phases;
        }
    }
    if (io_phases == 0) {
        return fail("report has no write.* or read.* phase — the traced pipeline "
                    "did not run");
    }
    const Value* messages = doc.find("messages");
    if (messages == nullptr || !messages->is_object()) {
        return fail("report missing \"messages\" object");
    }
    for (const char* key : {"sends", "recvs", "send_bytes", "recv_bytes"}) {
        const Value* v = messages->find(key);
        if (v == nullptr || !v->is_number() || v->number() < 0) {
            return fail(std::string("report \"messages.") + key + "\" missing");
        }
    }
    // Percentile sanity: every histogram that reports them must satisfy
    // min <= p50 <= p90 <= p99 <= max (the estimator clamps to the observed
    // range, so a violation means broken accounting, not estimation error).
    int percentiled = 0;
    if (const Value* histograms = doc.find("histograms");
        histograms != nullptr && histograms->is_object()) {
        for (const auto& [name, h] : histograms->object()) {
            if (!h.is_object()) {
                return fail("histogram \"" + name + "\" is not an object");
            }
            const Value* count = h.find("count");
            const Value* p50 = h.find("p50");
            const Value* p90 = h.find("p90");
            const Value* p99 = h.find("p99");
            if (p50 == nullptr && p90 == nullptr && p99 == nullptr) {
                continue;  // pre-percentile report
            }
            if (p50 == nullptr || !p50->is_number() || p90 == nullptr ||
                !p90->is_number() || p99 == nullptr || !p99->is_number()) {
                return fail("histogram \"" + name + "\" has partial percentiles");
            }
            if (count == nullptr || !count->is_number() || count->number() < 1) {
                continue;  // empty histogram: percentiles are all 0
            }
            const Value* min = h.find("min");
            const Value* max = h.find("max");
            if (min == nullptr || !min->is_number() || max == nullptr ||
                !max->is_number()) {
                return fail("histogram \"" + name + "\" missing min/max");
            }
            if (!(min->number() <= p50->number() && p50->number() <= p90->number() &&
                  p90->number() <= p99->number() && p99->number() <= max->number())) {
                return fail("histogram \"" + name +
                            "\" violates min <= p50 <= p90 <= p99 <= max");
            }
            ++percentiled;
        }
    }
    std::printf("bench_check: %s: bat-report-v1 OK (%zu phases, %d io, %d histograms "
                "with percentiles, %.3f s wall)\n",
                path, phases->object().size(), io_phases, percentiled, wall->number());
    return 0;
}

/// Parse + schema-validate a bat-bench-v1 "benchmarks" array into
/// (name, n) -> ns/op. Returns false after printing the reason.
bool parse_bench_rows(const Value& doc, NsByKey* ns_op) {
    const Value* benchmarks = doc.find("benchmarks");
    if (benchmarks == nullptr || !benchmarks->is_array() || benchmarks->array().empty()) {
        fail("\"benchmarks\" missing, not an array, or empty");
        return false;
    }
    for (const Value& b : benchmarks->array()) {
        if (!b.is_object()) {
            fail("benchmark entry is not an object");
            return false;
        }
        const Value* name = b.find("name");
        const Value* n = b.find("n");
        const Value* ns = b.find("ns_op");
        const Value* bps = b.find("bytes_per_sec");
        const Value* threads = b.find("threads");
        if (name == nullptr || !name->is_string() || name->string().empty()) {
            fail("benchmark entry missing string \"name\"");
            return false;
        }
        if (n == nullptr || !n->is_number() || n->number() <= 0) {
            fail(name->string() + ": missing positive \"n\"");
            return false;
        }
        // `unit` is optional (pre-unit documents are all ns/op rows); count
        // rows carry ns_op = 0 by design, rate rows must be positive.
        const Value* unit = b.find("unit");
        if (unit != nullptr && !unit->is_string()) {
            fail(name->string() + ": \"unit\" is not a string");
            return false;
        }
        const bool is_rate = unit == nullptr || unit->string() == "ns/op";
        if (ns == nullptr || !ns->is_number() ||
            (is_rate ? ns->number() <= 0 : ns->number() < 0)) {
            fail(name->string() + (is_rate ? ": missing positive \"ns_op\""
                                           : ": negative \"ns_op\""));
            return false;
        }
        if (bps == nullptr || !bps->is_number() || bps->number() < 0) {
            fail(name->string() + ": missing \"bytes_per_sec\"");
            return false;
        }
        if (threads == nullptr || !threads->is_number() || threads->number() < 1) {
            fail(name->string() + ": missing \"threads\" >= 1");
            return false;
        }
        (*ns_op)[{name->string(), static_cast<std::uint64_t>(n->number())}] =
            ns->number();
    }
    return true;
}

/// Load a JSON document from `path`; returns false after printing.
bool load_json(const char* path, Value* doc) {
    std::ifstream in(path);
    if (!in) {
        fail(std::string("cannot open ") + path);
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        *doc = bat::obs::json::parse(text.str());
    } catch (const bat::Error& e) {
        fail(std::string(path) + ": malformed JSON: " + e.what());
        return false;
    }
    return true;
}

}  // namespace

int run(int argc, char** argv) {
    const char* path = nullptr;
    const char* seed_path = std::getenv("BAT_BENCH_SEED_FILE");
    if (seed_path != nullptr && *seed_path == '\0') {
        seed_path = nullptr;
    }
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed_path = argv[++i];
        } else if (argv[i][0] == '-') {
            path = nullptr;
            break;
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            path = nullptr;
            break;
        }
    }
    if (path == nullptr) {
        std::fprintf(stderr, "usage: bench_check [--seed FILE] <BENCH.json>\n");
        return 2;
    }

    Value doc;
    if (!load_json(path, &doc)) {
        return 1;
    }

    // Dispatch on the document schema: bat-bench-v1 benchmark rows go
    // through the perf gate families below, bat-report-v1 run reports
    // through the report validator.
    const Value* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string()) {
        return fail("missing \"schema\"");
    }
    if (schema->string() == "bat-report-v1") {
        return gate_report(doc, path);
    }
    if (schema->string() != "bat-bench-v1") {
        return fail("unexpected \"schema\" (want \"bat-bench-v1\" or \"bat-report-v1\")");
    }

    // (row name, n) -> ns/op; also validates every entry's fields.
    NsByKey ns_op;
    if (!parse_bench_rows(doc, &ns_op)) {
        return 1;
    }

    // The optional seed document (a previous same-host run) turns absolute
    // ceilings into before/after ratio gates where its rows overlap.
    NsByKey seed_ns_op;
    bool have_seed = false;
    if (seed_path != nullptr) {
        Value seed_doc;
        if (!load_json(seed_path, &seed_doc)) {
            return 1;
        }
        const Value* seed_schema = seed_doc.find("schema");
        if (seed_schema == nullptr || !seed_schema->is_string() ||
            seed_schema->string() != "bat-bench-v1") {
            return fail(std::string(seed_path) + ": seed is not a bat-bench-v1 "
                                                 "document");
        }
        if (!parse_bench_rows(seed_doc, &seed_ns_op)) {
            return 1;
        }
        have_seed = true;
    }

    int gated = 0;
    for (const auto gate :
         {gate_radix, gate_simd, gate_serve, gate_msgs, gate_querytrace,
          gate_series, gate_prof_overhead, gate_prof_attrib, gate_prof_shares}) {
        const int checked = gate(ns_op);
        if (checked < 0) {
            return 1;
        }
        gated += checked;
    }
    const int checked = gate_bat_build(ns_op, have_seed ? &seed_ns_op : nullptr);
    if (checked < 0) {
        return 1;
    }
    gated += checked;
    if (gated == 0) {
        return fail("no gateable rows (sort_*, morton_encode_*, bitmap_bin_*, "
                    "write.bat_build, read.serve_*, read.msgs_*, read.total_*, "
                    "series.*, prof.*) found");
    }
    std::printf("bench_check: OK (%zu entries, %d gated comparisons)\n", ns_op.size(),
                gated);
    return 0;
}

int main(int argc, char** argv) {
    try {
        return run(argc, argv);
    } catch (const std::exception& e) {
        return fail(e.what());
    }
}
