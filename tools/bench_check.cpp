// Perf-regression gate for CI: validates a BENCH_micro.json produced by
// `bench/micro_kernels --json` against the bat-bench-v1 schema and fails
// (exit 1) when the radix sort is slower than the std::sort baseline at any
// size n >= 1M — the builder's sort must never regress past the path it
// replaced. Usage: bench_check BENCH_micro.json

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace {

using bat::obs::json::Value;

int fail(const std::string& msg) {
    std::fprintf(stderr, "bench_check: FAIL: %s\n", msg.c_str());
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: bench_check <BENCH_micro.json>\n");
        return 2;
    }
    std::ifstream in(argv[1]);
    if (!in) {
        return fail(std::string("cannot open ") + argv[1]);
    }
    std::ostringstream text;
    text << in.rdbuf();

    Value doc;
    try {
        doc = bat::obs::json::parse(text.str());
    } catch (const bat::Error& e) {
        return fail(std::string("malformed JSON: ") + e.what());
    }

    // Schema: {"schema": "bat-bench-v1", "benchmarks": [{name, n, ns_op,
    // bytes_per_sec, threads}, ...]}.
    const Value* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string() || schema->string() != "bat-bench-v1") {
        return fail("missing or unexpected \"schema\" (want \"bat-bench-v1\")");
    }
    const Value* benchmarks = doc.find("benchmarks");
    if (benchmarks == nullptr || !benchmarks->is_array() || benchmarks->array().empty()) {
        return fail("\"benchmarks\" missing, not an array, or empty");
    }

    // (kernel name, n) -> ns/op; also validates every entry's fields.
    std::map<std::pair<std::string, std::uint64_t>, double> ns_op;
    for (const Value& b : benchmarks->array()) {
        if (!b.is_object()) {
            return fail("benchmark entry is not an object");
        }
        const Value* name = b.find("name");
        const Value* n = b.find("n");
        const Value* ns = b.find("ns_op");
        const Value* bps = b.find("bytes_per_sec");
        const Value* threads = b.find("threads");
        if (name == nullptr || !name->is_string() || name->string().empty()) {
            return fail("benchmark entry missing string \"name\"");
        }
        if (n == nullptr || !n->is_number() || n->number() <= 0) {
            return fail(name->string() + ": missing positive \"n\"");
        }
        if (ns == nullptr || !ns->is_number() || ns->number() <= 0) {
            return fail(name->string() + ": missing positive \"ns_op\"");
        }
        if (bps == nullptr || !bps->is_number() || bps->number() < 0) {
            return fail(name->string() + ": missing \"bytes_per_sec\"");
        }
        if (threads == nullptr || !threads->is_number() || threads->number() < 1) {
            return fail(name->string() + ": missing \"threads\" >= 1");
        }
        ns_op[{name->string(), static_cast<std::uint64_t>(n->number())}] = ns->number();
    }

    // Gate: radix (serial and pooled) must beat std::sort at every n >= 1M.
    constexpr std::uint64_t kGateMin = 1u << 20;
    int gated = 0;
    for (const auto& [key, std_ns] : ns_op) {
        const auto& [kernel, n] = key;
        if (kernel != "sort_std" || n < kGateMin) {
            continue;
        }
        for (const char* radix : {"sort_radix_serial", "sort_radix_pool"}) {
            const auto it = ns_op.find({radix, n});
            if (it == ns_op.end()) {
                return fail(std::string(radix) + " missing at n=" + std::to_string(n));
            }
            const double speedup = std_ns / it->second;
            std::printf("bench_check: n=%-9llu %-18s %8.2f ns/op vs sort_std %8.2f "
                        "(%.2fx)\n",
                        static_cast<unsigned long long>(n), radix, it->second, std_ns,
                        speedup);
            if (speedup < 1.0) {
                return fail(std::string(radix) + " slower than sort_std at n=" +
                            std::to_string(n));
            }
            ++gated;
        }
    }
    if (gated == 0) {
        return fail("no sort_std/sort_radix pair at n >= 1M to gate on");
    }
    std::printf("bench_check: OK (%zu entries, %d gated comparisons)\n", ns_op.size(),
                gated);
    return 0;
}
