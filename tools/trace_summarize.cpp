// trace_summarize: inspect Chrome trace-event JSON produced by the obs
// tracer (BAT_TRACE_FILE) and the matching metrics JSON (BAT_METRICS_FILE).
//
//   trace_summarize trace.json              per-span summary + write-phase %
//   trace_summarize --validate trace.json   structural check, nonzero on fail
//   trace_summarize --metrics m.json        metrics summary (standalone or
//                                           combined with a trace)
//   trace_summarize --query ID trace.json   only spans tagged with the query
//                                           trace id ID (obs/query_trace.hpp:
//                                           read.serve_leaf and vmpi.send
//                                           carry a "qtrace" arg), extracting
//                                           one query's work from a dump
//
// The write-phase table reproduces the Fig 6 breakdown (gather / tree_build
// / scatter / transfer / bat_build / file_write / metadata as percentages of
// the write total) directly from span durations, so a traced run can be
// cross-checked against bench/fig6_breakdown and the simio model.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace {

using bat::obs::json::Value;

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    BAT_CHECK_MSG(in.good(), "cannot open " << path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

struct SpanStats {
    std::string cat;
    long count = 0;
    double total_us = 0;
    double max_us = 0;
};

/// The event's "qtrace" arg (query trace id), or 0 when untagged.
std::uint64_t event_qtrace(const Value& ev) {
    const Value* args = ev.find("args");
    if (args == nullptr || !args->is_object()) {
        return 0;
    }
    const Value* q = args->find("qtrace");
    return q != nullptr && q->is_number() ? static_cast<std::uint64_t>(q->number()) : 0;
}

/// Aggregate matched B/E pairs per span name across all (pid, tid) tracks.
/// With `query` != 0, only spans whose begin event carries a matching
/// "qtrace" arg are counted (the begin/end pairing still walks every event,
/// so nesting stays correct around the filtered-out spans).
std::map<std::string, SpanStats> collect_spans(const Value& root,
                                               std::uint64_t query = 0) {
    const Value* events = root.find("traceEvents");
    BAT_CHECK_MSG(events != nullptr && events->is_array(),
                  "trace has no traceEvents array");
    // Open-span stack per (pid, tid); Chrome trace B/E events nest per track.
    struct Open {
        std::string name;
        double ts = 0;
        bool counted = false;
    };
    std::map<std::pair<long, long>, std::vector<Open>> stacks;
    std::map<std::string, SpanStats> spans;
    for (const Value& ev : events->array()) {
        const Value* ph = ev.find("ph");
        if (ph == nullptr || !ph->is_string()) {
            continue;
        }
        const Value* name = ev.find("name");
        const Value* ts = ev.find("ts");
        const Value* pid = ev.find("pid");
        const Value* tid = ev.find("tid");
        if (name == nullptr || ts == nullptr || pid == nullptr || tid == nullptr) {
            continue;
        }
        const std::pair<long, long> track{static_cast<long>(pid->number()),
                                          static_cast<long>(tid->number())};
        if (ph->string() == "B") {
            stacks[track].push_back(
                {name->string(), ts->number(),
                 query == 0 || event_qtrace(ev) == query});
        } else if (ph->string() == "E") {
            auto& stack = stacks[track];
            if (stack.empty() || stack.back().name != name->string()) {
                continue;  // --validate reports these; summaries stay lenient
            }
            const double dur_us = ts->number() - stack.back().ts;
            const bool counted = stack.back().counted;
            stack.pop_back();
            if (!counted) {
                continue;
            }
            SpanStats& s = spans[name->string()];
            if (const Value* cat = ev.find("cat"); cat != nullptr && cat->is_string()) {
                s.cat = cat->string();
            }
            s.count += 1;
            s.total_us += dur_us;
            s.max_us = std::max(s.max_us, dur_us);
        } else if (ph->string() == "X") {
            const Value* dur = ev.find("dur");
            if (dur == nullptr || (query != 0 && event_qtrace(ev) != query)) {
                continue;
            }
            SpanStats& s = spans[name->string()];
            if (const Value* cat = ev.find("cat"); cat != nullptr && cat->is_string()) {
                s.cat = cat->string();
            }
            s.count += 1;
            s.total_us += dur->number();
            s.max_us = std::max(s.max_us, dur->number());
        }
    }
    return spans;
}

void print_span_table(const std::map<std::string, SpanStats>& spans) {
    std::printf("%-28s %-8s %10s %14s %12s\n", "span", "cat", "count", "total_ms",
                "max_ms");
    for (const auto& [name, s] : spans) {
        std::printf("%-28s %-8s %10ld %14.3f %12.3f\n", name.c_str(), s.cat.c_str(),
                    s.count, s.total_us / 1e3, s.max_us / 1e3);
    }
}

/// Fig 6-style percentage breakdown over the write.* (or simio write) phases.
void print_write_breakdown(const std::map<std::string, SpanStats>& spans) {
    static const char* kPhases[] = {"gather",    "tree_build", "scatter", "transfer",
                                    "bat_build", "file_write", "metadata"};
    double total_us = 0;
    std::map<std::string, double> phase_us;
    for (const char* phase : kPhases) {
        for (const std::string key : {std::string("write.") + phase, std::string(phase)}) {
            auto it = spans.find(key);
            if (it != spans.end()) {
                phase_us[phase] += it->second.total_us;
                total_us += it->second.total_us;
                break;
            }
        }
    }
    if (total_us <= 0) {
        return;
    }
    std::printf("\nwrite phase breakdown (%% of %.3f ms):\n", total_us / 1e3);
    for (const char* phase : kPhases) {
        std::printf("  %-12s %6.2f%%\n", phase, 100.0 * phase_us[phase] / total_us);
    }
}

int summarize_metrics(const std::string& path) {
    const Value root = bat::obs::json::parse(read_file(path));
    std::printf("metrics: %s\n", path.c_str());
    if (const Value* counters = root.find("counters");
        counters != nullptr && counters->is_object()) {
        for (const auto& [name, v] : counters->object()) {
            std::printf("  counter   %-28s %ld\n", name.c_str(),
                        static_cast<long>(v.number()));
        }
    }
    if (const Value* gauges = root.find("gauges");
        gauges != nullptr && gauges->is_object()) {
        for (const auto& [name, v] : gauges->object()) {
            std::printf("  gauge     %-28s %g\n", name.c_str(), v.number());
        }
    }
    if (const Value* hists = root.find("histograms");
        hists != nullptr && hists->is_object()) {
        for (const auto& [name, h] : hists->object()) {
            const Value* count = h.find("count");
            const Value* mean = h.find("mean");
            const Value* max = h.find("max");
            std::printf("  histogram %-28s count=%ld mean=%.3f max=%.3f\n", name.c_str(),
                        count != nullptr ? static_cast<long>(count->number()) : 0,
                        mean != nullptr ? mean->number() : 0.0,
                        max != nullptr ? max->number() : 0.0);
        }
    }
    return 0;
}

void usage() {
    std::fprintf(stderr,
                 "usage: trace_summarize [--validate] [--query TRACE_ID] "
                 "[--metrics metrics.json] [trace.json]\n");
}

}  // namespace

int main(int argc, char** argv) {
    bool validate = false;
    std::uint64_t query = 0;
    std::string metrics_path;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--validate") == 0) {
            validate = true;
        } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
            query = std::strtoull(argv[++i], nullptr, 10);
            if (query == 0) {
                std::fprintf(stderr, "--query needs a nonzero decimal trace id\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage();
            return 0;
        } else if (argv[i][0] == '-') {
            usage();
            return 2;
        } else {
            trace_path = argv[i];
        }
    }
    if (trace_path.empty() && metrics_path.empty()) {
        usage();
        return 2;
    }
    try {
        if (!trace_path.empty()) {
            const Value root = bat::obs::json::parse(read_file(trace_path));
            if (validate) {
                const bat::obs::TraceCheck check = bat::obs::validate_chrome_trace(root);
                if (!check.ok) {
                    std::fprintf(stderr, "INVALID: %s\n", check.error.c_str());
                    return 1;
                }
                // A structurally valid trace can still be truncated: ring
                // overflow drops the oldest events. CI must treat that as a
                // failure, not quietly summarize the surviving suffix.
                if (const Value* other = root.find("otherData")) {
                    const Value* dropped = other->find("dropped_events");
                    if (dropped != nullptr && dropped->is_number() &&
                        dropped->number() > 0) {
                        std::fprintf(stderr,
                                     "INVALID: trace dropped %.0f events to ring-buffer "
                                     "overflow; raise BAT_TRACE_BUFFER or shorten the "
                                     "traced region\n",
                                     dropped->number());
                        return 1;
                    }
                }
                std::printf("OK: %d events, %d spans, %d flows, %d ranks\n",
                            check.num_events, check.num_spans, check.num_flows,
                            check.num_ranks);
            }
            const auto spans = collect_spans(root, query);
            if (query != 0) {
                std::printf("spans tagged qtrace=%llu:\n",
                            static_cast<unsigned long long>(query));
                if (spans.empty()) {
                    std::fprintf(stderr,
                                 "no spans tagged with query %llu (was the trace "
                                 "taken with per-query tracing active?)\n",
                                 static_cast<unsigned long long>(query));
                    return 1;
                }
            }
            print_span_table(spans);
            if (query == 0) {
                print_write_breakdown(spans);
            }
        }
        if (!metrics_path.empty()) {
            if (!trace_path.empty()) {
                std::printf("\n");
            }
            return summarize_metrics(metrics_path);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
