// query_profile: inspect the per-query JSONL log written by the query
// tracing layer (obs/query_trace.hpp, BAT_QUERY_LOG). One bat-query-v1
// object per line, serve spans embedded; unattributed serve spans appear as
// bat-query-orphan-v1 lines.
//
//   query_profile LOG.jsonl             top-k slowest queries (dominant
//                                       stage each) + the slowest query's
//                                       cross-rank critical path
//   query_profile --top K LOG.jsonl     change k (default 5)
//   query_profile --validate LOG.jsonl  schema-check every line, recompute
//                                       exact wall-time quantiles and assert
//                                       p50 <= p99, require every remote
//                                       leaf to have exactly one serve span
//                                       and zero orphan lines; nonzero exit
//                                       on any violation (the CI gate)
//
// All timestamps share the process trace epoch (obs::trace_now_ns is one
// clock across the in-process vmpi ranks), so a remote rank's serve spans
// lie on the same axis as the origin's stage windows and the critical path
// origin -> request send -> remote serve -> response -> merge can be read
// off directly.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using bat::obs::json::Value;

struct ServeSpan {
    int rank = -1;
    int leaf = -1;
    double start_us = 0;
    double dur_us = 0;
    std::uint64_t bytes = 0;
    bool cache_hit = false;
};

struct Query {
    std::uint64_t trace_id = 0;
    int origin_rank = -1;
    std::uint64_t seq = 0;
    std::string op;
    double start_us = 0;
    double wall_us = 0;
    double request_us = 0;
    double serve_us = 0;
    double merge_us = 0;
    double local_us = 0;
    std::uint64_t leaves_local = 0;
    std::uint64_t leaves_remote = 0;
    std::uint64_t request_msgs = 0;
    std::uint64_t bytes_moved = 0;
    std::uint64_t particles = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    double pool_task_us = 0;
    std::uint64_t fastpath_windows = 0;
    std::vector<ServeSpan> spans;
};

int fail(int line_no, const std::string& msg) {
    std::fprintf(stderr, "query_profile: FAIL (line %d): %s\n", line_no, msg.c_str());
    return 1;
}

/// Fetch a required non-negative number member into *out.
bool get_num(const Value& obj, const char* key, double* out) {
    const Value* v = obj.find(key);
    if (v == nullptr || !v->is_number() || v->number() < 0) {
        return false;
    }
    *out = v->number();
    return true;
}

bool get_u64(const Value& obj, const char* key, std::uint64_t* out) {
    double d = 0;
    if (!get_num(obj, key, &d)) {
        return false;
    }
    *out = static_cast<std::uint64_t>(d);
    return true;
}

/// Parse one bat-query-v1 line into *q; returns an error string ("" = ok).
std::string parse_query(const Value& doc, Query* q) {
    const Value* op = doc.find("op");
    if (op == nullptr || !op->is_string() || op->string().empty()) {
        return "missing string \"op\"";
    }
    q->op = op->string();
    if (!get_u64(doc, "trace_id", &q->trace_id) || q->trace_id == 0) {
        return "missing nonzero \"trace_id\"";
    }
    double origin = 0;
    if (!get_num(doc, "origin_rank", &origin)) {
        return "missing \"origin_rank\"";
    }
    q->origin_rank = static_cast<int>(origin);
    if (!get_u64(doc, "seq", &q->seq)) {
        return "missing \"seq\"";
    }
    if (!get_num(doc, "start_us", &q->start_us) ||
        !get_num(doc, "wall_us", &q->wall_us)) {
        return "missing \"start_us\"/\"wall_us\"";
    }
    const Value* stages = doc.find("stages");
    if (stages == nullptr || !stages->is_object()) {
        return "missing \"stages\" object";
    }
    if (!get_num(*stages, "request_us", &q->request_us) ||
        !get_num(*stages, "serve_us", &q->serve_us) ||
        !get_num(*stages, "merge_us", &q->merge_us) ||
        !get_num(*stages, "local_us", &q->local_us)) {
        return "stages missing request_us/serve_us/merge_us/local_us";
    }
    // The four stages tile the query's wall window by construction; allow
    // the %.3f rounding of four terms.
    const double sum = q->request_us + q->serve_us + q->merge_us + q->local_us;
    if (sum > q->wall_us + 0.01 || sum < q->wall_us - 0.01) {
        return "stage sum " + std::to_string(sum) + " != wall_us " +
               std::to_string(q->wall_us);
    }
    if (!get_u64(doc, "leaves_local", &q->leaves_local) ||
        !get_u64(doc, "leaves_remote", &q->leaves_remote) ||
        !get_u64(doc, "request_msgs", &q->request_msgs) ||
        !get_u64(doc, "bytes_moved", &q->bytes_moved) ||
        !get_u64(doc, "particles", &q->particles) ||
        !get_u64(doc, "cache_hits", &q->cache_hits) ||
        !get_u64(doc, "cache_misses", &q->cache_misses) ||
        !get_num(doc, "pool_task_us", &q->pool_task_us) ||
        !get_u64(doc, "fastpath_windows", &q->fastpath_windows)) {
        return "missing counter field (leaves/msgs/bytes/particles/cache/pool/"
               "fastpath)";
    }
    const Value* spans = doc.find("serve_spans");
    if (spans == nullptr || !spans->is_array()) {
        return "missing \"serve_spans\" array";
    }
    for (const Value& sv : spans->array()) {
        if (!sv.is_object()) {
            return "serve span is not an object";
        }
        ServeSpan s;
        double rank = 0;
        double leaf = 0;
        if (!get_num(sv, "rank", &rank) || !get_num(sv, "leaf", &leaf) ||
            !get_num(sv, "start_us", &s.start_us) || !get_num(sv, "dur_us", &s.dur_us) ||
            !get_u64(sv, "bytes", &s.bytes)) {
            return "serve span missing rank/leaf/start_us/dur_us/bytes";
        }
        const Value* hit = sv.find("cache_hit");
        if (hit == nullptr || !hit->is_bool()) {
            return "serve span missing bool \"cache_hit\"";
        }
        s.rank = static_cast<int>(rank);
        s.leaf = static_cast<int>(leaf);
        s.cache_hit = hit->boolean();
        q->spans.push_back(s);
    }
    return "";
}

const char* dominant_stage(const Query& q) {
    const char* name = "request";
    double best = q.request_us;
    if (q.serve_us > best) {
        name = "serve";
        best = q.serve_us;
    }
    if (q.merge_us > best) {
        name = "merge";
        best = q.merge_us;
    }
    if (q.local_us > best) {
        name = "local";
    }
    return name;
}

/// Exact quantile of a sorted sample (nearest-rank).
double quantile(const std::vector<double>& sorted, double p) {
    if (sorted.empty()) {
        return 0;
    }
    const std::size_t rank = static_cast<std::size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

/// Stage windows + every serve span of one query on a shared time axis.
void print_critical_path(const Query& q) {
    std::printf("\ncritical path of slowest query %llu (op %s, origin rank %d, "
                "%.3f ms wall):\n",
                static_cast<unsigned long long>(q.trace_id), q.op.c_str(),
                q.origin_rank, q.wall_us / 1e3);
    const double t0 = q.start_us;
    const double req_end = t0 + q.request_us;
    const double serve_end = req_end + q.serve_us;
    const double merge_end = serve_end + q.merge_us;
    std::printf("  %10.3f..%-10.3f ms  origin %d: build+send %llu request msg(s) "
                "(%llu remote leaves)\n",
                0.0, q.request_us / 1e3, q.origin_rank,
                static_cast<unsigned long long>(q.request_msgs),
                static_cast<unsigned long long>(q.leaves_remote));
    std::vector<ServeSpan> spans = q.spans;
    std::sort(spans.begin(), spans.end(),
              [](const ServeSpan& a, const ServeSpan& b) { return a.start_us < b.start_us; });
    for (const ServeSpan& s : spans) {
        std::printf("  %10.3f..%-10.3f ms  rank %d: serve leaf %-5d %8llu B %s\n",
                    (s.start_us - t0) / 1e3, (s.start_us + s.dur_us - t0) / 1e3, s.rank,
                    s.leaf, static_cast<unsigned long long>(s.bytes),
                    s.cache_hit ? "(cache hit)" : "(cache miss)");
    }
    std::printf("  %10.3f..%-10.3f ms  origin %d: responses collected (%llu B moved)\n",
                q.request_us / 1e3, (serve_end - t0) / 1e3, q.origin_rank,
                static_cast<unsigned long long>(q.bytes_moved));
    std::printf("  %10.3f..%-10.3f ms  origin %d: merge responses\n",
                (serve_end - t0) / 1e3, (merge_end - t0) / 1e3, q.origin_rank);
    std::printf("  %10.3f..%-10.3f ms  origin %d: local leaves (%llu)\n",
                (merge_end - t0) / 1e3, q.wall_us / 1e3, q.origin_rank,
                static_cast<unsigned long long>(q.leaves_local));
    if (!spans.empty()) {
        const auto last = std::max_element(
            spans.begin(), spans.end(), [](const ServeSpan& a, const ServeSpan& b) {
                return a.start_us + a.dur_us < b.start_us + b.dur_us;
            });
        std::printf("  serve stage dominated by rank %d leaf %d (ends %.3f ms; serve "
                    "window closes %.3f ms)\n",
                    last->rank, last->leaf,
                    (last->start_us + last->dur_us - t0) / 1e3, (serve_end - t0) / 1e3);
    }
}

void usage() {
    std::fprintf(stderr, "usage: query_profile [--validate] [--top K] <LOG.jsonl>\n");
}

}  // namespace

int main(int argc, char** argv) {
    bool validate = false;
    int top_k = 5;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--validate") == 0) {
            validate = true;
        } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
            top_k = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage();
            return 0;
        } else if (argv[i][0] == '-') {
            usage();
            return 2;
        } else {
            path = argv[i];
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "query_profile: cannot open %s\n", path.c_str());
        return 1;
    }

    std::vector<Query> queries;
    int orphans = 0;
    int line_no = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        Value doc;
        try {
            doc = bat::obs::json::parse(line);
        } catch (const std::exception& e) {
            return fail(line_no, std::string("malformed JSON: ") + e.what());
        }
        const Value* schema = doc.find("schema");
        if (schema == nullptr || !schema->is_string()) {
            return fail(line_no, "missing \"schema\"");
        }
        if (schema->string() == "bat-query-orphan-v1") {
            ++orphans;
            continue;
        }
        if (schema->string() != "bat-query-v1") {
            return fail(line_no, "unexpected schema \"" + schema->string() + "\"");
        }
        Query q;
        if (const std::string err = parse_query(doc, &q); !err.empty()) {
            return fail(line_no, err);
        }
        queries.push_back(std::move(q));
    }
    if (queries.empty() && orphans == 0) {
        std::fprintf(stderr, "query_profile: %s holds no query records\n", path.c_str());
        return 1;
    }

    std::vector<double> walls;
    walls.reserve(queries.size());
    for (const Query& q : queries) {
        walls.push_back(q.wall_us);
    }
    std::sort(walls.begin(), walls.end());
    const double p50 = quantile(walls, 0.50);
    const double p99 = quantile(walls, 0.99);

    if (validate) {
        // An orphaned serve span means work ran under a query id whose
        // record never landed — attribution is broken (or sampling split a
        // record from its spans, which a validated run must not configure).
        if (orphans != 0) {
            std::fprintf(stderr,
                         "query_profile: FAIL: %d unattributed serve span line(s)\n",
                         orphans);
            return 1;
        }
        for (const Query& q : queries) {
            if (q.spans.size() != q.leaves_remote) {
                std::fprintf(stderr,
                             "query_profile: FAIL: query %llu has %zu serve spans for "
                             "%llu remote leaves\n",
                             static_cast<unsigned long long>(q.trace_id), q.spans.size(),
                             static_cast<unsigned long long>(q.leaves_remote));
                return 1;
            }
        }
        if (p50 > p99) {
            std::fprintf(stderr, "query_profile: FAIL: wall p50 %.3f us > p99 %.3f us\n",
                         p50, p99);
            return 1;
        }
        std::printf("query_profile: OK (%zu records, 0 orphans, wall p50 %.3f us, "
                    "p99 %.3f us)\n",
                    queries.size(), p50, p99);
        return 0;
    }

    std::sort(queries.begin(), queries.end(),
              [](const Query& a, const Query& b) { return a.wall_us > b.wall_us; });
    std::printf("%zu queries, wall p50 %.3f us, p99 %.3f us, %d orphan span(s)\n\n",
                queries.size(), p50, p99, orphans);
    std::printf("%-16s %-6s %-22s %10s %9s %8s %8s %-8s\n", "trace_id", "origin", "op",
                "wall_ms", "leaves", "msgs", "MB", "dominant");
    const int k = std::min<int>(top_k, static_cast<int>(queries.size()));
    for (int i = 0; i < k; ++i) {
        const Query& q = queries[static_cast<std::size_t>(i)];
        std::printf("%-16llu %-6d %-22s %10.3f %9llu %8llu %8.2f %-8s\n",
                    static_cast<unsigned long long>(q.trace_id), q.origin_rank,
                    q.op.c_str(), q.wall_us / 1e3,
                    static_cast<unsigned long long>(q.leaves_local + q.leaves_remote),
                    static_cast<unsigned long long>(q.request_msgs),
                    static_cast<double>(q.bytes_moved) / (1 << 20), dominant_stage(q));
    }
    if (!queries.empty()) {
        print_critical_path(queries.front());
    }
    return 0;
}
