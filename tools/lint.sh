#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over src/, tools/, and bench/ using
# the compile database from a CMake build directory.
#
# Prefers run-clang-tidy (ships with clang-tools, parallelizes internally);
# falls back to xargs -P with one clang-tidy per file. Both paths use every
# core by default — override with LINT_JOBS=N.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir defaults to ./build; it is configured on demand if missing.
#
# Exit status: 0 clean, 1 findings, 2 environment problem (no clang-tidy).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
jobs="${LINT_JOBS:-$(nproc 2> /dev/null || echo 4)}"

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; install clang-tidy to lint" >&2
  exit 2
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "lint.sh: configuring $build_dir to produce compile_commands.json"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# run-clang-tidy matches sources against the compile database by regex;
# the fallback lints the same list file by file.
mapfile -t sources < <(find "$repo_root/src" "$repo_root/tools" "$repo_root/bench" \
  -name '*.cpp' | sort)

runner=""
for candidate in run-clang-tidy "run-clang-tidy-${tidy##*-}"; do
  if command -v "$candidate" > /dev/null 2>&1; then
    runner="$candidate"
    break
  fi
done

status=0
if [[ -n "$runner" ]]; then
  echo "lint.sh: $runner -j$jobs over ${#sources[@]} files (config: $repo_root/.clang-tidy)"
  "$runner" -clang-tidy-binary "$(command -v "$tidy")" -p "$build_dir" -quiet \
    -j "$jobs" "$repo_root/(src|tools|bench)/.*\.cpp$" || status=1
else
  echo "lint.sh: $tidy -P$jobs over ${#sources[@]} files (config: $repo_root/.clang-tidy)"
  printf '%s\0' "${sources[@]}" |
    xargs -0 -n 1 -P "$jobs" "$tidy" -p "$build_dir" --quiet || status=1
fi

if [[ $status -eq 0 ]]; then
  echo "lint.sh: clean"
else
  echo "lint.sh: findings reported above" >&2
fi
exit $status
