#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over src/ using the compile database
# from a CMake build directory.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir defaults to ./build; it is configured on demand if missing.
#
# Exit status: 0 clean, 1 findings, 2 environment problem (no clang-tidy).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; install clang-tidy to lint" >&2
  exit 2
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "lint.sh: configuring $build_dir to produce compile_commands.json"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)
echo "lint.sh: $tidy over ${#sources[@]} files (config: $repo_root/.clang-tidy)"

status=0
for src in "${sources[@]}"; do
  if ! "$tidy" -p "$build_dir" --quiet "$src"; then
    status=1
  fi
done

if [[ $status -eq 0 ]]; then
  echo "lint.sh: clean"
else
  echo "lint.sh: findings reported above" >&2
fi
exit $status
