// Functional (real-disk) counterpart to the modeled scaling figures:
// measures actual wall-clock write and read bandwidth of the three I/O
// strategies — two-phase adaptive (this paper), file per process, and a
// single shared file — on the local filesystem at small virtual-MPI rank
// counts. This exercises the genuine end-to-end pipelines (aggregation,
// transfers, BAT builds, POSIX I/O) rather than the performance model; the
// absolute numbers reflect this machine's disk, not an HPC system.

#include <chrono>

#include "bench_common.hpp"
#include "io/baselines.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "test_output_free.hpp"
#include "vmpi/comm.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

using namespace bat;
using namespace bat::bench;

namespace {

using Clock = std::chrono::steady_clock;

double run_timed(const std::function<void()>& fn) {
    const auto t0 = Clock::now();
    fn();
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
    const std::filesystem::path dir = scratch_dir("local_disk");
    const Box domain({0, 0, 0}, {2, 2, 2});
    const std::size_t particles_per_rank =
        static_cast<std::size_t>(32'768 * bench_scale());

    std::printf("=== Functional local-disk I/O (real pipelines, %zu particles/rank, "
                "14 f64 attrs) ===\n",
                particles_per_rank);
    Table table({"ranks", "data_MB", "write:two-phase", "write:fpp", "write:shared",
                 "read:two-phase", "read:fpp", "read:shared"});

    for (const int nranks : {2, 4, 8, 16}) {
        const GridDecomp decomp = grid_decomp_3d(nranks, domain);
        std::vector<ParticleSet> per_rank;
        for (int r = 0; r < nranks; ++r) {
            per_rank.push_back(make_uniform_particles(decomp.rank_box(r),
                                                      particles_per_rank, 14,
                                                      static_cast<std::uint64_t>(r) + 1));
        }
        const double total_mb = static_cast<double>(nranks) *
                                static_cast<double>(per_rank[0].payload_bytes()) /
                                (1 << 20);
        auto gbps = [total_mb](double seconds) {
            return total_mb / 1024.0 / seconds;
        };

        std::filesystem::path meta_path;
        double w_two = 0, w_fpp = 0, w_shared = 0, r_two = 0, r_fpp = 0, r_shared = 0;
        vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
            const auto& mine = per_rank[static_cast<std::size_t>(comm.rank())];
            const Box my_box = decomp.rank_box(comm.rank());
            // two-phase adaptive
            WriterConfig config;
            config.tree.target_file_size = 4 << 20;
            config.directory = dir / ("tp_" + std::to_string(nranks));
            const double tw = run_timed([&] {
                const WriteResult res = write_particles(comm, mine, my_box, config);
                if (comm.rank() == 0) {
                    meta_path = res.metadata_path;
                }
            });
            comm.barrier();
            const double tr = run_timed([&] {
                read_particles(comm, meta_path, decomp.rank_read_box(comm.rank()));
            });
            comm.barrier();
            // file per process
            const double fw = run_timed(
                [&] { fpp_write(comm, mine, dir / "fpp", std::to_string(nranks)); });
            comm.barrier();
            const double fr = run_timed(
                [&] { fpp_read(comm, dir / "fpp", std::to_string(nranks), 1); });
            comm.barrier();
            // shared file
            const auto shared_path =
                dir / ("shared_" + std::to_string(nranks) + ".dat");
            const double sw = run_timed([&] { shared_write(comm, mine, shared_path); });
            comm.barrier();
            const double sr = run_timed([&] { shared_read(comm, shared_path, 1); });
            if (comm.rank() == 0) {
                w_two = tw;
                r_two = tr;
                w_fpp = fw;
                r_fpp = fr;
                w_shared = sw;
                r_shared = sr;
            }
        });
        table.add_row({std::to_string(nranks), fmt(total_mb, 1), fmt(gbps(w_two), 2),
                       fmt(gbps(w_fpp), 2), fmt(gbps(w_shared), 2), fmt(gbps(r_two), 2),
                       fmt(gbps(r_fpp), 2), fmt(gbps(r_shared), 2)});
    }
    table.print();
    std::printf("(GB/s; single local disk — shapes are not expected to match the HPC "
                "figures, which the simio model reproduces)\n");
    return 0;
}
