// Reproduces the paper's §VI-B memory-overhead result: "By restricting the
// bitmap index sizes and avoiding duplication for LOD particles, we achieve
// low memory overhead for our layout, requiring just 0.9% additional
// memory to store."
//
// Builds real BATs over Coal Boiler and Dam Break snapshots at several
// aggregator-file sizes and reports file size vs raw particle payload,
// plus where the overhead goes (tree nodes, bitmap IDs, dictionary,
// alignment padding).

#include "bench_common.hpp"
#include "core/bat_compress.hpp"
#include "core/bat_file.hpp"
#include "test_output_free.hpp"
#include "workloads/boiler.hpp"
#include "workloads/dambreak.hpp"

using namespace bat;
using namespace bat::bench;

namespace {

void report(const char* label, ParticleSet particles) {
    const std::uint64_t raw = particles.payload_bytes();
    const std::size_t nattrs = particles.num_attrs();
    const BatData bat = build_bat(std::move(particles), BatConfig{});
    const std::vector<std::byte> bytes = serialize_bat(bat);
    const BatSizeStats stats = bat_size_stats(bat, bytes.size());

    // Attribute the overhead.
    std::uint64_t node_bytes = bat.shallow_nodes.size() * sizeof(ShallowNode);
    std::uint64_t id_bytes = bat.shallow_nodes.size() * nattrs * 2;
    std::uint64_t align_bytes = 0;
    for (const Treelet& t : bat.treelets) {
        node_bytes += t.nodes.size() * sizeof(TreeletNode);
        id_bytes += t.nodes.size() * nattrs * 2;
    }
    align_bytes = stats.overhead_bytes() > node_bytes + id_bytes
                      ? stats.overhead_bytes() - node_bytes - id_bytes
                      : 0;

    const std::size_t compressed = compress_bat(bat).size();
    std::printf("%-28s %9.1f MB raw -> %9.1f MB file  overhead %5.2f%%  "
                "(nodes %.2f%%, bitmap IDs %.2f%%, dict+align+hdr %.2f%%)  "
                "quantized .batz: %.1f MB (%.1fx)\n",
                label, static_cast<double>(raw) / (1 << 20),
                static_cast<double>(bytes.size()) / (1 << 20),
                100.0 * stats.overhead_fraction(),
                100.0 * static_cast<double>(node_bytes) / static_cast<double>(raw),
                100.0 * static_cast<double>(id_bytes) / static_cast<double>(raw),
                100.0 * static_cast<double>(align_bytes) / static_cast<double>(raw),
                static_cast<double>(compressed) / (1 << 20),
                static_cast<double>(bytes.size()) / static_cast<double>(compressed));
}

}  // namespace

int main() {
    const double scale = bench_scale();
    std::printf("=== §VI-B: BAT layout memory overhead (paper: ~0.9%%) ===\n");

    BoilerConfig boiler;
    boiler.particles_at_start = static_cast<std::uint64_t>(4'600'000 * scale);
    boiler.particles_at_end = static_cast<std::uint64_t>(41'500'000 * scale);
    report("boiler t=1501", make_boiler_particles(boiler, 1501));
    report("boiler t=3501", make_boiler_particles(boiler, 3501));

    DamBreakConfig dam;
    dam.num_particles = static_cast<std::uint64_t>(2'000'000 * scale);
    report("dambreak 2M t=0", make_dambreak_particles(dam, 0));
    report("dambreak 2M t=2001", make_dambreak_particles(dam, 2001));
    return 0;
}
