// Ablation of the Aggregation Tree's design choices (paper §III-A / §VII):
//   - split search: longest-axis only vs the optional best-of-all-axes mode;
//   - overfull-leaf policy: imbalance threshold and size factor.
// Reports leaf-file statistics and modeled write bandwidth on the Coal
// Boiler's most imbalanced timestep, where these choices matter most.

#include "bench_common.hpp"
#include "workloads/boiler.hpp"

using namespace bat;
using namespace bat::bench;

int main() {
    const int nranks = 1536;
    BoilerConfig boiler;
    boiler.particles_at_start = 4'600'000;
    boiler.particles_at_end = 41'500'000;
    const std::uint64_t bpp = 12 + 7 * 8;
    const simio::MachineConfig machine = simio::stampede2_like();

    const BoilerCounts counts =
        boiler_rank_counts(boiler, 4501, nranks, /*max_sample=*/2'000'000);
    const GridDecomp decomp = grid_decomp_3d(nranks, counts.data_bounds);
    const std::vector<RankInfo> ranks = make_rank_infos(decomp, counts.rank_counts);

    struct Variant {
        std::string name;
        bool all_axes;
        double overfull_imbalance;
        double overfull_factor;
    };
    const std::vector<Variant> variants{
        {"longest-axis (paper default)", false, 4.0, 1.5},
        {"best-of-all-axes", true, 4.0, 1.5},
        {"no overfull leaves", false, 1e30, 1.0},
        {"overfull imbalance>=2", false, 2.0, 1.5},
        {"overfull imbalance>=8", false, 8.0, 1.5},
        {"overfull up to 3x target", false, 4.0, 3.0},
    };

    std::printf("=== Ablation: aggregation-tree split policy (boiler t=4501, 8 MB "
                "target, 1536 ranks) ===\n");
    Table table({"variant", "files", "mean_MB", "std_MB", "max_MB", "write_GB/s"});
    for (const Variant& v : variants) {
        simio::TwoPhaseParams params =
            two_phase_params(machine, AggStrategy::adaptive, 8 << 20, bpp);
        params.tree.split_all_axes = v.all_axes;
        params.tree.overfull_imbalance = v.overfull_imbalance;
        params.tree.overfull_factor = v.overfull_factor;
        const simio::SimResult r = simio::simulate_write(ranks, params);
        table.add_row({v.name, std::to_string(r.files.num_files),
                       fmt(r.files.mean_bytes / (1 << 20), 1),
                       fmt(r.files.std_bytes / (1 << 20), 1),
                       fmt(r.files.max_bytes / (1 << 20), 1), fmt(r.gb_per_s())});
    }
    table.print();
    return 0;
}
