// Ablation of the shallow-tree subprefix length (paper §III-C1: "We have
// found that a 12-bit subprefix provides satisfactory results with respect
// to the number of leaves and particles within each"). Sweeps the
// subprefix bits and reports treelet counts/sizes, build time, file
// overhead, and spatial-query speed — exposing the trade-off the paper's
// choice balances (more treelets = finer page-level access granularity but
// more alignment padding and per-treelet overhead).

#include <chrono>

#include "bench_common.hpp"
#include "core/bat_file.hpp"
#include "core/bat_query.hpp"
#include "workloads/boiler.hpp"

using namespace bat;
using namespace bat::bench;

int main() {
    const double scale = bench_scale() * 0.4;
    BoilerConfig boiler;
    boiler.particles_at_start = static_cast<std::uint64_t>(4'600'000 * scale);
    boiler.particles_at_end = static_cast<std::uint64_t>(41'500'000 * scale);
    const ParticleSet base = make_boiler_particles(boiler, 2501);
    std::printf("=== Ablation: shallow-tree subprefix bits (%llu boiler particles) ===\n",
                static_cast<unsigned long long>(base.count()));

    Table table({"bits", "treelets", "avg_pts/treelet", "build_ms", "overhead%",
                 "box_query_ms"});
    for (const int bits : {2, 4, 6, 8, 10, 12}) {
        BatConfig config;
        config.subprefix_bits = bits;
        config.auto_subprefix = false;
        ParticleSet particles = base;
        const auto t0 = std::chrono::steady_clock::now();
        const BatData bat = build_bat(std::move(particles), config);
        const double build_ms = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
        const auto bytes = serialize_bat(bat);
        const BatSizeStats stats = bat_size_stats(bat, bytes.size());
        const BatFile file{std::span<const std::byte>(bytes)};

        // Spatial box query over ~1/8 of the domain, repeated for stable ms.
        const Box domain = bat.bounds;
        const Vec3 c = domain.center();
        BatQuery query;
        query.box = Box(domain.lower, c);
        const auto q0 = std::chrono::steady_clock::now();
        std::uint64_t matched = 0;
        for (int rep = 0; rep < 5; ++rep) {
            matched = query_bat(file, query, [](Vec3, std::span<const double>) {});
        }
        const double query_ms = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - q0)
                                    .count() /
                                5.0;
        (void)matched;
        table.add_row({std::to_string(bits), std::to_string(bat.treelets.size()),
                       std::to_string(bat.particles.count() /
                                      std::max<std::size_t>(1, bat.treelets.size())),
                       fmt(build_ms, 1), fmt(100.0 * stats.overhead_fraction(), 2),
                       fmt(query_ms, 2)});
    }
    table.print();
    return 0;
}
