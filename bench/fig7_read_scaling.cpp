// Reproduces paper Fig 7: read bandwidth weak scaling on the fixed uniform
// test data, mirroring Fig 5's matrix for the two-phase parallel read
// pipeline vs IOR-style file-per-process and shared-file reads.
//
// Expected shape (paper): the overheads of many small files (fpp, small
// target sizes) and shared-file global communication both limit read
// scalability; our two-phase reads with a suitable target size win at
// scale, with the largest aggregation size flattening off slowest.

#include "bench_common.hpp"

using namespace bat;
using namespace bat::bench;

int main() {
    const std::vector<std::uint64_t> targets = {8ull << 20, 32ull << 20, 64ull << 20,
                                                256ull << 20};
    for (const simio::MachineConfig& machine : {simio::stampede2_like(),
                                                simio::summit_like()}) {
        const std::vector<int> series = machine.fs == simio::FsKind::lustre
                                            ? stampede2_rank_series()
                                            : summit_rank_series();
        std::printf("\n=== Fig 7 (%s): read bandwidth weak scaling, GB/s ===\n",
                    machine.name.c_str());
        std::vector<std::string> headers{"ranks", "data_GB"};
        for (std::uint64_t t : targets) {
            headers.push_back("ours_" + std::to_string(t >> 20) + "MB");
        }
        headers.insert(headers.end(), {"fpp", "shared", "hdf5"});
        Table table(std::move(headers));

        for (int nranks : series) {
            const std::vector<RankInfo> ranks = uniform_rank_infos(nranks);
            const double data_gb =
                static_cast<double>(simio::workload_bytes(ranks, kUniformBpp)) / 1e9;
            std::vector<std::string> row{std::to_string(nranks), fmt(data_gb, 1)};
            for (std::uint64_t target : targets) {
                const simio::SimResult r = simio::simulate_read(
                    ranks, two_phase_params(machine, AggStrategy::adaptive, target,
                                            kUniformBpp));
                row.push_back(fmt(r.gb_per_s()));
            }
            row.push_back(fmt(simio::simulate_ior_fpp_read(ranks, machine).gb_per_s()));
            row.push_back(
                fmt(simio::simulate_ior_shared_read(ranks, machine, false).gb_per_s()));
            row.push_back(
                fmt(simio::simulate_ior_shared_read(ranks, machine, true).gb_per_s()));
            table.add_row(std::move(row));
        }
        table.print();
    }
    return 0;
}
