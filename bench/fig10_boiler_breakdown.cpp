// Reproduces paper Fig 10: component breakdowns of adaptive vs AUG I/O on
// the Coal Boiler time series at the 8 MB target size, 1536 ranks.
//
// Expected shape: the improved load balance of adaptive aggregation
// reduces the time spent in the major pipeline components (transfer, BAT
// build, file write) relative to AUG, and the gap grows over the series as
// injection makes the distribution more imbalanced.

#include "bench_common.hpp"
#include "workloads/boiler.hpp"

using namespace bat;
using namespace bat::bench;

int main() {
    const int nranks = 1536;
    BoilerConfig boiler;
    boiler.particles_at_start = 4'600'000;
    boiler.particles_at_end = 41'500'000;
    const std::uint64_t bpp = 12 + 7 * 8;
    const simio::MachineConfig machine = simio::stampede2_like();

    std::printf("\n=== Fig 10: Coal Boiler component times (ms), 8 MB target, 1536 ranks "
                "===\n");
    Table table({"timestep", "strategy", "transfer", "bat_build", "file_write", "other",
                 "total"});
    for (int timestep = 501; timestep <= 4501; timestep += 1000) {
        const BoilerCounts counts =
            boiler_rank_counts(boiler, timestep, nranks, /*max_sample=*/2'000'000);
        const GridDecomp decomp = grid_decomp_3d(nranks, counts.data_bounds);
        const std::vector<RankInfo> ranks = make_rank_infos(decomp, counts.rank_counts);
        for (AggStrategy strategy : {AggStrategy::adaptive, AggStrategy::aug}) {
            const simio::SimResult r = simio::simulate_write(
                ranks, two_phase_params(machine, strategy, 8 << 20, bpp));
            const double transfer = r.phase_seconds("transfer");
            const double build = r.phase_seconds("bat_build");
            const double write = r.phase_seconds("file_write");
            const double other = r.seconds - transfer - build - write;
            table.add_row({std::to_string(timestep), to_string(strategy),
                           fmt(1e3 * transfer, 1), fmt(1e3 * build, 1),
                           fmt(1e3 * write, 1), fmt(1e3 * other, 1),
                           fmt(1e3 * r.seconds, 1)});
        }
    }
    table.print();
    return 0;
}
