// End-to-end write-pipeline bench: one in-process 8-rank write_particles
// collective over a partitioned uniform workload, reporting the slowest
// rank's per-phase seconds (gather / tree_build / scatter / transfer /
// bat_build / file_write / metadata — the paper's Fig 6 categories) plus
// aggregate throughput.
//
// `write_pipeline --json [--out FILE]` emits bat-bench-v1 JSON to
// BENCH_write.json so CI and later PRs can diff transfer-phase numbers; a
// plain run prints a table. See docs/PERFORMANCE.md.

#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "io/writer.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "test_output_free.hpp"
#include "util/thread_pool.hpp"
#include "vmpi/comm.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

using namespace bat;

namespace {

/// Deterministic CPU burn for the prof_report --diff acceptance check: with
/// BAT_BENCH_SYNTHETIC_HOT=1 each measured run spends extra CPU inside a
/// "bench.synthetic_hot" span, which a diff against an unpolluted profile
/// must flag as the grown stack.
void synthetic_hot_loop() {
    obs::SpanScope span("bench.synthetic_hot", "bench");
    volatile double sink = 0;
    for (int i = 0; i < 40'000'000; ++i) {
        sink = sink + static_cast<double>(i % 97) * 1e-9;
    }
}

bool synthetic_hot_enabled() {
    const char* env = std::getenv("BAT_BENCH_SYNTHETIC_HOT");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

struct PipelineRun {
    WritePhaseTimings slowest;  // component-wise max over ranks
    std::uint64_t bytes_written = 0;
    int num_leaves = 0;
};

PipelineRun run_pipeline(const std::filesystem::path& dir,
                         const std::vector<ParticleSet>& per_rank,
                         const GridDecomp& decomp, ThreadPool* pool) {
    const int nranks = static_cast<int>(per_rank.size());
    PipelineRun run;
    std::mutex mutex;
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        WriterConfig config;
        config.directory = dir;
        config.basename = "pipeline";
        config.tree.target_file_size = 1 << 20;
        config.pool = pool;
        const int r = comm.rank();
        const WriteResult wr = write_particles(
            comm, per_rank[static_cast<std::size_t>(r)], decomp.rank_box(r), config);
        std::lock_guard<std::mutex> lock(mutex);
        run.slowest = WritePhaseTimings::max(run.slowest, wr.timings);
        run.bytes_written += wr.bytes_written;
        run.num_leaves = wr.num_leaves;
    });
    return run;
}

}  // namespace

int main(int argc, char** argv) {
    constexpr int kRanks = 8;
    constexpr std::size_t kParticles = 1 << 20;
    constexpr int kRuns = 5;

    // Participate in sampling when armed via BAT_PROF_HZ (the rank and pool
    // threads register themselves; the synthetic hot loop runs here).
    obs::prof_register_thread("main");

    const auto dir = bench::scratch_dir("write_pipeline");
    const Box domain({0, 0, 0}, {4, 4, 4});
    const GridDecomp decomp = grid_decomp_3d(kRanks, domain);
    const ParticleSet global = make_uniform_particles(domain, kParticles, 4, 42);
    const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);
    ThreadPool pool(ThreadPool::default_concurrency());

    std::fprintf(stderr, "[bench] %d-rank write of %zu particles, best of %d runs\n",
                 kRanks, kParticles, kRuns);
    run_pipeline(dir, per_rank, decomp, &pool);  // warm up page cache + pool
    if (obs::profiler_running()) {
        obs::reset_profiler();  // drop warmup samples: profile the measured runs
    }
    PipelineRun best;
    double best_total = 1e30;
    for (int i = 0; i < kRuns; ++i) {
        if (synthetic_hot_enabled()) {
            synthetic_hot_loop();
        }
        const PipelineRun run = run_pipeline(dir, per_rank, decomp, &pool);
        if (run.slowest.total() < best_total) {
            best_total = run.slowest.total();
            best = run;
        }
    }

    const WritePhaseTimings& t = best.slowest;
    const std::vector<std::pair<const char*, double>> phases = {
        {"write.gather", t.gather},         {"write.tree_build", t.tree_build},
        {"write.scatter", t.scatter},       {"write.transfer", t.transfer},
        {"write.bat_build", t.bat_build},   {"write.file_write", t.file_write},
        {"write.metadata", t.metadata},     {"write.total", t.total()},
        // write.bat_build broken down into the builder's internal stages
        // (subsets of write.bat_build, not added into write.total).
        {"bat.edges", t.bat.edges},         {"bat.encode", t.bat.encode},
        {"bat.sort", t.bat.sort},           {"bat.treelets", t.bat.treelets},
        {"bat.reorder", t.bat.reorder},     {"bat.bitmaps", t.bat.bitmaps},
    };

    if (bench::has_flag(argc, argv, "--json")) {
        const char* out = bench::flag_value(argc, argv, "--out", "BENCH_write.json");
        bench::JsonBenchWriter writer;
        const int threads = static_cast<int>(pool.num_threads()) + 1;
        for (const auto& [name, seconds] : phases) {
            writer.add(bench::JsonBenchResult{
                name, kParticles, 1e9 * seconds / static_cast<double>(kParticles),
                "ns/op",
                seconds > 0 ? static_cast<double>(best.bytes_written) / seconds : 0.0,
                threads});
        }
        // Profiler-armed runs also report sample attribution rows, gated by
        // tools/bench_check's prof family against the wall-time rows above.
        if (obs::profiler_running()) {
            const obs::ProfTotals totals = obs::prof_totals();
            if (totals.samples > 0) {
                writer.add(bench::JsonBenchResult{
                    "prof.samples", totals.samples, 0.0, "samples", 0.0, threads});
                writer.add(bench::JsonBenchResult{
                    "prof.attributed_pct", totals.samples,
                    100.0 * static_cast<double>(totals.attributed) /
                        static_cast<double>(totals.samples),
                    "pct", 0.0, threads});
                // Per-stage sample shares, normalized over the six builder
                // stages so they compare against the bat.* wall shares.
                const std::vector<obs::ProfStackCount> stacks = obs::prof_stack_counts();
                std::vector<std::pair<std::string, std::uint64_t>> stage_samples;
                std::uint64_t stage_total = 0;
                for (const auto& [phase_name, seconds] : phases) {
                    if (std::strncmp(phase_name, "bat.", 4) != 0) {
                        continue;
                    }
                    std::uint64_t count = 0;
                    for (const obs::ProfStackCount& sc : stacks) {
                        for (const std::string& frame : sc.frames) {
                            if (frame == phase_name) {
                                count += sc.samples;
                                break;
                            }
                        }
                    }
                    stage_samples.emplace_back(phase_name, count);
                    stage_total += count;
                }
                for (const auto& [stage, count] : stage_samples) {
                    if (count == 0) {
                        continue;  // a zero-n row would fail schema validation
                    }
                    writer.add(bench::JsonBenchResult{
                        "prof.share." + stage, count,
                        100.0 * static_cast<double>(count) /
                            static_cast<double>(stage_total),
                        "pct", 0.0, threads});
                }
            }
        }
        writer.write(out);
    } else {
        bench::Table table({"phase", "seconds", "ns/particle"});
        for (const auto& [name, seconds] : phases) {
            table.add_row({name, bench::fmt(seconds, 4),
                           bench::fmt(1e9 * seconds / static_cast<double>(kParticles), 1)});
        }
        table.print();
        std::printf("leaves: %d, bytes written: %s MB\n", best.num_leaves,
                    bench::fmt_mb(best.bytes_written).c_str());
    }

    std::filesystem::remove_all(dir);
    return 0;
}
