// Reproduces paper Table I: progressive single-thread read times and
// throughput on the Coal Boiler time series written using 1536 ranks, for
// target sizes 2-16 MB. BATs are built with 8 LOD particles per treelet
// inner node and up to 128 particles per treelet leaf (the paper's
// settings). Starting from quality 0.1 (~10% of the data), successively
// higher quality levels are requested in increments of 0.1 until the whole
// data set is loaded; we report the average per-step read time and the
// points/ms throughput.
//
// This bench builds and reads REAL BAT files. The particle counts are
// scaled by BAT_BENCH_SCALE (default 0.25) from the paper's 4.6M-41.5M;
// per-point throughput (pts/ms) is largely size-independent, so the
// paper's ~52-56k pts/ms order of magnitude is the comparison target.
// Expected shape: read time is nearly independent of target size; the
// dominant cost is the number of points returned.

#include <chrono>

#include "bench_common.hpp"
#include "core/bat_query.hpp"
#include "io/writer.hpp"
#include "test_output_free.hpp"
#include "workloads/boiler.hpp"
#include "workloads/decomposition.hpp"

using namespace bat;
using namespace bat::bench;

int main() {
    // Tables measure per-point read latency/throughput, which is volume-
    // independent, so this bench runs at a deeper reduction than the
    // default BAT_BENCH_SCALE (x0.2 on top of it).
    const double scale = bench_scale() * 0.2;
    const int nranks = 1536;
    BoilerConfig boiler;
    boiler.particles_at_start = static_cast<std::uint64_t>(4'600'000 * scale);
    boiler.particles_at_end = static_cast<std::uint64_t>(41'500'000 * scale);
    const std::vector<int> timesteps{1501, 3501};
    const std::vector<std::uint64_t> targets = {2ull << 20, 4ull << 20, 8ull << 20,
                                                16ull << 20};
    const std::filesystem::path dir = scratch_dir("table1");

    std::printf("=== Table I: progressive single-thread reads, Coal Boiler "
                "(scale %.2f, 1536 writer ranks) ===\n",
                scale);
    Table table({"target", "avg_read_ms", "avg_throughput_pts_per_ms"});
    for (const std::uint64_t target : targets) {
        double total_ms = 0;
        std::uint64_t total_points = 0;
        int reads = 0;
        for (const int timestep : timesteps) {
            // Write this timestep through the adaptive pipeline at 1536
            // ranks (serial driver over the same code path).
            const ParticleSet global = make_boiler_particles(boiler, timestep);
            const GridDecomp decomp = grid_decomp_3d(nranks, global.bounds());
            const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);
            std::vector<Box> bounds;
            for (int r = 0; r < nranks; ++r) {
                bounds.push_back(decomp.rank_box(r));
            }
            WriterConfig config;
            config.tree.target_file_size = target;
            config.directory = dir;
            config.basename = "t1_" + std::to_string(target >> 20) + "_" +
                              std::to_string(timestep);
            const WriteResult written = write_particles_serial(per_rank, bounds, config);

            // Progressive read: quality 0.1 steps through the whole set.
            const Metadata meta = Metadata::load(written.metadata_path);
            std::vector<BatFile> files;
            files.reserve(meta.leaves.size());
            for (const MetaLeaf& leaf : meta.leaves) {
                files.emplace_back(dir / leaf.file);
            }
            for (int step = 0; step < 10; ++step) {
                BatQuery query;
                query.quality_lo = static_cast<float>(step) / 10.f;
                query.quality_hi = static_cast<float>(step + 1) / 10.f;
                std::uint64_t points = 0;
                const auto t0 = std::chrono::steady_clock::now();
                for (const BatFile& file : files) {
                    points +=
                        query_bat(file, query, [](Vec3, std::span<const double>) {});
                }
                const double ms = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count();
                total_ms += ms;
                total_points += points;
                ++reads;
            }
        }
        table.add_row({std::to_string(target >> 20) + "MB", fmt(total_ms / reads, 1),
                       fmt(static_cast<double>(total_points) / total_ms, 0)});
    }
    table.print();
    std::printf("(paper, full scale: 2MB 72.5ms 54968 pts/ms; 4MB 69.1ms 55663; "
                "8MB 71.8ms 54148; 16MB 70.2ms 52501)\n");
    return 0;
}
